"""Modeling your own application and shipping the model to target systems.

This example demonstrates the workflow the methodology is built for:
the application is characterized *once*, its I/O abstract model is
saved as JSON, and the model file alone -- no application, no input
data -- is later used to size up I/O subsystems (here: how NFS and
Lustre compare as the checkpoint frequency of a climate-style solver
changes).

Run:  python examples/custom_app_modeling.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.clusters import configuration_c, finisterrae
from repro.core.model import IOModel
from repro.core.pipeline import characterize_app, estimate_on
from repro.report.tables import phases_table
from repro.simmpi.datatypes import Basic, Vector

MB = 1024 * 1024


def make_solver(checkpoint_every: int, nsteps: int = 24):
    """A climate-style solver: halo exchanges + periodic strided dumps."""

    def solver(ctx):
        np_ = ctx.size
        etype = Basic(8)  # doubles
        slab = 4 * MB  # bytes per rank per dump
        slab_e = slab // 8
        ndumps = nsteps // checkpoint_every
        fh = ctx.file_open("history.nc")
        filetype = Vector(count=max(1, ndumps), blocklen=slab_e,
                          stride=np_ * slab_e, base=etype)
        fh.set_view(disp=ctx.rank * slab, etype=etype, filetype=filetype)
        dump = 0
        for step in range(1, nsteps + 1):
            ctx.compute(0.05)
            for _ in range(6):  # halo exchange sweeps
                ctx.allreduce(1.0)
            if step % checkpoint_every == 0:
                fh.write_at_all(dump * slab_e, slab)
                dump += 1
        fh.close()
        ctx.barrier()

    return solver


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="iomodels-"))
    print(f"model store: {workdir}\n")

    candidates = {"configuration-C (NFS)": configuration_c,
                  "Finisterrae (Lustre)": finisterrae}

    for every in (2, 6):
        app = make_solver(checkpoint_every=every)
        name = f"solver-ckpt{every}"
        # Characterize once, on a neutral platform...
        model, _ = characterize_app(app, nprocs=16, app_name=name)
        path = workdir / f"{name}.model.json"
        model.save(path)
        # ... and later, load the model alone on the target side.
        shipped = IOModel.load(path)

        print(phases_table(shipped,
                           title=f"checkpoint every {every} steps "
                                 f"({shipped.nphases} phases, "
                                 f"{shipped.total_weight // MB} MB)"))
        for cname, factory in candidates.items():
            report = estimate_on(shipped, factory, config_name=cname)
            print(f"  estimated I/O time on {cname}: "
                  f"{report.total_time_ch:.2f} s")
        print()

    print("The model file is all a target site needs: the application, "
          "its inputs and its runtime never leave the home system.")


if __name__ == "__main__":
    main()

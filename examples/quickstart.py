"""Quickstart: model a parallel application's I/O and pick a subsystem.

The methodology in five steps:

1. write (or wrap) the application against the simulated MPI API;
2. trace it once, off-line, with the PAS2P-style tracer;
3. extract the I/O abstract model (metadata + I/O phases);
4. replay each phase with IOR on candidate I/O configurations (eqs. 1-2);
5. pick the configuration with the least estimated I/O time.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.clusters import configuration_a, configuration_b
from repro.core.estimate import select_configuration
from repro.core.pipeline import characterize_app, estimate_on
from repro.report.tables import phases_table

MB = 1024 * 1024


# -- 1. the application ------------------------------------------------------
# A small SPMD program: every rank computes, exchanges halos, and
# checkpoints its slice of a shared file every "iteration".

def my_app(ctx):
    fh = ctx.file_open("checkpoint.dat")
    slice_bytes = 16 * MB
    for step in range(8):
        ctx.compute(0.2)  # busy-work
        ctx.allreduce(1.0)  # convergence check
        if step % 2 == 1:  # checkpoint every 2nd step
            fh.write_at_all(ctx.rank * slice_bytes, slice_bytes)
    # final verification read
    fh.read_at_all(ctx.rank * slice_bytes, slice_bytes)
    fh.close()
    ctx.barrier()


def main() -> None:
    # -- 2 & 3. trace once, extract the model (system-independent) ---------
    model, bundle = characterize_app(my_app, nprocs=8, app_name="my_app")
    print(model.describe())
    print()
    print(phases_table(model))
    print()

    # -- 4. estimate the I/O time on two candidate subsystems ---------------
    candidates = {
        "configuration-A (NFS + RAID5)": configuration_a,
        "configuration-B (PVFS2 + JBOD)": configuration_b,
    }
    for name, factory in candidates.items():
        report = estimate_on(model, factory, config_name=name)
        print(f"{name}: estimated I/O time {report.total_time_ch:.2f} s")
        for ph in report.phases:
            print(f"   phase {ph.phase_id}: BW_CH={ph.bw_ch_mb_s:.1f} MB/s "
                  f"-> {ph.time_ch:.2f} s")

    # -- 5. select -----------------------------------------------------------
    choice = select_configuration(model.phases, candidates)
    print(f"\nselected: {choice.best}")


if __name__ == "__main__":
    main()

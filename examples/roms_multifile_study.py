"""Multi-file HDF5 application modeling (the paper's future work).

ROMS' upwelling case writes a sequence of HDF5 history files plus a
restart file.  The paper observes that the phase model applies *per
file*; this example extracts the per-file models, shows that all
history files share one model, and estimates where the history stream
is better placed -- NFS (configuration C) or Lustre (Finisterrae).

Run:  python examples/roms_multifile_study.py
"""

from __future__ import annotations

from repro.apps.roms import ROMSParams, roms_program
from repro.clusters import configuration_c, finisterrae
from repro.core.estimate import estimate_model
from repro.core.pipeline import characterize_app
from repro.report.tables import phases_table

MB = 1024 * 1024


def main() -> None:
    params = ROMSParams(nx=256, ny=128, nz=24, nsteps=24, history_every=8)
    model, _ = characterize_app(roms_program, 16, params,
                                app_name="roms-upwelling")

    print(f"ROMS upwelling opened {len(model.file_groups)} files: "
          f"{', '.join(model.file_groups)}\n")

    # Per-file models (the paper: "our model is applicable to each file").
    first_his = model.phases_for("his_0001.nc")
    print(phases_table(
        type(model)(app_name="his_0001.nc", np=model.np,
                    metadata=model.metadata, phases=first_his),
        title="I/O phases of one history file"))
    print()

    shapes = {}
    for group in model.file_groups:
        shapes[group] = [(ph.op_label, ph.rep, ph.request_size)
                        for ph in model.phases_for(group)]
    his_groups = [g for g in model.file_groups if g.startswith("his_")]
    identical = all(shapes[g] == shapes[his_groups[0]] for g in his_groups)
    print(f"history files share one model: {identical}")
    print(f"restart file differs: {shapes['rst.nc'] != shapes[his_groups[0]]}\n")

    # Estimate the whole output stream per configuration.
    for name, factory in [("configuration-C (NFS)", configuration_c),
                          ("Finisterrae (Lustre)", finisterrae)]:
        report = estimate_model(model.phases, factory, config_name=name)
        print(f"estimated history+restart I/O time on {name}: "
              f"{report.total_time_ch:.2f} s")


if __name__ == "__main__":
    main()

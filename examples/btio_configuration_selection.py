"""The paper's BT-IO study (section IV-B, Tables XI-XIV, Figs. 9-10).

Characterizes NAS BT-IO FULL, prints the Table XI phase description,
estimates the I/O time on configuration C and Finisterrae (Table XII),
selects the faster subsystem, and validates the estimate against a
measured run (Tables XIII/XIV).

Run:  python examples/btio_configuration_selection.py [--cls C] [--np 16]

Class D with 64+ processes reproduces the paper's exact setting but
takes a few minutes of simulation; the default (class C, 16 procs) runs
in seconds with the same structure.
"""

from __future__ import annotations

import argparse

from repro.apps.btio import BTIOParams, btio_program
from repro.clusters import configuration_c, finisterrae
from repro.core.estimate import select_configuration
from repro.core.pipeline import characterize_app, estimate_on, evaluate, measure_on
from repro.report.tables import (
    btio_phase_groups,
    error_table,
    phases_table,
    time_estimation_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cls", default="C", choices="ABCD")
    parser.add_argument("--np", type=int, default=16)
    args = parser.parse_args()

    params = BTIOParams(cls=args.cls)
    factories = {"conf. C": configuration_c, "Finisterrae": finisterrae}

    # Table XI / Figs. 9-10: the model.
    model, _ = characterize_app(btio_program, args.np, params,
                                app_name=f"BT-IO class {args.cls}")
    table = phases_table(model, title=f"Table XI: BT-IO class {args.cls}, "
                                      f"{args.np} procs")
    lines = table.splitlines()
    print("\n".join(lines[:7] + ["  ..."] + lines[-1:]))
    print()

    # Table XII: estimated times per configuration.
    ndumps = params.ndumps
    estimates = {name: estimate_on(model, factory, config_name=name)
                 for name, factory in factories.items()}
    grouped = {}
    for name, est in estimates.items():
        writes = sum(p.time_ch for p in est.phases if p.op_label == "W")
        read = next(p.time_ch for p in est.phases if p.op_label == "R")
        grouped[name] = {f"Phase 1-{ndumps}": writes,
                         f"Phase {ndumps + 1}": read}
    print(time_estimation_table(grouped, title="Table XII: Time_io(CH)"))

    choice = select_configuration(model.phases, factories)
    print(f"\nselected configuration: {choice.best} "
          f"({', '.join(f'{n}={t:.1f}s' for n, t in choice.ranking())})")
    print()

    # Tables XIII/XIV: validate on both systems.
    groups = btio_phase_groups(ndumps)
    for name, factory in factories.items():
        measure, mmodel = measure_on(btio_program, args.np, params,
                                     cluster_factory=factory,
                                     app_name=f"BT-IO class {args.cls}")
        ev = evaluate(mmodel, estimates[name], measure)
        print(error_table(ev, groups,
                          title=f"Estimation error on {name} ({args.np}p)"))
        print()


if __name__ == "__main__":
    main()

"""The paper's MADbench2 study (section IV-A, Tables VIII-X, Figs. 7-8).

Extracts the I/O model of MADbench2 (16 procs, 8KPIX, shared file),
evaluates how much of configurations A and B the application uses
(eq. 5), and renders the device-level activity series of Fig. 8.

Run:  python examples/madbench2_usage_study.py [--outdir artifacts]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.clusters import configuration_a, configuration_b
from repro.core.pipeline import (
    characterize_app,
    characterize_peaks_for,
    estimate_on,
    evaluate,
    measure_on,
)
from repro.report.figures import device_series_ascii, save_figure_artifacts
from repro.report.tables import phases_table, usage_table
from repro.simmpi.engine import Engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default=None,
                        help="directory for CSV artifacts (optional)")
    args = parser.parse_args()

    params = MADbench2Params()  # 8KPIX, 8 bins -> 32 MB rs on 16 procs

    # Table VIII / Fig. 7: the model.
    model, bundle = characterize_app(madbench2_program, 16, params,
                                     app_name="MADbench2")
    print(phases_table(model, title="Table VIII: I/O phases of MADbench2"))
    print()

    # Tables IX/X: usage on configurations A and B.
    for name, factory in [("configuration A", configuration_a),
                          ("configuration B", configuration_b)]:
        est = estimate_on(model, factory, config_name=name)
        measure, mmodel = measure_on(madbench2_program, 16, params,
                                     cluster_factory=factory,
                                     app_name="MADbench2")
        peaks = characterize_peaks_for(factory)
        ev = evaluate(mmodel, est, measure, peaks=peaks)
        print(usage_table(ev, title=f"System utilization on {name} "
                                    f"(BW_PK: W={peaks['write']:.0f} "
                                    f"R={peaks['read']:.0f} MB/s)"))
        print()

    # Fig. 8: run on configuration B with the device monitor attached.
    cluster = configuration_b()
    engine = Engine(16, platform=cluster)
    engine.run(madbench2_program, params)
    print("Fig. 8: device activity on configuration B (iostat-style)")
    for dev in cluster.monitor.devices():
        print(device_series_ascii(cluster.monitor, dev, bucket=2.0, width=70))

    if args.outdir:
        written = save_figure_artifacts(Path(args.outdir), "madbench2",
                                        bundle=bundle, model=model,
                                        monitor=cluster.monitor)
        print("\nartifacts:")
        for path in written:
            print(f"  {path}")


if __name__ == "__main__":
    main()

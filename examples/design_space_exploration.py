"""Design-space exploration: the paper's motivating questions, answered.

Section I asks: "When is it convenient to use a parallel or distributed
file system?  When is it convenient to use RAID or single disks?  When
is it convenient to use local storage or remote storage?"  With an
application's I/O model in hand, the estimator answers by sweeping
candidate configurations -- here a grid of {NFS, PVFS2} x {JBOD, RAID5,
RAID10, SSD} x {1 GbE, 10 GbE} evaluated for MADbench2's model.

Run:  python examples/design_space_exploration.py [--np 16]
"""

from __future__ import annotations

import argparse

from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.core.estimate import estimate_model
from repro.core.pipeline import characterize_app
from repro.iosim import (
    EXT4,
    GIGABIT_ETHERNET,
    JBOD,
    NFS,
    PVFS2,
    RAID5,
    RAID10,
    SSD_SPEC,
    Cluster,
    ComputeNode,
    Disk,
    DiskSpec,
    IONode,
    LinkSpec,
    LocalFS,
)
from repro.report.tables import render

TEN_GBE = LinkSpec(bw_mb_s=1100.0, latency_s=20e-6, name="10GbE")
HDD = DiskSpec(seq_write_bw=100.0, seq_read_bw=110.0)


def make_volume(kind: str, prefix: str):
    if kind == "jbod":
        return JBOD(f"{prefix}-jbod", [Disk(f"{prefix}-d0", HDD)])
    if kind == "raid5":
        return RAID5(f"{prefix}-r5", [Disk(f"{prefix}-d{i}", HDD)
                                      for i in range(5)])
    if kind == "raid10":
        return RAID10(f"{prefix}-r10", [Disk(f"{prefix}-d{i}", HDD)
                                        for i in range(4)])
    if kind == "ssd":
        return JBOD(f"{prefix}-ssd", [Disk(f"{prefix}-s0", SSD_SPEC)])
    raise ValueError(kind)


def make_config(fs_kind: str, volume_kind: str, link: LinkSpec,
                n_compute: int = 8):
    def factory() -> Cluster:
        nodes = [ComputeNode.make(f"cn{i}", link) for i in range(n_compute)]
        if fs_kind == "nfs":
            fs = LocalFS("fs", make_volume(volume_kind, "srv"), EXT4,
                         cache_mb=512.0)
            globalfs = NFS(IONode.make("srv", fs, link), read_rpc_ms=0.3)
        else:  # pvfs2 over 3 data servers
            ions = []
            for i in range(3):
                fs = LocalFS(f"fs{i}", make_volume(volume_kind, f"ion{i}"),
                             EXT4, cache_mb=256.0)
                ions.append(IONode.make(f"ion{i}", fs, link))
            globalfs = PVFS2(ions, per_stripe_overhead_ms=0.1)
        return Cluster(f"{fs_kind}/{volume_kind}/{link.name}", nodes,
                       globalfs, link)

    return factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--np", type=int, default=16)
    args = parser.parse_args()

    model, _ = characterize_app(madbench2_program, args.np,
                                MADbench2Params(), app_name="MADbench2")
    print(f"exploring the design space for {model.app_name} "
          f"({model.total_weight >> 30} GB of I/O)\n")

    rows = []
    results = {}
    for fs_kind in ("nfs", "pvfs2"):
        for volume_kind in ("jbod", "raid5", "raid10", "ssd"):
            for link in (GIGABIT_ETHERNET, TEN_GBE):
                factory = make_config(fs_kind, volume_kind, link)
                est = estimate_model(model.phases, factory,
                                     config_name="candidate")
                key = (fs_kind, volume_kind, link.name)
                results[key] = est.total_time_ch
                rows.append([fs_kind, volume_kind, link.name,
                             f"{est.total_time_ch:.1f}"])

    rows.sort(key=lambda r: float(r[3]))
    print(render(["global FS", "volume", "network", "est. I/O time (s)"],
                 rows, title="Estimated MADbench2 I/O time per design point"))

    best = rows[0]
    print(f"\nbest design point: {best[0]} over {best[1]} on {best[2]} "
          f"({best[3]} s)")
    print("\nobservations:")
    gbe_bound = results[("nfs", "ssd", "1GbE")] / results[("nfs", "jbod", "1GbE")]
    print(f" - on 1 GbE, upgrading the NFS volume barely helps "
          f"(SSD/JBOD time ratio {gbe_bound:.2f}): the link is the bottleneck;")
    par = results[("pvfs2", "jbod", "10GbE")] / results[("nfs", "jbod", "10GbE")]
    print(f" - on 10 GbE the parallel filesystem pays off "
          f"(PVFS2/NFS time ratio {par:.2f} on the same disks).")


if __name__ == "__main__":
    main()

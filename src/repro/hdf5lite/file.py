"""HDF5-like file objects on the simulated MPI-IO layer.

Layout (a simplification of the HDF5 format, faithful in its I/O
*behaviour*, which is all the phase model consumes):

* byte 0: a fixed-size superblock, written collectively at create;
* each ``create_dataset`` appends an object header (small metadata
  write by rank 0 under the collective open) and reserves the dataset's
  contiguous extent;
* ``Dataset.write_slab`` / ``read_slab`` are collective operations on
  each rank's hyperslab of the dataset (rank-contiguous decomposition);
* ``attrs[...] = value`` appends a small attribute write.

All sizes are in bytes; element size is carried per dataset so slabs
stay whole-element (MPI etype semantics).

Like the MPI layer itself, every operation is implemented once as a
generator core (``_g_*``).  :class:`H5File`/:class:`Dataset` are the
blocking shells for thread-scheduled rank programs;
:class:`CoroH5File`/:class:`CoroDataset` alias the cores directly for
coroutine-scheduled programs (``f = yield from CoroH5File.open(...)``,
``yield from ds.write_slab()``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.context import RankContext
from repro.simmpi.errors import MPIFileError, MPIUsageError

SUPERBLOCK_BYTES = 96
OBJECT_HEADER_BYTES = 256
ATTRIBUTE_BYTES = 64


@dataclass
class Dataset:
    """A named, contiguous dataset inside an :class:`H5File`."""

    name: str
    offset: int  # absolute byte offset of the data
    nbytes: int
    element_size: int
    file: "H5File"

    def slab(self, rank: int, nranks: int) -> tuple[int, int]:
        """This rank's contiguous hyperslab: (byte offset, byte length)."""
        elements = self.nbytes // self.element_size
        base, rem = divmod(elements, nranks)
        start_el = rank * base + min(rank, rem)
        count_el = base + (1 if rank < rem else 0)
        return (self.offset + start_el * self.element_size,
                count_el * self.element_size)

    # -- generator cores -------------------------------------------------------
    def _g_write_slab(self):
        self.file._check_open()
        ctx = self.file._ctx
        off, ln = self.slab(ctx.rank, ctx.size)
        if ln > 0:
            yield from self.file._fh._g_write_at_all(off, ln)

    def _g_read_slab(self):
        self.file._check_open()
        ctx = self.file._ctx
        off, ln = self.slab(ctx.rank, ctx.size)
        if ln > 0:
            yield from self.file._fh._g_read_at_all(off, ln)

    # -- blocking shells -------------------------------------------------------
    def write_slab(self) -> None:
        """Collective write of the calling rank's hyperslab."""
        self.file._ctx._drive(self._g_write_slab())

    def read_slab(self) -> None:
        """Collective read of the calling rank's hyperslab."""
        self.file._ctx._drive(self._g_read_slab())


class CoroDataset(Dataset):
    """Dataset for coroutine rank programs: slab ops are generators."""

    write_slab = Dataset._g_write_slab
    read_slab = Dataset._g_read_slab


class _Attributes:
    """Small named metadata values; each assignment is one tiny write."""

    def __init__(self, h5file: "H5File"):
        self._file = h5file
        self._names: dict[str, int] = {}

    def _g_set(self, name: str, value: object):
        self._file._check_open()
        if name not in self._names:
            self._names[name] = self._file._allocate(ATTRIBUTE_BYTES)
        # Attribute writes are rank-0 metadata updates (HDF5 collective
        # metadata semantics: one writer, others observe the handle).
        if self._file._ctx.rank == 0:
            yield from self._file._fh._g_write_at(self._names[name],
                                                  ATTRIBUTE_BYTES)

    #: Coroutine programs assign via ``yield from f.attrs.set(k, v)``.
    set = _g_set

    def __setitem__(self, name: str, value: object) -> None:
        self._file._ctx._drive(self._g_set(name, value))

    def __contains__(self, name: str) -> bool:
        return name in self._names


class H5File:
    """A parallel 'HDF5' file opened collectively by all ranks.

    Usage::

        with H5File(ctx, "his_0001.nc") as f:
            zeta = f.create_dataset("zeta", nbytes=grid2d, element_size=8)
            zeta.write_slab()
    """

    _ds_class: type = Dataset

    def __init__(self, ctx: RankContext, name: str, mode: str = "w"):
        self._setup(ctx, name, mode)
        ctx._drive(self._g_open_io())

    def _setup(self, ctx, name: str, mode: str) -> None:
        self._ctx = ctx
        self.name = name
        self.mode = mode
        self._fh = None
        self._next_free = SUPERBLOCK_BYTES
        self._datasets: dict[str, Dataset] = {}
        self._closed = False
        self.attrs = _Attributes(self)

    def _g_open_io(self):
        self._fh = yield from self._ctx._g_file_open(self.name, mode="rw")
        if "w" in self.mode and self._ctx.rank == 0:
            # The superblock: one small metadata write at create time.
            yield from self._fh._g_write_at(0, SUPERBLOCK_BYTES)

    # -- generator cores -------------------------------------------------------
    def _g_create_dataset(self, name: str, nbytes: int, element_size: int = 8):
        self._check_open()
        if name in self._datasets:
            raise MPIUsageError(f"dataset {name!r} already exists in {self.name}")
        if nbytes <= 0 or element_size <= 0 or nbytes % element_size:
            raise MPIUsageError(
                f"dataset {name!r}: {nbytes} bytes is not a positive whole "
                f"number of {element_size}-byte elements")
        header_at = self._allocate(OBJECT_HEADER_BYTES)
        data_at = self._allocate(nbytes)
        if self._ctx.rank == 0:
            yield from self._fh._g_write_at(header_at, OBJECT_HEADER_BYTES)
        ds = self._ds_class(name=name, offset=data_at, nbytes=nbytes,
                            element_size=element_size, file=self)
        self._datasets[name] = ds
        return ds

    def _g_close(self):
        if not self._closed:
            self._closed = True
            yield from self._fh._g_close()
            yield from self._ctx._g_barrier()

    # -- blocking shells -------------------------------------------------------
    def create_dataset(self, name: str, nbytes: int,
                       element_size: int = 8) -> Dataset:
        """Declare a dataset; reserves its extent, writes its header."""
        return self._ctx._drive(self._g_create_dataset(name, nbytes,
                                                       element_size))

    def close(self) -> None:
        self._ctx._drive(self._g_close())

    def __enter__(self) -> "H5File":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- shared ----------------------------------------------------------------
    def __getitem__(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise KeyError(f"no dataset {name!r} in {self.name}") from None

    @property
    def datasets(self) -> list[str]:
        return list(self._datasets)

    def _check_open(self) -> None:
        if self._closed:
            raise MPIFileError(f"H5File {self.name!r} is closed")

    def _allocate(self, nbytes: int) -> int:
        at = self._next_free
        self._next_free += nbytes
        return at


class CoroH5File(H5File):
    """H5File for coroutine rank programs.

    Opened via the generator classmethod (``__init__`` would have to
    block on the collective open)::

        f = yield from CoroH5File.open(ctx, "his_0001.nc")
        ds = yield from f.create_dataset("zeta", nbytes=grid2d)
        yield from ds.write_slab()
        yield from f.close()
    """

    _ds_class = CoroDataset

    def __init__(self, ctx, name: str, mode: str = "w"):
        self._setup(ctx, name, mode)

    @classmethod
    def open(cls, ctx, name: str, mode: str = "w"):
        f = cls(ctx, name, mode)
        yield from f._g_open_io()
        return f

    create_dataset = H5File._g_create_dataset
    close = H5File._g_close

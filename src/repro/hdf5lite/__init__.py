"""A minimal parallel-HDF5-like library over the simulated MPI-IO.

The paper's future work: "We are analyzing upwelling of [the] ROMS
framework that use[s] HDF5 parallel [for] writing operations ... This
application open[s] different files [at] executing time and we can
observe that our model is applicable to each file".

``hdf5lite`` provides just enough of HDF5's parallel write path to
exercise that scenario on the substrate: a file format with a
superblock, named datasets with object headers, collective hyperslab
writes, and small attribute writes -- each mapping onto MPI-IO
operations that the tracer sees and the phase model captures per file.
"""

from .file import CoroDataset, CoroH5File, Dataset, H5File

__all__ = ["CoroDataset", "CoroH5File", "Dataset", "H5File"]

"""Disk-backed, content-addressed result store.

Layout (sharded per-entry files, so concurrent ``sweep_map`` workers
never contend on one database file)::

    <root>/
      <cache>/                 ior / iozone / replay / characterize / trace
        <dd>/                  first two hex digits of the key digest
          <digest>.json        envelope: schema, cache, digest, payload
          <digest>.bin         sidecar for payloads > INLINE_LIMIT bytes

Every write is an atomic write-temp-then-rename (:mod:`repro.ioutil`)
under a collision-proof temp name (``O_EXCL``, pid+thread+serial), so
a reader -- including a worker in another process or a sibling service
worker thread -- sees either the complete entry or nothing; two
writers racing on the same digest settle last-writer-wins with a
complete entry either way (stress-tested by
``tests/store/test_concurrent_writers.py``).  A killed writer leaves
at worst an orphaned ``*.tmp*`` file.  The sidecar (when present) is
written *before* the envelope that references it, so an envelope on
disk always points at a complete payload.

Values are pickled (results are plain dataclasses of floats, ints and
``Fraction`` coefficients; the round-trip is bit-exact).  Entries whose
embedded ``schema`` does not match :data:`~repro.store.keys.SCHEMA_VERSION`
are evicted on read -- the invalidation rule is "bump the version,
old entries self-destruct lazily".  Only open cache directories you
trust: unpickling executes the payload's reduction callables.
"""

from __future__ import annotations

import base64
import json
import pickle
from pathlib import Path

from repro import obs
from repro.ioutil import atomic_write_bytes, atomic_write_text

from .keys import SCHEMA_VERSION, UnencodableKey, key_digest

#: Payloads up to this many (pickle) bytes are inlined into the JSON
#: envelope (base64); larger ones go to a raw ``.bin`` sidecar so warm
#: reads of big values (characterized models) skip the base64+JSON tax.
INLINE_LIMIT = 32 * 1024

_MISS = (False, None)


class ResultStore:
    """One cache directory; safe for concurrent multi-process use."""

    #: True when ``root`` is a real directory another process could
    #: attach (sweep workers forward it); CaptureStore sets it False.
    persistent = True

    def __init__(self, root: str | Path, schema: int = SCHEMA_VERSION):
        self.root = Path(root)
        self.schema = schema

    # -- paths -----------------------------------------------------------------
    def _entry_path(self, cache: str, digest: str) -> Path:
        return self.root / cache / digest[:2] / f"{digest}.json"

    def digest(self, cache: str, key) -> str | None:
        """Content address of (cache, key), or None if the key opts out."""
        try:
            return key_digest(cache, key, schema=self.schema)
        except UnencodableKey:
            return None

    # -- read / write ----------------------------------------------------------
    def get(self, cache: str, key) -> tuple[bool, object]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        digest = self.digest(cache, key)
        if digest is None:
            return _MISS
        path = self._entry_path(cache, digest)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            if obs.ACTIVE:
                obs.inc("store_misses_total", cache=cache)
            return _MISS
        if envelope.get("schema") != self.schema:
            self._evict(cache, path)
            return _MISS
        try:
            if "payload" in envelope:
                blob = base64.b64decode(envelope["payload"])
            else:
                blob = (path.parent / envelope["payload_file"]).read_bytes()
            value = pickle.loads(blob)
        except Exception:
            # Torn sidecar, stale class layout, ... -- treat as absent.
            self._evict(cache, path)
            return _MISS
        if obs.ACTIVE:
            obs.inc("store_hits_total", cache=cache)
        return True, value

    def put(self, cache: str, key, value) -> bool:
        """Persist one result; False when key or value opt out."""
        digest = self.digest(cache, key)
        if digest is None:
            return False
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        return self.put_encoded(cache, digest, blob)

    def put_encoded(self, cache: str, digest: str, blob: bytes) -> bool:
        """Persist an already-pickled payload under its precomputed digest.

        This is the write-back path for cluster workers: the worker
        pickles once, ships ``(cache, digest, blob)`` over the wire, and
        the master lands it here without re-deriving the key.
        """
        path = self._entry_path(cache, digest)
        envelope = {"schema": self.schema, "cache": cache, "key": digest}
        if len(blob) <= INLINE_LIMIT:
            envelope["payload"] = base64.b64encode(blob).decode("ascii")
        else:
            sidecar = path.with_suffix(".bin")
            atomic_write_bytes(sidecar, blob)
            envelope["payload_file"] = sidecar.name
        atomic_write_text(path, json.dumps(envelope))
        if obs.ACTIVE:
            obs.inc("store_writes_total", cache=cache)
        return True

    def _evict(self, cache: str, path: Path) -> None:
        for p in (path.with_suffix(".bin"), path):
            try:
                p.unlink()
            except OSError:
                pass
        if obs.ACTIVE:
            obs.inc("store_evictions_total", cache=cache)

    # -- maintenance -----------------------------------------------------------
    def caches(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-cache ``{"entries": N, "bytes": M}`` from a directory walk."""
        out: dict[str, dict[str, int]] = {}
        for cache in self.caches():
            entries = nbytes = 0
            for p in (self.root / cache).glob("*/*"):
                if p.suffix == ".json":
                    entries += 1
                nbytes += p.stat().st_size
            out[cache] = {"entries": entries, "bytes": nbytes}
        return out

    def clear(self, cache: str | None = None) -> int:
        """Delete every entry (of one cache, or all); returns the count."""
        removed = 0
        targets = [cache] if cache is not None else self.caches()
        for name in targets:
            base = self.root / name
            if not base.is_dir():
                continue
            for p in sorted(base.glob("*/*")):
                if p.suffix == ".json":
                    removed += 1
                try:
                    p.unlink()
                except OSError:
                    pass
            for shard in sorted(base.iterdir()):
                try:
                    shard.rmdir()
                except OSError:
                    pass
            try:
                base.rmdir()
            except OSError:
                pass
        return removed

"""In-memory capture store for store-less cluster workers.

A worker without filesystem access to the master's cache directory
still wants warm starts to work: it attaches a :class:`CaptureStore`,
which satisfies the same interface as the disk-backed
:class:`~repro.store.disk.ResultStore` but keeps entries in a dict and
records every write as an encoded ``(cache, digest, blob)`` triple.
After each job the worker drains the pending triples into the RESULT
frame; the master lands them in its own store via
:meth:`~repro.store.disk.ResultStore.put_encoded`, so the next study
(or the next job on any worker in shared mode) hits warm.

Entries served back out of the dict make repeated sub-computations
inside one job free, mirroring the memory->disk fall-through of
``SimCache`` without touching a filesystem.
"""

from __future__ import annotations

import pickle

from .disk import _MISS, ResultStore
from .keys import SCHEMA_VERSION

__all__ = ["CaptureStore"]


class CaptureStore(ResultStore):
    """ResultStore twin that captures writes instead of persisting them."""

    persistent = False

    def __init__(self, schema: int = SCHEMA_VERSION):
        super().__init__(root="<capture>", schema=schema)
        self._entries: dict[tuple[str, str], bytes] = {}
        self._pending: list[tuple[str, str, bytes]] = []

    # -- read / write ----------------------------------------------------------
    def get(self, cache: str, key) -> tuple[bool, object]:
        digest = self.digest(cache, key)
        if digest is None:
            return _MISS
        blob = self._entries.get((cache, digest))
        if blob is None:
            return _MISS
        try:
            return True, pickle.loads(blob)
        except Exception:
            return _MISS

    def put(self, cache: str, key, value) -> bool:
        digest = self.digest(cache, key)
        if digest is None:
            return False
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        return self.put_encoded(cache, digest, blob)

    def put_encoded(self, cache: str, digest: str, blob: bytes) -> bool:
        self._entries[(cache, digest)] = blob
        self._pending.append((cache, digest, blob))
        return True

    def drain(self) -> list[tuple[str, str, bytes]]:
        """Return and clear the writes captured since the last drain."""
        out, self._pending = self._pending, []
        return out

    # -- maintenance -----------------------------------------------------------
    def caches(self) -> list[str]:
        return sorted({cache for cache, _ in self._entries})

    def stats(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for (cache, _), blob in self._entries.items():
            agg = out.setdefault(cache, {"entries": 0, "bytes": 0})
            agg["entries"] += 1
            agg["bytes"] += len(blob)
        return out

    def clear(self, cache: str | None = None) -> int:
        keys = [k for k in self._entries if cache is None or k[0] == cache]
        for k in keys:
            del self._entries[k]
        self._pending = [e for e in self._pending
                         if cache is not None and e[0] != cache]
        return len(keys)

"""Deterministic key encoding for the persistent result store.

The in-process memo registry (:mod:`repro.core.cache`) keys entries by
structural value: tuples of primitives, frozen dataclasses
(``IORParams``, ``PhaseOp``), ``Fraction`` coefficients, cluster
fingerprints.  Python's ``hash()`` of those keys is salted per process
(``PYTHONHASHSEED``), so a disk store needs its own canonical byte
encoding whose digest is bit-identical in every interpreter that ever
opens the cache directory.

:func:`canonical_bytes` is that encoding: a tagged, length-prefixed,
recursive serialization with a defined order for unordered containers.
Anything it cannot encode deterministically (open files, ad-hoc test
doubles, lambdas) raises :class:`UnencodableKey` -- callers treat that
as "this entry opts out of persistence", never as an error.

Functions encode as ``(module, qualname, code digest)``: the digest
covers the bytecode, constants and names recursively, so editing an
application program invalidates every trace/model entry keyed by it
without a manual cache clear.
"""

from __future__ import annotations

import dataclasses
import hashlib
from fractions import Fraction

#: Bump when the *meaning* of stored values changes (new fields with
#: different semantics, changed units, ...).  Every entry embeds the
#: schema version it was written under; a mismatch on read evicts the
#: entry instead of deserializing it.
SCHEMA_VERSION = 1


class UnencodableKey(TypeError):
    """A key contains a value with no deterministic byte encoding."""


def _code_digest(fn) -> bytes:
    """Digest of a function's code object, nested code included."""
    h = hashlib.sha256()

    def feed(code) -> None:
        h.update(code.co_code)
        h.update(repr(code.co_names).encode())
        h.update(repr(code.co_varnames).encode())
        h.update(str(code.co_argcount).encode())
        for const in code.co_consts:
            if hasattr(const, "co_code"):  # nested function/comprehension
                feed(const)
            else:
                h.update(repr(const).encode())

    feed(fn.__code__)
    return h.hexdigest().encode()


def canonical_bytes(obj) -> bytes:
    """Deterministic, process-independent byte encoding of a key."""
    out: list[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def _encode(obj, out: list[bytes]) -> None:
    if obj is None:
        out.append(b"N;")
    elif obj is True:
        out.append(b"T;")
    elif obj is False:
        out.append(b"F;")
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        # repr round-trips doubles exactly and is stable across platforms
        out.append(b"f" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"s%d:" % len(raw))
        out.append(raw)
    elif isinstance(obj, bytes):
        out.append(b"b%d:" % len(obj))
        out.append(obj)
    elif isinstance(obj, Fraction):
        out.append(b"R%d/%d;" % (obj.numerator, obj.denominator))
    elif isinstance(obj, tuple):
        out.append(b"(")
        for item in obj:
            _encode(item, out)
        out.append(b")")
    elif isinstance(obj, list):
        out.append(b"[")
        for item in obj:
            _encode(item, out)
        out.append(b"]")
    elif isinstance(obj, dict):
        # order-independent: entries sorted by their encoded keys
        items = sorted((canonical_bytes(k), v) for k, v in obj.items())
        out.append(b"{")
        for kb, v in items:
            out.append(kb)
            _encode(v, out)
        out.append(b"}")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"<")
        for kb in sorted(canonical_bytes(x) for x in obj):
            out.append(kb)
        out.append(b">")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(b"D")
        _encode(f"{cls.__module__}.{cls.__qualname__}", out)
        out.append(b"(")
        for f in dataclasses.fields(obj):
            _encode(f.name, out)
            _encode(getattr(obj, f.name), out)
        out.append(b")")
    elif callable(obj) and hasattr(obj, "__code__"):
        out.append(b"C")
        _encode(getattr(obj, "__module__", "") or "", out)
        _encode(getattr(obj, "__qualname__", obj.__name__), out)
        out.append(_code_digest(obj))
        out.append(b";")
    else:
        raise UnencodableKey(
            f"no canonical encoding for {type(obj).__qualname__}")


def key_digest(cache_name: str, key, schema: int = SCHEMA_VERSION) -> str:
    """Content address of one (cache, key) pair: a hex sha256.

    The digest covers the schema version, so a bumped schema addresses a
    disjoint key space even before the per-entry eviction check runs.
    """
    h = hashlib.sha256()
    h.update(b"repro-store:%d\x00" % schema)
    h.update(cache_name.encode("utf-8"))
    h.update(b"\x00")
    h.update(canonical_bytes(key))
    return h.hexdigest()

"""repro.store -- persistent, content-addressed simulation results.

The in-process memo registry (:mod:`repro.core.cache`) makes repeated
work inside one process free; this package makes it free *across*
processes and process exits.  When a store is attached, every named
``SimCache`` transparently falls through to it on an in-memory miss and
writes through to it on insert, so IOR/IOzone/replay/characterization
results warm-start the next run -- the second ``full_study`` of the
same application reads everything from disk.

Attachment is process-global and explicit::

    from repro import store

    store.attach(".repro-cache")     # or: export REPRO_CACHE_DIR=...
    ...                              # run studies; results persist
    store.detach()                   # back to in-memory-only

The ``REPRO_CACHE_DIR`` environment variable attaches lazily on first
use, which is how forked/spawned ``sweep_map`` workers (and the CI
warm-cache job) share one store without plumbing.  Writes are atomic
(write-temp-then-rename), so concurrent workers race benignly: last
writer wins with a complete entry, readers never see a torn one.

Keys are the memo registry's structural keys run through the canonical
encoder of :mod:`repro.store.keys`; invalidation is by schema version
(:data:`~repro.store.keys.SCHEMA_VERSION`) -- see docs/performance.md.
"""

from __future__ import annotations

import os
from pathlib import Path

from .disk import ResultStore
from .keys import SCHEMA_VERSION, UnencodableKey, canonical_bytes, key_digest
from .memory import CaptureStore

__all__ = [
    "ResultStore", "CaptureStore", "SCHEMA_VERSION", "UnencodableKey",
    "canonical_bytes", "key_digest",
    "ENV_VAR", "DEFAULT_DIRNAME", "attach", "detach", "active",
    "default_root",
]

ENV_VAR = "REPRO_CACHE_DIR"
DEFAULT_DIRNAME = ".repro-cache"

_active: ResultStore | None = None
#: True after an explicit detach(): suppresses the env-var fallback so
#: "turn the store off" sticks even with REPRO_CACHE_DIR exported.
_detached: bool = False


def default_root() -> Path:
    """Where the store lives absent configuration: ``./.repro-cache``."""
    return Path(os.environ.get(ENV_VAR) or DEFAULT_DIRNAME)


def attach(root: str | Path | ResultStore | None = None) -> ResultStore:
    """Attach (or re-attach) the process-wide store; returns it.

    Accepts a directory path (the usual disk-backed store) or an
    already-constructed :class:`ResultStore` instance -- cluster workers
    in write-back mode attach a :class:`~repro.store.memory.CaptureStore`
    this way.
    """
    global _active, _detached
    if isinstance(root, ResultStore):
        _active = root
    else:
        _active = ResultStore(Path(root) if root is not None else default_root())
    _detached = False
    return _active


def detach() -> None:
    """Drop the store: caches revert to in-memory-only behaviour."""
    global _active, _detached
    _active = None
    _detached = True


def active() -> ResultStore | None:
    """The attached store, if any; lazily honors ``REPRO_CACHE_DIR``."""
    if _active is not None:
        return _active
    if _detached:
        return None
    root = os.environ.get(ENV_VAR)
    if root:
        return attach(root)
    return None

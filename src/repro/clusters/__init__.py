"""The paper's four I/O configurations (Tables VI/VII).

Factories return *fresh* clusters (no shared queue state), so they plug
directly into the estimators' ``cluster_factory`` arguments.
"""

from .aohyper import configuration_a, configuration_b
from .confc import configuration_c
from .finisterrae import finisterrae

#: Name -> factory, for selection studies and the CLI.
ALL_CONFIGURATIONS = {
    "configuration-A": configuration_a,
    "configuration-B": configuration_b,
    "configuration-C": configuration_c,
    "finisterrae": finisterrae,
}

__all__ = [
    "ALL_CONFIGURATIONS",
    "configuration_a",
    "configuration_b",
    "configuration_c",
    "finisterrae",
]

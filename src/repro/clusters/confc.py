"""Configuration C (paper Table VII, left column).

32 IBM x3550 nodes (2x dual-core Xeon 5160, 12 GB RAM, dual GbE) with
NFS v3 over one NAS server exporting /home from an ext4 filesystem on a
RAID 5 of 5 hot-swap SAS disks (1.8 TB), OpenMPI.

Calibration target (Tables XII/XIII, BT-IO class D): collective writes
sustain ~110-120 MB/s (the GbE ceiling, async export), while the
synchronous read RPCs hold reads near ~45-50 MB/s -- the paper's
phase-51 time being ~2.5x the write phases' total.
"""

from __future__ import annotations

from repro.iosim import (
    EXT4,
    GIGABIT_ETHERNET,
    NFS,
    RAID5,
    Cluster,
    ClusterDescription,
    ComputeNode,
    Disk,
    DiskSpec,
    IONode,
    LinkSpec,
    LocalFS,
)

N_COMPUTE_NODES = 32

#: SAS disks of the /home RAID 5.
CONF_C_DISK = DiskSpec(seq_write_bw=110.0, seq_read_bw=95.0, seek_ms=5.5,
                       rotational_ms=3.0, capacity_gb=450.0)


def configuration_c() -> Cluster:
    """Configuration C: NFS over a SAS RAID 5, 32 x3550 nodes (Table VII)."""
    disks = [Disk(f"sas{i}", CONF_C_DISK) for i in range(5)]
    volume = RAID5("home-raid5", disks, stripe_kb=256)
    fs = LocalFS("/home", volume, EXT4, cache_mb=2048.0)
    server_link = LinkSpec(bw_mb_s=112.0, latency_s=60e-6, name="1GbE-home",
                           load_amplitude=0.05, load_period_s=1700.0)
    server = IONode.make("nfs-home", fs, server_link, ram_gb=4.0)
    globalfs = NFS(server, read_chunk_kb=64, read_rpc_ms=0.75)
    nodes = [ComputeNode.make(f"x3550-{i}", GIGABIT_ETHERNET, ram_gb=12.0, cores=4)
             for i in range(N_COMPUTE_NODES)]
    return Cluster(
        name="configuration-C",
        compute_nodes=nodes,
        globalfs=globalfs,
        compute_net=GIGABIT_ETHERNET,
        description=ClusterDescription(
            name="Configuration C",
            io_library="OpenMPI",
            comm_network="1 Gbps Ethernet",
            storage_network="1 Gbps Ethernet",
            global_filesystem="NFS Ver 3",
            io_nodes="8 DAS and 1 NAS",
            local_filesystem="Linux ext4",
            redundancy="RAID 5",
            n_devices=5,
            device_capacity="1.8 TB hot-swap SAS",
            mount_point="/home",
        ),
    )

"""Finisterrae (CESGA) -- paper Table VII, right column.

143 HP Integrity nodes (Itanium Montvale, 128 GB RAM) on 20 Gb/s
InfiniBand, with Lustre (HP SFS): 18 OSS, 2 MDS with 72 SFS20 cabins,
866 disks in RAID 5, mounted at $HOMESFS.

Calibration target (Tables XII/XIV, BT-IO class D, 64 procs): a shared
file striped over a few OSTs sustains ~150 MB/s for collective strided
writes and ~160 MB/s for reads -- far below the fabric's capacity (lock
ping-pong and stripe-level RPCs on HP SFS's Lustre 1.x), but ~3.4x
faster than configuration C on the read phase, which is what makes the
methodology pick Finisterrae.
"""

from __future__ import annotations

from repro.iosim import (
    EXT3,
    INFINIBAND_20G,
    Cluster,
    ClusterDescription,
    ComputeNode,
    Disk,
    DiskSpec,
    IONode,
    LinkSpec,
    LocalFS,
    Lustre,
    RAID5,
)

N_COMPUTE_NODES = 142

#: SFS20 cabin disks (250 GB SATA behind the Smart Array controllers).
SFS20_DISK = DiskSpec(seq_write_bw=62.0, seq_read_bw=66.0, seek_ms=8.0,
                      rotational_ms=4.2, capacity_gb=250.0)

#: OSS service rate: the IB wire does 20 Gb/s, but HP SFS (Lustre 1.x)
#: on the Itanium OSS serves a *contended shared file* far below that --
#: lock ping-pong and per-RPC processing bound one OST's service near
#: 75 MB/s for 64-client collective strided traffic.
OSS_LINK = LinkSpec(bw_mb_s=75.0, latency_s=10e-6, name="IB-20G-OSS-SFS",
                    load_amplitude=0.06, load_period_s=1450.0)

#: Disks per OSS volume: 866 disks / 18 OSS / ~9 RAID sets -> model one
#: representative RAID 5 volume of 5 disks per OSS.
DISKS_PER_OSS = 5


def finisterrae(stripe_count: int = 2) -> Cluster:
    """Finisterrae: Lustre (HP SFS) over 18 OSS on InfiniBand (Table VII)."""
    osses = []
    for i in range(18):
        disks = [Disk(f"oss{i}-d{j}", SFS20_DISK) for j in range(DISKS_PER_OSS)]
        volume = RAID5(f"oss{i}-raid5", disks, stripe_kb=64)
        fs = LocalFS(f"ost{i}", volume, EXT3, cache_mb=1024.0)
        osses.append(IONode.make(f"oss{i}", fs, OSS_LINK, ram_gb=8.0))
    globalfs = Lustre(osses, stripe_mb=1.0, stripe_count=stripe_count,
                      per_stripe_overhead_ms=0.4, interleave_seek_factor=0.02)
    nodes = [ComputeNode.make(f"rx7640-{i}", INFINIBAND_20G, ram_gb=128.0, cores=16)
             for i in range(N_COMPUTE_NODES)]
    return Cluster(
        name="finisterrae",
        compute_nodes=nodes,
        globalfs=globalfs,
        compute_net=INFINIBAND_20G,
        description=ClusterDescription(
            name="Finisterrae",
            io_library="mpich2, HDF5",
            comm_network="1 Infiniband 20 Gbps",
            storage_network="1 Infiniband 20 Gbps",
            global_filesystem="Lustre (HP SFS)",
            io_nodes="18 OSS",
            local_filesystem="Linux ext3",
            redundancy="RAID 5",
            n_devices=866,
            device_capacity="866*250GB",
            mount_point="$HOMESFS",
        ),
    )

"""The Aohyper cluster's two I/O configurations (paper Table VI).

Aohyper: 8 compute nodes (AMD Athlon64 X2, 2 GB RAM, 1 GbE).

* **Configuration A**: NFS v3 over one NAS server; local ext4 on RAID 5
  (5 disks, 256 KB stripe, 917 GB); 1 GbE communication and storage
  network.  Device peak (Table IX): ~400 MB/s write / ~350 MB/s read;
  through NFS the application sees ~60-95 MB/s (one GbE link).
* **Configuration B**: PVFS2 2.8.2 over 3 NASD I/O nodes (Pentium 4,
  1 GB RAM, one 80 GB disk each, JBOD, ext3).  Device peak per eq. (4):
  the sum of the three disks' maxima (~240 MB/s); PVFS2's per-stripe
  processing on the P4 servers and the interleaving of 16 clients'
  stripes keep the measured bandwidth near 30 % of that -- with the
  disks busy ~100 % of the phase time (Fig. 8's story).

Disk/FS parameters are calibrated so the *shape* of Tables IX/X holds;
see DESIGN.md for the calibration notes.
"""

from __future__ import annotations

from repro.iosim import (
    EXT3,
    EXT4,
    GIGABIT_ETHERNET,
    JBOD,
    NFS,
    PVFS2,
    RAID5,
    Cluster,
    ClusterDescription,
    ComputeNode,
    Disk,
    DiskSpec,
    IONode,
    LinkSpec,
    LocalFS,
)

N_COMPUTE_NODES = 8

#: SATA disks of the NAS server's RAID 5 (conf A): calibrated so the
#: 4-data-disk array peaks near the paper's 400 (write) / 350 (read) MB/s.
CONF_A_DISK = DiskSpec(seq_write_bw=105.0, seq_read_bw=87.5, capacity_gb=229.25)

#: The P4 I/O nodes' 80 GB disks (conf B): ~80 MB/s streaming.
CONF_B_DISK = DiskSpec(seq_write_bw=80.0, seq_read_bw=85.0, capacity_gb=80.0)

#: Effective NIC rate of the Pentium-4 PVFS2 servers (TCP on a P4 tops
#: out well below wire speed).
CONF_B_ION_LINK = LinkSpec(bw_mb_s=70.0, latency_s=80e-6, name="1GbE-P4",
                           load_amplitude=0.07, load_period_s=263.0)

#: Effective rate of the NAS head serving NFS (conf A): userspace nfsd +
#: TCP on the Athlon head stays below the 1 GbE wire rate.
CONF_A_NAS_LINK = LinkSpec(bw_mb_s=96.0, latency_s=70e-6, name="1GbE-NAS",
                           load_amplitude=0.06, load_period_s=311.0)


def _compute_nodes() -> list[ComputeNode]:
    return [ComputeNode.make(f"aohyper{i}", GIGABIT_ETHERNET, ram_gb=2.0, cores=2)
            for i in range(N_COMPUTE_NODES)]


def configuration_a() -> Cluster:
    """Aohyper configuration A: NFS + RAID 5 (Table VI, left column)."""
    disks = [Disk(f"sd{chr(ord('a') + i)}", CONF_A_DISK) for i in range(5)]
    volume = RAID5("raid5", disks, stripe_kb=256)
    fs = LocalFS("/raid/raid5", volume, EXT4, cache_mb=700.0)
    server = IONode.make("nas0", fs, CONF_A_NAS_LINK, ram_gb=1.0)
    globalfs = NFS(server, read_chunk_kb=128, read_rpc_ms=0.35)
    return Cluster(
        name="configuration-A",
        compute_nodes=_compute_nodes(),
        globalfs=globalfs,
        compute_net=GIGABIT_ETHERNET,
        description=ClusterDescription(
            name="Configuration A",
            io_library="mpich2",
            comm_network="1 Gb Ethernet",
            storage_network="1 Gb Ethernet",
            global_filesystem="NFS Ver 3",
            io_nodes="8 DAS and 1 NAS",
            local_filesystem="Linux ext4",
            redundancy="RAID 5, Stripe 256KB",
            n_devices=5,
            device_capacity="917GB",
            mount_point="/raid/raid5",
        ),
    )


def configuration_b() -> Cluster:
    """Aohyper configuration B: PVFS2 + JBOD (Table VI, right column)."""
    ions = []
    for i in range(3):
        disk = Disk(f"pvfs-d{i}", CONF_B_DISK)
        volume = JBOD(f"jbod{i}", [disk])
        fs = LocalFS(f"/mnt/pvfs2-{i}", volume, EXT3, cache_mb=180.0)
        ions.append(IONode.make(f"nasd{i}", fs, CONF_B_ION_LINK, ram_gb=1.0))
    globalfs = PVFS2(ions, stripe_kb=64, per_stripe_overhead_ms=0.5,
                     interleave_seek_factor=0.13)
    return Cluster(
        name="configuration-B",
        compute_nodes=_compute_nodes(),
        globalfs=globalfs,
        compute_net=GIGABIT_ETHERNET,
        description=ClusterDescription(
            name="Configuration B",
            io_library="mpich2, HDF5",
            comm_network="1 Gb Ethernet",
            storage_network="1 Gb Ethernet",
            global_filesystem="PVFS2 2.8.2",
            io_nodes="8 DAS and 3 NASD",
            local_filesystem="Linux ext3",
            redundancy="JBOD",
            n_devices=3,
            device_capacity="130GB",
            mount_point="/mnt/pvfs2",
        ),
    )

"""Global (cluster-wide) filesystem models: NFS, PVFS2, Lustre.

Each model services an access -- a list of absolute ``(offset, length)``
runs issued by one client node -- and returns its completion time.  The
data path is pipelined across three stages, every one an FCFS resource:

    client NIC  ->  server NIC(s)  ->  server local FS  ->  volume/disks

* **NFS**: one server; every byte of every client funnels through the
  server's NIC and filesystem, which caps aggregate bandwidth near one
  link (the behaviour of configurations A and C).
* **PVFS2**: round-robin striping over N I/O nodes.  Each ION stores its
  stripes contiguously in a local bfile, so the per-ION media access is
  sequential; aggregate bandwidth scales with N (configuration B).
* **Lustre**: like PVFS2 but a file uses ``stripe_count`` OSTs chosen
  from the OSS pool by file id, plus a metadata-server charge per
  operation (Finisterrae).

``peak_bw`` implements eqs. (3) and (4): the device-level maximum of a
single I/O node for NFS, the sum over I/O nodes for parallel
filesystems ("the ideal case, where I/O devices work in parallel
without influence of other components").
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import MB
from .nodes import ComputeNode, IONode

Run = tuple[int, int]


@dataclass
class Access:
    """One client-side I/O access presented to a global filesystem."""

    start: float
    client: ComputeNode
    runs: list[Run]
    kind: str  # "write" | "read"
    file_id: int = 0

    @property
    def nbytes(self) -> int:
        return sum(length for _, length in self.runs)


def stripe_shares(offset: int, length: int, stripe_bytes: int, n: int) -> list[int]:
    """Exact bytes each of ``n`` striped servers receives from one run.

    Round-robin striping: stripe ``k`` (covering bytes
    ``[k*stripe, (k+1)*stripe)``) lives on server ``k % n``.
    Computed in O(n) regardless of run length.
    """
    if offset < 0:
        raise ValueError(f"negative offset {offset} in stripe_shares")
    if length <= 0:
        return [0] * n
    shares = [0] * n
    first = offset // stripe_bytes
    last = (offset + length - 1) // stripe_bytes
    nstripes = last - first + 1
    if nstripes == 1:
        shares[first % n] += length
        return shares
    # Head and tail partial stripes.
    head = (first + 1) * stripe_bytes - offset
    tail = (offset + length) - last * stripe_bytes
    shares[first % n] += head
    shares[last % n] += tail
    # Full stripes in between: indices first+1 .. last-1.
    nfull = nstripes - 2
    if nfull > 0:
        base, rem = divmod(nfull, n)
        for s in range(n):
            shares[s] += base * stripe_bytes
        # The first `rem` servers in rotation starting at (first+1) % n.
        for k in range(rem):
            shares[(first + 1 + k) % n] += stripe_bytes
    return shares


class GlobalFS:
    """Interface all global filesystem models implement."""

    name: str = "globalfs"
    ions: list[IONode]

    def service(self, access: Access) -> float:
        """Service an access; returns its completion time (virtual s)."""
        raise NotImplementedError

    def peak_bw(self, kind: str) -> float:
        """Peak device-level bandwidth, eqs. (3)/(4), in MB/s."""
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """Model parameters + I/O node identities (instance names excluded)."""
        raise NotImplementedError

    def reset(self) -> None:
        for ion in self.ions:
            ion.reset()

    def attach_monitor(self, monitor) -> None:
        for ion in self.ions:
            ion.fs.volume.attach_monitor(monitor)


class NFS(GlobalFS):
    """NFS v3: one server, async export.

    Writes ride the async export (server page cache acks them); reads
    are synchronous RPCs of ``read_chunk_kb`` each, so every chunk pays
    ``read_rpc_ms`` of server-side round-trip -- the classic NFS read
    penalty that makes reads notably slower than writes on 1 GbE
    (Tables IX and XII-XIII show exactly this asymmetry).
    """

    name = "nfs"

    def __init__(self, server: IONode, rpc_overhead_ms: float = 0.2,
                 read_chunk_kb: int = 128, read_rpc_ms: float = 0.0):
        self.server = server
        self.ions = [server]
        self.rpc_overhead_ms = rpc_overhead_ms
        self.read_chunk_kb = read_chunk_kb
        self.read_rpc_ms = read_rpc_ms

    def service(self, access: Access) -> float:
        total = access.nbytes
        lat = access.client.nic.spec.latency_s
        c_begin, c_end = access.client.nic.send(access.start, total)
        extra = 0.0
        if access.kind == "read" and self.read_rpc_ms > 0:
            nchunks = -(-total // (self.read_chunk_kb * 1024))
            extra = nchunks * self.read_rpc_ms / 1e3
        s_cost = self.server.nic.cost(total, at=c_begin) + extra
        s_begin, s_end = self.server.nic.acquire(c_begin + lat, s_cost)
        # Reads are synchronous RPCs: the per-chunk round trips serialize
        # with the media access instead of overlapping it.
        t = s_begin + self.rpc_overhead_ms / 1e3 + extra
        for off, ln in access.runs:
            t = self.server.fs.transfer(t, off, ln, access.kind,
                                        locator=access.file_id)
        return max(c_end, s_end, t)

    def peak_bw(self, kind: str) -> float:
        # eq. (3): a single I/O node's device-level maximum.
        return self.server.peak_bw(kind)

    def fingerprint(self) -> tuple:
        return ("NFS", self.rpc_overhead_ms, self.read_chunk_kb,
                self.read_rpc_ms, self.server.fingerprint())


class PVFS2(GlobalFS):
    """PVFS2: round-robin striping across N data servers."""

    name = "pvfs2"

    def __init__(self, ions: list[IONode], stripe_kb: int = 64,
                 meta_overhead_ms: float = 0.3,
                 per_stripe_overhead_ms: float = 0.0,
                 interleave_seek_factor: float = 0.0):
        if not ions:
            raise ValueError("PVFS2 needs at least one I/O node")
        self.ions = ions
        self.stripe_bytes = stripe_kb * 1024
        self.meta_overhead_ms = meta_overhead_ms
        # Per-stripe server processing (request decode, bstream lookup).
        self.per_stripe_overhead_ms = per_stripe_overhead_ms
        # Fraction of a request's stripes that land non-contiguously on
        # the platter when many clients interleave (extra seeks).
        self.interleave_seek_factor = interleave_seek_factor

    def service(self, access: Access) -> float:
        n = len(self.ions)
        total = access.nbytes
        lat = access.client.nic.spec.latency_s
        c_begin, c_end = access.client.nic.send(access.start, total)
        t0 = c_begin + lat + self.meta_overhead_ms / 1e3
        shares = [0] * n
        for off, ln in access.runs:
            for s, b in enumerate(stripe_shares(off, ln, self.stripe_bytes, n)):
                shares[s] += b
        end = c_end
        for s, nbytes in enumerate(shares):
            if nbytes <= 0:
                continue
            ion = self.ions[s]
            nstripes = max(1, -(-nbytes // self.stripe_bytes))
            s_cost = ion.nic.cost(nbytes, at=t0) + nstripes * self.per_stripe_overhead_ms / 1e3
            s_begin, s_end = ion.nic.acquire(t0, s_cost)
            # Per-ION stripes are mostly contiguous in the local bfile,
            # but concurrent clients interleave a fraction of them.
            local_off = access.runs[0][0] // n
            fragments = max(1, int(nstripes * self.interleave_seek_factor))
            fs_end = ion.fs.transfer(s_begin, local_off, nbytes, access.kind,
                                     locator=access.file_id, fragments=fragments)
            end = max(end, s_end, fs_end)
        return end

    def peak_bw(self, kind: str) -> float:
        # eq. (4): ideal sum over the I/O nodes.
        return sum(ion.peak_bw(kind) for ion in self.ions)

    def fingerprint(self) -> tuple:
        return ("PVFS2", self.stripe_bytes, self.meta_overhead_ms,
                self.per_stripe_overhead_ms, self.interleave_seek_factor,
                tuple(ion.fingerprint() for ion in self.ions))


class Lustre(GlobalFS):
    """Lustre: per-file subset of OSTs plus a metadata server charge."""

    name = "lustre"

    def __init__(self, osses: list[IONode], stripe_mb: float = 1.0,
                 stripe_count: int = 4, mds_overhead_ms: float = 0.15,
                 per_stripe_overhead_ms: float = 0.0,
                 interleave_seek_factor: float = 0.0):
        if not osses:
            raise ValueError("Lustre needs at least one OSS")
        self.ions = osses
        self.stripe_bytes = int(stripe_mb * MB)
        self.stripe_count = min(stripe_count, len(osses))
        self.mds_overhead_ms = mds_overhead_ms
        self.per_stripe_overhead_ms = per_stripe_overhead_ms
        self.interleave_seek_factor = interleave_seek_factor

    def _osts_for(self, file_id: int) -> list[IONode]:
        n = len(self.ions)
        return [self.ions[(file_id + k) % n] for k in range(self.stripe_count)]

    def service(self, access: Access) -> float:
        osts = self._osts_for(access.file_id)
        n = len(osts)
        total = access.nbytes
        lat = access.client.nic.spec.latency_s
        c_begin, c_end = access.client.nic.send(access.start, total)
        t0 = c_begin + lat + self.mds_overhead_ms / 1e3
        shares = [0] * n
        for off, ln in access.runs:
            for s, b in enumerate(stripe_shares(off, ln, self.stripe_bytes, n)):
                shares[s] += b
        end = c_end
        for s, nbytes in enumerate(shares):
            if nbytes <= 0:
                continue
            ost = osts[s]
            nstripes = max(1, -(-nbytes // self.stripe_bytes))
            s_cost = ost.nic.cost(nbytes, at=t0) + nstripes * self.per_stripe_overhead_ms / 1e3
            s_begin, s_end = ost.nic.acquire(t0, s_cost)
            local_off = access.runs[0][0] // n
            fragments = max(1, int(nstripes * self.interleave_seek_factor))
            fs_end = ost.fs.transfer(s_begin, local_off, nbytes, access.kind,
                                     locator=access.file_id, fragments=fragments)
            end = max(end, s_end, fs_end)
        return end

    def peak_bw(self, kind: str) -> float:
        # eq. (4) over all OSSes (system-wide capacity).
        return sum(ion.peak_bw(kind) for ion in self.ions)

    def fingerprint(self) -> tuple:
        return ("Lustre", self.stripe_bytes, self.stripe_count,
                self.mds_overhead_ms, self.per_stripe_overhead_ms,
                self.interleave_seek_factor,
                tuple(ion.fingerprint() for ion in self.ions))

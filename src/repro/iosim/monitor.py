"""iostat-style device monitoring.

The paper monitors I/O devices with ``iostat -x -p 1`` on every I/O node
(Fig. 8: sectors/s written and %busy over wall time, phase-aligned with
the application's I/O phases).  :class:`DeviceMonitor` collects one
sample per device transfer in *virtual* time and aggregates them into
per-second buckets, exactly what the figure plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple

from repro import obs

from .device import SECTOR_BYTES


class TransferSample(NamedTuple):
    # A NamedTuple, not a frozen dataclass: one sample is built per
    # simulated device transfer, squarely on the simulator's hot path.
    device: str
    begin: float
    end: float
    nbytes: int
    kind: str  # "write" | "read"


@dataclass
class BucketRow:
    """One row of the iostat-like report: a 1-second (by default) bucket."""

    time: float
    sectors_written_per_s: float = 0.0
    sectors_read_per_s: float = 0.0
    busy_fraction: float = 0.0

    @property
    def wsec_per_s(self) -> float:  # iostat column name alias
        return self.sectors_written_per_s

    @property
    def rsec_per_s(self) -> float:
        return self.sectors_read_per_s


@dataclass
class DeviceMonitor:
    """Collects per-device transfer samples and renders iostat-like series."""

    samples: list[TransferSample] = field(default_factory=list)

    def record(self, device: str, begin: float, end: float, nbytes: int, kind: str) -> None:
        self.samples.append(TransferSample(device, begin, end, nbytes, kind))
        # The monitor doubles as the device-level feed of the metrics
        # registry: consumers read device totals from ``repro.obs``
        # counters instead of poking at the private sample list.
        if obs.ACTIVE:
            obs.observe_device_transfer(device, begin, end, nbytes, kind)

    def devices(self) -> list[str]:
        return sorted({s.device for s in self.samples})

    def series(self, device: str, bucket: float = 1.0) -> list[BucketRow]:
        """Per-bucket sectors/s and busy fraction for one device.

        A transfer spanning several buckets contributes proportionally to
        each (its bytes and busy time are spread uniformly over its
        duration), matching how iostat attributes activity to intervals.

        Implemented as a single sweep over sample boundaries: each
        transfer becomes a pair of rate-change events (+rate at begin,
        -rate at end) and one pass integrates the piecewise-constant
        rates across bucket edges -- O((S + B) log S) instead of the
        naive O(S x spanned buckets) per-sample inner loop.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        dev_samples = [s for s in self.samples if s.device == device]
        if not dev_samples:
            return []
        horizon = max(s.end for s in dev_samples)
        nbuckets = max(1, math.ceil(horizon / bucket))
        rows = [BucketRow(time=i * bucket) for i in range(nbuckets)]
        # Rate-change events: (time, d_write_rate, d_read_rate, d_busy).
        boundaries: list[tuple[float, float, float, float]] = []
        for s in dev_samples:
            dur = s.end - s.begin
            if dur <= 0:
                continue  # instantaneous transfer: no interval to spread
            rate = s.nbytes / dur  # bytes/s, uniform over the transfer
            w, r = (rate, 0.0) if s.kind == "write" else (0.0, rate)
            boundaries.append((s.begin, w, r, 1.0))
            boundaries.append((s.end, -w, -r, -1.0))
        boundaries.sort(key=lambda e: e[0])
        wrate = rrate = brate = 0.0
        idx, nevents = 0, len(boundaries)
        t = 0.0
        for i, row in enumerate(rows):
            b_end = (i + 1) * bucket
            wbytes = rbytes = busy = 0.0
            t = max(t, i * bucket)
            while True:
                t_next = boundaries[idx][0] if idx < nevents else b_end
                seg_end = min(t_next, b_end)
                if seg_end > t:
                    dt = seg_end - t
                    wbytes += wrate * dt
                    rbytes += rrate * dt
                    busy += brate * dt
                    t = seg_end
                if idx < nevents and boundaries[idx][0] <= b_end:
                    _, dw, dr, db = boundaries[idx]
                    wrate += dw
                    rrate += dr
                    brate += db
                    idx += 1
                else:
                    break
            row.sectors_written_per_s = wbytes / SECTOR_BYTES / bucket
            row.sectors_read_per_s = rbytes / SECTOR_BYTES / bucket
            row.busy_fraction = min(1.0, busy / bucket)
        return rows

    def total_bytes(self, device: str | None = None, kind: str | None = None) -> int:
        return sum(
            s.nbytes
            for s in self.samples
            if (device is None or s.device == device)
            and (kind is None or s.kind == kind)
        )

    def clear(self) -> None:
        self.samples.clear()

"""iostat-style device monitoring.

The paper monitors I/O devices with ``iostat -x -p 1`` on every I/O node
(Fig. 8: sectors/s written and %busy over wall time, phase-aligned with
the application's I/O phases).  :class:`DeviceMonitor` collects one
sample per device transfer in *virtual* time and aggregates them into
per-second buckets, exactly what the figure plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .device import SECTOR_BYTES


@dataclass(frozen=True)
class TransferSample:
    device: str
    begin: float
    end: float
    nbytes: int
    kind: str  # "write" | "read"


@dataclass
class BucketRow:
    """One row of the iostat-like report: a 1-second (by default) bucket."""

    time: float
    sectors_written_per_s: float = 0.0
    sectors_read_per_s: float = 0.0
    busy_fraction: float = 0.0

    @property
    def wsec_per_s(self) -> float:  # iostat column name alias
        return self.sectors_written_per_s

    @property
    def rsec_per_s(self) -> float:
        return self.sectors_read_per_s


@dataclass
class DeviceMonitor:
    """Collects per-device transfer samples and renders iostat-like series."""

    samples: list[TransferSample] = field(default_factory=list)

    def record(self, device: str, begin: float, end: float, nbytes: int, kind: str) -> None:
        self.samples.append(TransferSample(device, begin, end, nbytes, kind))

    def devices(self) -> list[str]:
        return sorted({s.device for s in self.samples})

    def series(self, device: str, bucket: float = 1.0) -> list[BucketRow]:
        """Per-bucket sectors/s and busy fraction for one device.

        A transfer spanning several buckets contributes proportionally to
        each (its bytes and busy time are spread uniformly over its
        duration), matching how iostat attributes activity to intervals.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        dev_samples = [s for s in self.samples if s.device == device]
        if not dev_samples:
            return []
        horizon = max(s.end for s in dev_samples)
        nbuckets = max(1, math.ceil(horizon / bucket))
        rows = [BucketRow(time=i * bucket) for i in range(nbuckets)]
        for s in dev_samples:
            dur = max(s.end - s.begin, 1e-12)
            first = int(s.begin // bucket)
            last = min(int(s.end // bucket), nbuckets - 1)
            for i in range(first, last + 1):
                lo = max(s.begin, i * bucket)
                hi = min(s.end, (i + 1) * bucket)
                if hi <= lo:
                    continue
                frac = (hi - lo) / dur
                sectors = s.nbytes * frac / SECTOR_BYTES
                if s.kind == "write":
                    rows[i].sectors_written_per_s += sectors / bucket
                else:
                    rows[i].sectors_read_per_s += sectors / bucket
                rows[i].busy_fraction += (hi - lo) / bucket
        for r in rows:
            r.busy_fraction = min(1.0, r.busy_fraction)
        return rows

    def total_bytes(self, device: str | None = None, kind: str | None = None) -> int:
        return sum(
            s.nbytes
            for s in self.samples
            if (device is None or s.device == device)
            and (kind is None or s.kind == kind)
        )

    def clear(self) -> None:
        self.samples.clear()

"""The cluster: compute nodes + global filesystem as an engine Platform.

A :class:`Cluster` is one "I/O configuration" in the paper's sense
(Tables VI/VII): it binds compute nodes, networks, I/O nodes and a
global filesystem, implements the engine's :class:`~repro.simmpi.engine.
Platform` protocol, and carries the device monitor for iostat-style
observation (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.simmpi.engine import IORequest

from .collective import two_phase_io
from .globalfs import Access, GlobalFS
from .monitor import DeviceMonitor
from .network import LinkSpec, collective_comm_time
from .nodes import ComputeNode


@dataclass
class ClusterDescription:
    """Static inventory for the Tables VI/VII rows."""

    name: str
    io_library: str
    comm_network: str
    storage_network: str
    global_filesystem: str
    io_nodes: str
    local_filesystem: str
    redundancy: str
    n_devices: int
    device_capacity: str
    mount_point: str


class Cluster:
    """One I/O configuration; also the Platform the engine charges against."""

    def __init__(
        self,
        name: str,
        compute_nodes: list[ComputeNode],
        globalfs: GlobalFS,
        compute_net: LinkSpec,
        description: ClusterDescription | None = None,
        cb_nodes: int | None = None,
    ):
        if not compute_nodes:
            raise ValueError("a cluster needs at least one compute node")
        self.name = name
        self.compute_nodes = compute_nodes
        self.globalfs = globalfs
        self.compute_net = compute_net
        self.description = description
        self.cb_nodes = cb_nodes
        self.monitor = DeviceMonitor()
        globalfs.attach_monitor(self.monitor)

    # -- Platform protocol ------------------------------------------------------
    def node_of_rank(self, rank: int, nranks: int) -> int:
        """Round-robin rank placement over compute nodes."""
        return rank % len(self.compute_nodes)

    def service_io(self, req: IORequest) -> float:
        """One independent I/O operation; returns its duration."""
        client = self.compute_nodes[req.node % len(self.compute_nodes)]
        access = Access(start=req.start, client=client, runs=list(req.runs),
                        kind=req.kind, file_id=req.file_id)
        end = self.globalfs.service(access)
        if obs.ACTIVE:
            obs.inc("globalfs_accesses_total", config=self.name,
                    fs=self.globalfs.name, kind=req.kind)
        return max(0.0, end - req.start)

    def service_collective_io(self, reqs: Sequence[IORequest], start: float) -> dict[int, float]:
        """A collective I/O operation via two-phase I/O; same end for all."""
        clients = [self.compute_nodes[r.node % len(self.compute_nodes)] for r in reqs]
        end = two_phase_io(reqs, start, self.globalfs, clients,
                           self.compute_net, cb_nodes=self.cb_nodes)
        dur = max(0.0, end - start)
        if obs.ACTIVE:
            obs.inc("globalfs_accesses_total", amount=len(reqs),
                    config=self.name, fs=self.globalfs.name,
                    kind=reqs[0].kind if reqs else "write")
        return {r.rank: dur for r in reqs}

    def comm_time(self, nbytes: int, nranks: int, pattern: str, start: float) -> float:
        return collective_comm_time(self.compute_net, nbytes, nranks, pattern)

    # -- characterization --------------------------------------------------------
    def peak_bw(self, kind: str) -> float:
        """BW_PK of this configuration (eqs. 3/4), in MB/s."""
        return self.globalfs.peak_bw(kind)

    def fingerprint(self) -> tuple:
        """Structural identity of the configuration, names excluded.

        Two clusters with equal fingerprints are indistinguishable to the
        simulator: same rank placement (compute-node fingerprints in
        order), same data path (global FS + I/O nodes), same collective
        costs (``compute_net``, ``cb_nodes``).  This is the cache key
        half that lets memoized results transfer across factories.
        """
        return ("Cluster",
                tuple(n.fingerprint() for n in self.compute_nodes),
                self.globalfs.fingerprint(),
                self.compute_net.fingerprint(),
                self.cb_nodes)

    def reset(self) -> None:
        """Clear all queues, caches and monitor samples between experiments."""
        self.globalfs.reset()
        for node in self.compute_nodes:
            node.nic.reset()
        self.monitor.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Cluster({self.name}, {len(self.compute_nodes)} compute nodes, "
                f"{self.globalfs.name} over {len(self.globalfs.ions)} I/O nodes)")

"""Block-level volumes: JBOD and RAID 0/1/5.

A :class:`Volume` turns one logical transfer into member-disk transfers
(fork/join: the volume transfer completes when the slowest member does)
and reports peak streaming bandwidth for the IOzone-style device
characterization (eq. 3).  RAID 5 models the classic behaviours:

* full-stripe writes cost ``n/(n-1)`` extra traffic for parity;
* sub-stripe writes pay read-modify-write (data+parity read, then
  written back -- 4 accesses for 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import MB, Disk


class Volume:
    """Base class: a set of disks behind one block device."""

    def __init__(self, name: str, disks: list[Disk]):
        if not disks:
            raise ValueError("a volume needs at least one disk")
        self.name = name
        self.disks = disks

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        raise NotImplementedError

    def peak_bw(self, kind: str) -> float:
        """Best-case streaming MB/s of the volume."""
        raise NotImplementedError

    @property
    def capacity_gb(self) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        for d in self.disks:
            d.reset()

    def fingerprint(self) -> tuple:
        """Level + stripe size + member-disk fingerprints (names excluded)."""
        return (type(self).__name__, getattr(self, "stripe_kb", None),
                tuple(d.fingerprint() for d in self.disks))

    def attach_monitor(self, monitor) -> None:
        for d in self.disks:
            d.monitor = monitor


class JBOD(Volume):
    """Independent disks; one logical object lives on one disk.

    ``locator`` (e.g. a file id) picks the member; capacity is the sum.
    """

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        disk = self.disks[locator % len(self.disks)]
        return disk.transfer(start, offset, nbytes, kind, fragments=fragments)

    def peak_bw(self, kind: str) -> float:
        # A single stream touches one disk at a time.
        return max(d.peak_bw(kind) for d in self.disks)

    @property
    def capacity_gb(self) -> float:
        return sum(d.spec.capacity_gb for d in self.disks)


class RAID0(Volume):
    """Striping without redundancy: bandwidth scales with member count."""

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        n = len(self.disks)
        per_disk = nbytes / n
        member_off = offset // n
        return max(d.transfer(start, member_off, int(per_disk) or 1, kind,
                              fragments=fragments)
                   for d in self.disks)

    def peak_bw(self, kind: str) -> float:
        return sum(d.peak_bw(kind) for d in self.disks)

    @property
    def capacity_gb(self) -> float:
        return sum(d.spec.capacity_gb for d in self.disks)


class RAID1(Volume):
    """Mirroring: writes hit every member, reads are load-balanced."""

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        if kind == "write":
            return max(d.transfer(start, offset, nbytes, kind, fragments=fragments)
                       for d in self.disks)
        per_disk = max(1, nbytes // len(self.disks))
        return max(d.transfer(start, offset, per_disk, kind, fragments=fragments)
                   for d in self.disks)

    def peak_bw(self, kind: str) -> float:
        if kind == "write":
            return min(d.peak_bw(kind) for d in self.disks)
        return sum(d.peak_bw(kind) for d in self.disks)

    @property
    def capacity_gb(self) -> float:
        return min(d.spec.capacity_gb for d in self.disks)


class RAID5(Volume):
    """Rotating-parity stripe over ``n >= 3`` disks."""

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        if len(disks) < 3:
            raise ValueError("RAID5 needs at least 3 disks")
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb

    @property
    def _data_disks(self) -> int:
        return len(self.disks) - 1

    @property
    def full_stripe_bytes(self) -> int:
        return self.stripe_kb * 1024 * self._data_disks

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        n = len(self.disks)
        member_off = offset // self._data_disks
        if kind == "read":
            per_disk = nbytes / self._data_disks
            return max(d.transfer(start, member_off, max(1, int(per_disk)), "read",
                                  fragments=fragments)
                       for d in self.disks[:-1])
        if nbytes >= self.full_stripe_bytes:
            # Full-stripe write: parity computed in memory, each member
            # (including the parity position) writes its share.
            per_disk = nbytes / self._data_disks
            return max(d.transfer(start, member_off, max(1, int(per_disk)), "write",
                                  fragments=fragments)
                       for d in self.disks)
        # Read-modify-write: old data + old parity read, new data + parity
        # written -- modelled as doubled traffic on two members.
        end = start
        data_disk = self.disks[locator % n]
        parity_disk = self.disks[(locator + 1) % n]
        for d in (data_disk, parity_disk):
            e1 = d.transfer(start, member_off, nbytes, "read")
            e2 = d.transfer(e1, member_off, nbytes, "write")
            end = max(end, e2)
        return end

    def peak_bw(self, kind: str) -> float:
        per = self.disks[0].peak_bw(kind)
        if kind == "read":
            return per * self._data_disks
        return per * self._data_disks  # full-stripe writes: parity is overlapped

    @property
    def capacity_gb(self) -> float:
        return self.disks[0].spec.capacity_gb * self._data_disks


class RAID6(Volume):
    """Dual rotating parity over ``n >= 4`` disks (P+Q)."""

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        if len(disks) < 4:
            raise ValueError("RAID6 needs at least 4 disks")
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb

    @property
    def _data_disks(self) -> int:
        return len(self.disks) - 2

    @property
    def full_stripe_bytes(self) -> int:
        return self.stripe_kb * 1024 * self._data_disks

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        member_off = offset // self._data_disks
        if kind == "read":
            per_disk = max(1, nbytes // self._data_disks)
            return max(d.transfer(start, member_off, per_disk, "read",
                                  fragments=fragments)
                       for d in self.disks[:-2])
        if nbytes >= self.full_stripe_bytes:
            per_disk = max(1, nbytes // self._data_disks)
            return max(d.transfer(start, member_off, per_disk, "write",
                                  fragments=fragments)
                       for d in self.disks)
        # Read-modify-write touches data + P + Q: 6 accesses for 3.
        end = start
        n = len(self.disks)
        for k in range(3):
            d = self.disks[(locator + k) % n]
            e1 = d.transfer(start, member_off, nbytes, "read")
            e2 = d.transfer(e1, member_off, nbytes, "write")
            end = max(end, e2)
        return end

    def peak_bw(self, kind: str) -> float:
        return self.disks[0].peak_bw(kind) * self._data_disks

    @property
    def capacity_gb(self) -> float:
        return self.disks[0].spec.capacity_gb * self._data_disks


class RAID10(Volume):
    """Striped mirrors over an even number of disks."""

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        if len(disks) < 4 or len(disks) % 2:
            raise ValueError("RAID10 needs an even number of disks (>= 4)")
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb

    @property
    def _pairs(self) -> int:
        return len(self.disks) // 2

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        member_off = offset // self._pairs
        if kind == "write":
            # Each pair writes its stripe share to both mirrors.
            per_pair = max(1, nbytes // self._pairs)
            return max(d.transfer(start, member_off, per_pair, "write",
                                  fragments=fragments)
                       for d in self.disks)
        # Reads spread over all spindles.
        per_disk = max(1, nbytes // len(self.disks))
        return max(d.transfer(start, member_off, per_disk, "read",
                              fragments=fragments)
                   for d in self.disks)

    def peak_bw(self, kind: str) -> float:
        per = self.disks[0].peak_bw(kind)
        if kind == "write":
            return per * self._pairs
        return per * len(self.disks)

    @property
    def capacity_gb(self) -> float:
        return sum(d.spec.capacity_gb for d in self.disks) / 2


@dataclass
class VolumeSummary:
    """What Tables VI/VII report per configuration."""

    level: str
    n_disks: int
    capacity_gb: float
    peak_write_mb_s: float
    peak_read_mb_s: float


def summarize(volume: Volume) -> VolumeSummary:
    """Digest a volume into the Tables VI/VII inventory row."""
    return VolumeSummary(
        level=type(volume).__name__,
        n_disks=len(volume.disks),
        capacity_gb=volume.capacity_gb,
        peak_write_mb_s=volume.peak_bw("write"),
        peak_read_mb_s=volume.peak_bw("read"),
    )

"""Block-level volumes: JBOD and RAID 0/1/5/6/10 -- healthy and degraded.

A :class:`Volume` turns one logical transfer into member-disk transfers
(fork/join: the volume transfer completes when the slowest member does)
and reports peak streaming bandwidth for the IOzone-style device
characterization (eq. 3).  RAID 5 models the classic behaviours:

* full-stripe writes cost ``n/(n-1)`` extra traffic for parity;
* sub-stripe writes pay read-modify-write (data+parity read, then
  written back -- 4 accesses for 2).

**Degraded modes.**  Every volume tracks a set of failed members --
either statically (:meth:`Volume.fail_disk`, the "a disk died before
the study" scenario used by ``repro.faults.degraded``) or dynamically
through an installed :class:`~repro.faults.plan.FaultPlan` (fail-stop
windows in virtual time).  The levels degrade the way real arrays do:

* **JBOD** loses the files living on the dead member outright
  (:class:`~repro.faults.plan.DataLossError` on access); survivors are
  unaffected.
* **RAID 0** loses everything: any transfer on a degraded stripe set
  raises.
* **RAID 1** runs on the surviving mirror(s): writes stop paying the
  dead member, reads lose its spindle.
* **RAID 5** tolerates one dead member.  Reads become reconstruct-reads
  touching all ``n-1`` survivors with aggregate traffic amplified by
  ``(n-1)/(n-2)``; full-stripe writes drop the dead member's share.
  :meth:`RAID5.start_rebuild` additionally charges every foreground
  member transfer ``rebuild_overhead`` extra traffic -- the rebuild
  stream competing with foreground I/O -- until
  :meth:`RAID5.finish_rebuild`.
* **RAID 6** tolerates two dead members with the same reconstruct-read
  model; **RAID 10** tolerates one dead member per mirror pair.

``peak_bw``/``capacity_gb`` reflect the *static* failed set so eqs.
(3)-(5) (BW_PK, SystemUsage) can be evaluated for degraded
configurations; time-varying plan faults only affect transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults
from repro.faults import DataLossError

from .device import MB, Disk


class Volume:
    """Base class: a set of disks behind one block device."""

    #: How many simultaneous member failures the level survives.
    fault_tolerance: int = 0

    def __init__(self, name: str, disks: list[Disk]):
        if not disks:
            raise ValueError(f"volume {name!r} needs at least one disk")
        seen_ids: set[int] = set()
        for d in disks:
            if id(d) in seen_ids:
                raise ValueError(
                    f"volume {name!r} lists the same Disk instance "
                    f"({d.name!r}) as two members; every member must be a "
                    "distinct Disk (a shared instance would serialize the "
                    "two members on one FCFS queue and double-count its "
                    "capacity)")
            seen_ids.add(id(d))
        self.name = name
        self.disks = disks
        self._failed: set[int] = set()

    # -- degraded-state management ------------------------------------------------
    @property
    def failed(self) -> frozenset[int]:
        """Statically failed member indices (see :meth:`fail_disk`)."""
        return frozenset(self._failed)

    @property
    def degraded(self) -> bool:
        return bool(self._failed)

    def fail_disk(self, index: int) -> None:
        """Mark member ``index`` as fail-stopped (static degraded mode)."""
        if not 0 <= index < len(self.disks):
            raise IndexError(
                f"volume {self.name!r} has {len(self.disks)} members; "
                f"cannot fail member {index}")
        self._failed.add(index)

    def restore_disk(self, index: int) -> None:
        """Bring a failed member back (after a rebuild completed)."""
        self._failed.discard(index)

    def _dead_at(self, t: float) -> set[int]:
        """Failed members at virtual time ``t``: static + plan-driven."""
        dead = set(self._failed)
        if faults.ACTIVE:
            dead |= faults.plan().failed_members(self.disks, t)
        return dead

    def _survivors(self) -> list[Disk]:
        """Statically alive members (for peak_bw/capacity)."""
        return [d for i, d in enumerate(self.disks) if i not in self._failed]

    def _check_tolerance(self, dead: set[int]) -> None:
        if len(dead) > self.fault_tolerance:
            names = ", ".join(self.disks[i].name for i in sorted(dead))
            raise DataLossError(
                self.name, f"{len(dead)} members failed ({names}); "
                f"{type(self).__name__} tolerates {self.fault_tolerance}")

    # -- interface ----------------------------------------------------------------
    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        raise NotImplementedError

    def peak_bw(self, kind: str) -> float:
        """Best-case streaming MB/s of the volume (degraded-aware)."""
        raise NotImplementedError

    @property
    def capacity_gb(self) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear queue state only -- degraded state is configuration and
        survives resets (a dead disk stays dead between experiments)."""
        for d in self.disks:
            d.reset()

    def fingerprint(self) -> tuple:
        """Level + stripe size + member fingerprints + degraded state.

        The failed set is part of the identity: memoized replay results
        must not transfer between a healthy and a degraded array.
        """
        return (type(self).__name__, getattr(self, "stripe_kb", None),
                tuple(sorted(self._failed)),
                getattr(self, "rebuilding", False),
                tuple(d.fingerprint() for d in self.disks))

    def attach_monitor(self, monitor) -> None:
        for d in self.disks:
            d.monitor = monitor


class JBOD(Volume):
    """Independent disks; one logical object lives on one disk.

    ``locator`` (e.g. a file id) picks the member; capacity is the sum.
    A dead member takes its files with it: accesses mapped to it raise
    :class:`DataLossError` while the other members keep serving.
    """

    fault_tolerance = 0  # per-volume; data on survivors is still served

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        i = locator % len(self.disks)
        dead = self._dead_at(start)
        if i in dead:
            raise DataLossError(
                self.name, f"file locator {locator} lived on dead member "
                f"{self.disks[i].name} (JBOD has no redundancy)")
        return self.disks[i].transfer(start, offset, nbytes, kind,
                                      fragments=fragments)

    def peak_bw(self, kind: str) -> float:
        survivors = self._survivors()
        if not survivors:
            raise DataLossError(self.name, "all members failed")
        # A single stream touches one disk at a time.
        return max(d.peak_bw(kind) for d in survivors)

    @property
    def capacity_gb(self) -> float:
        return sum(d.spec.capacity_gb for d in self._survivors())


class RAID0(Volume):
    """Striping without redundancy: bandwidth scales with member count.

    One dead member destroys the whole stripe set: every transfer on a
    degraded RAID 0 raises :class:`DataLossError`.
    """

    fault_tolerance = 0

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        self._check_tolerance(self._dead_at(start))
        n = len(self.disks)
        per_disk = nbytes / n
        member_off = offset // n
        return max(d.transfer(start, member_off, int(per_disk) or 1, kind,
                              fragments=fragments)
                   for d in self.disks)

    def peak_bw(self, kind: str) -> float:
        self._check_tolerance(self._failed)
        return sum(d.peak_bw(kind) for d in self.disks)

    @property
    def capacity_gb(self) -> float:
        return sum(d.spec.capacity_gb for d in self.disks)


class RAID1(Volume):
    """Mirroring: writes hit every member, reads are load-balanced.

    Degraded mode runs on the surviving mirror(s): writes stop paying
    the dead member, reads lose its spindle.  All mirrors dead = data
    loss.
    """

    def __init__(self, name: str, disks: list[Disk]):
        super().__init__(name, disks)
        self.fault_tolerance = len(disks) - 1

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        dead = self._dead_at(start)
        alive = [d for i, d in enumerate(self.disks) if i not in dead]
        if not alive:
            raise DataLossError(self.name, "every mirror failed")
        if kind == "write":
            return max(d.transfer(start, offset, nbytes, kind,
                                  fragments=fragments)
                       for d in alive)
        per_disk = max(1, nbytes // len(alive))
        return max(d.transfer(start, offset, per_disk, kind,
                              fragments=fragments)
                   for d in alive)

    def peak_bw(self, kind: str) -> float:
        survivors = self._survivors()
        if not survivors:
            raise DataLossError(self.name, "every mirror failed")
        if kind == "write":
            return min(d.peak_bw(kind) for d in survivors)
        return sum(d.peak_bw(kind) for d in survivors)

    @property
    def capacity_gb(self) -> float:
        survivors = self._survivors()
        if not survivors:
            return 0.0
        return min(d.spec.capacity_gb for d in survivors)


class _ParityVolume(Volume):
    """Shared degraded/rebuild machinery of RAID 5 and RAID 6."""

    #: Extra fraction of traffic each member carries while rebuilding
    #: (the rebuild stream competing with foreground I/O).
    rebuild_overhead: float = 0.25

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb
        self.rebuilding = False

    def start_rebuild(self, overhead: float | None = None) -> None:
        """Enter rebuild mode: the array reconstructs the dead member
        onto a spare, stealing ``overhead`` of every foreground
        transfer's service capacity until :meth:`finish_rebuild`."""
        if overhead is not None:
            if overhead < 0:
                raise ValueError("rebuild overhead must be >= 0")
            self.rebuild_overhead = overhead
        self.rebuilding = True

    def finish_rebuild(self, restored_member: int | None = None) -> None:
        """Leave rebuild mode; optionally restore the rebuilt member."""
        self.rebuilding = False
        if restored_member is not None:
            self.restore_disk(restored_member)

    def _inflate(self, nbytes: float) -> int:
        """Foreground bytes inflated by the competing rebuild stream."""
        if self.rebuilding:
            nbytes *= 1.0 + self.rebuild_overhead
        return max(1, int(nbytes))

    def _degraded_read(self, start: float, member_off: int, nbytes: int,
                       dead: set[int], fragments: int) -> float:
        """Reconstruct-read: every survivor serves an amplified share.

        With ``m`` survivors the dead members' data is rebuilt from all
        of them, so aggregate traffic is ``nbytes * m / (m - 1)`` spread
        evenly -- per-survivor share ``nbytes / (m - 1)``.
        """
        alive = [d for i, d in enumerate(self.disks) if i not in dead]
        share = self._inflate(nbytes / (len(alive) - 1))
        return max(d.transfer(start, member_off, share, "read",
                              fragments=fragments)
                   for d in alive)

    def _degraded_rmw(self, start: float, member_off: int, nbytes: int,
                      members: list[int], dead: set[int]) -> float:
        """Read-modify-write when a touched member is dead: reconstruct
        the missing block from every survivor, then write back to the
        surviving members of the set."""
        alive = [d for i, d in enumerate(self.disks) if i not in dead]
        rb = self._inflate(nbytes)
        read_end = max(d.transfer(start, member_off, rb, "read")
                       for d in alive)
        end = read_end
        for i in members:
            if i in dead:
                continue
            end = max(end, self.disks[i].transfer(read_end, member_off, rb,
                                                  "write"))
        return end


class RAID5(_ParityVolume):
    """Rotating-parity stripe over ``n >= 3`` disks; tolerates one dead
    member (degraded + rebuild modes, see the module docstring)."""

    fault_tolerance = 1

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        if len(disks) < 3:
            raise ValueError(
                f"RAID5 volume {name!r} needs at least 3 member disks to "
                f"hold data plus rotating parity, got {len(disks)}")
        super().__init__(name, disks, stripe_kb)

    @property
    def _data_disks(self) -> int:
        return len(self.disks) - 1

    @property
    def full_stripe_bytes(self) -> int:
        return self.stripe_kb * 1024 * self._data_disks

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        n = len(self.disks)
        member_off = offset // self._data_disks
        dead = self._dead_at(start)
        self._check_tolerance(dead)
        if kind == "read":
            if dead:
                return self._degraded_read(start, member_off, nbytes, dead,
                                           fragments)
            per_disk = nbytes / self._data_disks
            return max(d.transfer(start, member_off, max(1, int(per_disk)),
                                  "read", fragments=fragments)
                       for d in self.disks[:-1])
        if nbytes >= self.full_stripe_bytes:
            # Full-stripe write: parity computed in memory, each member
            # (including the parity position) writes its share; a dead
            # member's share is simply dropped (rebuilt later).
            per_disk = nbytes / self._data_disks
            return max(d.transfer(start, member_off,
                                  self._inflate(per_disk), "write",
                                  fragments=fragments)
                       for i, d in enumerate(self.disks) if i not in dead)
        # Read-modify-write: old data + old parity read, new data + parity
        # written -- modelled as doubled traffic on two members.
        data_i, parity_i = locator % n, (locator + 1) % n
        if dead and (data_i in dead or parity_i in dead):
            return self._degraded_rmw(start, member_off, nbytes,
                                      [data_i, parity_i], dead)
        end = start
        for i in (data_i, parity_i):
            d = self.disks[i]
            e1 = d.transfer(start, member_off, self._inflate(nbytes), "read")
            e2 = d.transfer(e1, member_off, self._inflate(nbytes), "write")
            end = max(end, e2)
        return end

    def peak_bw(self, kind: str) -> float:
        self._check_tolerance(self._failed)
        per = self.disks[0].peak_bw(kind)
        if self._failed and kind == "read":
            # Reconstruct-reads: m survivors deliver m-1 disks' worth.
            bw = per * (len(self.disks) - len(self._failed) - 1)
        else:
            bw = per * self._data_disks  # parity overlapped on writes
        if self.rebuilding:
            bw /= 1.0 + self.rebuild_overhead
        return bw

    @property
    def capacity_gb(self) -> float:
        return self.disks[0].spec.capacity_gb * self._data_disks


class RAID6(_ParityVolume):
    """Dual rotating parity over ``n >= 4`` disks (P+Q); tolerates two
    dead members."""

    fault_tolerance = 2

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        if len(disks) < 4:
            raise ValueError(
                f"RAID6 volume {name!r} needs at least 4 member disks for "
                f"data plus P+Q parity, got {len(disks)}")
        super().__init__(name, disks, stripe_kb)

    @property
    def _data_disks(self) -> int:
        return len(self.disks) - 2

    @property
    def full_stripe_bytes(self) -> int:
        return self.stripe_kb * 1024 * self._data_disks

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        member_off = offset // self._data_disks
        dead = self._dead_at(start)
        self._check_tolerance(dead)
        if kind == "read":
            if dead:
                return self._degraded_read(start, member_off, nbytes, dead,
                                           fragments)
            per_disk = max(1, nbytes // self._data_disks)
            return max(d.transfer(start, member_off, per_disk, "read",
                                  fragments=fragments)
                       for d in self.disks[:-2])
        if nbytes >= self.full_stripe_bytes:
            per_disk = max(1, nbytes // self._data_disks)
            return max(d.transfer(start, member_off,
                                  self._inflate(per_disk), "write",
                                  fragments=fragments)
                       for i, d in enumerate(self.disks) if i not in dead)
        # Read-modify-write touches data + P + Q: 6 accesses for 3.
        n = len(self.disks)
        members = [(locator + k) % n for k in range(3)]
        if dead and any(i in dead for i in members):
            return self._degraded_rmw(start, member_off, nbytes, members,
                                      dead)
        end = start
        for i in members:
            d = self.disks[i]
            e1 = d.transfer(start, member_off, self._inflate(nbytes), "read")
            e2 = d.transfer(e1, member_off, self._inflate(nbytes), "write")
            end = max(end, e2)
        return end

    def peak_bw(self, kind: str) -> float:
        self._check_tolerance(self._failed)
        per = self.disks[0].peak_bw(kind)
        if self._failed and kind == "read":
            bw = per * max(1, len(self.disks) - len(self._failed) - 1)
        else:
            bw = per * self._data_disks
        if self.rebuilding:
            bw /= 1.0 + self.rebuild_overhead
        return bw

    @property
    def capacity_gb(self) -> float:
        return self.disks[0].spec.capacity_gb * self._data_disks


class RAID10(Volume):
    """Striped mirrors over an even number of disks; tolerates one dead
    member per mirror pair (both halves of a pair dead = data loss)."""

    def __init__(self, name: str, disks: list[Disk], stripe_kb: int = 256):
        if len(disks) < 4 or len(disks) % 2:
            raise ValueError(
                f"RAID10 volume {name!r} needs an even number of member "
                f"disks (>= 4) to form mirror pairs, got {len(disks)}")
        super().__init__(name, disks)
        self.stripe_kb = stripe_kb
        self.fault_tolerance = len(disks) // 2

    @property
    def _pairs(self) -> int:
        return len(self.disks) // 2

    def _check_pairs(self, dead: set[int]) -> None:
        for p in range(self._pairs):
            a, b = 2 * p, 2 * p + 1
            if a in dead and b in dead:
                raise DataLossError(
                    self.name, f"both mirrors of pair {p} failed "
                    f"({self.disks[a].name}, {self.disks[b].name})")

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        member_off = offset // self._pairs
        dead = self._dead_at(start)
        if dead:
            self._check_pairs(dead)
        alive = [d for i, d in enumerate(self.disks) if i not in dead]
        if kind == "write":
            # Each pair writes its stripe share to its alive mirrors.
            per_pair = max(1, nbytes // self._pairs)
            return max(d.transfer(start, member_off, per_pair, "write",
                                  fragments=fragments)
                       for d in alive)
        # Reads spread over all alive spindles.
        per_disk = max(1, nbytes // len(alive))
        return max(d.transfer(start, member_off, per_disk, "read",
                              fragments=fragments)
                   for d in alive)

    def peak_bw(self, kind: str) -> float:
        self._check_pairs(self._failed)
        per = self.disks[0].peak_bw(kind)
        if kind == "write":
            return per * self._pairs
        return per * (len(self.disks) - len(self._failed))

    @property
    def capacity_gb(self) -> float:
        return sum(d.spec.capacity_gb for d in self.disks) / 2


@dataclass
class VolumeSummary:
    """What Tables VI/VII report per configuration."""

    level: str
    n_disks: int
    capacity_gb: float
    peak_write_mb_s: float
    peak_read_mb_s: float
    n_failed: int = 0


def summarize(volume: Volume) -> VolumeSummary:
    """Digest a volume into the Tables VI/VII inventory row."""
    return VolumeSummary(
        level=type(volume).__name__,
        n_disks=len(volume.disks),
        capacity_gb=volume.capacity_gb,
        peak_write_mb_s=volume.peak_bw("write"),
        peak_read_mb_s=volume.peak_bw("read"),
        n_failed=len(volume.failed),
    )

"""I/O subsystem simulator.

The substitute for the paper's physical testbeds: disks, RAID/JBOD
volumes, ext3/ext4 local filesystems with write-back caches, contended
network links, I/O nodes, and NFS/PVFS2/Lustre global filesystems --
assembled into :class:`Cluster` objects that plug into the simulated MPI
engine as its cost model.
"""

from .cluster import Cluster, ClusterDescription
from .collective import merge_runs, split_regions, two_phase_io
from .device import MB, SECTOR_BYTES, SSD_SPEC, Disk, DiskSpec
from .globalfs import NFS, PVFS2, Access, GlobalFS, Lustre, stripe_shares
from .localfs import EXT3, EXT4, FSSpec, LocalFS
from .monitor import BucketRow, DeviceMonitor, TransferSample
from .network import (
    GIGABIT_ETHERNET,
    INFINIBAND_20G,
    Link,
    LinkSpec,
    collective_comm_time,
)
from .nodes import ComputeNode, IONode
from .raid import (
    JBOD,
    RAID0,
    RAID1,
    RAID5,
    RAID6,
    RAID10,
    Volume,
    VolumeSummary,
    summarize,
)
from .resource import Resource, ResourceGroup

__all__ = [
    "Access",
    "BucketRow",
    "Cluster",
    "ClusterDescription",
    "ComputeNode",
    "DeviceMonitor",
    "Disk",
    "DiskSpec",
    "EXT3",
    "EXT4",
    "FSSpec",
    "GIGABIT_ETHERNET",
    "GlobalFS",
    "INFINIBAND_20G",
    "IONode",
    "JBOD",
    "Link",
    "LinkSpec",
    "LocalFS",
    "Lustre",
    "MB",
    "NFS",
    "PVFS2",
    "RAID0",
    "RAID1",
    "RAID10",
    "RAID5",
    "RAID6",
    "Resource",
    "SSD_SPEC",
    "ResourceGroup",
    "SECTOR_BYTES",
    "TransferSample",
    "Volume",
    "VolumeSummary",
    "collective_comm_time",
    "merge_runs",
    "split_regions",
    "stripe_shares",
    "summarize",
    "two_phase_io",
]

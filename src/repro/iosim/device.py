"""Rotating-disk device model with sector accounting.

The disk is the leaf of the simulated I/O stack.  Costs:

* sequential transfer at ``seq_write_bw`` / ``seq_read_bw`` (MB/s);
* a seek penalty whenever a request does not continue where the previous
  one on this disk ended (``seek_ms`` + half-rotation latency);
* per-request controller overhead (``op_overhead_ms``).

Each transfer is recorded with the owning :class:`~repro.iosim.monitor.
DeviceMonitor` (if attached) so iostat-style series (Fig. 8: sectors/s
and %busy per device) can be produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults
from repro.faults import DiskFailure

from .resource import Resource

MB = 1024 * 1024
SECTOR_BYTES = 512


@dataclass
class DiskSpec:
    """Performance parameters of one disk."""

    seq_write_bw: float = 90.0  # MB/s
    seq_read_bw: float = 100.0  # MB/s
    seek_ms: float = 8.5
    rotational_ms: float = 4.2  # half-rotation at 7200 rpm
    op_overhead_ms: float = 0.05
    capacity_gb: float = 150.0


#: A SATA SSD: no mechanical positioning, high sustained rates.  Useful
#: for modern-hardware what-if studies on top of the paper's methodology.
SSD_SPEC = DiskSpec(seq_write_bw=450.0, seq_read_bw=520.0, seek_ms=0.0,
                    rotational_ms=0.0, op_overhead_ms=0.02, capacity_gb=480.0)


@dataclass
class Disk:
    """One physical disk: an FCFS resource plus head-position state."""

    name: str
    spec: DiskSpec = field(default_factory=DiskSpec)
    monitor: "object | None" = None  # DeviceMonitor, set by the cluster

    def __post_init__(self) -> None:
        self.resource = Resource(self.name)
        self._head: float | None = None  # byte offset after the last transfer

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 fragments: int = 1) -> float:
        """Service a transfer; returns its completion time (virtual seconds).

        ``fragments > 1`` models a request whose blocks interleave with
        other clients' on the platter (striped filesystems): each extra
        fragment costs one seek.
        """
        if nbytes <= 0:
            return start
        slow = 1.0
        if faults.ACTIVE:
            fp = faults.plan()
            since = fp.disk_failed_since(self.name, start)
            if since is not None:
                fp.record(faults.FAIL_STOP, self.name, since,
                          "addressed while dead")
                raise DiskFailure(self.name, since)
            slow = fp.slow_factor(self.name, start)
        bw = self.spec.seq_write_bw if kind == "write" else self.spec.seq_read_bw
        cost = self.spec.op_overhead_ms / 1e3 + nbytes / (bw * MB)
        seek_s = (self.spec.seek_ms + self.spec.rotational_ms) / 1e3
        # Near-sequential accesses (short same-track skips, e.g. journal
        # padding) do not pay a full seek.
        near = max(64 * 1024, nbytes // 4)
        if self._head is None or abs(offset - self._head) > near:
            cost += seek_s
        cost += max(0, fragments - 1) * seek_s
        # A fail-slow disk serves everything -- positioning included --
        # at a fraction of its healthy rate.
        cost *= slow
        self._head = offset + nbytes
        begin, end = self.resource.acquire(start, cost)
        if self.monitor is not None:
            self.monitor.record(self.name, begin, end, nbytes, kind)
        return end

    def peak_bw(self, kind: str) -> float:
        """Best-case streaming bandwidth in MB/s (no seeks, no overhead)."""
        return self.spec.seq_write_bw if kind == "write" else self.spec.seq_read_bw

    def fingerprint(self) -> tuple:
        """Performance-relevant identity, excluding the instance name."""
        s = self.spec
        return ("Disk", s.seq_write_bw, s.seq_read_bw, s.seek_ms,
                s.rotational_ms, s.op_overhead_ms, s.capacity_gb)

    def reset(self) -> None:
        self.resource.reset()
        self._head = None

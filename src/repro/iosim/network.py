"""Network links with FCFS contention.

Links are :class:`~repro.iosim.resource.Resource`-backed: concurrent
flows through the same link queue behind each other, which is how the
single NFS server uplink caps configuration A/C at ~1 GbE while PVFS2
and Lustre scale with their I/O-node count.

Presets match the paper's fabrics: 1 Gb Ethernet (Tables VI/VII) and
20 Gb/s InfiniBand (Finisterrae).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import faults
from repro.faults import TransientFault

from .device import MB
from .resource import Resource


@dataclass
class LinkSpec:
    """Bandwidth/latency parameters of one link.

    ``load_amplitude`` models *background load*: shared storage servers
    never deliver a perfectly flat rate -- cron jobs, other users,
    daemon housekeeping modulate the effective bandwidth over time.  The
    modulation is a deterministic function of virtual time (so runs stay
    reproducible), ``bw * (1 + A sin(2 pi t / period + phase))``.  This
    is what separates the application's measured phase bandwidths from
    IOR's replay of the same phases at different times -- the real-world
    effect behind the paper's 1-9 % estimation errors.
    """

    bw_mb_s: float  # payload bandwidth, MB/s
    latency_s: float  # per-message latency, seconds
    name: str = "link"
    load_amplitude: float = 0.0  # 0 = flat; 0.05 = +-5 % swing
    load_period_s: float = 97.0
    load_phase: float = 0.0

    def fingerprint(self) -> tuple:
        """Performance parameters only -- ``name`` is a display label."""
        return ("LinkSpec", self.bw_mb_s, self.latency_s,
                self.load_amplitude, self.load_period_s, self.load_phase)

    def bw_at(self, t: float) -> float:
        """Effective bandwidth (MB/s) at virtual time ``t``."""
        if not self.load_amplitude:
            return self.bw_mb_s
        swing = math.sin(2.0 * math.pi * t / self.load_period_s + self.load_phase)
        return self.bw_mb_s * (1.0 + self.load_amplitude * swing)


#: Effective payload rate of 1 Gb Ethernet (TCP/IP overhead included).
GIGABIT_ETHERNET = LinkSpec(bw_mb_s=112.0, latency_s=60e-6, name="1GbE")
#: Effective payload rate of DDR InfiniBand (20 Gb/s signalling).
INFINIBAND_20G = LinkSpec(bw_mb_s=1900.0, latency_s=4e-6, name="IB-20G")


class Link:
    """A point-to-point or node-uplink network resource."""

    def __init__(self, name: str, spec: LinkSpec = GIGABIT_ETHERNET):
        self.name = name
        self.spec = spec
        self.resource = Resource(name)
        # A link named "nasd0.nic" also answers to faults targeting its
        # owner node "nasd0" (I/O-node dropout, node-level brownouts).
        owner = name.rsplit(".", 1)[0]
        self._fault_names = (name,) if owner == name else (name, owner)

    def cost(self, nbytes: int, at: float = 0.0) -> float:
        bw = self.spec.bw_at(at)
        latency = self.spec.latency_s
        if faults.ACTIVE:
            bw_factor, extra_latency = faults.plan().link_state(
                self._fault_names, at)
            bw *= bw_factor
            latency += extra_latency
        return latency + nbytes / (bw * MB)

    def send(self, start: float, nbytes: int) -> tuple[float, float]:
        """Occupy the link for a message; returns (begin, end).

        An active dropout window covering ``start`` either defers the
        message to the reconnect time (``mode="defer"``) or raises
        :class:`~repro.faults.plan.TransientFault` (``mode="error"``)
        for the pipeline's retry policy to absorb.
        """
        start = self._deferred_start(start)
        return self.resource.acquire(start, self.cost(nbytes, at=start))

    def acquire(self, start: float, cost: float) -> tuple[float, float]:
        """Dropout-aware ``Resource.acquire`` (used by server-side NICs
        whose cost the filesystem model computes itself)."""
        return self.resource.acquire(self._deferred_start(start), cost)

    def _deferred_start(self, start: float) -> float:
        if faults.ACTIVE:
            fp = faults.plan()
            window = fp.dropout(self._fault_names, start)
            if window is not None:
                fp.record(faults.DROPOUT, window.target, window.start,
                          f"{window.mode} until {window.end:.3f}")
                if window.mode == "error":
                    raise TransientFault(window.target, retry_at=window.end)
                start = window.end  # stall until the component reconnects
        return start

    def fingerprint(self) -> tuple:
        return ("Link", self.spec.fingerprint())

    def reset(self) -> None:
        self.resource.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Link({self.name}, {self.spec.bw_mb_s} MB/s)"


def collective_comm_time(spec: LinkSpec, nbytes: int, nranks: int, pattern: str) -> float:
    """Analytic cost of a communication collective (not resource-tracked).

    Log-tree latency plus payload serialization; all-to-all patterns pay
    the bisection. This is deliberately simple -- the paper's methodology
    only needs communication to order events and to cost the shuffle
    phase of two-phase collective I/O.
    """
    import math

    stages = max(1, math.ceil(math.log2(max(2, nranks))))
    lat = spec.latency_s * stages
    bw = spec.bw_mb_s * MB
    if pattern in ("barrier", "split", "file_open"):
        return lat
    if pattern in ("bcast", "allreduce", "reduce"):
        return lat + nbytes / bw * stages
    if pattern in ("gather", "alltoall"):
        return lat + nbytes / bw
    if pattern == "p2p":
        return spec.latency_s + nbytes / bw
    return lat + nbytes / bw

"""Network links with FCFS contention.

Links are :class:`~repro.iosim.resource.Resource`-backed: concurrent
flows through the same link queue behind each other, which is how the
single NFS server uplink caps configuration A/C at ~1 GbE while PVFS2
and Lustre scale with their I/O-node count.

Presets match the paper's fabrics: 1 Gb Ethernet (Tables VI/VII) and
20 Gb/s InfiniBand (Finisterrae).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import MB
from .resource import Resource


@dataclass
class LinkSpec:
    """Bandwidth/latency parameters of one link.

    ``load_amplitude`` models *background load*: shared storage servers
    never deliver a perfectly flat rate -- cron jobs, other users,
    daemon housekeeping modulate the effective bandwidth over time.  The
    modulation is a deterministic function of virtual time (so runs stay
    reproducible), ``bw * (1 + A sin(2 pi t / period + phase))``.  This
    is what separates the application's measured phase bandwidths from
    IOR's replay of the same phases at different times -- the real-world
    effect behind the paper's 1-9 % estimation errors.
    """

    bw_mb_s: float  # payload bandwidth, MB/s
    latency_s: float  # per-message latency, seconds
    name: str = "link"
    load_amplitude: float = 0.0  # 0 = flat; 0.05 = +-5 % swing
    load_period_s: float = 97.0
    load_phase: float = 0.0

    def fingerprint(self) -> tuple:
        """Performance parameters only -- ``name`` is a display label."""
        return ("LinkSpec", self.bw_mb_s, self.latency_s,
                self.load_amplitude, self.load_period_s, self.load_phase)

    def bw_at(self, t: float) -> float:
        """Effective bandwidth (MB/s) at virtual time ``t``."""
        if not self.load_amplitude:
            return self.bw_mb_s
        swing = math.sin(2.0 * math.pi * t / self.load_period_s + self.load_phase)
        return self.bw_mb_s * (1.0 + self.load_amplitude * swing)


#: Effective payload rate of 1 Gb Ethernet (TCP/IP overhead included).
GIGABIT_ETHERNET = LinkSpec(bw_mb_s=112.0, latency_s=60e-6, name="1GbE")
#: Effective payload rate of DDR InfiniBand (20 Gb/s signalling).
INFINIBAND_20G = LinkSpec(bw_mb_s=1900.0, latency_s=4e-6, name="IB-20G")


class Link:
    """A point-to-point or node-uplink network resource."""

    def __init__(self, name: str, spec: LinkSpec = GIGABIT_ETHERNET):
        self.name = name
        self.spec = spec
        self.resource = Resource(name)

    def cost(self, nbytes: int, at: float = 0.0) -> float:
        return self.spec.latency_s + nbytes / (self.spec.bw_at(at) * MB)

    def send(self, start: float, nbytes: int) -> tuple[float, float]:
        """Occupy the link for a message; returns (begin, end)."""
        return self.resource.acquire(start, self.cost(nbytes, at=start))

    def fingerprint(self) -> tuple:
        return ("Link", self.spec.fingerprint())

    def reset(self) -> None:
        self.resource.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Link({self.name}, {self.spec.bw_mb_s} MB/s)"


def collective_comm_time(spec: LinkSpec, nbytes: int, nranks: int, pattern: str) -> float:
    """Analytic cost of a communication collective (not resource-tracked).

    Log-tree latency plus payload serialization; all-to-all patterns pay
    the bisection. This is deliberately simple -- the paper's methodology
    only needs communication to order events and to cost the shuffle
    phase of two-phase collective I/O.
    """
    import math

    stages = max(1, math.ceil(math.log2(max(2, nranks))))
    lat = spec.latency_s * stages
    bw = spec.bw_mb_s * MB
    if pattern in ("barrier", "split", "file_open"):
        return lat
    if pattern in ("bcast", "allreduce", "reduce"):
        return lat + nbytes / bw * stages
    if pattern in ("gather", "alltoall"):
        return lat + nbytes / bw
    if pattern == "p2p":
        return spec.latency_s + nbytes / bw
    return lat + nbytes / bw

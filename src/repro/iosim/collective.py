"""Two-phase collective I/O (ROMIO-style).

Collective MPI-IO operations (``MPI_File_write_at_all`` & co.) are
optimized by the I/O library: the participants' (possibly strided,
interleaved) accesses are merged into large contiguous file regions,
shuffled between ranks over the compute network, and issued to the
filesystem by a small set of *aggregator* ranks.  This is what makes
BT-IO FULL efficient, and it is the semantics our simulator charges for
``*_all`` calls.

The cost of one collective operation is::

    max(exchange phase, slowest aggregator's file access)

where the exchange moves every byte once across the participants'
NICs, and each aggregator issues one contiguous slice of the merged
region from its own compute node.
"""

from __future__ import annotations

from typing import Sequence

from repro.simmpi.engine import IORequest

from .device import MB
from .globalfs import Access, GlobalFS
from .network import LinkSpec
from .nodes import ComputeNode

Run = tuple[int, int]


def merge_runs(run_lists: Sequence[Sequence[Run]]) -> list[Run]:
    """Coalesce all participants' runs into sorted disjoint regions."""
    runs = sorted(r for lst in run_lists for r in lst)
    if not runs:
        return []
    out = [runs[0]]
    for off, ln in runs[1:]:
        last_off, last_ln = out[-1]
        if off <= last_off + last_ln:
            out[-1] = (last_off, max(last_off + last_ln, off + ln) - last_off)
        else:
            out.append((off, ln))
    return out


def split_regions(regions: list[Run], nparts: int) -> list[list[Run]]:
    """Partition merged regions into ``nparts`` byte-balanced slices."""
    total = sum(ln for _, ln in regions)
    if total == 0 or nparts <= 0:
        return [[] for _ in range(max(1, nparts))]
    target = total / nparts
    parts: list[list[Run]] = [[] for _ in range(nparts)]
    idx = 0
    acc = 0
    for off, ln in regions:
        pos = 0
        while pos < ln:
            room = target * (idx + 1) - acc
            take = int(min(ln - pos, max(1, room)))
            parts[idx].append((off + pos, take))
            pos += take
            acc += take
            if acc >= target * (idx + 1) and idx < nparts - 1:
                idx += 1
    return parts


def two_phase_io(
    reqs: Sequence[IORequest],
    start: float,
    globalfs: GlobalFS,
    clients: Sequence[ComputeNode],
    exchange_spec: LinkSpec,
    cb_nodes: int | None = None,
) -> float:
    """Service one collective I/O operation; returns its completion time.

    ``clients[i]`` is the compute node of ``reqs[i]``'s rank.  The number
    of aggregators defaults to ``min(#distinct client nodes, 2 x #I/O
    nodes)`` -- enough to saturate the servers without flooding them.
    """
    # Collective I/O on per-process files (-F): the ranks touch distinct
    # files, so nothing can be merged across them -- each rank's access
    # is issued independently (concurrently) from its own node, and the
    # collective completes when the slowest one does.
    if any(r.unique_file for r in reqs) or len({r.file_id for r in reqs}) > 1:
        end = start
        for req, client in zip(reqs, clients):
            if not req.runs:
                continue
            acc = Access(start=start, client=client, runs=list(req.runs),
                         kind=req.kind, file_id=req.file_id)
            end = max(end, globalfs.service(acc))
        return end

    run_lists = [r.runs for r in reqs]
    merged = merge_runs(run_lists)
    total = sum(ln for _, ln in merged)
    if total == 0:
        return start
    kind = reqs[0].kind
    file_id = reqs[0].file_id

    distinct_nodes: list[ComputeNode] = []
    seen = set()
    for c in clients:
        if id(c) not in seen:
            seen.add(id(c))
            distinct_nodes.append(c)
    if cb_nodes is None:
        cb_nodes = max(1, min(len(distinct_nodes), 2 * len(globalfs.ions)))
    aggregators = distinct_nodes[:cb_nodes]

    # Phase 1: shuffle. Every byte crosses the compute network once; the
    # aggregate rate is the participating nodes' NIC bandwidth (half
    # duplex-charged: each byte leaves one NIC and enters another).
    exchanged = sum(r.nbytes for r in reqs)
    agg_bw = len(distinct_nodes) * exchange_spec.bw_mb_s * MB / 2.0
    t_exchange = exchange_spec.latency_s + (exchanged / agg_bw if agg_bw else 0.0)

    # Phase 2: aggregators issue contiguous slices concurrently.
    slices = split_regions(merged, len(aggregators))
    t0 = start + t_exchange
    end = t0
    for node, part in zip(aggregators, slices):
        if not part:
            continue
        acc = Access(start=t0, client=node, runs=part, kind=kind, file_id=file_id)
        end = max(end, globalfs.service(acc))
    return end

"""Virtual-time FCFS resources.

Every contended component of the simulated I/O stack (a disk, a NIC, an
NFS server link, ...) is a :class:`Resource`: requests occupy it for a
cost interval, queueing in virtual time.  Because the SPMD engine issues
requests in (approximately) nondecreasing virtual-time order, a simple
``next_free`` pointer gives first-come-first-served queueing, which is
where contention effects (e.g. an NFS server serializing its clients)
come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs


@dataclass
class Resource:
    """A serially-reusable component with FCFS queueing in virtual time."""

    name: str
    next_free: float = 0.0
    busy_time: float = 0.0
    total_requests: int = 0

    def acquire(self, start: float, cost: float) -> tuple[float, float]:
        """Occupy the resource for ``cost`` seconds from no earlier than ``start``.

        Returns ``(begin, end)``: the interval actually occupied.  ``begin``
        is ``max(start, next_free)`` -- the request waits for earlier ones.
        """
        if cost < 0:
            raise ValueError(f"resource cost must be >= 0, got {cost}")
        begin = max(start, self.next_free)
        end = begin + cost
        self.next_free = end
        self.busy_time += cost
        self.total_requests += 1
        if obs.ACTIVE:
            obs.observe_resource_wait(self.name, begin - start, cost)
        return begin, end

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self) -> None:
        self.next_free = 0.0
        self.busy_time = 0.0
        self.total_requests = 0


@dataclass
class ResourceGroup:
    """A pool of identical resources used in parallel (e.g. RAID members).

    ``acquire_parallel`` splits a cost evenly over the members and returns
    the latest completion -- the simple fork/join model used for striped
    volumes.
    """

    members: list[Resource] = field(default_factory=list)

    def acquire_parallel(self, start: float, cost_per_member: float) -> tuple[float, float]:
        begins, ends = [], []
        for m in self.members:
            b, e = m.acquire(start, cost_per_member)
            begins.append(b)
            ends.append(e)
        return min(begins), max(ends)

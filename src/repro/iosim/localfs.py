"""Local filesystem models (ext3 / ext4) with a write-back buffer cache.

The local FS sits between a server's export (NFS/PVFS2/Lustre OSS) and
its block volume.  It charges:

* a per-operation latency (metadata, block mapping),
* journalling overhead as extra write traffic (heavier on ext3),
* and it absorbs write bursts into a RAM write-back cache: a write
  completes at memory speed while the volume still has room in its
  backlog (backlog-seconds x drain-rate <= cache size), else it runs at
  volume speed.  This is why IOzone must use file sizes >= 2x RAM
  (Table II's ``minimum size = 2 * RAMsize`` rule) to measure the media.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import MB
from .raid import Volume


@dataclass
class FSSpec:
    """Tuning parameters of a local filesystem type."""

    name: str = "ext4"
    op_latency_ms: float = 0.15
    journal_write_overhead: float = 0.05  # extra fraction of write bytes
    readahead_benefit: float = 0.85  # sequential-read cost multiplier
    memory_bw_mb_s: float = 2500.0


EXT4 = FSSpec(name="ext4", journal_write_overhead=0.05)
EXT3 = FSSpec(name="ext3", op_latency_ms=0.25, journal_write_overhead=0.12,
              readahead_benefit=0.9)


class LocalFS:
    """A mounted local filesystem over a :class:`~repro.iosim.raid.Volume`."""

    def __init__(self, name: str, volume: Volume, spec: FSSpec = EXT4,
                 cache_mb: float = 256.0):
        self.name = name
        self.volume = volume
        self.spec = spec
        self.cache_mb = cache_mb
        self._last_read_end: int | None = None

    def transfer(self, start: float, offset: int, nbytes: int, kind: str,
                 locator: int = 0, fragments: int = 1) -> float:
        """Service one contiguous access; returns its completion time."""
        if nbytes <= 0:
            return start
        t = start + self.spec.op_latency_ms / 1e3
        if kind == "write":
            volume_bytes = int(nbytes * (1.0 + self.spec.journal_write_overhead))
            vol_end = self.volume.transfer(t, offset, volume_bytes, "write", locator,
                                           fragments=fragments)
            if self.cache_mb > 0:
                backlog_s = vol_end - start
                drain_bw = self.volume.peak_bw("write") * MB
                cache_s = self.cache_mb * MB / drain_bw
                mem_end = t + nbytes / (self.spec.memory_bw_mb_s * MB)
                if backlog_s * drain_bw <= self.cache_mb * MB:
                    # Absorbed by the page cache: ack at memory speed.
                    return mem_end
                # Cache full: the writer blocks until there is room again
                # (dirty pages drained down to the cache size), not until
                # the whole backlog reaches the platter.
                return max(mem_end, vol_end - cache_s)
            return vol_end
        # read
        sequential = self._last_read_end is not None and offset == self._last_read_end
        self._last_read_end = offset + nbytes
        vol_end = self.volume.transfer(t, offset, nbytes, "read", locator,
                                       fragments=fragments)
        if sequential:
            # Readahead hides part of the latency/seek cost.
            dur = (vol_end - t) * self.spec.readahead_benefit
            return t + dur
        return vol_end

    def peak_bw(self, kind: str) -> float:
        """Media-level streaming bandwidth through this FS (MB/s)."""
        bw = self.volume.peak_bw(kind)
        if kind == "write":
            return bw / (1.0 + self.spec.journal_write_overhead)
        return bw

    def fingerprint(self) -> tuple:
        """FS tuning + cache size + volume identity (names excluded)."""
        s = self.spec
        return ("LocalFS", s.op_latency_ms, s.journal_write_overhead,
                s.readahead_benefit, s.memory_bw_mb_s, self.cache_mb,
                self.volume.fingerprint())

    def reset(self) -> None:
        self.volume.reset()
        self._last_read_end = None

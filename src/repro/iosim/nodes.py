"""Node types of the simulated cluster.

``ComputeNode`` owns a NIC that all ranks placed on it share (the
client-side serialization point).  ``IONode`` is a storage server: NIC +
local filesystem over a volume.  It doubles as the unit IOzone
characterizes for the peak bandwidth of eq. (3)/(4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .localfs import LocalFS
from .network import GIGABIT_ETHERNET, Link, LinkSpec


@dataclass
class ComputeNode:
    """A compute host: ranks share its NIC and RAM."""

    name: str
    nic: Link
    ram_gb: float = 2.0
    cores: int = 2

    @classmethod
    def make(cls, name: str, link_spec: LinkSpec = GIGABIT_ETHERNET,
             ram_gb: float = 2.0, cores: int = 2) -> "ComputeNode":
        return cls(name=name, nic=Link(f"{name}.nic", link_spec), ram_gb=ram_gb,
                   cores=cores)

    def fingerprint(self) -> tuple:
        return ("ComputeNode", self.nic.fingerprint(), self.ram_gb, self.cores)


@dataclass
class IONode:
    """A storage server: NIC + local FS over a block volume."""

    name: str
    nic: Link
    fs: LocalFS
    ram_gb: float = 1.0

    @classmethod
    def make(cls, name: str, fs: LocalFS, link_spec: LinkSpec = GIGABIT_ETHERNET,
             ram_gb: float = 1.0) -> "IONode":
        return cls(name=name, nic=Link(f"{name}.nic", link_spec), fs=fs, ram_gb=ram_gb)

    def peak_bw(self, kind: str) -> float:
        """Device-level streaming bandwidth of this I/O node (MB/s).

        This is the analytic counterpart of ``maxBW(ION_i)`` in eq. (3);
        the IOzone app (:mod:`repro.apps.iozone`) measures the same thing
        empirically against ``fs``.
        """
        return self.fs.peak_bw(kind)

    def fingerprint(self) -> tuple:
        """Name-independent identity: configuration B's three I/O nodes
        (``nasd0``..``nasd2``) differ only by name and hash equal, so one
        IOzone characterization covers all of them."""
        return ("IONode", self.nic.fingerprint(), self.fs.fingerprint(),
                self.ram_gb)

    def reset(self) -> None:
        self.fs.reset()
        self.nic.reset()

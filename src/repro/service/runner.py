"""Execute one service request spec into a deterministic JSON result.

The runner is the bridge between the daemon's JSON world and the
methodology pipeline: it resolves the spec's app and configurations,
runs the study through the replay planner (dedup across configs) and
whatever executor tier the circuit breaker currently allows, and
reduces the outcome to a plain-JSON result whose canonical encoding is
hashed into ``output_digest``.  Studies are pure functions of their
spec, so the digest is bit-identical across runs, schedules, executor
backends, and -- the property the chaos CI leg asserts -- across a
``kill -9`` + journal recovery.

Deadlines: ``deadline_s`` becomes the per-job wall-clock budget of the
study's :class:`~repro.faults.resilience.RetryPolicy` (and the sweep's
``timeout_s``), so a request cannot pin a worker past the time its
client was willing to wait.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.faults.resilience import RetryPolicy

from .journal import canonical_json
from .spec import resolve_app, resolve_factories

__all__ = ["run_request", "result_digest"]


def result_digest(result: dict) -> str:
    """sha256 over the canonical JSON encoding of a result."""
    return hashlib.sha256(canonical_json(result).encode("utf-8")).hexdigest()


def _retry_for(retry: RetryPolicy | None, deadline_s: float | None):
    """Fold the request deadline into the retry policy's timeout.

    The tighter of (existing policy timeout, request deadline) wins;
    the effective timeout is also returned for the sweep layer, which
    enforces it on parallel backends.
    """
    timeout = deadline_s
    if retry is not None and retry.timeout_s is not None:
        timeout = (retry.timeout_s if timeout is None
                   else min(retry.timeout_s, timeout))
    if retry is None:
        policy = RetryPolicy(timeout_s=timeout)
    elif timeout != retry.timeout_s:
        policy = RetryPolicy(max_attempts=retry.max_attempts,
                             backoff_s=retry.backoff_s,
                             backoff_factor=retry.backoff_factor,
                             max_backoff_s=retry.max_backoff_s,
                             retry_on=retry.retry_on,
                             timeout_s=timeout)
    else:
        policy = retry
    return policy, timeout


def run_request(spec: dict, *, executor=None,
                retry: RetryPolicy | None = None,
                checkpoint_dir: str | Path | None = None) -> dict:
    """Run one normalized spec; returns its plain-JSON result.

    ``executor`` is a backend name or instance (see
    :mod:`repro.core.executors`); ``checkpoint_dir`` makes the study's
    unique replays individually durable, so a re-run after a crash
    resumes from the last completed replay instead of from scratch.
    """
    from repro.core.estimate import select_configuration
    from repro.core.pipeline import characterize_app, full_study
    from repro.tracer.ingest import ingest_jobs

    kind = spec["kind"]
    program, params = resolve_app(spec["app"], spec["np"])
    policy, timeout_s = _retry_for(retry, spec.get("deadline_s"))
    ckpt = str(checkpoint_dir) if checkpoint_dir is not None else None
    resume = ckpt is not None

    # ``jobs`` is a QoS field: it widens the trace-ingest fan-out for
    # everything this request executes without entering the digest.
    with ingest_jobs(spec.get("jobs")):
        if kind == "characterize":
            model, bundle = characterize_app(program, spec["np"], params,
                                             app_name=spec["app"])
            result = {
                "kind": kind, "app": spec["app"], "np": spec["np"],
                "nphases": model.nphases, "nevents": bundle.nevents,
                "phases": [
                    {"phase_id": ph.phase_id, "op": ph.op_label,
                     "np": ph.np, "rep": ph.rep, "weight": ph.weight}
                    for ph in model.phases],
            }
        elif kind == "select":
            model, _ = characterize_app(program, spec["np"], params,
                                        app_name=spec["app"])
            factories = resolve_factories(spec["configs"])
            choice = select_configuration(
                model.phases, factories, retry=policy, timeout_s=timeout_s,
                checkpoint_dir=ckpt, resume=resume,
                lattice=spec.get("lattice", False), executor=executor)
            result = {
                "kind": kind, "app": spec["app"], "np": spec["np"],
                "best": choice.best,
                "totals": {name: t
                           for name, t in sorted(choice.total_times.items())},
            }
        elif kind == "full_study":
            factories = resolve_factories(spec["configs"])
            study = full_study(program, spec["np"], params,
                               cluster_factories=factories,
                               app_name=spec["app"], retry=policy,
                               timeout_s=timeout_s, checkpoint_dir=ckpt,
                               resume=resume, executor=executor)
            result = {
                "kind": kind, "app": spec["app"], "np": spec["np"],
                "best": study["selection"]["best"],
                "totals": {name: t for name, t
                           in sorted(study["selection"]["totals"].items())},
                "nphases": study["model"].nphases,
            }
        else:  # normalize() guarantees this cannot happen on journaled specs
            raise ValueError(f"unknown request kind {kind!r}")
    result["output_digest"] = result_digest(result)
    return result

"""The resilient study service daemon.

A long-lived process that serves ``submit_batch`` study requests over
the socket protocol of :mod:`repro.service.protocol`.  The design goal
is that the *service* survives everything the studies model: a
``kill -9`` loses no acknowledged work (write-ahead journal, atomic
result files, per-request replay checkpoints), overload is refused
deterministically instead of queued unboundedly (admission control ->
BUSY + ``retry_after_s``), dying executor infrastructure degrades
cluster -> pool -> serial through a circuit breaker, and SIGTERM
drains gracefully: accepted work finishes, new work is refused.

Lifecycle::

    daemon = StudyService(ServiceConfig(journal_dir="svc"))
    host, port = daemon.start()     # recovery -> workers -> listener
    ...                             # clients connect
    daemon.initiate_drain()         # or SIGTERM via serve_forever()
    daemon.wait_drained()

State machine per request (content-addressed by its spec digest; the
same spec submitted twice -- same batch or not -- is one request)::

    queued -> running -> done      (result file + DONE journal record)
                      -> failed    (FAILED journal record; resubmission
                                    re-queues it)

Durability contract (what the chaos CI leg asserts): SUBMIT is
journaled+fsynced before the client sees the batch id; DONE is
journaled after the result file is atomically in place.  Recovery
replays the journal, adopts every completed result, and re-enqueues
the rest in submission order -- re-runs resume from the study's last
atomic replay checkpoint and produce bit-identical ``output_digest``.

Chaos hook: ``REPRO_SERVICE_KILL_AFTER=N`` hard-exits the process
(code 29) immediately after journaling the N-th DONE record -- i.e.
mid-batch, after some results are durable and others are in flight.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.executors import wire
from repro.core.executors.base import SweepJobError
from repro.faults.resilience import RetryPolicy
from repro.ioutil import atomic_write_text

from .breaker import INFRA_ERRORS, CircuitBreaker, ladder_for
from .journal import Journal, canonical_json
from .protocol import REQUEST, RESPONSE
from .runner import run_request
from .spec import BadRequest, normalize, spec_digest

__all__ = ["ServiceConfig", "StudyService", "serve_forever",
           "KILL_ENV", "SLOW_ENV", "CHAOS_EXIT_CODE"]

#: Chaos hook: hard-exit after journaling the N-th DONE record.
KILL_ENV = "REPRO_SERVICE_KILL_AFTER"
CHAOS_EXIT_CODE = 29

#: Test hook: wall-clock seconds each job is held before running --
#: makes over-capacity (BUSY) tests deterministic.
SLOW_ENV = "REPRO_SERVICE_SLOW_S"

TERMINAL = ("done", "failed")


@dataclass
class ServiceConfig:
    """Everything a daemon needs; plain data so tests can build them."""

    journal_dir: str | Path = ".repro-service"
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    #: Admission cap on queued + running requests; submissions that
    #: would exceed it get a BUSY response instead of queue space.
    queue_cap: int = 16
    #: Starting executor tier (None -> serial; "pool"/"cluster" degrade
    #: through the circuit breaker when their infrastructure dies).
    executor: str | None = None
    retry: RetryPolicy | None = None
    breaker_threshold: int = 2
    breaker_cooldown_s: float = 30.0
    #: Advisory client backoff carried on BUSY responses.
    retry_after_s: float = 1.0
    #: Attach this persistent result store (warm-start dedup across
    #: requests and restarts); None leaves REPRO_CACHE_DIR behaviour.
    cache_dir: str | None = None
    #: Enable repro.obs so the ``metrics`` op serves Prometheus text.
    metrics: bool = False
    slow_s: float = field(
        default_factory=lambda: float(os.environ.get(SLOW_ENV, "0") or 0))


@dataclass
class _Request:
    digest: str
    spec: dict
    state: str = "queued"  # queued | running | done | failed
    result: dict | None = None
    error: str | None = None

    def public(self, with_result: bool = False) -> dict:
        out = {"id": self.digest, "kind": self.spec["kind"],
               "app": self.spec["app"], "state": self.state}
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["output_digest"] = self.result["output_digest"]
            if with_result:
                out["result"] = self.result
        return out


class StudyService:
    """See the module docstring; one instance per daemon process."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.journal_dir = Path(config.journal_dir)
        self.journal = Journal(self.journal_dir)
        self._results_dir = self.journal_dir / "results"
        self._ckpt_root = self.journal_dir / "ckpt"
        self._breaker = CircuitBreaker(
            ladder_for(config.executor),
            threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque[str] = deque()
        self._requests: dict[str, _Request] = {}
        self._batches: dict[str, list[str]] = {}
        self._seq = 1
        self._running = 0
        self._recovered = 0
        self._busy_rejections = 0
        self._completed = 0
        self._started_at = time.monotonic()
        self._ready = threading.Event()
        self._draining = threading.Event()
        self._stop = threading.Event()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._kill_after = int(os.environ.get(KILL_ENV, "0") or "0")

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Recover, start the worker pool and the listener; returns the
        bound (host, port).  Readiness flips true only after recovery
        completed and workers are accepting jobs."""
        self._acquire_lock()
        if self.config.metrics and not obs.ACTIVE:
            obs.enable()
        if self.config.cache_dir is not None:
            from repro import store

            store.attach(self.config.cache_dir)
        self._recover()
        for i in range(max(1, self.config.workers)):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"svc-worker-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        self._listener = socket.create_server(
            (self.config.host, self.config.port))
        self._listener.settimeout(0.2)
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="svc-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        self._ready.set()
        host, port = self._listener.getsockname()[:2]
        return host, port

    def _acquire_lock(self) -> None:
        """One daemon per journal: a pid lockfile, stale after kill -9."""
        lock = self.journal_dir / "daemon.pid"
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        if lock.exists():
            try:
                pid = int(lock.read_text().strip() or "0")
            except ValueError:
                pid = 0
            if pid > 0 and pid != os.getpid():
                try:
                    os.kill(pid, 0)
                except (ProcessLookupError, PermissionError):
                    pass  # stale: the previous daemon is gone
                else:
                    raise RuntimeError(
                        f"journal {self.journal_dir} is owned by a live "
                        f"daemon (pid {pid}); drain it first")
        atomic_write_text(lock, str(os.getpid()))

    def _recover(self) -> None:
        """Rebuild state from the journal; re-enqueue unfinished work."""
        for rec in self.journal.replay():
            kind = rec.get("rec")
            if kind == "submit":
                self._batches[rec["batch"]] = list(rec["digests"])
                num = int(rec["batch"].lstrip("b") or "0")
                self._seq = max(self._seq, num + 1)
                for spec, digest in zip(rec["specs"], rec["digests"]):
                    req = self._requests.get(digest)
                    if req is None:
                        self._requests[digest] = _Request(digest, spec)
                    elif req.state == "failed":
                        # Resubmitted after a failure: eligible again.
                        req.state, req.error = "queued", None
            elif kind == "done":
                req = self._requests.get(rec["id"])
                if req is None:
                    continue
                result = self._load_result(rec["id"])
                if result is not None and \
                        result.get("output_digest") == rec.get("output_digest"):
                    req.state, req.result, req.error = "done", result, None
                # else: the DONE record outlived its result file; the
                # request stays queued and simply runs again.
            elif kind == "failed":
                req = self._requests.get(rec["id"])
                if req is not None and req.state != "done":
                    req.state, req.error = "failed", rec.get("error", "?")
        for batch in self._batches.values():
            for digest in batch:
                req = self._requests[digest]
                if req.state == "queued" and digest not in self._queue:
                    self._queue.append(digest)
        self._recovered = len(self._queue)
        self._completed = sum(1 for r in self._requests.values()
                              if r.state == "done")
        if obs.ACTIVE:
            if self._recovered:
                obs.inc("service_recovered_total", amount=self._recovered)
            obs.set_gauge("service_queue_depth", len(self._queue))

    def initiate_drain(self) -> dict:
        """Refuse new submissions; let accepted work finish.  Idempotent."""
        first = not self._draining.is_set()
        self._draining.set()
        with self._cond:
            pending = len(self._queue) + self._running
            self._cond.notify_all()
        if first and obs.ACTIVE:
            obs.set_gauge("service_draining", 1)
        if pending == 0:
            self._stop.set()
        return {"ok": True, "status": "draining", "pending": pending}

    def wait_drained(self, timeout_s: float | None = None) -> bool:
        """Block until the drain completed (all work settled)."""
        return self._stop.wait(timeout_s)

    def stop(self) -> None:
        """Hard stop for tests: no drain, just shut the machinery down."""
        self._draining.set()
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        self._close_listener()
        for t in self._threads:
            t.join(timeout=5)
        self.journal.close()

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    # -- socket plumbing -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(target=self._serve_connection,
                                 args=(conn,), daemon=True)
            t.start()
        self._close_listener()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                frame = wire.recv_frame(conn)
                if frame is None:
                    return
                ftype, payload = frame
                if ftype != REQUEST:
                    wire.send_json(conn, RESPONSE,
                                   {"ok": False, "error": "bad_request",
                                    "detail": f"unexpected frame type {ftype}"})
                    return
                try:
                    request = json.loads(payload.decode("utf-8"))
                except ValueError as exc:
                    wire.send_json(conn, RESPONSE,
                                   {"ok": False, "error": "bad_request",
                                    "detail": f"undecodable request: {exc}"})
                    return
                wire.send_json(conn, RESPONSE, self.handle(request))
        except (OSError, ConnectionError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- request dispatch ------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Execute one API op; always returns a response dict."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {"ok": False, "error": "bad_request",
                    "detail": f"unknown op {op!r}"}
        try:
            return handler(request)
        except Exception as exc:  # a handler bug must not kill the daemon
            return {"ok": False, "error": "internal",
                    "detail": repr(exc)}

    # -- API ops ---------------------------------------------------------------
    def _op_submit_batch(self, request: dict) -> dict:
        raw = request.get("requests")
        if not isinstance(raw, list) or not raw:
            return {"ok": False, "error": "bad_request",
                    "detail": "'requests' must be a non-empty list"}
        if self._draining.is_set():
            return {"ok": False, "error": "draining",
                    "detail": "service is draining; resubmit elsewhere"}
        try:
            specs = [normalize(s) for s in raw]
        except BadRequest as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        digests = [spec_digest(s) for s in specs]

        with self._cond:
            if self._draining.is_set():
                # Re-checked under the lock: a drain that races this
                # submission must not let work into a queue no worker
                # will ever service again.
                return {"ok": False, "error": "draining",
                        "detail": "service is draining; resubmit elsewhere"}
            admitted = set()
            new = []
            for spec, digest in zip(specs, digests):
                known = self._requests.get(digest)
                needs_slot = (known is None or known.state == "failed") \
                    and digest not in admitted
                if needs_slot:
                    admitted.add(digest)
                    new.append((spec, digest))
            depth = len(self._queue) + self._running
            if len(new) > self.config.queue_cap:
                return {"ok": False, "error": "bad_request",
                        "detail": f"batch needs {len(new)} slots but the "
                                  f"queue capacity is {self.config.queue_cap}"}
            if depth + len(new) > self.config.queue_cap:
                self._busy_rejections += 1
                if obs.ACTIVE:
                    obs.inc("service_busy_total")
                return {"ok": False, "error": "busy",
                        "retry_after_s": self.config.retry_after_s,
                        "queue_depth": depth,
                        "queue_cap": self.config.queue_cap}

            batch_id = f"b{self._seq:06d}"
            self._seq += 1
            # The point of no return: once this fsync completes the
            # batch survives any crash; only then is it acknowledged.
            self.journal.append({"rec": "submit", "batch": batch_id,
                                 "specs": specs, "digests": digests})
            self._batches[batch_id] = list(digests)
            for spec, digest in new:
                req = self._requests.get(digest)
                if req is None:
                    self._requests[digest] = _Request(digest, spec)
                else:  # failed request resubmitted: run it again
                    req.state, req.error = "queued", None
                self._queue.append(digest)
            dedup = len(digests) - len(new)
            self._cond.notify_all()
            depth = len(self._queue) + self._running
            states = [self._requests[d].public() for d in digests]
        if obs.ACTIVE:
            obs.inc("service_batches_total")
            obs.inc("service_requests_total", amount=len(digests))
            if dedup:
                obs.inc("service_dedup_hits_total", amount=dedup)
            obs.set_gauge("service_queue_depth", depth)
        return {"ok": True, "batch": batch_id, "requests": states,
                "deduped": dedup, "queue_depth": depth}

    def _op_status(self, request: dict) -> dict:
        batch = request.get("batch")
        if batch is not None:
            return self._batch_status(batch, with_results=False)
        with self._lock:
            counts: dict[str, int] = {}
            for req in self._requests.values():
                counts[req.state] = counts.get(req.state, 0) + 1
            return {
                "ok": True,
                "status": "draining" if self._draining.is_set() else "serving",
                "ready": self._ready.is_set() and not self._draining.is_set(),
                "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "queue_depth": len(self._queue) + self._running,
                "running": self._running,
                "queue_cap": self.config.queue_cap,
                "workers": self.config.workers,
                "batches": len(self._batches),
                "requests": counts,
                "completed_total": self._completed,
                "busy_total": self._busy_rejections,
                "recovered": self._recovered,
                "breaker": self._breaker.state(),
            }

    def _op_results(self, request: dict) -> dict:
        batch = request.get("batch")
        if not batch:
            return {"ok": False, "error": "bad_request",
                    "detail": "'results' needs a batch id"}
        return self._batch_status(batch, with_results=True)

    def _batch_status(self, batch: str, with_results: bool) -> dict:
        with self._lock:
            digests = self._batches.get(batch)
            if digests is None:
                return {"ok": False, "error": "not_found",
                        "detail": f"unknown batch {batch!r}"}
            rows = [self._requests[d].public(with_result=with_results)
                    for d in digests]
        complete = all(r["state"] in TERMINAL for r in rows)
        return {"ok": True, "batch": batch, "requests": rows,
                "complete": complete}

    def _op_wait(self, request: dict) -> dict:
        batch = request.get("batch")
        timeout_s = min(float(request.get("timeout_s", 60.0) or 60.0), 3600.0)
        deadline = time.monotonic() + timeout_s
        with self._cond:
            digests = self._batches.get(batch)
            if digests is None:
                return {"ok": False, "error": "not_found",
                        "detail": f"unknown batch {batch!r}"}
            while True:
                if all(self._requests[d].state in TERMINAL for d in digests):
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stop.is_set():
                    break
                self._cond.wait(min(remaining, 0.5))
        return self._batch_status(batch, with_results=False)

    def _op_health(self, request: dict) -> dict:
        return {"ok": True, "status": "alive", "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self._started_at, 3)}

    def _op_ready(self, request: dict) -> dict:
        if self._draining.is_set():
            return {"ok": False, "error": "draining"}
        if not self._ready.is_set():
            return {"ok": False, "error": "recovering"}
        return {"ok": True, "status": "ready"}

    def _op_metrics(self, request: dict) -> dict:
        if not obs.ACTIVE:
            return {"ok": False, "error": "metrics_disabled",
                    "detail": "start the daemon with metrics enabled "
                              "(repro-io serve --metrics)"}
        from repro.obs.export import render_prometheus

        return {"ok": True, "prometheus": render_prometheus(obs.registry())}

    def _op_drain(self, request: dict) -> dict:
        return self.initiate_drain()

    # -- the worker pool -------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            req = self._next_job()
            if req is None:
                self._maybe_finish_drain()
                return
            try:
                self._execute(req)
            except BaseException:
                # A worker must survive anything a job throws at it
                # that _execute failed to classify.
                with self._cond:
                    req.state = "failed"
                    req.error = "internal worker error"
                    self._running -= 1
                    self._cond.notify_all()

    def _next_job(self) -> _Request | None:
        with self._cond:
            while True:
                if self._queue:
                    digest = self._queue.popleft()
                    req = self._requests[digest]
                    req.state = "running"
                    self._running += 1
                    if obs.ACTIVE:
                        obs.set_gauge("service_queue_depth",
                                      len(self._queue) + self._running)
                    return req
                if self._stop.is_set() or self._draining.is_set():
                    return None
                self._cond.wait(0.2)

    def _maybe_finish_drain(self) -> None:
        """Last worker out flips the stop event once everything settled."""
        with self._cond:
            if self._draining.is_set() and not self._queue \
                    and self._running == 0:
                self._stop.set()
                self._cond.notify_all()

    def _execute(self, req: _Request) -> None:
        if self.config.slow_s > 0:
            time.sleep(self.config.slow_s)
        last_exc: BaseException | None = None
        for tier in self._breaker.plan():
            executor = None if tier == "serial" else tier
            try:
                result = run_request(
                    req.spec, executor=executor, retry=self.config.retry,
                    checkpoint_dir=self._ckpt_root / req.digest)
            except (BadRequest, SweepJobError) as exc:
                # The request itself is broken; no tier will save it.
                self._finish_failed(req, exc)
                return
            except INFRA_ERRORS as exc:
                self._breaker.record_failure(tier)
                last_exc = exc
                continue
            except Exception as exc:
                self._finish_failed(req, exc)
                return
            self._breaker.record_success(tier)
            self._finish_done(req, result)
            return
        self._finish_failed(
            req, last_exc or RuntimeError("no executor tier available"))

    def _result_path(self, digest: str) -> Path:
        return self._results_dir / f"{digest}.json"

    def _load_result(self, digest: str) -> dict | None:
        try:
            return json.loads(self._result_path(digest).read_text())
        except (OSError, ValueError):
            return None

    def _finish_done(self, req: _Request, result: dict) -> None:
        # Durability order: result file first (atomic), then the DONE
        # record that references it -- a record on disk always points
        # at a complete result.
        atomic_write_text(self._result_path(req.digest),
                          canonical_json(result))
        self.journal.append({"rec": "done", "id": req.digest,
                             "output_digest": result["output_digest"]})
        self._completed += 1
        if self._kill_after and self._completed >= self._kill_after:
            os._exit(CHAOS_EXIT_CODE)
        shutil.rmtree(self._ckpt_root / req.digest, ignore_errors=True)
        with self._cond:
            req.state, req.result, req.error = "done", result, None
            self._running -= 1
            self._cond.notify_all()
        if obs.ACTIVE:
            obs.inc("service_completed_total", kind=req.spec["kind"])
            obs.set_gauge("service_queue_depth",
                          len(self._queue) + self._running)

    def _finish_failed(self, req: _Request, exc: BaseException) -> None:
        error = repr(exc)
        self.journal.append({"rec": "failed", "id": req.digest,
                             "error": error})
        with self._cond:
            req.state, req.error = "failed", error
            self._running -= 1
            self._cond.notify_all()
        if obs.ACTIVE:
            obs.inc("service_failures_total", kind=req.spec["kind"])
            obs.set_gauge("service_queue_depth",
                          len(self._queue) + self._running)


def serve_forever(config: ServiceConfig) -> int:
    """Run a daemon until drained (op or SIGTERM); the CLI entry point.

    Prints ``LISTENING host port`` once accepting, so launchers can
    scrape the bound port exactly like ``repro-io workers launch``.
    """
    service = StudyService(config)
    host, port = service.start()
    print(f"LISTENING {host} {port}", flush=True)

    if threading.current_thread() is threading.main_thread():
        def _on_sigterm(signum, frame):
            service.initiate_drain()

        signal.signal(signal.SIGTERM, _on_sigterm)
        signal.signal(signal.SIGINT, _on_sigterm)

    while not service.wait_drained(timeout_s=0.5):
        pass
    service.stop()
    print("DRAINED", flush=True)
    return 0

"""Service wire protocol and client.

The daemon speaks length-prefixed JSON over TCP, reusing the framing
primitives of :mod:`repro.core.executors.wire` (the ``!IB`` header,
:func:`~repro.core.executors.wire.send_json`,
:func:`~repro.core.executors.wire.recv_frame`) with two new frame
types: REQUEST (client -> daemon) and RESPONSE (daemon -> client).
Every payload is a JSON object; a connection carries any number of
sequential request/response pairs and either side may close between
pairs.

Requests are ``{"op": ..., ...}``; responses always carry ``"ok"``.
Refusals are *responses*, not errors: ``{"ok": false, "error": <code>,
...}`` with machine-readable codes (``busy``, ``draining``,
``bad_request``, ``not_found``, ``not_ready``), so clients can react
to backpressure (``retry_after_s``) without parsing prose.

:class:`ServiceClient` is the blocking convenience wrapper the CLI and
tests use -- one connection per call, so a crashed daemon shows up as
``ConnectionError`` at the next call, never a wedged socket.
"""

from __future__ import annotations

import socket
import time

from repro.core.executors import wire

__all__ = ["REQUEST", "RESPONSE", "ServiceError", "ServiceClient",
           "request_once"]

#: Service frame types; numbered far from the executor protocol's 1-9
#: so a service frame sent to a sweep worker (or vice versa) is
#: recognizably foreign instead of quietly misparsed.
REQUEST = 32
RESPONSE = 33


class ServiceError(RuntimeError):
    """A transport- or protocol-level failure (not a refusal response)."""


def request_once(host: str, port: int, payload: dict,
                 timeout_s: float = 30.0) -> dict:
    """One request/response exchange on a fresh connection."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        wire.send_json(sock, REQUEST, payload)
        frame = wire.recv_frame(sock)
    if frame is None:
        raise ServiceError(f"service at {host}:{port} closed the connection")
    ftype, body = frame
    if ftype != RESPONSE:
        raise ServiceError(f"expected RESPONSE frame, got type {ftype}")
    import json

    return json.loads(body.decode("utf-8"))


class ServiceClient:
    """Blocking client for the study service."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def call(self, op: str, **fields) -> dict:
        payload = {"op": op}
        payload.update(fields)
        return request_once(self.host, self.port, payload,
                            timeout_s=self.timeout_s)

    # -- the API ---------------------------------------------------------------
    def submit_batch(self, requests: list[dict]) -> dict:
        return self.call("submit_batch", requests=requests)

    def status(self, batch: str | None = None) -> dict:
        return self.call("status", **({"batch": batch} if batch else {}))

    def results(self, batch: str) -> dict:
        return self.call("results", batch=batch)

    def wait(self, batch: str, timeout_s: float = 60.0) -> dict:
        """Block (server-side) until the batch settles or the timeout."""
        return self.call("wait", batch=batch, timeout_s=timeout_s)

    def health(self) -> dict:
        return self.call("health")

    def ready(self) -> dict:
        return self.call("ready")

    def metrics(self) -> dict:
        return self.call("metrics")

    def drain(self) -> dict:
        return self.call("drain")

    # -- conveniences ----------------------------------------------------------
    def submit_and_wait(self, requests: list[dict],
                        timeout_s: float = 120.0) -> dict:
        """Submit, wait for completion, return the results response."""
        sub = self.submit_batch(requests)
        if not sub.get("ok"):
            return sub
        self.wait(sub["batch"], timeout_s=timeout_s)
        return self.results(sub["batch"])

    def wait_ready(self, timeout_s: float = 30.0,
                   poll_s: float = 0.05) -> dict:
        """Poll the readiness probe until it reports ready (or timeout)."""
        deadline = time.monotonic() + timeout_s
        last: dict = {"ok": False, "error": "never polled"}
        while time.monotonic() < deadline:
            try:
                last = self.ready()
            except (OSError, ServiceError) as exc:
                last = {"ok": False, "error": repr(exc)}
            else:
                if last.get("ok"):
                    return last
            time.sleep(poll_s)
        raise TimeoutError(f"service not ready after {timeout_s}s: {last}")

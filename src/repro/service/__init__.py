"""repro.service -- the resilient study service.

Turns the one-shot CLI pipeline into a system serving traffic: a
long-lived daemon (:mod:`.daemon`) accepts batches of study requests
(``select`` / ``characterize`` / ``full_study`` specs, :mod:`.spec`)
over a length-prefixed JSON socket protocol (:mod:`.protocol`),
content-addresses them for dedup, runs them on a bounded worker pool
behind admission control, and survives its own failures:

* **crash safety** -- a write-ahead journal (:mod:`.journal`) plus
  atomic result files mean ``kill -9`` + restart recovers every
  acknowledged batch with bit-identical ``output_digest``;
* **backpressure** -- over-capacity submissions get a deterministic
  BUSY response with ``retry_after_s`` instead of queue space;
* **graceful degradation** -- an executor circuit breaker
  (:mod:`.breaker`) steps cluster -> pool -> serial when sweep
  infrastructure dies faster than the retry budget;
* **graceful drain** -- SIGTERM (or the ``drain`` op) refuses new
  work and finishes what was accepted.

CLI: ``repro-io serve | submit | status``; failure semantics are
documented in docs/robustness.md.
"""

from __future__ import annotations

from .breaker import CircuitBreaker, ladder_for
from .daemon import ServiceConfig, StudyService, serve_forever
from .journal import Journal, canonical_json
from .protocol import ServiceClient, ServiceError
from .runner import result_digest, run_request
from .spec import BadRequest, normalize, spec_digest

__all__ = [
    "ServiceConfig", "StudyService", "serve_forever",
    "ServiceClient", "ServiceError",
    "Journal", "canonical_json",
    "CircuitBreaker", "ladder_for",
    "BadRequest", "normalize", "spec_digest",
    "run_request", "result_digest",
]

"""Durable append-only request journal (write-ahead log).

The study service acknowledges a ``submit_batch`` only after the batch
is on disk, and marks a request complete only after its result file is
on disk -- so a ``kill -9`` at any instant loses no acknowledged work:
on restart the daemon replays the journal, re-adopts completed results,
and re-enqueues whatever was still in flight.

Format: one record per line, ::

    <crc32 hex8> <canonical JSON body>\n

The CRC is computed over the JSON body, so a torn tail (the one write a
crash can interrupt) is detected and dropped at replay instead of
poisoning recovery -- everything *before* the torn line is intact
because appends are flushed and fsynced before the caller proceeds.
Records are never rewritten; compaction is simply starting a new
journal directory.

Record types are the daemon's business; the journal only guarantees
that :meth:`Journal.replay` yields exactly the records whose append
call returned, in order.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Iterator

__all__ = ["Journal", "canonical_json"]


def canonical_json(obj) -> str:
    """One canonical text form per value: sorted keys, no whitespace.

    Used for journal bodies and for result digests -- two runs that
    compute equal values produce byte-identical encodings.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _crc(body: str) -> str:
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


class Journal:
    """Append-only record log with torn-tail detection."""

    FILENAME = "journal.wal"

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self._fh = None
        self._wlock = threading.Lock()  # appends come from many threads

    # -- writing ---------------------------------------------------------------
    def _handle(self):
        if self._fh is None:
            # Line-buffered append; binary would complicate the line
            # framing for no gain (bodies are ASCII JSON).
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict, sync: bool = True) -> None:
        """Durably append one record; returns only once it is on disk.

        ``sync=False`` skips the fsync for records whose loss is
        acceptable (advisory markers); acknowledged state must use the
        default.
        """
        body = canonical_json(record)
        with self._wlock:
            fh = self._handle()
            fh.write(f"{_crc(body)} {body}\n")
            fh.flush()
            if sync:
                os.fsync(fh.fileno())

    def close(self) -> None:
        with self._wlock:
            if self._fh is not None:
                try:
                    self._fh.close()
                finally:
                    self._fh = None

    # -- replay ----------------------------------------------------------------
    def replay(self) -> Iterator[dict]:
        """Yield every intact record, in append order.

        Stops at the first torn or corrupt line: by construction only
        the final append can be torn, so anything after a bad line is
        untrustworthy and dropped.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    return  # torn tail: the crash interrupted this write
                crc, _, body = line.rstrip("\n").partition(" ")
                if not body or _crc(body) != crc:
                    return
                try:
                    yield json.loads(body)
                except ValueError:
                    return

    def records(self) -> list[dict]:
        return list(self.replay())

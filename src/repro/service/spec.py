"""Request specs: validation, normalization and content addressing.

A service request is plain JSON -- it crosses the wire, lands in the
journal, and keys the dedup map -- so everything here is defined on
dicts, not classes.  ``normalize`` canonicalizes a spec (defaults
filled in, fields ordered) and ``spec_digest`` content-addresses the
*result-determining* fields: two requests that would compute the same
answer share one digest, one execution and one result, whatever batch
they arrived in.  QoS fields (``deadline_s``, ``jobs``) are
deliberately outside the digest -- a tighter deadline or a wider
ingest pool does not change the answer, only how long we are willing
to wait for it.
"""

from __future__ import annotations

import dataclasses
import hashlib

from .journal import canonical_json

__all__ = [
    "KINDS", "BadRequest", "resolve_app", "resolve_factories",
    "normalize", "spec_digest",
]

#: Request kinds the runner knows how to execute.
KINDS = ("select", "characterize", "full_study")


class BadRequest(ValueError):
    """A spec that can never execute; rejected at admission, never journaled."""


def resolve_app(name: str, np: int):
    """App name -> (program, params) with ``np`` threaded in.

    The service-side twin of the CLI's app resolution: same rules
    (square process counts for MADbench2/BT-IO, ``np`` threaded into
    params dataclasses), but raising :class:`BadRequest` instead of
    ``SystemExit`` so a daemon survives a bad spec.
    """
    from repro.apps.btio import BTIOParams, btio_program
    from repro.apps.ior import IORParams, ior_program
    from repro.apps.madbench2 import MADbench2Params, madbench2_program
    from repro.apps.roms import ROMSParams, roms_program
    from repro.apps.synthetic import SyntheticParams, synthetic_program

    if name == "madbench2":
        program, params = madbench2_program, MADbench2Params()
    elif name.startswith("btio"):
        cls = name.split("-")[1] if "-" in name else "C"
        program, params = btio_program, BTIOParams(cls=cls)
    elif name == "synthetic":
        program, params = synthetic_program, SyntheticParams()
    elif name == "ior":
        program, params = ior_program, IORParams()
    elif name == "roms":
        program, params = roms_program, ROMSParams()
    else:
        raise BadRequest(f"unknown app {name!r} "
                         "(madbench2, btio-A/B/C/D, synthetic, ior, roms)")
    if np <= 0:
        raise BadRequest(f"np must be positive, got {np}")
    if name == "madbench2" or name.startswith("btio"):
        root = int(round(np ** 0.5))
        if root * root != np:
            raise BadRequest(
                f"{name} requires a square number of processes, got np={np}")
    if any(f.name == "np" for f in dataclasses.fields(params)):
        params = dataclasses.replace(params, np=np)
    return program, params


def resolve_factories(names) -> dict:
    """Configuration names -> factory dict (:class:`BadRequest` on unknowns)."""
    from repro.clusters import ALL_CONFIGURATIONS

    factories = {}
    for name in names:
        try:
            factories[name] = ALL_CONFIGURATIONS[name]
        except KeyError:
            raise BadRequest(
                f"unknown configuration {name!r}; choose from "
                f"{', '.join(ALL_CONFIGURATIONS)}") from None
    return factories


def normalize(spec: dict) -> dict:
    """Validate a raw spec and return its canonical form.

    Raises :class:`BadRequest` on anything the runner could not
    execute: unknown kind/app/configuration, bad process counts, a
    non-positive deadline.  Validation runs the same resolution the
    runner will, so an accepted (journaled) spec cannot fail for
    being malformed -- only for runtime reasons.
    """
    if not isinstance(spec, dict):
        raise BadRequest(f"request spec must be an object, got {type(spec).__name__}")
    kind = spec.get("kind", "select")
    if kind not in KINDS:
        raise BadRequest(f"unknown request kind {kind!r}; one of {KINDS}")
    app = spec.get("app")
    if not isinstance(app, str) or not app:
        raise BadRequest("request spec needs an 'app' name")
    np = spec.get("np", 16)
    if not isinstance(np, int) or isinstance(np, bool):
        raise BadRequest(f"np must be an integer, got {np!r}")
    resolve_app(app, np)  # raises BadRequest on any app/np problem

    out = {"kind": kind, "app": app, "np": np}
    if kind in ("select", "full_study"):
        configs = spec.get("configs")
        if isinstance(configs, str):
            configs = [c for c in configs.split(",") if c]
        if not configs:
            raise BadRequest(f"{kind!r} requests need a 'configs' list")
        resolve_factories(configs)
        out["configs"] = list(configs)
    if kind == "select":
        out["lattice"] = bool(spec.get("lattice", False))

    deadline = spec.get("deadline_s")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise BadRequest(f"deadline_s must be a number, got {deadline!r}") \
                from None
        if deadline <= 0:
            raise BadRequest(f"deadline_s must be positive, got {deadline}")
        out["deadline_s"] = deadline

    jobs = spec.get("jobs")
    if jobs is not None:
        from repro.tracer.ingest import parse_jobs

        try:
            jobs = parse_jobs(jobs, what="jobs")
        except ValueError as exc:
            raise BadRequest(str(exc)) from None
        out["jobs"] = jobs
    return out


def spec_digest(spec: dict) -> str:
    """Content address of a normalized spec's result-determining fields."""
    keyed = {k: v for k, v in spec.items() if k not in ("deadline_s", "jobs")}
    return hashlib.sha256(canonical_json(keyed).encode("utf-8")).hexdigest()

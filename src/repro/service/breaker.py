"""Executor circuit breaker: degrade cluster -> pool -> serial.

The daemon never refuses work because its *infrastructure* is sick --
studies are pure in-process computations at heart, so there is always
a tier that can run them (the serial backend).  What the breaker
prevents is paying the cluster's connect/handshake/requeue tax on
every request while workers are dying faster than the retry budget
absorbs: after ``threshold`` consecutive infrastructure failures a
tier's circuit opens and requests start at the next tier down.  After
``cooldown_s`` the circuit goes half-open -- the next request probes
the tier once; success closes it, failure re-opens it for another
cooldown.

Infrastructure failures are connection/worker-pool errors raised by a
backend *around* a job, not errors raised *by* a job: a study that
raises on every backend is the request's problem and is reported as a
request failure, not held against the tier.
"""

from __future__ import annotations

import threading
import time

from repro import obs

__all__ = ["CircuitBreaker", "INFRA_ERRORS", "ladder_for"]

#: Exception types that indicate the *backend*, not the request, failed.
#: BrokenProcessPool subclasses RuntimeError; worker-spawn failures in
#: the cluster backend raise RuntimeError too.
INFRA_ERRORS = (ConnectionError, OSError, RuntimeError)

_LADDER = ("cluster", "pool", "serial")


def ladder_for(executor: str | None) -> tuple[str, ...]:
    """Degradation ladder starting at the configured tier.

    ``cluster -> pool -> serial``; ``pool -> serial``; ``serial`` (or
    nothing configured) has nowhere to fall and never trips.
    """
    if executor is None:
        return ("serial",)
    try:
        start = _LADDER.index(executor)
    except ValueError:
        raise ValueError(f"unknown executor tier {executor!r}; "
                         f"one of {_LADDER}") from None
    return _LADDER[start:]


class CircuitBreaker:
    """Per-tier failure tracking with open/half-open/closed circuits."""

    def __init__(self, tiers: tuple[str, ...],
                 threshold: int = 2, cooldown_s: float = 30.0,
                 clock=time.monotonic):
        if not tiers:
            raise ValueError("need at least one executor tier")
        self.tiers = tuple(tiers)
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = {t: 0 for t in self.tiers}
        self._open_until = {t: 0.0 for t in self.tiers}
        self._trips = 0

    # -- queries ---------------------------------------------------------------
    def plan(self) -> list[str]:
        """Tiers to try for one request, preferred first.

        Open circuits are skipped (unless their cooldown has expired,
        which lets one request probe them); the last tier is always
        included so a request can never find an empty plan.
        """
        now = self._clock()
        with self._lock:
            usable = [t for t in self.tiers if now >= self._open_until[t]]
        if not usable:
            usable = [self.tiers[-1]]
        return usable

    def current_tier(self) -> str:
        return self.plan()[0]

    # -- updates ---------------------------------------------------------------
    def record_success(self, tier: str) -> None:
        with self._lock:
            self._failures[tier] = 0
            self._open_until[tier] = 0.0

    def record_failure(self, tier: str) -> bool:
        """Count one infrastructure failure; True when the circuit opened."""
        with self._lock:
            self._failures[tier] += 1
            already_open = self._open_until[tier] > 0.0
            tripped = self._failures[tier] >= self.threshold
            if tripped:
                self._open_until[tier] = self._clock() + self.cooldown_s
                if not already_open:
                    self._trips += 1
        if tripped and obs.ACTIVE:
            obs.inc("service_breaker_trips_total", tier=tier)
        return tripped

    def state(self) -> dict:
        """JSON-friendly snapshot for the status/stats API."""
        now = self._clock()
        with self._lock:
            return {
                "tiers": list(self.tiers),
                "current": next(
                    (t for t in self.tiers if now >= self._open_until[t]),
                    self.tiers[-1]),
                "open": sorted(t for t in self.tiers
                               if now < self._open_until[t]),
                "failures": dict(self._failures),
                "trips": self._trips,
            }

"""Atomic artifact writes: write-temp-then-rename.

Every artifact the pipeline persists (trace bundles, models, benchmark
reports, sweep checkpoints) goes through these helpers so an
interrupted run can never leave a half-written file that a later load
misparses: the temp file lives in the *same directory* as the target
(``os.replace`` is only atomic within one filesystem) and the rename
happens only after a flush+fsync.  A crash mid-write leaves the old
content (or nothing) in place, plus at worst an orphaned ``*.tmp*``
file that is safe to delete.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

#: Serial for temp names: two threads of one process writing the same
#: target must never share a temp file (pid alone cannot tell them
#: apart -- the study service's worker pool writes store entries for
#: identical digests concurrently).
_TMP_SEQ = itertools.count()


@contextmanager
def atomic_open(path: str | Path, mode: str = "w") -> Iterator:
    """Open a temp file next to ``path``; rename over it on success.

    ``mode`` must be a write mode ("w", "wb", ...).  On any exception
    the temp file is removed and ``path`` is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as f:
            yield f
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def atomic_path(path: str | Path) -> Iterator[Path]:
    """Yield a temp *path* (same directory, same suffix) to hand to
    libraries that write by filename (``np.savez_compressed`` appends
    ``.npz`` unless the name already ends with it); renamed over
    ``path`` on success, removed on failure.

    The temp name is reserved with ``O_CREAT | O_EXCL`` under a
    pid+thread+serial suffix, so two writers racing on the same target
    -- concurrent service workers, sweep processes on a shared
    filesystem -- can never interleave bytes in one temp file: each
    writes its own and the final renames settle last-writer-wins with
    a complete file either way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    while True:
        tmp = path.with_name(
            f".{path.stem}.{os.getpid()}.{threading.get_ident():x}."
            f"{next(_TMP_SEQ):x}.tmp{path.suffix}")
        try:
            os.close(os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                             0o600))
        except FileExistsError:
            continue  # leftover from a crashed writer: pick a new name
        break
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    with atomic_open(path, "w") as f:
        f.write(text)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    with atomic_open(path, "wb") as f:
        f.write(data)

"""Atomic artifact writes: write-temp-then-rename.

Every artifact the pipeline persists (trace bundles, models, benchmark
reports, sweep checkpoints) goes through these helpers so an
interrupted run can never leave a half-written file that a later load
misparses: the temp file lives in the *same directory* as the target
(``os.replace`` is only atomic within one filesystem) and the rename
happens only after a flush+fsync.  A crash mid-write leaves the old
content (or nothing) in place, plus at worst an orphaned ``*.tmp*``
file that is safe to delete.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


@contextmanager
def atomic_open(path: str | Path, mode: str = "w") -> Iterator:
    """Open a temp file next to ``path``; rename over it on success.

    ``mode`` must be a write mode ("w", "wb", ...).  On any exception
    the temp file is removed and ``path`` is left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, mode) as f:
            yield f
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextmanager
def atomic_path(path: str | Path) -> Iterator[Path]:
    """Yield a temp *path* (same directory, same suffix) to hand to
    libraries that write by filename (``np.savez_compressed`` appends
    ``.npz`` unless the name already ends with it); renamed over
    ``path`` on success, removed on failure."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{os.getpid()}.tmp{path.suffix}")
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    with atomic_open(path, "w") as f:
        f.write(text)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    with atomic_open(path, "wb") as f:
        f.write(data)

"""Columnar trace representation -- the characterization fast path.

A :class:`TraceColumns` holds one trace as parallel arrays (one per
Fig. 2 column) instead of one :class:`~repro.tracer.tracefile.TraceRecord`
dataclass per row.  This is the same storage idea that gives tracing
tools like Recorder and Darshan their scalability: at millions of I/O
events, per-event Python objects dominate both memory and CPU, while
columns parse in bulk, sort with one ``lexsort`` and feed the
vectorized LAP/phase kernels of :mod:`repro.core.lap`.

Two interchangeable backends:

* ``"numpy"`` -- int64/float64 ``ndarray`` columns (the default when
  numpy is importable and ``REPRO_NO_NUMPY`` is not set);
* ``"python"`` -- plain lists of ints/floats, so numpy stays an
  *optional* dependency.  Every operation, including the packed binary
  format, works identically on both.

On-disk formats:

* the Fig. 2 **text** format (via :func:`read_trace_columns`, sharing
  the strict header/error handling of ``read_trace_file``);
* a **packed-struct binary** format (``.trc``: magic + JSON header +
  little-endian int64/float64 column blobs), readable and writable by
  both backends;
* a **compressed npz** format (``.npz``, numpy only) for the smallest
  on-disk footprint.

Round-trip parity between the three is asserted by
``tests/tracer/test_columns.py``.
"""

from __future__ import annotations

import json
import os
import re
import sys
from array import array
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .tracefile import ABS_OFFSET_UNKNOWN, HEADER, TraceRecord

try:  # numpy is optional: every code path below has a pure-Python twin
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

#: Column names in serialization order (ints first, then floats).
INT_COLUMNS = ("rank", "file_id", "op_code", "offset", "tick",
               "request_size", "abs_offset")
FLOAT_COLUMNS = ("time", "duration")
ALL_COLUMNS = INT_COLUMNS + FLOAT_COLUMNS

#: Packed binary format magic (version 1).
MAGIC = b"REPROTRC1\n"

_TRUTHY = ("1", "true", "yes", "on")


def numpy_enabled() -> bool:
    """numpy importable and not disabled via ``REPRO_NO_NUMPY``."""
    return np is not None and \
        os.environ.get("REPRO_NO_NUMPY", "").lower() not in _TRUTHY


def default_backend() -> str:
    """The column backend new TraceColumns use: "numpy" or "python"."""
    return "numpy" if numpy_enabled() else "python"


def _as_int_column(values, backend: str):
    if backend == "numpy":
        return np.asarray(values, dtype=np.int64)
    return list(values)


def _as_float_column(values, backend: str):
    if backend == "numpy":
        return np.asarray(values, dtype=np.float64)
    return list(values)


class TraceColumns:
    """One trace as parallel columns plus an interned op-name table."""

    __slots__ = ALL_COLUMNS + ("op_table", "backend")

    def __init__(self, *, rank, file_id, op_code, offset, tick,
                 request_size, time, duration, abs_offset,
                 op_table: Sequence[str], backend: str | None = None):
        backend = backend or default_backend()
        if backend not in ("numpy", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "numpy" and np is None:
            raise RuntimeError("numpy backend requested but numpy is not "
                               "importable")
        self.backend = backend
        self.op_table = list(op_table)
        self.rank = _as_int_column(rank, backend)
        self.file_id = _as_int_column(file_id, backend)
        self.op_code = _as_int_column(op_code, backend)
        self.offset = _as_int_column(offset, backend)
        self.tick = _as_int_column(tick, backend)
        self.request_size = _as_int_column(request_size, backend)
        self.abs_offset = _as_int_column(abs_offset, backend)
        self.time = _as_float_column(time, backend)
        self.duration = _as_float_column(duration, backend)

    # -- construction ---------------------------------------------------------
    @classmethod
    def _empty_lists(cls) -> dict[str, list]:
        return {name: [] for name in ALL_COLUMNS}

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord],
                     backend: str | None = None) -> "TraceColumns":
        """Build columns from TraceRecord rows (order preserved)."""
        cols = cls._empty_lists()
        op_table: list[str] = []
        op_index: dict[str, int] = {}
        append = [cols[name].append for name in
                  ("rank", "file_id", "op_code", "offset", "tick",
                   "request_size", "time", "duration", "abs_offset")]
        a_rank, a_fid, a_op, a_off, a_tick, a_rs, a_t, a_d, a_abs = append
        for r in records:
            code = op_index.get(r.op)
            if code is None:
                code = op_index[r.op] = len(op_table)
                op_table.append(r.op)
            a_rank(r.rank); a_fid(r.file_id); a_op(code)
            a_off(r.offset); a_tick(r.tick); a_rs(r.request_size)
            a_t(r.time); a_d(r.duration); a_abs(r.abs_offset)
        return cls(op_table=op_table, backend=backend, **cols)

    @classmethod
    def from_stream(cls, chunks: Iterable["TraceColumns"],
                    backend: str | None = None) -> "TraceColumns":
        """Build one trace from an iterable of column *chunks*.

        Like :meth:`concat`, but consuming the chunks lazily (the
        iterable is never materialized as a list) and remapping each
        chunk's op codes onto one merged table in first-appearance
        order -- the same interning order ``from_records`` /
        ``from_events`` produce, so the result's
        :meth:`content_digest` matches the equivalent one-shot build.
        """
        out_backend = backend
        cols = cls._empty_lists()
        op_table: list[str] = []
        op_index: dict[str, int] = {}
        for part in chunks:
            if out_backend is None:
                out_backend = part.backend
            remap = []
            for op in part.op_table:
                code = op_index.get(op)
                if code is None:
                    code = op_index[op] = len(op_table)
                    op_table.append(op)
                remap.append(code)
            lists = part.column_lists()
            if remap != list(range(len(remap))):
                lists["op_code"] = [remap[c] for c in lists["op_code"]]
            for name in ALL_COLUMNS:
                cols[name].extend(lists[name])
        return cls(op_table=op_table, backend=out_backend, **cols)

    @classmethod
    def from_events(cls, events: Iterable,
                    backend: str | None = None) -> "TraceColumns":
        """Build columns straight from engine ``IOEvent`` objects."""
        cols = cls._empty_lists()
        op_table: list[str] = []
        op_index: dict[str, int] = {}
        for e in events:
            code = op_index.get(e.op)
            if code is None:
                code = op_index[e.op] = len(op_table)
                op_table.append(e.op)
            cols["rank"].append(e.rank)
            cols["file_id"].append(e.file_id)
            cols["op_code"].append(code)
            cols["offset"].append(e.offset)
            cols["tick"].append(e.tick)
            cols["request_size"].append(e.request_size)
            cols["time"].append(e.time)
            cols["duration"].append(e.duration)
            cols["abs_offset"].append(e.abs_offset)
        return cls(op_table=op_table, backend=backend, **cols)

    # -- basic views ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rank)

    def column_lists(self) -> dict[str, list]:
        """Every column as a plain Python list (cheap on both backends)."""
        out = {}
        for name in ALL_COLUMNS:
            col = getattr(self, name)
            out[name] = col.tolist() if self.backend == "numpy" else list(col)
        return out

    def kind_table(self) -> list[str]:
        """op_code -> "write"/"read", mirroring ``TraceRecord.kind``."""
        return ["write" if "write" in op else "read" for op in self.op_table]

    def op_at(self, i: int) -> str:
        return self.op_table[int(self.op_code[i])]

    def record(self, i: int) -> TraceRecord:
        """Materialize one row as a TraceRecord (on demand only)."""
        return TraceRecord(
            rank=int(self.rank[i]), file_id=int(self.file_id[i]),
            op=self.op_at(i), offset=int(self.offset[i]),
            tick=int(self.tick[i]), request_size=int(self.request_size[i]),
            time=float(self.time[i]), duration=float(self.duration[i]),
            abs_offset=int(self.abs_offset[i]))

    def iter_records(self) -> Iterator[TraceRecord]:
        cols = self.column_lists()
        table = self.op_table
        for rank, fid, code, off, tick, rs, t, d, aoff in zip(
                cols["rank"], cols["file_id"], cols["op_code"],
                cols["offset"], cols["tick"], cols["request_size"],
                cols["time"], cols["duration"], cols["abs_offset"]):
            yield TraceRecord(rank=rank, file_id=fid, op=table[code],
                              offset=off, tick=tick, request_size=rs,
                              time=t, duration=d, abs_offset=aoff)

    def to_records(self) -> list[TraceRecord]:
        return list(self.iter_records())

    @property
    def total_bytes(self) -> int:
        if self.backend == "numpy":
            return int(self.request_size.sum())
        return sum(self.request_size)

    @property
    def nfiles(self) -> int:
        if self.backend == "numpy":
            return len(np.unique(self.file_id)) if len(self) else 0
        return len(set(self.file_id))

    # -- reordering -----------------------------------------------------------
    def take(self, indices) -> "TraceColumns":
        """New TraceColumns holding rows ``indices`` in that order."""
        kwargs = {}
        if self.backend == "numpy":
            if isinstance(indices, range) and indices.step == 1:
                # contiguous row window: O(1) views instead of an O(n)
                # index materialization + fancy-index copy -- this is
                # the binary-bundle streaming re-slice hot path
                for name in ALL_COLUMNS:
                    kwargs[name] = getattr(self, name)[indices.start:
                                                       indices.stop]
                return TraceColumns(op_table=self.op_table,
                                    backend=self.backend, **kwargs)
            idx = np.asarray(indices)
            for name in ALL_COLUMNS:
                kwargs[name] = getattr(self, name)[idx]
        else:
            indices = list(indices)
            for name in ALL_COLUMNS:
                col = getattr(self, name)
                kwargs[name] = [col[i] for i in indices]
        return TraceColumns(op_table=self.op_table, backend=self.backend,
                            **kwargs)

    def sorted_canonical(self) -> "TraceColumns":
        """Stable sort by (rank, time, tick) -- the Tracer bundle order."""
        n = len(self)
        if n <= 1:
            return self
        if self.backend == "numpy":
            order = np.lexsort((self.tick, self.time, self.rank))
            return self.take(order)
        order = sorted(range(n), key=lambda i: (self.rank[i], self.time[i],
                                                self.tick[i]))
        return self.take(order)

    @classmethod
    def concat(cls, parts: Sequence["TraceColumns"],
               backend: str | None = None) -> "TraceColumns":
        """Concatenate traces (per-rank files -> one bundle), remapping
        each part's op codes onto a merged op table."""
        backend = backend or (parts[0].backend if parts else default_backend())
        op_table: list[str] = []
        op_index: dict[str, int] = {}
        if backend == "numpy" and np is not None \
                and all(p.backend == "numpy" for p in parts):
            # array fast path: remap op codes through a lookup vector
            # and concatenate columns wholesale -- no per-row Python
            # loop.  Interning order (first appearance across parts)
            # matches the list path, so content_digest is unchanged.
            arrs: dict[str, list] = {name: [] for name in ALL_COLUMNS}
            for part in parts:
                remap = []
                for op in part.op_table:
                    code = op_index.get(op)
                    if code is None:
                        code = op_index[op] = len(op_table)
                        op_table.append(op)
                    remap.append(code)
                codes = part.op_code
                if remap != list(range(len(remap))) and len(codes):
                    codes = np.asarray(remap, dtype=np.int64)[codes]
                for name in ALL_COLUMNS:
                    col = codes if name == "op_code" else getattr(part, name)
                    arrs[name].append(col)
            kwargs = {}
            for name in ALL_COLUMNS:
                if arrs[name]:
                    kwargs[name] = np.concatenate(arrs[name])
                else:
                    dtype = np.float64 if name in FLOAT_COLUMNS else np.int64
                    kwargs[name] = np.zeros(0, dtype=dtype)
            return cls(op_table=op_table, backend=backend, **kwargs)
        cols = cls._empty_lists()
        for part in parts:
            remap = []
            for op in part.op_table:
                code = op_index.get(op)
                if code is None:
                    code = op_index[op] = len(op_table)
                    op_table.append(op)
                remap.append(code)
            lists = part.column_lists()
            lists["op_code"] = [remap[c] for c in lists["op_code"]]
            for name in ALL_COLUMNS:
                cols[name].extend(lists[name])
        return cls(op_table=op_table, backend=backend, **cols)

    def content_digest(self) -> str:
        """sha256 hex digest of the trace content (backend-independent).

        Hashes per-column sub-digests of the canonical little-endian
        column blobs (the packed ``.trc`` encoding) plus the op table,
        so the numpy and python backends -- and a round-trip through
        any of the on-disk formats -- produce the same digest.  Used as
        the content address of characterization results in the
        persistent store.

        The column sub-digest structure makes the digest *streamable*:
        a :class:`StreamDigest` fed the same rows chunk by chunk
        finalizes to the identical hex string without ever holding the
        full columns (per-chunk blobs concatenate to per-column blobs).
        """
        sd = StreamDigest()
        sd.update({name: getattr(self, name) for name in ALL_COLUMNS},
                  backend=self.backend)
        return sd.finalize(self.op_table)

    # -- persistence ----------------------------------------------------------
    def dump_trc(self, f) -> None:
        """Write the packed ``.trc`` encoding to a binary file object.

        This is the canonical compact bundle: magic + JSON header +
        little-endian int64/float64 column blobs.  It doubles as the
        wire encoding of a trace (``to_bytes``) for the cluster
        executor -- columns never cross a socket as pickles.
        """
        f.write(MAGIC)
        header = {"version": 1, "n": len(self),
                  "op_table": self.op_table,
                  "columns": list(ALL_COLUMNS)}
        f.write(json.dumps(header).encode("utf-8") + b"\n")
        for name in INT_COLUMNS:
            f.write(_int_blob(getattr(self, name), self.backend))
        for name in FLOAT_COLUMNS:
            f.write(_float_blob(getattr(self, name), self.backend))

    @classmethod
    def load_trc(cls, f, backend: str | None = None,
                 what: str = "<stream>") -> "TraceColumns":
        """Read one packed ``.trc`` encoding from a binary file object."""
        backend = backend or default_backend()
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{what}: not a packed trace file "
                             f"(bad magic {magic!r})")
        header = json.loads(f.readline().decode("utf-8"))
        n = header["n"]
        kwargs = {}
        for name in INT_COLUMNS:
            kwargs[name] = _read_int_blob(f, n, backend)
        for name in FLOAT_COLUMNS:
            kwargs[name] = _read_float_blob(f, n, backend)
        return cls(op_table=header["op_table"], backend=backend, **kwargs)

    def to_bytes(self) -> bytes:
        """The packed ``.trc`` encoding as one bytes object."""
        import io

        buf = io.BytesIO()
        self.dump_trc(buf)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes,
                   backend: str | None = None) -> "TraceColumns":
        """Decode a :meth:`to_bytes` blob (the ``.trc`` wire format)."""
        import io

        return cls.load_trc(io.BytesIO(data), backend=backend,
                            what="<bytes>")

    def save(self, path: str | Path) -> Path:
        """Write the binary trace: ``.npz`` (numpy) or packed ``.trc``.

        Both formats write atomically (temp file in the same directory,
        then rename): a killed run never leaves a truncated bundle that
        a later :meth:`load` would reject.
        """
        from repro.ioutil import atomic_path

        path = Path(path)
        if path.suffix == ".npz":
            if np is None:
                raise RuntimeError(".npz requires numpy; use the packed "
                                   "'.trc' format instead")
            with atomic_path(path) as tmp:
                np.savez_compressed(
                    tmp, op_table=np.array(self.op_table, dtype=str),
                    **{name: np.asarray(getattr(self, name))
                       for name in ALL_COLUMNS})
            return path
        with atomic_path(path) as tmp:
            with tmp.open("wb") as f:
                self.dump_trc(f)
        return path

    @classmethod
    def load(cls, path: str | Path,
             backend: str | None = None) -> "TraceColumns":
        """Read a binary trace written by :meth:`save` (either format)."""
        path = Path(path)
        backend = backend or default_backend()
        if path.suffix == ".npz":
            if np is None:
                raise RuntimeError(f"{path} is an .npz trace but numpy is "
                                   "not importable")
            with np.load(path) as data:
                op_table = [str(x) for x in data["op_table"]]
                kwargs = {name: data[name] for name in ALL_COLUMNS}
            if backend == "python":
                kwargs = {k: v.tolist() for k, v in kwargs.items()}
            return cls(op_table=op_table, backend=backend, **kwargs)
        with path.open("rb") as f:
            return cls.load_trc(f, backend=backend, what=str(path))


class StreamDigest:
    """Running :meth:`TraceColumns.content_digest` over column chunks.

    Keeps one sha256 per column (O(1) memory however long the trace);
    :meth:`update` hashes a chunk's column blobs, :meth:`finalize`
    combines the sub-digests with the header exactly as
    ``content_digest`` does.  Op codes must already be *global* (interned
    against the final op table in first-appearance order) -- the
    :class:`~repro.core.lap.LAPFolder` does that remapping as it folds.
    """

    __slots__ = ("_cols", "nrows")

    def __init__(self):
        import hashlib

        self._cols = {name: hashlib.sha256() for name in ALL_COLUMNS}
        self.nrows = 0

    def update(self, lists: Mapping[str, Sequence],
               backend: str = "python") -> None:
        """Fold one chunk (a column-name -> sequence mapping)."""
        for name in INT_COLUMNS:
            self._cols[name].update(_int_blob(lists[name], backend))
        for name in FLOAT_COLUMNS:
            self._cols[name].update(_float_blob(lists[name], backend))
        self.nrows += len(lists["rank"])

    def finalize(self, op_table: Sequence[str]) -> str:
        """The digest of the concatenated chunks (repeatable)."""
        import hashlib

        h = hashlib.sha256()
        h.update(MAGIC)
        h.update(json.dumps({"n": self.nrows, "op_table": list(op_table)},
                            sort_keys=True).encode("utf-8"))
        for name in ALL_COLUMNS:
            h.update(self._cols[name].digest())
        return h.hexdigest()


def _int_blob(col, backend: str) -> bytes:
    if backend == "numpy":
        return np.asarray(col, dtype=np.int64).astype("<i8", copy=False).tobytes()
    a = array("q", col)
    if sys.byteorder == "big":  # pragma: no cover
        a.byteswap()
    return a.tobytes()


def _float_blob(col, backend: str) -> bytes:
    if backend == "numpy":
        return np.asarray(col, dtype=np.float64).astype("<f8", copy=False).tobytes()
    a = array("d", col)
    if sys.byteorder == "big":  # pragma: no cover
        a.byteswap()
    return a.tobytes()


def _read_blob(f, n: int, typecode: str, dtype: str, backend: str):
    blob = f.read(8 * n)
    if len(blob) != 8 * n:
        raise ValueError("truncated packed trace file")
    if backend == "numpy":
        return np.frombuffer(blob, dtype=dtype).copy()
    a = array(typecode)
    a.frombytes(blob)
    if sys.byteorder == "big":  # pragma: no cover
        a.byteswap()
    return list(a)


def _read_int_blob(f, n: int, backend: str):
    return _read_blob(f, n, "q", "<i8", backend)


def _read_float_blob(f, n: int, backend: str):
    return _read_blob(f, n, "d", "<f8", backend)


# -- text-format parsing ------------------------------------------------------

def read_trace_columns(path: str | Path, *,
                       etype_size: int | Mapping[int, int] | None = None,
                       backend: str | None = None,
                       chunk_lines: int = 1 << 16,
                       quarantine=None,
                       jobs: int | None = None,
                       cache: bool | None = None) -> TraceColumns:
    """Parse a Fig. 2 text trace into columns through the ingest engine.

    Delegates to :func:`repro.tracer.ingest.ingest_columns`: the bulk
    numpy tokenizer on clean blocks, sharded parallel parsing with
    ``jobs`` > 1, and the persistent parse cache when a store is
    attached -- all bit-identical to the classic line-wise parse
    (:func:`_read_trace_columns_lines`), which remains the fallback and
    the reference.  Parsing and error handling match
    :func:`repro.tracer.tracefile.read_trace_file`: the header is
    skipped only when line 1 equals ``HEADER`` exactly, malformed rows
    raise ``ValueError`` with ``path:lineno``, and legacy 8-field rows
    resolve ``AbsOffset`` through ``etype_size`` (scalar or
    ``{file_id: etype}`` map) or the ``ABS_OFFSET_UNKNOWN`` sentinel.

    With ``quarantine`` (a
    :class:`~repro.tracer.quarantine.QuarantineReport`) malformed rows
    are recorded and skipped instead of raising; every well-formed row
    around them is salvaged, and column alignment is preserved (a row is
    appended only after *all* its fields parsed).

    ``jobs`` / ``cache`` tune the engine (``None`` = resolve from the
    ``REPRO_INGEST_JOBS`` env var / store attachment); see
    :mod:`repro.tracer.ingest`.
    """
    from .ingest import ingest_columns

    return ingest_columns(path, etype_size=etype_size, backend=backend,
                          chunk_lines=chunk_lines, quarantine=quarantine,
                          jobs=jobs, cache=cache)


def _read_trace_columns_lines(path: str | Path, *,
                              etype_size=None, backend: str | None = None,
                              chunk_lines: int = 1 << 16,
                              quarantine=None) -> TraceColumns:
    """The classic chunked line-wise parse (the ingest reference path).

    Memory is O(chunk) beyond the output columns themselves: no
    per-row dataclass is ever built.  Kept as a standalone entry point
    so the ingest engine, the parity tests and the benchmark's
    before-leg can run it directly.
    """
    path = Path(path)
    backend = backend or default_backend()
    cols = TraceColumns._empty_lists()
    op_table: list[str] = []
    op_index: dict[str, int] = {}
    with path.open() as f:
        for base_lineno, lines in _iter_line_batches(f, chunk_lines):
            _parse_chunk(lines, base_lineno, path, cols, op_table, op_index,
                         etype_size, quarantine)
    # columns accumulate as plain lists; one bulk conversion at the end
    return TraceColumns(op_table=op_table, backend=backend, **cols)


def iter_trace_column_chunks(path: str | Path, *,
                             etype_size: int | Mapping[int, int] | None = None,
                             backend: str | None = None,
                             chunk_rows: int = 1 << 16,
                             quarantine=None) -> Iterator[TraceColumns]:
    """Stream a Fig. 2 text trace as ``TraceColumns`` chunks.

    The streaming twin of :func:`read_trace_columns`: identical parsing,
    header handling and quarantine semantics, but the file is never
    materialized -- at most ``chunk_rows`` rows are alive at once.  Each
    yielded chunk carries its own (growing) op-table snapshot; feed the
    chunks to :meth:`TraceColumns.from_stream` or a
    :class:`~repro.core.lap.LAPFolder`, which re-intern the codes.
    """
    path = Path(path)
    backend = backend or default_backend()
    op_table: list[str] = []
    op_index: dict[str, int] = {}

    with path.open() as f:
        for base_lineno, lines in _iter_line_batches(f, chunk_rows):
            cols = TraceColumns._empty_lists()
            _parse_chunk(lines, base_lineno, path, cols, op_table, op_index,
                         etype_size, quarantine)
            if cols["rank"]:
                yield TraceColumns(op_table=list(op_table), backend=backend,
                                   **cols)


#: readlines() size hint per batch: trace rows run ~50-80 bytes, so a
#: 40-byte/row budget keeps a batch at or under ``chunk_rows`` rows for
#: any realistic trace while still reading in large C-level gulps.
_BATCH_BYTES_PER_ROW = 40

#: Any whitespace character that is neither the single-space field
#: separator nor the newline line break (tab, \r, \v, unicode spaces):
#: its presence disqualifies a batch from the flat fast path.
_ODD_WS = re.compile(r"[^\S \n]")


def _iter_line_batches(f, chunk_rows: int):
    """Yield ``(base_lineno, raw_lines)`` batches of <= chunk_rows lines.

    Reading happens through ``readlines(hint)`` -- one C call per batch
    instead of a Python-level loop per line -- which is where the
    parse-dominated streaming path used to spend a third of its time.
    The Fig. 2 header is skipped only when line 1 equals ``HEADER``
    exactly, matching ``read_trace_file``.
    """
    lineno = 1
    first = f.readline()
    if not first:
        return
    if first.strip() != HEADER:
        yield lineno, [first]
    lineno += 1
    while True:
        batch = f.readlines(chunk_rows * _BATCH_BYTES_PER_ROW)
        if not batch:
            return
        for lo in range(0, len(batch), chunk_rows):
            part = batch[lo:lo + chunk_rows]
            yield lineno + lo, part
        lineno += len(batch)


def _parse_chunk(raw_lines, base_lineno, path, cols, op_table, op_index,
                 etype_size, quarantine=None) -> None:
    if _parse_chunk_flat(raw_lines, cols, op_table, op_index):
        return
    # exact row-by-row re-parse: precise error locations, 8-field
    # legacy rows, blank-line skips, quarantine salvage
    pending = []
    for i, raw in enumerate(raw_lines):
        line = raw.strip()
        if line:
            pending.append((base_lineno + i, line))
    rows = [line.split() for _, line in pending]
    _parse_chunk_rows(pending, rows, path, cols, op_table, op_index,
                      etype_size, quarantine)


def _parse_chunk_flat(raw_lines, cols, op_table, op_index) -> bool:
    """Single-pass tokenizer for the dominant case: clean 9-field rows.

    The whole chunk is tokenized with one ``str.split`` and each column
    converted with one C-level ``map`` over a stride-9 slice -- no
    per-line list, no per-field Python-loop conversion.  Committing is
    gated on an exact alignment proof: the batch must be free of any
    whitespace except single-space separators and newlines (no tabs,
    no unicode spaces, no runs, no space at a line edge) and every line
    must carry exactly eight separators -- so each line provably
    contributes exactly nine whitespace-free tokens and the stride
    slices cannot silently mix columns across malformed lines.
    Anything else -- legacy 8-field rows, runs of whitespace, malformed
    values -- returns False untouched and falls back to the exact
    row-wise parser.
    """
    n = len(raw_lines)
    if not n:
        return True
    joined = "".join(raw_lines)
    # One C-level scan each: any whitespace other than the single-space
    # separators and the newline line breaks (tabs, \r, unicode spaces),
    # any empty field (adjacent spaces, space at a line edge) -- all
    # disqualify the whole batch.
    if (_ODD_WS.search(joined) is not None or "  " in joined
            or " \n" in joined or "\n " in joined
            or joined[0] == " " or joined[-1] == " "):
        return False
    for raw in raw_lines:
        if raw.count(" ") != 8:
            return False
    flat = joined.split()
    if len(flat) != 9 * n:  # unreachable given the guard; kept as a belt
        return False
    try:
        rank = list(map(int, flat[0::9]))
        fid = list(map(int, flat[1::9]))
        off = list(map(int, flat[3::9]))
        tick = list(map(int, flat[4::9]))
        rs = list(map(int, flat[5::9]))
        time = list(map(float, flat[6::9]))
        dur = list(map(float, flat[7::9]))
        abs_off = list(map(int, flat[8::9]))
    except ValueError:
        return False  # malformed value: let the exact parser locate it
    codes = []
    append_code = codes.append
    get = op_index.get
    for op in flat[2::9]:
        code = get(op)
        if code is None:
            code = op_index[op] = len(op_table)
            op_table.append(op)
        append_code(code)
    cols["rank"].extend(rank)
    cols["file_id"].extend(fid)
    cols["op_code"].extend(codes)
    cols["offset"].extend(off)
    cols["tick"].extend(tick)
    cols["request_size"].extend(rs)
    cols["time"].extend(time)
    cols["duration"].extend(dur)
    cols["abs_offset"].extend(abs_off)
    return True


def _parse_chunk_rows(pending, rows, path, cols, op_table, op_index,
                      etype_size, quarantine=None) -> None:
    is_map = isinstance(etype_size, Mapping)
    salvaging = quarantine is not None and not quarantine.strict
    if salvaging:
        from .quarantine import guess_rank
    for (lineno, line), parts in zip(pending, rows):
        if len(parts) not in (8, 9):
            if salvaging:
                quarantine.note(path, guess_rank(line), lineno,
                                f"malformed trace line ({len(parts)} fields)",
                                line)
                continue
            raise ValueError(f"{path}:{lineno}: malformed trace line "
                             f"({len(parts)} fields): {line!r}")
        try:
            # Parse every field before appending anything, so a bad row
            # can be skipped without skewing column alignment.
            rank = int(parts[0])
            fid = int(parts[1])
            off = int(parts[3])
            tick = int(parts[4])
            rs = int(parts[5])
            t = float(parts[6])
            d = float(parts[7])
            if len(parts) == 9:
                abs_off = int(parts[8])
            else:
                es = etype_size.get(fid) if is_map else etype_size
                abs_off = off * es if es else ABS_OFFSET_UNKNOWN
        except ValueError:
            if salvaging:
                quarantine.note(path, guess_rank(line), lineno,
                                "malformed trace line", line)
                continue
            raise ValueError(f"{path}:{lineno}: malformed trace line: "
                             f"{line!r}") from None
        cols["rank"].append(rank)
        cols["file_id"].append(fid)
        op = parts[2]
        code = op_index.get(op)
        if code is None:
            code = op_index[op] = len(op_table)
            op_table.append(op)
        cols["op_code"].append(code)
        cols["offset"].append(off)
        cols["tick"].append(tick)
        cols["request_size"].append(rs)
        cols["time"].append(t)
        cols["duration"].append(d)
        cols["abs_offset"].append(abs_off)

"""Parallel, cache-backed trace ingest: raw text -> ``TraceColumns``.

Every downstream stage (streaming characterization, the lattice, warm
studies) is now faster than reading its input; this engine closes that
gap with three independently-gated layers on top of the classic
line-wise parser (:func:`repro.tracer.columns._read_trace_columns_lines`),
which stays bit-for-bit the reference:

1. **Bulk tokenizer kernels** (:mod:`repro.tracer.bulk`): each file is
   read as newline-aligned ~4 MiB byte blocks and handed to the numpy
   kernel, which either proves the block is clean single-space 9-field
   rows and converts it wholesale, or declines -- in which case the
   block re-parses through the exact line-wise path (precise
   ``path:lineno`` errors, 8-field legacy rows, quarantine salvage).
   Blocks keep the parse inside the CPU cache: one whole-file pass over
   tens of MB gathers an order of magnitude slower than the same work
   done block-wise.

2. **Sharded parallel parse** (``jobs`` > 1, or the
   ``REPRO_INGEST_JOBS`` env var, or an :func:`ingest_jobs` override):
   one file splits into byte-range shards cut at line boundaries and
   fans out through the PR 8 executors layer; per-rank bundle files fan
   out whole.  Workers always parse in salvage mode into a local
   report with shard-relative line numbers; the master prefix-sums the
   shard line counts and replays the entries in ``(path, lineno)``
   order -- so quarantine reports are byte-identical to a serial
   ingest, and in strict mode the re-raised ``ValueError`` carries the
   exact classic ``path:lineno`` message.  Any worker infrastructure
   failure falls back to the serial path.

3. **Persistent parse cache**: with a persistent :mod:`repro.store`
   attached, a parsed file is materialized as its packed ``.trc``
   encoding keyed by the sha256 of the raw text (plus the
   ``etype_size`` mapping and a schema tag).  Re-ingesting an unchanged
   file becomes a binary bundle load.  Invalidation is automatic: any
   byte change to the text, a different ``etype_size``, or a cache
   schema bump produces a different key.  Quarantine-mode parses
   neither read nor write the cache (their output may be a subset of
   the file).

All three layers preserve exact output equality with the classic
parser -- same columns, same op-table interning order, same
``content_digest`` -- asserted down to the digest by
``tests/tracer/test_ingest.py`` and the CI ingest parity job.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
from pathlib import Path
from typing import Iterator, Mapping

from repro import obs
from repro import store as _store

from .bulk import bulk_available, bulk_parse
from .columns import (
    TraceColumns,
    _parse_chunk,
    _read_trace_columns_lines,
    default_backend,
    iter_trace_column_chunks,
)
from .tracefile import HEADER

try:  # numpy is optional throughout the tracer
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy CI job
    np = None

__all__ = [
    "ENV_JOBS", "DEFAULT_JOBS_CAP", "parse_jobs", "resolve_jobs",
    "default_jobs", "ingest_jobs", "ingest_columns", "iter_ingest_chunks",
    "ingest_rank_files",
]

#: Environment override for the default shard fan-out.
ENV_JOBS = "REPRO_INGEST_JOBS"

#: CLI default: one job per CPU, capped (beyond ~8 shards the parse is
#: I/O-bound and extra workers only cost pickling).
DEFAULT_JOBS_CAP = 8

#: Parse block size.  Blocks must be small enough that the kernel's
#: gather/scatter passes stay cache-resident (a whole-file pass over
#: ~76 MB measured ~8x slower than the same rows in 4 MiB blocks) and
#: large enough to amortize per-block numpy overhead.
BLOCK_BYTES = 1 << 22

#: Files below this size are never sharded: process spin-up plus result
#: pickling costs more than the parse itself.
MIN_SHARD_BYTES = 1 << 22

#: Store cache (directory) name for parse-cache entries.
CACHE_NAME = "ingest"

#: Bump to invalidate every cached parse (key ingredient, not payload).
_CACHE_SCHEMA = 1


# -- jobs resolution ----------------------------------------------------------

def parse_jobs(value, what: str = "--jobs") -> int:
    """Validate a jobs count: an integer >= 1, clear error otherwise."""
    try:
        jobs = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} must be an integer >= 1, got {value!r}") from None
    if jobs < 1:
        raise ValueError(f"{what} must be >= 1, got {jobs}")
    return jobs


def default_jobs() -> int:
    """The CLI default fan-out: cpu count, capped at DEFAULT_JOBS_CAP."""
    return min(os.cpu_count() or 1, DEFAULT_JOBS_CAP)


_jobs_override: int | None = None


@contextlib.contextmanager
def ingest_jobs(jobs: int | None):
    """Scoped jobs override -- the service's per-request QoS hook.

    ``with ingest_jobs(4): ...`` makes every ingest inside the block
    that did not pass an explicit ``jobs`` run with 4 shards.  ``None``
    leaves resolution untouched (nesting restores the outer value).
    """
    global _jobs_override
    if jobs is not None:
        jobs = parse_jobs(jobs, what="jobs")
    prev = _jobs_override
    if jobs is not None:
        _jobs_override = jobs
    try:
        yield
    finally:
        _jobs_override = prev


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective jobs count: explicit > :func:`ingest_jobs` scope >
    ``REPRO_INGEST_JOBS`` > 1 (the library default -- only the CLI
    defaults to :func:`default_jobs`)."""
    if jobs is not None:
        return parse_jobs(jobs, what="jobs")
    if _jobs_override is not None:
        return _jobs_override
    env = os.environ.get(ENV_JOBS)
    if env is not None and env.strip():
        return parse_jobs(env, what=ENV_JOBS)
    return 1


# -- block plumbing -----------------------------------------------------------

def _detect_header(buf: bytes) -> tuple[bytes, int]:
    """Split off the first (universal-newline) line of ``buf``.

    Returns ``(first_line_without_terminator, offset_of_line_2)``.
    Mirrors text-mode universal newlines: ``\\n``, ``\\r\\n`` and lone
    ``\\r`` all end the line.
    """
    i_n = buf.find(b"\n")
    i_r = buf.find(b"\r")
    if i_r != -1 and (i_n == -1 or i_r < i_n):
        end = i_r + (2 if buf[i_r + 1:i_r + 2] == b"\n" else 1)
        return buf[:i_r], end
    if i_n != -1:
        return buf[:i_n], i_n + 1
    return buf, len(buf)


def _read_first_line(f) -> tuple[bytes, int, bytes]:
    """Streaming :func:`_detect_header`: ``(first_line, offset, carry)``.

    ``offset`` is the byte offset of line 2 (0 for an empty file);
    ``carry`` is everything already read beyond the first line, which
    the block iterator prepends before continuing from ``f``.
    """
    buf = b""
    while True:
        chunk = f.read(1 << 16)
        if not chunk:
            break
        buf += chunk
        i_n = buf.find(b"\n")
        i_r = buf.find(b"\r")
        # a trailing \r may be half of a \r\n pair: read one more chunk
        if i_n != -1 or (i_r != -1 and i_r < len(buf) - 1):
            break
    first, off = _detect_header(buf)
    return first, off, buf[off:]


def _is_header(first_line: bytes) -> bool:
    # errors="replace" cannot produce a false match (HEADER is ASCII),
    # and genuinely undecodable data still raises in the block parse,
    # as the classic text-mode reader would.
    return first_line.decode("utf-8", "replace").strip() == HEADER


def _memory_blocks(data: bytes, off: int) -> Iterator[bytes]:
    """Newline-aligned ~BLOCK_BYTES slices of an in-memory file."""
    n = len(data)
    while off < n:
        end = off + BLOCK_BYTES
        if end < n:
            nl = data.find(b"\n", end - 1)
            end = n if nl < 0 else nl + 1
        else:
            end = n
        yield data[off:end]
        off = end


def _stream_blocks(f, carry: bytes = b"") -> Iterator[bytes]:
    """Newline-aligned blocks from an open binary file."""
    while True:
        buf = f.read(BLOCK_BYTES)
        if carry:
            buf = carry + buf
            carry = b""
        if not buf:
            return
        if not buf.endswith(b"\n"):
            buf += f.readline()
        yield buf


def _range_blocks(f, remaining: int) -> Iterator[bytes]:
    """Blocks over one byte-range shard (its end is line-aligned)."""
    while remaining > 0:
        buf = f.read(min(BLOCK_BYTES, remaining))
        if not buf:
            return
        remaining -= len(buf)
        if remaining > 0 and not buf.endswith(b"\n"):
            # align inside the shard; the shard end is a line boundary,
            # so this readline can never cross into the next shard
            tail = f.readline()
            buf += tail
            remaining -= len(tail)
        yield buf


def _universal_lines(block: bytes) -> list[str]:
    """Decode one block into text-mode lines (universal newlines)."""
    text = block.decode("utf-8")
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
    if text.endswith("\n"):
        text = text[:-1]
    return text.split("\n")


def _intern(local_table, op_table: list[str], op_index: dict[str, int]):
    remap = []
    for op in local_table:
        code = op_index.get(op)
        if code is None:
            code = op_index[op] = len(op_table)
            op_table.append(op)
        remap.append(code)
    return remap


def _block_parts(blocks, path, start_lineno: int, op_table, op_index,
                 etype_size, quarantine, backend: str):
    """Parse newline-aligned blocks; yield ``(nlines, part_or_None)``.

    Each yielded part's op codes are already *global* (interned against
    the shared ``op_table`` in first-appearance order, exactly like the
    sequential parsers).  Blocks the bulk kernel cannot prove clean
    re-parse through the exact line-wise path with correct absolute
    line numbers, so errors and quarantine entries match the classic
    parser byte for byte.
    """
    lineno = start_lineno
    use_bulk = bulk_available()
    for buf in blocks:
        out = bulk_parse(buf) if use_bulk else None
        if out is not None:
            local = out.pop("op_table")
            nlines = len(out["rank"])
            remap = _intern(local, op_table, op_index)
            if nlines and remap != list(range(len(remap))):
                out["op_code"] = np.asarray(remap,
                                            dtype=np.int64)[out["op_code"]]
            if backend != "numpy":
                out = {k: v.tolist() for k, v in out.items()}
            part = TraceColumns(op_table=list(op_table), backend=backend,
                                **out)
            if obs.ACTIVE:
                obs.inc("ingest_rows_total", nlines, kernel="bulk")
            lineno += nlines
            yield nlines, part
            continue
        lines = _universal_lines(buf)
        cols = TraceColumns._empty_lists()
        _parse_chunk([ln + "\n" for ln in lines], lineno, path, cols,
                     op_table, op_index, etype_size, quarantine)
        nrows = len(cols["rank"])
        if obs.ACTIVE:
            obs.inc("ingest_rows_total", nrows, kernel="lines")
        part = None
        if nrows:
            part = TraceColumns(op_table=list(op_table), backend=backend,
                                **cols)
        lineno += len(lines)
        yield len(lines), part


# -- parse cache --------------------------------------------------------------

def _etype_token(etype_size):
    if isinstance(etype_size, Mapping) and not isinstance(etype_size, dict):
        return dict(etype_size)
    return etype_size


def _cache_key(data: bytes, etype_size):
    return ("ingest", _CACHE_SCHEMA, hashlib.sha256(data).hexdigest(),
            _etype_token(etype_size))


# -- single-file ingest -------------------------------------------------------

def ingest_columns(path: str | Path, *,
                   etype_size=None,
                   backend: str | None = None,
                   chunk_lines: int = 1 << 16,
                   quarantine=None,
                   jobs: int | None = None,
                   cache: bool | None = None,
                   executor=None) -> TraceColumns:
    """Parse one Fig. 2 text trace into columns through the engine.

    Drop-in for the classic parser (``read_trace_columns`` delegates
    here) with identical output, errors and quarantine behaviour.
    ``jobs`` > 1 shards the file across a process pool; ``cache=False``
    bypasses the parse cache (``None`` = use it when a persistent store
    is attached; quarantine-mode parses always bypass it).  ``executor``
    overrides the shard executor (tests inject a serial one).
    """
    path = Path(path)
    backend = backend or default_backend()
    njobs = resolve_jobs(jobs)
    store = _store.active()
    use_cache = (cache is not False and quarantine is None
                 and store is not None and store.persistent)
    if not use_cache and njobs <= 1 and not bulk_available():
        # nothing this engine adds can engage: the classic parser is
        # strictly faster (no byte-level re-read)
        return _read_trace_columns_lines(path, etype_size=etype_size,
                                         backend=backend,
                                         chunk_lines=chunk_lines,
                                         quarantine=quarantine)
    with obs.span("ingest.columns", cat="ingest", file=str(path)) as sp:
        if obs.ACTIVE:
            obs.inc("ingest_files_total")
        key = data = None
        if use_cache:
            data = path.read_bytes()
            key = _cache_key(data, etype_size)
            hit, blob = store.get(CACHE_NAME, key)
            if hit and isinstance(blob, (bytes, bytearray)):
                if obs.ACTIVE:
                    obs.inc("ingest_cache_hits_total")
                sp.annotate(cached=True)
                return TraceColumns.from_bytes(bytes(blob), backend=backend)
            if obs.ACTIVE:
                obs.inc("ingest_cache_misses_total")
        cols = None
        if njobs > 1:
            cols = _sharded_parse(path, etype_size, backend, quarantine,
                                  njobs, executor, data=data)
        if cols is None:
            try:
                cols = _serial_parse(path, data, etype_size, backend,
                                     quarantine)
            except UnicodeDecodeError:
                # the classic text-mode reader owns decode errors (and
                # their exact location); replay through it
                return _read_trace_columns_lines(
                    path, etype_size=etype_size, backend=backend,
                    chunk_lines=chunk_lines, quarantine=quarantine)
        if key is not None:
            store.put(CACHE_NAME, key, cols.to_bytes())
        sp.annotate(rows=len(cols))
        return cols


def _serial_parse(path: Path, data: bytes | None, etype_size, backend,
                  quarantine) -> TraceColumns:
    op_table: list[str] = []
    op_index: dict[str, int] = {}
    parts: list[TraceColumns] = []

    def collect(blocks, start_lineno):
        for _nlines, part in _block_parts(blocks, path, start_lineno,
                                          op_table, op_index, etype_size,
                                          quarantine, backend):
            if part is not None:
                parts.append(part)

    if data is not None:
        first, off = _detect_header(data)
        if _is_header(first):
            collect(_memory_blocks(data, off), 2)
        else:
            collect(_memory_blocks(data, 0), 1)
    else:
        with path.open("rb") as f:
            first, off, carry = _read_first_line(f)
            if _is_header(first):
                collect(_stream_blocks(f, carry), 2)
            elif off > 0 or first:
                # line 1 is data (possibly blank): re-prefix it so the
                # blocks preserve the exact line structure and numbering
                collect(_stream_blocks(f, first + b"\n" + carry), 1)
    return TraceColumns.concat(parts, backend=backend)


# -- sharded parallel parse ---------------------------------------------------

def _shard_worker(path_str: str, start: int, end: int, etype_size):
    """Worker body: parse one newline-aligned byte range of one file.

    Always parses in salvage mode with shard-relative line numbers;
    returns ``(trc_blob, nlines, entries)`` where ``entries`` is
    ``[(rel_lineno, rank, reason, line), ...]`` in file order.  The
    master decides whether the entries become quarantine notes or the
    classic strict ``ValueError``.
    """
    from .quarantine import QuarantineReport

    path = Path(path_str)
    report = QuarantineReport()
    op_table: list[str] = []
    op_index: dict[str, int] = {}
    backend = default_backend()
    parts: list[TraceColumns] = []
    nlines = 0
    with path.open("rb") as f:
        f.seek(start)
        for n, part in _block_parts(_range_blocks(f, end - start), path, 1,
                                    op_table, op_index, etype_size, report,
                                    backend):
            nlines += n
            if part is not None:
                parts.append(part)
    cols = TraceColumns.concat(parts, backend=backend)
    entries = [(e.lineno, e.rank, e.reason, e.line) for e in report.entries]
    return cols.to_bytes(), nlines, entries


def _replay_entries(path, entries, quarantine) -> None:
    """Gathered shard entries -> exact classic error or quarantine notes.

    ``entries`` must be ``(lineno, rank, reason, line)`` tuples already
    in ``(path, lineno)`` order, which the shard prefix-sum guarantees:
    that is what makes a parallel quarantine report byte-identical to a
    serial one.
    """
    if not entries:
        return
    if quarantine is None or quarantine.strict:
        lineno, _rank, reason, line = entries[0]
        raise ValueError(f"{path}:{lineno}: {reason}" +
                         (f": {line!r}" if line else ""))
    for lineno, rank, reason, line in entries:
        quarantine.note(path, rank, lineno, reason, line)


def _sharded_parse(path: Path, etype_size, backend, quarantine, njobs: int,
                   executor, data: bytes | None = None):
    """Fan one file out as byte-range shards; None = use the serial path."""
    try:
        size = path.stat().st_size
    except OSError:
        return None
    if data is not None:
        first, off = _detect_header(data)
    else:
        try:
            with path.open("rb") as f:
                first, off, _carry = _read_first_line(f)
        except OSError:
            return None
    skip = _is_header(first)
    start = off if skip else 0
    lineno0 = 2 if skip else 1
    nshards = int(min(njobs, max(1, (size - start) // MIN_SHARD_BYTES)))
    if nshards <= 1:
        return None
    bounds = [start]
    with path.open("rb") as f:
        for i in range(1, nshards):
            target = start + (size - start) * i // nshards
            if target <= bounds[-1]:
                continue
            f.seek(target)
            f.readline()  # skip to the next line boundary
            pos = min(f.tell(), size)
            if bounds[-1] < pos < size:
                bounds.append(pos)
    bounds.append(size)
    names = [f"shard{i:04d}" for i in range(len(bounds) - 1)]
    jobs_map = {name: (str(path), lo, hi, etype_size)
                for name, lo, hi in zip(names, bounds, bounds[1:])}
    if len(jobs_map) <= 1:
        return None
    if obs.ACTIVE:
        obs.inc("ingest_shards_total", len(jobs_map))
    results = _run_shards(_shard_worker, jobs_map, njobs, executor)
    if results is None:
        return None
    parts: list[TraceColumns] = []
    entries: list[tuple] = []
    base = lineno0
    for name in names:
        blob, nlines, shard_entries = results[name]
        parts.append(TraceColumns.from_bytes(blob, backend=backend))
        for rel, rank, reason, line in shard_entries:
            entries.append((base + rel - 1, rank, reason, line))
        base += nlines
    _replay_entries(path, entries, quarantine)
    return TraceColumns.concat(parts, backend=backend)


def _run_shards(fn, jobs_map, njobs: int, executor):
    """Run shard jobs; dict of results, or None on any infra failure."""
    if executor is None:
        from repro.core.executors.pool import PoolExecutor

        executor = PoolExecutor(max_workers=min(njobs, len(jobs_map)))
    results = {}
    try:
        for name, failure, res in executor.run(fn, jobs_map,
                                               max_workers=njobs):
            if failure is not None:
                return None
            results[name] = res
    except Exception:
        return None
    if len(results) != len(jobs_map):
        return None
    return results


# -- streaming ingest ---------------------------------------------------------

def iter_ingest_chunks(path: str | Path, *,
                       etype_size=None,
                       backend: str | None = None,
                       chunk_rows: int = 1 << 16,
                       quarantine=None,
                       jobs: int | None = None,
                       cache: bool | None = None) -> Iterator[TraceColumns]:
    """Stream a text trace as ``TraceColumns`` chunks of <= chunk_rows.

    The engine-powered twin of
    :func:`repro.tracer.columns.iter_trace_column_chunks` with the same
    contract (growing op-table snapshots, global codes, identical
    concatenation).  With ``jobs`` = 1 and no cache hit available this
    streams for real -- peak memory is O(block) -- through the bulk
    kernel.  ``jobs`` > 1 or a warm parse cache materialize the file
    via :func:`ingest_columns` first (trading the O(block) bound for
    speed) and re-slice it as O(1) views.
    """
    path = Path(path)
    backend = backend or default_backend()
    njobs = resolve_jobs(jobs)
    store = _store.active()
    use_cache = (cache is not False and quarantine is None
                 and store is not None and store.persistent)
    if njobs > 1 or use_cache:
        cols = ingest_columns(path, etype_size=etype_size, backend=backend,
                              quarantine=quarantine, jobs=njobs, cache=cache)
        for lo in range(0, len(cols), chunk_rows):
            yield cols.take(range(lo, min(lo + chunk_rows, len(cols))))
        return
    if not bulk_available():
        yield from iter_trace_column_chunks(path, etype_size=etype_size,
                                            backend=backend,
                                            chunk_rows=chunk_rows,
                                            quarantine=quarantine)
        return
    op_table: list[str] = []
    op_index: dict[str, int] = {}
    with path.open("rb") as f:
        first, off, carry = _read_first_line(f)
        if _is_header(first):
            blocks, lineno = _stream_blocks(f, carry), 2
        elif off > 0 or first:
            blocks, lineno = _stream_blocks(f, first + b"\n" + carry), 1
        else:
            return
        for _nlines, part in _block_parts(blocks, path, lineno, op_table,
                                          op_index, etype_size, quarantine,
                                          backend):
            if part is None:
                continue
            n = len(part)
            if n <= chunk_rows:
                yield part
            else:
                for lo in range(0, n, chunk_rows):
                    yield part.take(range(lo, min(lo + chunk_rows, n)))


# -- bundle (many per-rank files) ingest --------------------------------------

def _file_worker(path_str: str, etype_size, salvage: bool):
    """Worker body: one whole per-rank trace file.

    Returns a tagged tuple the master replays in rank order:
    ``("ok", trc_blob, entries)``, ``("valueerror", message)`` or
    ``("oserror", exc_type_name, message)``.  The first (strict) parse
    attempt is cache-eligible; only files that fail it re-parse in
    salvage mode (cache bypassed -- salvaged output is a subset).
    """
    from .quarantine import QuarantineReport

    try:
        try:
            cols = ingest_columns(path_str, etype_size=etype_size, jobs=1)
            return ("ok", cols.to_bytes(), [])
        except ValueError as exc:
            if not salvage:
                return ("valueerror", str(exc))
            report = QuarantineReport()
            cols = ingest_columns(path_str, etype_size=etype_size, jobs=1,
                                  quarantine=report, cache=False)
            entries = [(e.lineno, e.rank, e.reason, e.line)
                       for e in report.entries]
            return ("ok", cols.to_bytes(), entries)
    except OSError as exc:
        return ("oserror", type(exc).__name__, str(exc))


def ingest_rank_files(paths, *,
                      etype_size=None,
                      backend: str | None = None,
                      quarantine=None,
                      jobs: int | None = None,
                      executor=None) -> list[TraceColumns]:
    """Parse many per-rank trace files (``paths`` indexed by rank).

    The bundle-level fan-out: with ``jobs`` > 1 whole files distribute
    across a process pool (each worker may itself hit the parse cache),
    gathered back in rank order so missing-file notes, quarantine
    entries and strict errors replay exactly as the serial rank-ordered
    loop produces them.  Serial and parallel outputs -- parts, reports,
    raises -- are identical.
    """
    paths = [Path(p) for p in paths]
    backend = backend or default_backend()
    njobs = resolve_jobs(jobs)
    salvaging = quarantine is not None and not quarantine.strict
    if njobs > 1 and len(paths) > 1:
        parts = _parallel_rank_files(paths, etype_size, backend, quarantine,
                                     salvaging, njobs, executor)
        if parts is not None:
            return parts
    parts = []
    for rank, p in enumerate(paths):
        try:
            parts.append(ingest_columns(p, etype_size=etype_size,
                                        backend=backend,
                                        quarantine=quarantine, jobs=1))
        except OSError as exc:
            if not salvaging:
                raise
            quarantine.note(p, rank, 0,
                            f"missing trace file: {type(exc).__name__}")
    return parts


def _parallel_rank_files(paths, etype_size, backend, quarantine, salvaging,
                         njobs: int, executor):
    import builtins

    jobs_map = {f"rank{idx:05d}": (str(p), etype_size, salvaging)
                for idx, p in enumerate(paths)}
    if obs.ACTIVE:
        obs.inc("ingest_shards_total", len(jobs_map))
    results = _run_shards(_file_worker, jobs_map, njobs, executor)
    if results is None:
        return None
    parts = []
    for idx, p in enumerate(paths):
        res = results[f"rank{idx:05d}"]
        tag = res[0]
        if tag == "oserror":
            if not salvaging:
                exc_cls = getattr(builtins, res[1], OSError)
                if not (isinstance(exc_cls, type)
                        and issubclass(exc_cls, OSError)):
                    exc_cls = OSError
                raise exc_cls(res[2])
            quarantine.note(p, idx, 0, f"missing trace file: {res[1]}")
            continue
        if tag == "valueerror":
            raise ValueError(res[1])
        _tag, blob, entries = res
        parts.append(TraceColumns.from_bytes(blob, backend=backend))
        for lineno, rank, reason, line in entries:
            quarantine.note(p, rank, lineno, reason, line)
    return parts

"""Zero-copy trace sharing across sweep workers via POSIX shared memory.

A traced application produces one :class:`~repro.tracer.columns.TraceColumns`
that every characterization worker needs read-only.  Pickling it into
each worker copies the whole trace per process; at millions of events
that serialization dominates the sweep.  Instead, the parent publishes
the columns once into a ``multiprocessing.shared_memory`` segment and
ships only a tiny picklable :class:`SharedColumns` handle; workers
attach and -- on the numpy backend -- get zero-copy ``ndarray`` views
straight over the shared buffer (the python backend copies out of the
segment, still skipping pickle entirely).

Segment layout (version 1): the packed ``.trc`` column encoding without
the file framing -- every ``INT_COLUMNS`` blob (``<i8``), then every
``FLOAT_COLUMNS`` blob (``<f8``), back to back.  The op table and row
count ride in the handle.

Lifetime: the creating process owns the segment and must call
:func:`release` (or :func:`release_all`) when the sweep is done;
:mod:`repro.core.sweep` does this around its parallel path.  Attached
views keep the segment mapped via a module registry, so a worker's
arrays stay valid for the worker's lifetime.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass

from .columns import FLOAT_COLUMNS, INT_COLUMNS, TraceColumns, _float_blob, \
    _int_blob, numpy_enabled

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

try:
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover - minimal platforms
    _shm_mod = None

_NCOLS = len(INT_COLUMNS) + len(FLOAT_COLUMNS)


def shm_available() -> bool:
    """Shared-memory trace publishing usable on this platform."""
    return _shm_mod is not None


@dataclass(frozen=True)
class SharedColumns:
    """Picklable handle to a trace published in shared memory."""

    shm_name: str
    n: int
    op_table: tuple[str, ...]

    @property
    def nbytes(self) -> int:
        return 8 * self.n * _NCOLS


#: Segments this process created (owner) or attached (borrower); keeping
#: the SharedMemory object referenced keeps the mapping -- and any numpy
#: views over it -- alive.
_owned: dict[str, object] = {}
_attached: dict[str, object] = {}


def share_columns(cols: TraceColumns) -> SharedColumns:
    """Publish a trace into a fresh shared-memory segment; returns the handle.

    The segment stays alive until :func:`release`/:func:`release_all`
    (or process exit).  Raises ``RuntimeError`` when the platform has no
    shared memory support -- guard with :func:`shm_available`.
    """
    if _shm_mod is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    n = len(cols)
    seg = _shm_mod.SharedMemory(create=True, size=max(1, 8 * n * _NCOLS))
    pos = 0
    for name in INT_COLUMNS:
        blob = _int_blob(getattr(cols, name), cols.backend)
        seg.buf[pos:pos + len(blob)] = blob
        pos += len(blob)
    for name in FLOAT_COLUMNS:
        blob = _float_blob(getattr(cols, name), cols.backend)
        seg.buf[pos:pos + len(blob)] = blob
        pos += len(blob)
    _owned[seg.name] = seg
    return SharedColumns(shm_name=seg.name, n=n,
                         op_table=tuple(cols.op_table))


def attach_columns(handle: SharedColumns,
                   backend: str | None = None) -> TraceColumns:
    """Materialize a TraceColumns from a published handle.

    numpy backend: zero-copy -- the columns are ``ndarray`` views over
    the shared buffer (read them, don't write them).  python backend:
    one bulk ``array`` copy per column, after which the segment is
    closed again.
    """
    if _shm_mod is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    backend = backend or ("numpy" if numpy_enabled() else "python")
    seg = _attached.get(handle.shm_name) or _owned.get(handle.shm_name)
    borrowed = seg is None
    if borrowed:
        seg = _shm_mod.SharedMemory(name=handle.shm_name)
        _unregister_attachment(seg)
    n = handle.n
    kwargs = {}
    if backend == "numpy":
        if borrowed:
            _attached[handle.shm_name] = seg  # views need the mapping alive
        for i, name in enumerate(INT_COLUMNS):
            kwargs[name] = np.frombuffer(seg.buf, dtype="<i8", count=n,
                                         offset=8 * n * i)
        for j, name in enumerate(FLOAT_COLUMNS):
            kwargs[name] = np.frombuffer(
                seg.buf, dtype="<f8", count=n,
                offset=8 * n * (len(INT_COLUMNS) + j))
    else:
        for i, name in enumerate(INT_COLUMNS):
            a = array("q")
            a.frombytes(seg.buf[8 * n * i:8 * n * (i + 1)])
            if sys.byteorder == "big":  # pragma: no cover
                a.byteswap()
            kwargs[name] = list(a)
        for j, name in enumerate(FLOAT_COLUMNS):
            i = len(INT_COLUMNS) + j
            a = array("d")
            a.frombytes(seg.buf[8 * n * i:8 * n * (i + 1)])
            if sys.byteorder == "big":  # pragma: no cover
                a.byteswap()
            kwargs[name] = list(a)
        if borrowed:
            seg.close()  # fully copied out; no need to stay mapped
    return TraceColumns(op_table=list(handle.op_table), backend=backend,
                        **kwargs)


def _unregister_attachment(seg) -> None:
    """Keep the resource tracker honest on attach-only segments.

    On Python < 3.13 attaching registers the segment with the
    *attaching* process's resource tracker, which then unlinks it when
    that process exits -- yanking the mapping out from under the owner
    (bpo-39959).  Only the creator should unlink.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _close_or_abandon(seg) -> bool:
    """Close a mapping; with live numpy views, leave it to process exit.

    A memory-mapped buffer cannot be closed while exported views exist
    (``BufferError``).  In that case the mapping is simply abandoned --
    the views stay valid, the OS reclaims it at exit -- and ``close`` is
    neutered so the object's ``__del__`` does not raise at shutdown.
    """
    try:
        seg.close()
        return True
    except BufferError:
        seg.close = lambda: None
        return False


def release(handle: SharedColumns) -> None:
    """Close (and, if this process owns it, unlink) one segment."""
    seg = _attached.pop(handle.shm_name, None)
    if seg is not None:
        _close_or_abandon(seg)
    seg = _owned.pop(handle.shm_name, None)
    if seg is not None:
        _close_or_abandon(seg)
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def release_all() -> None:
    """Release every segment this process owns or has attached."""
    for registry in (_attached, _owned):
        for name in list(registry):
            release(SharedColumns(shm_name=name, n=0, op_table=()))

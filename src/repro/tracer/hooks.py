"""PAS2P-style tracing: interposition on the simulated MPI-IO layer.

The paper extends the PAS2P tool to trace MPI-IO routines "through an
automatic instrumentation that interposes to MPI-IO functions".  Here
the interposition point is the engine's I/O hook: :class:`Tracer`
subscribes to every :class:`~repro.simmpi.fileio.IOEvent` and builds the
per-process trace files plus the application metadata.

Typical use::

    tracer = Tracer()
    engine = Engine(nprocs, platform=cluster)
    tracer.attach(engine)
    engine.run(app_program)
    trace = tracer.finish(engine)       # TraceBundle
    trace.save(Path("traces/app"))      # one file per process + metadata

A bundle holds its events **columnar** (:class:`TraceColumns`) and
materializes :class:`TraceRecord` objects only on first access to
``.records`` -- the characterization fast path never pays for them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.simmpi.engine import Engine
from repro.simmpi.fileio import IOEvent

from .columns import TraceColumns, numpy_enabled, read_trace_columns
from .metadata import AppMetadata
from .tracefile import TraceRecord, write_trace_file


class TraceBundle:
    """A complete traced run: per-process events + metadata.

    Constructible from either ``records`` (list of TraceRecord) or
    ``columns`` (TraceColumns); the missing view is derived lazily and
    cached.  Both views hold the same rows in the same canonical order.
    """

    def __init__(self, nprocs: int, records: list[TraceRecord] | None = None,
                 metadata: AppMetadata | None = None,
                 columns: TraceColumns | None = None):
        if records is None and columns is None:
            raise ValueError("TraceBundle needs records or columns")
        self.nprocs = nprocs
        self.metadata = metadata
        self._records = records
        self._columns = columns

    @property
    def records(self) -> list[TraceRecord]:
        if self._records is None:
            self._records = self._columns.to_records()
        return self._records

    @property
    def columns(self) -> TraceColumns:
        if self._columns is None:
            self._columns = TraceColumns.from_records(self._records)
        return self._columns

    @property
    def nevents(self) -> int:
        cols = self._columns
        return len(cols) if cols is not None else len(self._records)

    def by_rank(self, rank: int) -> list[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    @property
    def nfiles(self) -> int:
        if self._columns is not None:
            return self._columns.nfiles
        return len({r.file_id for r in self._records})

    @property
    def total_bytes(self) -> int:
        if self._columns is not None:
            return self._columns.total_bytes
        return sum(r.request_size for r in self._records)

    def save(self, directory: str | Path, binary: bool = False) -> None:
        """Write the trace: ``trace.<rank>`` text files (the paper's
        Fig. 2 layout) or, with ``binary=True``, one compact columnar
        file (``columns.npz`` under numpy, packed ``columns.trc``
        otherwise) -- plus ``metadata.json`` either way."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if binary:
            name = "columns.npz" if numpy_enabled() else "columns.trc"
            self.columns.save(directory / name)
        else:
            for rank in range(self.nprocs):
                write_trace_file(directory / f"trace.{rank}",
                                 self.by_rank(rank))
        payload = {"nprocs": self.nprocs, "metadata": self.metadata.to_dict()}
        (directory / "metadata.json").write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, directory: str | Path) -> "TraceBundle":
        """Load a saved bundle, auto-detecting binary vs. text layout."""
        directory = Path(directory)
        payload = json.loads((directory / "metadata.json").read_text())
        nprocs = payload["nprocs"]
        metadata = AppMetadata.from_dict(payload["metadata"])
        columns = None
        for name in ("columns.npz", "columns.trc"):
            if (directory / name).exists():
                columns = TraceColumns.load(directory / name)
                break
        if columns is None:
            # legacy 8-field rows resolve AbsOffset via the recorded etypes
            etypes = {f.file_id: f.etype_size for f in metadata.files}
            parts = [read_trace_columns(directory / f"trace.{rank}",
                                        etype_size=etypes)
                     for rank in range(nprocs)]
            columns = TraceColumns.concat(parts)
        return cls(nprocs=nprocs, columns=columns, metadata=metadata)


@dataclass
class Tracer:
    """Collects I/O events from an engine run."""

    events: list[IOEvent] = field(default_factory=list)

    def attach(self, engine: Engine) -> None:
        engine.add_io_hook(self.events.append)

    def finish(self, engine: Engine) -> TraceBundle:
        """Freeze the trace after ``engine.run`` returned."""
        # Per-rank order is execution order; across ranks sort by rank for
        # a canonical bundle (per-file trace files are per rank anyway).
        columns = TraceColumns.from_events(self.events).sorted_canonical()
        return TraceBundle(
            nprocs=engine.nprocs,
            columns=columns,
            metadata=AppMetadata.from_engine(engine),
        )


def trace_run(app_program, nprocs: int, platform=None, *args) -> TraceBundle:
    """Convenience: run ``app_program`` on ``nprocs`` ranks and trace it.

    Equivalent to the paper's off-line characterization step: execute the
    application once with the tracing tool interposed, keep the trace.
    """
    engine = Engine(nprocs, platform=platform)
    tracer = Tracer()
    tracer.attach(engine)
    engine.run(app_program, *args)
    return tracer.finish(engine)

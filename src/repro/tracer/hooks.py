"""PAS2P-style tracing: interposition on the simulated MPI-IO layer.

The paper extends the PAS2P tool to trace MPI-IO routines "through an
automatic instrumentation that interposes to MPI-IO functions".  Here
the interposition point is the engine's I/O hook: :class:`Tracer`
subscribes to every :class:`~repro.simmpi.fileio.IOEvent` and builds the
per-process trace files plus the application metadata.

Typical use::

    tracer = Tracer()
    engine = Engine(nprocs, platform=cluster)
    tracer.attach(engine)
    engine.run(app_program)
    trace = tracer.finish(engine)       # TraceBundle
    trace.save(Path("traces/app"))      # one file per process + metadata

A bundle holds its events **columnar** (:class:`TraceColumns`) and
materializes :class:`TraceRecord` objects only on first access to
``.records`` -- the characterization fast path never pays for them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.ioutil import atomic_write_text
from repro.simmpi.engine import Engine
from repro.simmpi.fileio import IOEvent

from .columns import TraceColumns, numpy_enabled
from .metadata import AppMetadata
from .tracefile import TraceRecord, write_trace_file


class TraceBundle:
    """A complete traced run: per-process events + metadata.

    Constructible from either ``records`` (list of TraceRecord) or
    ``columns`` (TraceColumns); the missing view is derived lazily and
    cached.  Both views hold the same rows in the same canonical order.
    """

    def __init__(self, nprocs: int, records: list[TraceRecord] | None = None,
                 metadata: AppMetadata | None = None,
                 columns: TraceColumns | None = None):
        if records is None and columns is None:
            raise ValueError("TraceBundle needs records or columns")
        self.nprocs = nprocs
        self.metadata = metadata
        self._records = records
        self._columns = columns

    @property
    def records(self) -> list[TraceRecord]:
        if self._records is None:
            self._records = self._columns.to_records()
        return self._records

    @property
    def columns(self) -> TraceColumns:
        if self._columns is None:
            self._columns = TraceColumns.from_records(self._records)
        return self._columns

    @property
    def nevents(self) -> int:
        cols = self._columns
        return len(cols) if cols is not None else len(self._records)

    def by_rank(self, rank: int) -> list[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    @property
    def nfiles(self) -> int:
        if self._columns is not None:
            return self._columns.nfiles
        return len({r.file_id for r in self._records})

    @property
    def total_bytes(self) -> int:
        if self._columns is not None:
            return self._columns.total_bytes
        return sum(r.request_size for r in self._records)

    def save(self, directory: str | Path, binary: bool = False) -> None:
        """Write the trace: ``trace.<rank>`` text files (the paper's
        Fig. 2 layout) or, with ``binary=True``, one compact columnar
        file (``columns.npz`` under numpy, packed ``columns.trc``
        otherwise) -- plus ``metadata.json`` either way."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if binary:
            name = "columns.npz" if numpy_enabled() else "columns.trc"
            self.columns.save(directory / name)
        else:
            for rank in range(self.nprocs):
                write_trace_file(directory / f"trace.{rank}",
                                 self.by_rank(rank))
        payload = {"nprocs": self.nprocs, "metadata": self.metadata.to_dict()}
        atomic_write_text(directory / "metadata.json",
                          json.dumps(payload, indent=2))

    @classmethod
    def load(cls, directory: str | Path,
             quarantine=None, jobs: int | None = None) -> "TraceBundle":
        """Load a saved bundle, auto-detecting binary vs. text layout.

        With ``quarantine`` (a
        :class:`~repro.tracer.quarantine.QuarantineReport`) a damaged
        bundle loads partially instead of raising: corrupt metadata
        falls back to counting the ``trace.<rank>`` files, a corrupt or
        truncated binary column file is quarantined whole (it cannot be
        partially decoded -- see the quarantine module docstring) with
        a fallback to any per-rank text files, and each text file
        salvages its well-formed rows line by line.  Missing rank files
        are reported per rank and the remaining ranks survive.

        Text traces parse through the ingest engine
        (:mod:`repro.tracer.ingest`): ``jobs`` > 1 fans the rank files
        out across a process pool, with output, errors and quarantine
        reports identical to the serial load.
        """
        from .quarantine import RANK_UNKNOWN

        directory = Path(directory)
        salvaging = quarantine is not None and not quarantine.strict
        meta_path = directory / "metadata.json"
        nprocs = None
        metadata = None
        try:
            payload = json.loads(meta_path.read_text())
            nprocs = payload["nprocs"]
            metadata = AppMetadata.from_dict(payload["metadata"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            if not salvaging:
                raise
            quarantine.note(meta_path, RANK_UNKNOWN, 0,
                            f"unreadable metadata: {type(exc).__name__}")
        columns = None
        for name in ("columns.npz", "columns.trc"):
            binpath = directory / name
            if not binpath.exists():
                continue
            try:
                columns = TraceColumns.load(binpath)
            except Exception as exc:
                if not salvaging:
                    raise
                # Column-major blobs cannot be partially decoded; drop
                # the file and fall back to text traces if present.
                quarantine.note(binpath, RANK_UNKNOWN, 0,
                                f"corrupt binary columns: {exc}")
                continue
            break
        if columns is None:
            if nprocs is None:
                # metadata was quarantined: infer the rank count from
                # the trace files actually present.
                ranks = sorted(int(p.name.split(".", 1)[1])
                               for p in directory.glob("trace.*")
                               if p.name.split(".", 1)[1].isdigit())
                nprocs = (max(ranks) + 1) if ranks else 0
            etypes = ({f.file_id: f.etype_size for f in metadata.files}
                      if metadata is not None else None)
            from .ingest import ingest_rank_files

            parts = ingest_rank_files(
                [directory / f"trace.{rank}" for rank in range(nprocs)],
                etype_size=etypes, quarantine=quarantine, jobs=jobs)
            columns = TraceColumns.concat(parts)
        if nprocs is None:
            nprocs = int(max(columns.rank)) + 1 if len(columns) else 0
        return cls(nprocs=nprocs, columns=columns, metadata=metadata)


def stream_bundle(directory: str | Path, chunk_rows: int = 1 << 16,
                  backend: str | None = None, jobs: int | None = None):
    """Open a saved bundle for *streaming* characterization.

    Returns ``(nprocs, metadata, chunks)`` where ``chunks`` lazily
    yields ``TraceColumns`` pieces of at most ``chunk_rows`` rows whose
    concatenation equals ``TraceBundle.load(directory).columns`` -- feed
    it straight to :meth:`repro.core.model.IOModel.from_stream`.

    Text bundles (``trace.<rank>`` files) stream for real: each rank
    file is parsed block-wise through the ingest engine's bulk kernel
    (:func:`repro.tracer.ingest.iter_ingest_chunks`) in rank order, so
    peak memory is O(parse block + open bursts) regardless of trace
    length.  ``jobs`` > 1 -- or a warm parse cache -- trades that bound
    for speed: each rank file materializes (sharded across a pool /
    loaded from the cache) and re-slices as O(1) views.  Binary bundles
    are a single column blob -- those load and are re-sliced, which
    bounds the *folding* memory but not the load itself (save with
    ``binary=False`` for true streaming).
    """
    directory = Path(directory)
    payload = json.loads((directory / "metadata.json").read_text())
    nprocs = payload["nprocs"]
    metadata = AppMetadata.from_dict(payload["metadata"])
    etypes = {f.file_id: f.etype_size for f in metadata.files}

    binpath = None
    for name in ("columns.npz", "columns.trc"):
        if (directory / name).exists():
            binpath = directory / name
            break

    def chunks():
        if binpath is not None:
            cols = TraceColumns.load(binpath, backend=backend)
            for lo in range(0, len(cols), chunk_rows):
                yield cols.take(range(lo, min(lo + chunk_rows, len(cols))))
            return
        from .ingest import iter_ingest_chunks

        for rank in range(nprocs):
            yield from iter_ingest_chunks(
                directory / f"trace.{rank}", etype_size=etypes,
                backend=backend, chunk_rows=chunk_rows, jobs=jobs)

    return nprocs, metadata, chunks()


@dataclass
class Tracer:
    """Collects I/O events from an engine run."""

    events: list[IOEvent] = field(default_factory=list)

    def attach(self, engine: Engine) -> None:
        engine.add_io_hook(self.events.append)

    def finish(self, engine: Engine) -> TraceBundle:
        """Freeze the trace after ``engine.run`` returned."""
        # Per-rank order is execution order; across ranks sort by rank for
        # a canonical bundle (per-file trace files are per rank anyway).
        columns = TraceColumns.from_events(self.events).sorted_canonical()
        return TraceBundle(
            nprocs=engine.nprocs,
            columns=columns,
            metadata=AppMetadata.from_engine(engine),
        )


def trace_run(app_program, nprocs: int, platform=None, *args) -> TraceBundle:
    """Convenience: run ``app_program`` on ``nprocs`` ranks and trace it.

    Equivalent to the paper's off-line characterization step: execute the
    application once with the tracing tool interposed, keep the trace.
    """
    engine = Engine(nprocs, platform=platform)
    tracer = Tracer()
    tracer.attach(engine)
    engine.run(app_program, *args)
    return tracer.finish(engine)

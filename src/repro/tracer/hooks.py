"""PAS2P-style tracing: interposition on the simulated MPI-IO layer.

The paper extends the PAS2P tool to trace MPI-IO routines "through an
automatic instrumentation that interposes to MPI-IO functions".  Here
the interposition point is the engine's I/O hook: :class:`Tracer`
subscribes to every :class:`~repro.simmpi.fileio.IOEvent` and builds the
per-process trace files plus the application metadata.

Typical use::

    tracer = Tracer()
    engine = Engine(nprocs, platform=cluster)
    tracer.attach(engine)
    engine.run(app_program)
    trace = tracer.finish(engine)       # TraceBundle
    trace.save(Path("traces/app"))      # one file per process + metadata
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.simmpi.engine import Engine
from repro.simmpi.fileio import IOEvent

from .metadata import AppMetadata
from .tracefile import TraceRecord, read_trace_file, write_trace_file


@dataclass
class TraceBundle:
    """A complete traced run: per-process records + metadata."""

    nprocs: int
    records: list[TraceRecord]
    metadata: AppMetadata

    def by_rank(self, rank: int) -> list[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    @property
    def nfiles(self) -> int:
        return len({r.file_id for r in self.records})

    @property
    def total_bytes(self) -> int:
        return sum(r.request_size for r in self.records)

    def save(self, directory: str | Path) -> None:
        """Write ``trace.<rank>`` files plus ``metadata.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for rank in range(self.nprocs):
            write_trace_file(directory / f"trace.{rank}", self.by_rank(rank))
        payload = {"nprocs": self.nprocs, "metadata": self.metadata.to_dict()}
        (directory / "metadata.json").write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, directory: str | Path) -> "TraceBundle":
        directory = Path(directory)
        payload = json.loads((directory / "metadata.json").read_text())
        nprocs = payload["nprocs"]
        records: list[TraceRecord] = []
        for rank in range(nprocs):
            records.extend(read_trace_file(directory / f"trace.{rank}"))
        return cls(nprocs=nprocs, records=records,
                   metadata=AppMetadata.from_dict(payload["metadata"]))


@dataclass
class Tracer:
    """Collects I/O events from an engine run."""

    events: list[IOEvent] = field(default_factory=list)

    def attach(self, engine: Engine) -> None:
        engine.add_io_hook(self.events.append)

    def finish(self, engine: Engine) -> TraceBundle:
        """Freeze the trace after ``engine.run`` returned."""
        records = [TraceRecord.from_event(e) for e in self.events]
        # Per-rank order is execution order; across ranks sort by rank for
        # a canonical bundle (per-file trace files are per rank anyway).
        records.sort(key=lambda r: (r.rank, r.time, r.tick))
        return TraceBundle(
            nprocs=engine.nprocs,
            records=records,
            metadata=AppMetadata.from_engine(engine),
        )


def trace_run(app_program, nprocs: int, platform=None, *args) -> TraceBundle:
    """Convenience: run ``app_program`` on ``nprocs`` ranks and trace it.

    Equivalent to the paper's off-line characterization step: execute the
    application once with the tracing tool interposed, keep the trace.
    """
    engine = Engine(nprocs, platform=platform)
    tracer = Tracer()
    tracer.attach(engine)
    engine.run(app_program, *args)
    return tracer.finish(engine)

"""PAS2P-style MPI-IO tracing tool (paper section III-A.1).

Produces per-process trace files in the paper's Fig. 2 format and the
application metadata (pointer kinds, collective usage, access mode and
type, etype size) that the I/O abstract model's *metadata* component
reports.  Traces are held columnar (:class:`TraceColumns`) and can be
persisted either as the Fig. 2 text files or as one compact binary
column file per run.
"""

from .columns import (
    ABS_OFFSET_UNKNOWN,
    TraceColumns,
    default_backend,
    numpy_enabled,
    read_trace_columns,
)
from .hooks import TraceBundle, Tracer, trace_run
from .metadata import AppMetadata, FileMetadataSummary, summarize_file
from .tracefile import (
    HEADER,
    TraceRecord,
    iter_by_rank,
    read_trace_file,
    write_trace_file,
)

__all__ = [
    "ABS_OFFSET_UNKNOWN",
    "AppMetadata",
    "FileMetadataSummary",
    "HEADER",
    "TraceBundle",
    "TraceColumns",
    "TraceRecord",
    "Tracer",
    "default_backend",
    "iter_by_rank",
    "numpy_enabled",
    "read_trace_columns",
    "read_trace_file",
    "summarize_file",
    "trace_run",
    "write_trace_file",
]

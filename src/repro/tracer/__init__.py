"""PAS2P-style MPI-IO tracing tool (paper section III-A.1).

Produces per-process trace files in the paper's Fig. 2 format and the
application metadata (pointer kinds, collective usage, access mode and
type, etype size) that the I/O abstract model's *metadata* component
reports.
"""

from .hooks import TraceBundle, Tracer, trace_run
from .metadata import AppMetadata, FileMetadataSummary, summarize_file
from .tracefile import (
    HEADER,
    TraceRecord,
    iter_by_rank,
    read_trace_file,
    write_trace_file,
)

__all__ = [
    "AppMetadata",
    "FileMetadataSummary",
    "HEADER",
    "TraceBundle",
    "TraceRecord",
    "Tracer",
    "iter_by_rank",
    "read_trace_file",
    "summarize_file",
    "trace_run",
    "write_trace_file",
]

"""Quarantine-mode trace ingest: salvage what parses, report the rest.

Long traced runs die in ugly ways -- a node crash truncates a rank's
trace file mid-line, a full filesystem interleaves garbage into the
text, a binary bundle loses its tail.  The strict loaders raise on the
first bad byte, which throws away every well-formed record collected
before the corruption.  Quarantine mode inverts that: pass a
:class:`QuarantineReport` to :func:`~repro.tracer.tracefile.read_trace_file`,
:func:`~repro.tracer.columns.read_trace_columns` or
:meth:`~repro.tracer.hooks.TraceBundle.load` and every salvageable
record is kept while each rejected line / missing file / corrupt blob
becomes a :class:`QuarantineEntry` naming its source, rank and reason.

Salvage granularity follows the formats:

* **text traces** are line-delimited, so recovery is per line -- every
  well-formed row before, between and after garbage survives;
* **packed binary columns** (``.trc``/``.npz``) are column-major blobs;
  a truncated file cannot be partially decoded (row ``i`` lives at
  ``i``-th position of *every* blob, and the tail blobs are the ones
  missing), so the whole file is quarantined and the loader falls back
  to per-rank text files when they exist.

The quarantined-line count is exported through the
``quarantined_lines_total`` obs metric, labelled by reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro import obs

#: Rank attribution for lines too mangled to carry one.
RANK_UNKNOWN = -1


@dataclass(frozen=True)
class QuarantineEntry:
    """One rejected input: where it came from and why it was dropped."""

    source: str  # file (or file:lineno) the input came from
    rank: int  # owning rank, RANK_UNKNOWN if unparseable
    lineno: int  # 0 for whole-file problems
    reason: str
    line: str = ""  # offending text, truncated for the report

    def __str__(self) -> str:
        loc = f"{self.source}:{self.lineno}" if self.lineno else self.source
        shown = self.line if len(self.line) <= 80 else self.line[:77] + "..."
        tail = f": {shown!r}" if shown else ""
        return f"{loc} [rank {self.rank}] {self.reason}{tail}"


@dataclass
class QuarantineReport:
    """Collects everything an ingest had to drop.

    Truthy when anything was quarantined, so callers can write
    ``if report: log(report.summary())``.  ``strict=True`` turns the
    report into a pass-through: the first problem raises exactly as the
    quarantine-less loaders do (useful to share one code path).
    """

    entries: list[QuarantineEntry] = field(default_factory=list)
    strict: bool = False

    def note(self, source: str | Path, rank: int, lineno: int, reason: str,
             line: str = "") -> None:
        if self.strict:
            loc = f"{source}:{lineno}" if lineno else str(source)
            raise ValueError(f"{loc}: {reason}" +
                             (f": {line!r}" if line else ""))
        self.entries.append(QuarantineEntry(
            source=str(source), rank=rank, lineno=lineno, reason=reason,
            line=line))
        if obs.ACTIVE:
            obs.inc("quarantined_lines_total", reason=reason.split(":")[0])

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def by_rank(self) -> dict[int, list[QuarantineEntry]]:
        """Per-rank error report (RANK_UNKNOWN groups the unattributable)."""
        out: dict[int, list[QuarantineEntry]] = {}
        for e in self.entries:
            out.setdefault(e.rank, []).append(e)
        return dict(sorted(out.items()))

    def summary(self, max_lines: int = 20) -> str:
        """Human-readable digest: per-rank counts plus the first entries."""
        if not self.entries:
            return "quarantine: clean (nothing dropped)"
        counts = {rank: len(es) for rank, es in self.by_rank().items()}
        head = ", ".join(
            (f"rank {rank}: {n}" if rank != RANK_UNKNOWN else f"unattributed: {n}")
            for rank, n in counts.items())
        lines = [f"quarantine: {len(self.entries)} dropped ({head})"]
        for e in self.entries[:max_lines]:
            lines.append(f"  {e}")
        if len(self.entries) > max_lines:
            lines.append(f"  ... and {len(self.entries) - max_lines} more")
        return "\n".join(lines)


def guess_rank(line: str) -> int:
    """Best-effort rank attribution for a rejected text row."""
    head = line.split(maxsplit=1)
    if head:
        try:
            return int(head[0])
        except ValueError:
            pass
    return RANK_UNKNOWN

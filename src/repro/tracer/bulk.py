"""Bulk tokenizer kernel: vectorized Fig. 2 text parsing.

The classic parsers (:mod:`repro.tracer.columns`) tokenize decoded
*lines*; this module tokenizes a raw **byte block** in one numpy pass:
separator positions come from one ``flatnonzero``, every integer column
is converted with a right-aligned digit sweep against a power-of-ten
table, and the fixed ``%.6f`` float columns (the tracer always writes
six fractional digits) convert via an exact integer mantissa divided by
``10**6`` -- bit-identical to ``float(str)`` because both are the
correctly-rounded value of the same decimal when the mantissa fits 15
digits (exact in int64 and float64; longer tokens fall back).

:func:`bulk_parse` is *eligibility-gated*, not lenient: any deviation
from the clean single-space nine-field layout -- tabs, ``\\r``, runs of
spaces, 8-field legacy rows, out-of-range digits, >18-digit ints --
returns ``None`` untouched and the caller re-parses the block through
the exact line-wise path, which owns error locations, quarantine
salvage and legacy-row semantics.  The kernel therefore never has to be
*almost* right: it either proves the block clean and converts it, or
declines.  Parity with the line parsers (including float bit-identity
and op-table interning order) is asserted by
``tests/tracer/test_ingest.py`` down to ``content_digest`` equality.
"""

from __future__ import annotations

import os

try:  # numpy is optional everywhere in the tracer
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy CI job
    np = None

_TRUTHY = ("1", "true", "yes", "on")

__all__ = ["bulk_available", "bulk_parse"]


def bulk_available() -> bool:
    """True when the numpy kernel may engage (import + env gates)."""
    return (np is not None
            and os.environ.get("REPRO_NO_NUMPY", "").lower() not in _TRUTHY
            and os.environ.get("REPRO_NO_BULK", "").lower() not in _TRUTHY)


def _pow10():
    return 10 ** np.arange(19, dtype=np.int64)


def _parse_ints(arr, d, starts, ends, bad, pow10):
    """Right-aligned digit sweep over one integer column.

    ``d`` is ``arr - 48`` in uint8 (wrapping), so every non-digit byte
    lands above 9 and one unsigned compare per place accumulates the
    validity flags.  Lanes shorter than the current place contribute 0
    via the ``live`` mask; their (wrapped, in-bounds) gathers are
    discarded.  Returns None when the column cannot be converted
    exactly (>18 digits would overflow int64 -- the caller's fallback
    reproduces the classic path's behaviour for those).
    """
    neg = arr[starts] == 45  # '-'
    s = starts + neg
    lens = ends - s
    if len(lens) == 0:
        return np.zeros(0, dtype=np.int64)
    maxlen = int(lens.max())
    if maxlen > 18 or int(lens.min()) < 1:
        return None
    vals = np.zeros(len(starts), dtype=np.int64)
    for j in range(maxlen):
        live = lens > j
        dj = d[ends - 1 - j]
        np.logical_or(bad, (dj > 9) & live, out=bad)
        vals += np.multiply(dj, pow10[j], dtype=np.int64) * live
    np.negative(vals, out=vals, where=neg)
    return vals


def _parse_floats_f6(arr, d, starts, ends, bad, pow10):
    """Exact conversion of fixed ``%.6f`` tokens: ``[-]int.dddddd``.

    The integer mantissa accumulates like ``_parse_ints`` (six always-
    present fractional digits, then the masked integer digits), and the
    value is ``mantissa / 10**6`` -- correctly rounded, hence equal to
    ``float(token)``, whenever the mantissa has <= 15 digits.  Anything
    else (scientific notation, other fractional widths, long mantissas,
    ``nan``/``inf``) returns None for the exact fallback.
    """
    neg = arr[starts] == 45
    s = starts + neg
    lens = ends - s  # token length including the dot
    if len(lens) == 0:
        return np.zeros(0, dtype=np.float64)
    if int(lens.min()) < 8 or int(lens.max()) > 16:  # <= 15 mantissa digits
        return None
    if not (arr[ends - 7] == 46).all():  # '.' fixed six places from the end
        return None
    mant = np.zeros(len(starts), dtype=np.int64)
    for j in range(6):  # fractional digits: always present
        dj = d[ends - 1 - j]
        np.logical_or(bad, dj > 9, out=bad)
        mant += np.multiply(dj, pow10[j], dtype=np.int64)
    for i in range(int(lens.max()) - 7):  # integer digits: length-masked
        live = (lens - 7) > i
        dj = d[ends - 8 - i]
        np.logical_or(bad, (dj > 9) & live, out=bad)
        mant += np.multiply(dj, pow10[6 + i], dtype=np.int64) * live
    vals = mant.astype(np.float64) / 1e6
    np.negative(vals, out=vals, where=neg)
    return vals


#: (token index, output column) for the six integer columns.
_INT_FIELDS = ((0, "rank"), (1, "file_id"), (3, "offset"), (4, "tick"),
               (5, "request_size"), (8, "abs_offset"))
_FLOAT_FIELDS = ((6, "time"), (7, "duration"))


def bulk_parse(data: bytes):
    """Parse one newline-terminated block of clean 9-field rows.

    Returns ``{column: ndarray, "op_table": [str, ...]}`` with op codes
    interned in first-appearance order (matching the line parsers), or
    ``None`` when the block is not provably clean -- the caller then
    owns the exact re-parse.  ``data`` must not include the Fig. 2
    header line.
    """
    arr = np.frombuffer(data, dtype=np.uint8)
    n_bytes = len(arr)
    if n_bytes < 24 or arr[-1] != 10:  # must end on a line break
        return None
    if int(arr.max()) > 126:  # non-ASCII: the fallback owns decoding
        return None
    # any control byte but '\n' (tab, \r, \v, \f) disqualifies the block
    if ((arr < 32) & (arr != 10)).any():
        return None
    sep = arr == 32
    np.logical_or(sep, arr == 10, out=sep)
    spos = np.flatnonzero(sep)
    starts = np.empty(len(spos), dtype=np.int64)
    starts[0] = 0
    starts[1:] = spos[:-1] + 1
    ends = spos
    # empty token == adjacent separators / separator at a line edge
    if (ends == starts).any():
        return None
    is_nl = arr[spos] == 10
    nlines = int(is_nl.sum())
    # exactly nine fields per line: the newline must be every 9th
    # separator (which also proves columns 0..7 end in single spaces)
    if nlines == 0 or len(spos) != 9 * nlines:
        return None
    if not is_nl.reshape(nlines, 9)[:, 8].all():
        return None
    starts = starts.reshape(nlines, 9)
    ends = ends.reshape(nlines, 9)
    d = arr - np.uint8(48)  # wraps: every non-digit byte lands > 9
    pow10 = _pow10()
    bad = np.zeros(nlines, dtype=bool)
    out = {}
    for k, name in _INT_FIELDS:
        vals = _parse_ints(arr, d, starts[:, k], ends[:, k], bad, pow10)
        if vals is None:
            return None
        out[name] = vals
    for k, name in _FLOAT_FIELDS:
        vals = _parse_floats_f6(arr, d, starts[:, k], ends[:, k], bad, pow10)
        if vals is None:
            return None
        out[name] = vals
    if bad.any():  # some byte in a numeric token was not a digit
        return None
    # op column: pad tokens into a fixed-width byte matrix, view as
    # |S-width keys, np.unique-intern, then remap the unique ranks into
    # first-appearance order (what sequential interning produces).
    op_start, op_end = starts[:, 2], ends[:, 2]
    op_len = op_end - op_start
    width = int(op_len.max())
    gather = op_start[:, None] + np.arange(width)
    np.minimum(gather, n_bytes - 1, out=gather)
    padded = np.take(arr, gather)
    padded *= np.arange(width) < op_len[:, None]
    keys = np.ascontiguousarray(padded).view(f"S{width}").ravel()
    uniq, first_idx, inverse = np.unique(keys, return_index=True,
                                         return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank_of = np.empty(len(uniq), dtype=np.int64)
    rank_of[order] = np.arange(len(uniq))
    out["op_code"] = rank_of[inverse.reshape(-1)]
    out["op_table"] = [uniq[i].decode("ascii").rstrip("\x00") for i in order]
    return out

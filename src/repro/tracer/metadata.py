"""Per-file access metadata captured by the tracer.

The paper's model has three parts -- *metadata*, spatial global pattern,
temporal global pattern.  The metadata is what section IV reports for
MADbench2 and BT-IO::

    - Individual file pointers, Non-collective I/O, Blocking I/O
    - Sequential access mode, Shared access type
    - (BT-IO) Explicit offset, Collective operations, Strided access
      mode, MPI_File_set_view with etype of 40, request size 10 MB

:class:`AppMetadata` aggregates the per-file flags the MPI-IO layer
accumulated during a traced run into exactly those statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simmpi.engine import Engine
from repro.simmpi.fileio import SimFile


@dataclass(frozen=True)
class FileMetadataSummary:
    """Digest of one file's access metadata."""

    filename: str
    file_id: int
    pointer_kinds: tuple[str, ...]  # explicit / individual / shared
    collective: bool
    noncollective: bool
    access_mode: str  # "sequential" | "strided"
    access_type: str  # "shared" | "unique"
    etype_size: int
    size_bytes: int
    openers: int
    nonblocking: bool = False

    def statements(self) -> list[str]:
        """Human-readable bullet list, phrased like the paper's section IV."""
        ptr = {
            "explicit": "Explicit offset",
            "individual": "Individual file pointers",
            "shared": "Shared file pointers",
        }
        out = [", ".join(ptr[p] for p in self.pointer_kinds)]
        blocking = ("Blocking and non-blocking I/O operations"
                    if self.nonblocking else "Blocking I/O operations")
        if self.collective and not self.noncollective:
            out.append(f"Collective operations, {blocking}")
        elif self.collective:
            out.append(f"Collective and non-collective I/O, {blocking}")
        else:
            out.append(f"Non-collective I/O operations, {blocking}")
        out.append(f"{self.access_mode.capitalize()} access mode, "
                   f"{self.access_type.capitalize()} access type")
        if self.access_mode == "strided":
            out.append(f"MPI-IO routine MPI_File_set_view with etype of {self.etype_size}")
        return out


@dataclass
class AppMetadata:
    """Metadata for every file an application touched."""

    files: list[FileMetadataSummary] = field(default_factory=list)

    @classmethod
    def from_engine(cls, engine: Engine) -> "AppMetadata":
        summaries = []
        for name in sorted(engine.files, key=lambda n: engine.files[n].file_id):
            summaries.append(summarize_file(engine.files[name]))
        return cls(files=summaries)

    def by_file_id(self, file_id: int) -> FileMetadataSummary:
        for f in self.files:
            if f.file_id == file_id:
                return f
        raise KeyError(f"no file with id {file_id}")

    def to_dict(self) -> dict:
        return {"files": [vars(f) | {"pointer_kinds": list(f.pointer_kinds)}
                          for f in self.files]}

    @classmethod
    def from_dict(cls, data: dict) -> "AppMetadata":
        files = []
        for d in data["files"]:
            d = dict(d)
            d["pointer_kinds"] = tuple(d["pointer_kinds"])
            files.append(FileMetadataSummary(**d))
        return cls(files=files)


def summarize_file(simfile: SimFile) -> FileMetadataSummary:
    """Digest one simulated file's accumulated access flags."""
    meta = simfile.meta
    kinds = []
    if meta.used_explicit_offset:
        kinds.append("explicit")
    if meta.used_individual_pointer:
        kinds.append("individual")
    if meta.used_shared_pointer:
        kinds.append("shared")
    return FileMetadataSummary(
        filename=simfile.name,
        file_id=simfile.file_id,
        pointer_kinds=tuple(kinds),
        collective=meta.used_collective,
        noncollective=meta.used_noncollective,
        nonblocking=meta.used_nonblocking,
        access_mode=meta.access_mode,
        access_type=meta.access_type,
        etype_size=meta.etype_size,
        size_bytes=simfile.size,
        openers=len(simfile.openers),
    )

"""The paper's trace-file format (Fig. 2): writer and parser.

One trace file per MPI process, one row per I/O operation::

    IdP IdF MPI-Operation Offset tick RequestSize time duration AbsOffset

Offsets are view-relative etype offsets, request sizes are bytes, time
and duration are seconds -- exactly the columns of Fig. 2.  One column
is added to the paper's format: ``AbsOffset``, the absolute file offset
of the first accessed byte (the paper derives it from the view metadata
when building the global logical view; carrying it in the trace makes
the f(initOffset) fit explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.simmpi.fileio import IOEvent

HEADER = "IdP IdF MPI-Operation Offset tick RequestSize time duration AbsOffset"

#: Sentinel for legacy 8-field (paper-format) rows whose absolute byte
#: offset cannot be derived: the view offset is in *etype units*, so it
#: must never be reused as a byte offset (that was a silent-corruption
#: bug for any file with etype_size != 1).
ABS_OFFSET_UNKNOWN = -1


@dataclass(frozen=True)
class TraceRecord:
    """One row of a trace file."""

    rank: int
    file_id: int
    op: str
    offset: int
    tick: int
    request_size: int
    time: float
    duration: float
    abs_offset: int

    @classmethod
    def from_event(cls, event: IOEvent) -> "TraceRecord":
        return cls(
            rank=event.rank,
            file_id=event.file_id,
            op=event.op,
            offset=event.offset,
            tick=event.tick,
            request_size=event.request_size,
            time=event.time,
            duration=event.duration,
            abs_offset=event.abs_offset,
        )

    def to_line(self) -> str:
        return (f"{self.rank} {self.file_id} {self.op} {self.offset} "
                f"{self.tick} {self.request_size} {self.time:.6f} "
                f"{self.duration:.6f} {self.abs_offset}")

    @classmethod
    def from_line(cls, line: str,
                  etype_size: int | Mapping[int, int] | None = None,
                  ) -> "TraceRecord":
        """Parse one trace row.

        Legacy 8-field rows (the paper's exact Fig. 2 format) carry no
        ``AbsOffset`` column.  The view offset is in *etype units*, so
        the absolute byte offset is ``offset * etype_size`` when the
        etype size is known (pass an int, or a ``{file_id: etype_size}``
        mapping from the app metadata) and :data:`ABS_OFFSET_UNKNOWN`
        otherwise -- never the raw view offset.
        """
        parts = line.split()
        if len(parts) not in (8, 9):
            raise ValueError(f"malformed trace line ({len(parts)} fields): {line!r}")
        try:
            file_id = int(parts[1])
            offset = int(parts[3])
            if len(parts) == 9:
                abs_offset = int(parts[8])
            else:
                es = etype_size.get(file_id) \
                    if isinstance(etype_size, Mapping) else etype_size
                abs_offset = offset * es if es else ABS_OFFSET_UNKNOWN
            return cls(
                rank=int(parts[0]),
                file_id=file_id,
                op=parts[2],
                offset=offset,
                tick=int(parts[4]),
                request_size=int(parts[5]),
                time=float(parts[6]),
                duration=float(parts[7]),
                abs_offset=abs_offset,
            )
        except ValueError:
            raise ValueError(f"malformed trace line: {line!r}") from None

    @property
    def kind(self) -> str:
        """"write" or "read", derived from the MPI routine name."""
        return "write" if "write" in self.op else "read"

    @property
    def has_abs_offset(self) -> bool:
        """False for legacy rows whose byte offset could not be derived."""
        return self.abs_offset != ABS_OFFSET_UNKNOWN


def write_trace_file(path: str | Path, records: Iterable[TraceRecord]) -> None:
    """Write one process's trace file (``traceFile_(p)`` in Table I).

    The write is atomic (temp file + rename): a run killed mid-save
    leaves the previous trace (or nothing), never a truncated file.
    """
    from repro.ioutil import atomic_open

    with atomic_open(Path(path), "w") as f:
        f.write(HEADER + "\n")
        for rec in records:
            f.write(rec.to_line() + "\n")


def read_trace_file(path: str | Path,
                    etype_size: int | Mapping[int, int] | None = None,
                    quarantine=None) -> list[TraceRecord]:
    """Parse a trace file written by :func:`write_trace_file`.

    The header is skipped only when line 1 matches :data:`HEADER`
    exactly; malformed rows raise ``ValueError`` tagged with
    ``path:lineno``.  ``etype_size`` resolves the absolute offset of
    legacy 8-field rows (see :meth:`TraceRecord.from_line`).

    With ``quarantine`` (a
    :class:`~repro.tracer.quarantine.QuarantineReport`) malformed rows
    are recorded there instead of raising, and every well-formed row --
    before, between and after the garbage -- is salvaged.
    """
    from .quarantine import guess_rank

    path = Path(path)
    records = []
    with path.open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or (lineno == 1 and line == HEADER):
                continue
            try:
                records.append(TraceRecord.from_line(line, etype_size))
            except ValueError as exc:
                if quarantine is not None and not quarantine.strict:
                    quarantine.note(path, guess_rank(line), lineno,
                                    "malformed trace line", line)
                    continue
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    return records


def iter_by_rank(records: Iterable[TraceRecord]) -> Iterator[tuple[int, list[TraceRecord]]]:
    """Group records by rank (idP), preserving per-rank order."""
    by_rank: dict[int, list[TraceRecord]] = {}
    for rec in records:
        by_rank.setdefault(rec.rank, []).append(rec)
    for rank in sorted(by_rank):
        yield rank, by_rank[rank]

"""Profiling session: enable -> run -> export -> summarize.

The one-stop wrapper behind ``repro-io profile``::

    with ProfileSession() as prof:
        model, _ = characterize_app(program, np, params)
        ...
    paths = prof.write(Path("prof"))
    print(prof.summary())

``write`` emits the three artifact formats side by side:

* ``events.jsonl``      -- JSON-lines spans/events/metric samples
* ``trace.chrome.json`` -- Chrome trace_event (Perfetto-loadable)
* ``metrics.prom``      -- Prometheus text exposition
"""

from __future__ import annotations

from pathlib import Path

from repro.report.tables import render

from . import disable, enable
from .export import write_chrome_trace, write_jsonl, write_prometheus
from .metrics import Histogram, MetricsRegistry
from .spans import Event, Span, SpanTracer, WALL

MB = 1024 * 1024

#: Artifact filenames produced by :meth:`ProfileSession.write`.
JSONL_NAME = "events.jsonl"
CHROME_NAME = "trace.chrome.json"
PROM_NAME = "metrics.prom"


class ProfileSession:
    """Context manager owning one observed run's sinks and artifacts."""

    def __init__(self, tracer: SpanTracer | None = None,
                 registry: MetricsRegistry | None = None):
        self._tracer_arg = tracer
        self._registry_arg = registry
        self.tracer: SpanTracer | None = None
        self.registry: MetricsRegistry | None = None
        self.spans: list[Span] = []
        self.events: list[Event] = []

    def __enter__(self) -> "ProfileSession":
        self.tracer, self.registry = enable(self._tracer_arg,
                                            self._registry_arg)
        return self

    def __exit__(self, *exc) -> bool:
        self.spans = self.tracer.finish()
        self.events = list(self.tracer.events)
        disable()
        return False

    # -- artifacts -------------------------------------------------------------
    def write(self, out_dir: str | Path) -> dict[str, Path]:
        """Write all three artifacts into ``out_dir``; returns their paths."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        return {
            "jsonl": write_jsonl(out_dir / JSONL_NAME, self.spans,
                                 self.events, self.registry),
            "chrome": write_chrome_trace(out_dir / CHROME_NAME, self.spans,
                                         self.events),
            "prometheus": write_prometheus(out_dir / PROM_NAME,
                                           self.registry),
        }

    # -- terminal summary ------------------------------------------------------
    def summary(self) -> str:
        """Human-readable digest: stage times, I/O totals, busiest waits."""
        return "\n\n".join(filter(None, [
            self._stage_table(),
            self._io_table(),
            self._wait_table(),
            self._cache_table(),
        ]))

    def _stage_table(self) -> str:
        rows = {}
        for sp in self.spans:
            if sp.clock != WALL:
                continue
            key = (sp.cat, sp.name)
            count, total = rows.get(key, (0, 0.0))
            rows[key] = (count + 1, total + sp.duration)
        if not rows:
            return ""
        body = [[cat, name, count, f"{total:.3f}"]
                for (cat, name), (count, total)
                in sorted(rows.items(), key=lambda kv: -kv[1][1])]
        return render(["category", "span", "count", "wall s"], body,
                      title="Wall-clock spans")

    def _io_table(self) -> str:
        fam_ops = self.registry.get("io_operations_total")
        fam_bytes = self.registry.get("io_bytes_total")
        fam_secs = self.registry.get("io_operation_seconds")
        if fam_bytes is None:
            return ""
        ops = {}
        for values, child in (fam_ops.samples() if fam_ops else []):
            labels = dict(zip(fam_ops.labelnames, values))
            ops[labels["kind"]] = ops.get(labels["kind"], 0) + child.value
        secs = {}
        for values, child in (fam_secs.samples() if fam_secs else []):
            labels = dict(zip(fam_secs.labelnames, values))
            if isinstance(child, Histogram):
                secs[labels["kind"]] = child.sum
        body = []
        for values, child in fam_bytes.samples():
            kind = dict(zip(fam_bytes.labelnames, values))["kind"]
            vsec = secs.get(kind, 0.0)
            bw = child.value / MB / vsec if vsec > 0 else 0.0
            body.append([kind, int(ops.get(kind, 0)),
                         f"{child.value / MB:.1f}", f"{vsec:.2f}",
                         f"{bw:.1f}"])
        if not body:
            return ""
        return render(["kind", "ops", "MB", "virtual s", "MB/s"], body,
                      title="Traced I/O")

    def _wait_table(self, top: int = 8) -> str:
        fam = self.registry.get("resource_wait_seconds")
        if fam is None:
            return ""
        body = []
        for values, child in fam.samples():
            name = dict(zip(fam.labelnames, values))["resource"]
            if child.count == 0:
                continue
            body.append((child.sum, [name, child.count,
                                     f"{child.sum:.3f}",
                                     f"{child.sum / child.count * 1e3:.3f}"]))
        if not body:
            return ""
        body.sort(key=lambda r: -r[0])
        return render(["resource", "acquisitions", "total wait s",
                       "mean wait ms"],
                      [row for _, row in body[:top]],
                      title=f"Busiest queue waits (top {top})")

    def _cache_table(self) -> str:
        """One line per memo registry: hits, misses, hit-rate, tier."""
        from repro import store
        from repro.core import cache as simcache

        persistent = store.active() is not None
        stats = simcache.stats()
        body = []
        for name in sorted(stats):
            st = stats[name]
            looked = st["hits"] + st["misses"]
            if looked == 0 and st["entries"] == 0:
                continue
            rate = f"{100.0 * st['hits'] / looked:.1f}%" if looked else "-"
            body.append([name, st["hits"], st["misses"], rate,
                         st["disk_hits"],
                         "persistent" if persistent else "in-memory"])
        if not body:
            return ""
        return render(["cache", "hits", "misses", "hit rate", "disk hits",
                       "tier"], body, title="Result caches")

"""repro.obs -- end-to-end observability: spans, metrics, exporters.

One switchboard for the whole stack.  The engine, the MPI-IO layer, the
iosim resource stack and the methodology pipeline all call the
module-level helpers below; when no sink is attached (the default)
every helper is a single ``if not ACTIVE`` branch, so instrumentation
is effectively free (enforced by ``benchmarks/test_bench_obs_overhead``).

Enable collection explicitly::

    from repro import obs

    tracer, registry = obs.enable()
    ...  # run anything: characterize_app, engine.run, replay_phase
    spans = tracer.finish()
    obs.disable()

or use :class:`repro.obs.profile.ProfileSession`, which wraps
enable/collect/export/disable and writes the three artifact formats
(JSON lines, Chrome trace_event, Prometheus text).

Design rule for instrumentation sites: **guard first, then call** --
either ``if obs.ACTIVE: obs.observe_...(...)`` for hot paths, or use
the helpers that return no-op singletons (``obs.span``) for structured
blocks.
"""

from __future__ import annotations

from .metrics import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import NULL_SPAN, Event, Span, SpanTracer, VIRTUAL, WALL

__all__ = [
    "ACTIVE", "enable", "disable", "enabled", "tracer", "registry",
    "span", "event", "record_span", "inc", "set_gauge", "observe",
    "observe_io_event", "observe_collective", "observe_p2p",
    "observe_resource_wait", "observe_device_transfer",
    "SpanTracer", "MetricsRegistry", "Span", "Event",
    "Counter", "Gauge", "Histogram",
    "BYTES_BUCKETS", "SECONDS_BUCKETS", "NULL_SPAN", "WALL", "VIRTUAL",
]

#: Module-level enabled check -- the zero-cost guard every
#: instrumentation site tests before doing any work.
ACTIVE: bool = False

_tracer: SpanTracer | None = None
_registry: MetricsRegistry | None = None


def enable(tracer: SpanTracer | None = None,
           registry: MetricsRegistry | None = None
           ) -> tuple[SpanTracer, MetricsRegistry]:
    """Attach sinks and turn instrumentation on; returns them."""
    global ACTIVE, _tracer, _registry
    _tracer = tracer if tracer is not None else SpanTracer()
    _registry = registry if registry is not None else MetricsRegistry()
    _preregister(_registry)
    ACTIVE = True
    return _tracer, _registry


def disable() -> None:
    """Detach sinks; instrumentation reverts to zero-cost no-ops."""
    global ACTIVE, _tracer, _registry
    ACTIVE = False
    _tracer = None
    _registry = None


def enabled() -> bool:
    return ACTIVE


def tracer() -> SpanTracer | None:
    return _tracer


def registry() -> MetricsRegistry | None:
    return _registry


def _preregister(reg: MetricsRegistry) -> None:
    """Create the standard families once, with help strings."""
    reg.counter("io_operations_total", "Traced MPI-IO data operations",
                ("kind", "collective"))
    reg.counter("io_bytes_total", "Bytes moved by traced MPI-IO operations",
                ("kind",))
    reg.histogram("io_request_bytes", "MPI-IO request sizes",
                  ("kind",), buckets=BYTES_BUCKETS)
    reg.histogram("io_operation_seconds",
                  "Virtual duration of MPI-IO operations", ("kind",),
                  buckets=SECONDS_BUCKETS)
    reg.counter("mpi_collectives_total", "Completed collective operations",
                ("op",))
    reg.counter("mpi_p2p_total", "Completed point-to-point matches")
    reg.counter("engine_runs_total", "Engine runs started")
    reg.counter("engine_ops_total", "Scheduler-processed rank operations",
                ("kind",))
    reg.histogram("resource_wait_seconds",
                  "FCFS queue wait per contended resource", ("resource",),
                  buckets=SECONDS_BUCKETS)
    reg.counter("resource_busy_seconds_total",
                "Accumulated busy time per contended resource", ("resource",))
    reg.gauge("resource_queue_depth_seconds",
              "Backlog (seconds of queued work) seen by the last request",
              ("resource",))
    reg.counter("device_bytes_total", "Bytes moved at the device level",
                ("device", "kind"))
    reg.counter("device_transfers_total", "Device-level transfers",
                ("device", "kind"))
    reg.counter("device_busy_seconds_total", "Device busy time",
                ("device",))
    reg.gauge("phase_bw_ch_mb_s",
              "Characterized bandwidth BW_CH per phase (eq. 1)",
              ("config", "phase"))
    reg.counter("cache_hits_total",
                "Simulation memo-cache hits (repro.core.cache)", ("cache",))
    reg.counter("cache_misses_total",
                "Simulation memo-cache misses (repro.core.cache)", ("cache",))
    reg.counter("store_hits_total",
                "Persistent result-store hits (repro.store)", ("cache",))
    reg.counter("store_misses_total",
                "Persistent result-store misses (repro.store)", ("cache",))
    reg.counter("store_writes_total",
                "Entries written to the persistent result store", ("cache",))
    reg.counter("store_evictions_total",
                "Persistent-store entries evicted (schema mismatch/corrupt)",
                ("cache",))
    reg.counter("replay_plan_requests_total",
                "Phase-replay requests collected by the replay planner")
    reg.counter("replay_plan_unique_total",
                "Unique (phase, config) replays the planner executed")
    reg.counter("characterize_rows_total",
                "Trace rows consumed by model extraction", ("method",))
    reg.counter("characterize_lap_entries_total",
                "LAP entries produced by model extraction", ("method",))
    reg.gauge("characterize_rows_per_s",
              "Trace rows/s through the most recent model extraction",
              ("method",))
    reg.counter("fault_injections_total",
                "Fault-plan events injected into the simulation",
                ("kind", "target"))
    reg.counter("retries_total",
                "Retry-policy re-attempts after transient faults",
                ("kind",))
    reg.counter("sweep_job_failures_total",
                "Sweep jobs that raised or timed out", ("job",))
    reg.counter("sweep_jobs_resumed_total",
                "Sweep jobs skipped because a checkpoint already existed")
    reg.histogram("cluster_dispatch_latency_seconds",
                  "Dispatch-to-result wall time per cluster job",
                  buckets=SECONDS_BUCKETS)
    reg.gauge("cluster_queue_depth",
              "Cluster jobs waiting for a free worker")
    reg.gauge("cluster_workers", "Connected cluster workers")
    reg.counter("cluster_bytes_sent_total",
                "Bytes the cluster master put on the wire")
    reg.counter("cluster_bytes_recv_total",
                "Bytes the cluster master received from workers")
    reg.counter("cluster_requeues_total",
                "Cluster jobs requeued after a worker death or "
                "heartbeat timeout")
    reg.counter("service_requests_total",
                "Study requests admitted by the service")
    reg.counter("service_batches_total",
                "Batches admitted by the service")
    reg.counter("service_busy_total",
                "Submissions refused with BUSY (admission control)")
    reg.counter("service_dedup_hits_total",
                "Submitted requests answered by an existing request")
    reg.counter("service_recovered_total",
                "Requests re-enqueued from the journal after a restart")
    reg.counter("service_completed_total",
                "Service requests completed successfully", ("kind",))
    reg.counter("service_failures_total",
                "Service requests that failed terminally", ("kind",))
    reg.counter("service_breaker_trips_total",
                "Executor circuit-breaker trips (tier opened)", ("tier",))
    reg.gauge("service_queue_depth",
              "Service requests queued or running")
    reg.gauge("service_draining",
              "1 while the service is draining, else 0")
    reg.counter("quarantined_lines_total",
                "Trace inputs dropped by quarantine-mode ingest",
                ("reason",))
    reg.counter("ingest_files_total",
                "Trace files parsed by the ingest engine")
    reg.counter("ingest_rows_total",
                "Trace rows parsed by the ingest engine", ("kernel",))
    reg.counter("ingest_shards_total",
                "Byte-range shards dispatched by parallel ingest")
    reg.counter("ingest_cache_hits_total",
                "Ingest parse-cache hits (repro.store)")
    reg.counter("ingest_cache_misses_total",
                "Ingest parse-cache misses (repro.store)")
    reg.counter("degraded_estimates_total",
                "Degraded-mode estimations completed",
                ("config", "outcome"))


# -- structured helpers (no-ops when disabled) ---------------------------------

def span(name: str, cat: str = "app", tid: str = "main", **attrs):
    """Open a wall-clock span; returns a no-op singleton when disabled."""
    if not ACTIVE:
        return NULL_SPAN
    return _tracer.span(name, cat=cat, tid=tid, **attrs)


def event(name: str, cat: str = "app", tid: str = "main",
          clock: str = WALL, ts: float | None = None, **attrs) -> None:
    if not ACTIVE:
        return
    _tracer.event(name, cat=cat, tid=tid, clock=clock, ts=ts, **attrs)


def record_span(name: str, cat: str, tid: str, start: float,
                duration: float, **attrs) -> None:
    """Record a completed virtual-time span."""
    if not ACTIVE:
        return
    _tracer.record(name, cat, tid, start, duration, **attrs)


def inc(name: str, amount: float = 1.0, **labels) -> None:
    if not ACTIVE:
        return
    fam = _registry.get(name) or _registry.counter(
        name, labelnames=tuple(sorted(labels)))
    (fam.labels(**labels) if fam.labelnames else fam).inc(amount)


def set_gauge(name: str, value: float, **labels) -> None:
    if not ACTIVE:
        return
    fam = _registry.get(name) or _registry.gauge(
        name, labelnames=tuple(sorted(labels)))
    (fam.labels(**labels) if fam.labelnames else fam).set(value)


def observe(name: str, value: float, **labels) -> None:
    if not ACTIVE:
        return
    fam = _registry.get(name) or _registry.histogram(
        name, labelnames=tuple(sorted(labels)))
    (fam.labels(**labels) if fam.labelnames else fam).observe(value)


# -- domain bridges (call sites guard with ``if obs.ACTIVE``) ------------------

def observe_io_event(e) -> None:
    """Record one traced MPI-IO operation (an ``IOEvent``)."""
    if not ACTIVE:
        return
    _tracer.record(e.op, "io", f"rank {e.rank}", e.time, e.duration,
                   file=e.filename, bytes=e.request_size,
                   offset=e.offset, tick=e.tick, collective=e.collective)
    reg = _registry
    reg.get("io_operations_total").labels(
        kind=e.kind, collective=str(e.collective).lower()).inc()
    reg.get("io_bytes_total").labels(kind=e.kind).inc(e.request_size)
    reg.get("io_request_bytes").labels(kind=e.kind).observe(e.request_size)
    reg.get("io_operation_seconds").labels(kind=e.kind).observe(e.duration)


def observe_collective(op: str, start: float,
                       durations: dict[int, float]) -> None:
    """Record one completed collective (per participating rank)."""
    if not ACTIVE:
        return
    _registry.get("mpi_collectives_total").labels(op=op).inc()
    if op.startswith("MPI_File_"):
        return  # the data operation is recorded by observe_io_event
    for rank, dur in durations.items():
        _tracer.record(op, "mpi", f"rank {rank}", start, dur)


def observe_p2p(src: int, dst: int, start: float, duration: float,
                nbytes: int) -> None:
    if not ACTIVE:
        return
    _registry.get("mpi_p2p_total").inc()
    for rank in (src, dst):
        _tracer.record("p2p", "mpi", f"rank {rank}", start, duration,
                       src=src, dst=dst, bytes=nbytes)


def observe_resource_wait(resource: str, wait: float, cost: float) -> None:
    """Record one FCFS acquisition: queue wait + busy accounting.

    The queue-depth gauge holds the backlog (seconds of queued work)
    the *latest* request found in front of it -- for an FCFS resource
    that equals its wait.
    """
    if not ACTIVE:
        return
    reg = _registry
    reg.get("resource_wait_seconds").labels(resource=resource).observe(wait)
    reg.get("resource_busy_seconds_total").labels(resource=resource).inc(cost)
    reg.get("resource_queue_depth_seconds").labels(resource=resource).set(wait)


def observe_device_transfer(device: str, begin: float, end: float,
                            nbytes: int, kind: str) -> None:
    """Device-level transfer accounting (fed by DeviceMonitor.record)."""
    if not ACTIVE:
        return
    reg = _registry
    reg.get("device_bytes_total").labels(device=device, kind=kind).inc(nbytes)
    reg.get("device_transfers_total").labels(device=device, kind=kind).inc()
    reg.get("device_busy_seconds_total").labels(device=device).inc(
        max(0.0, end - begin))

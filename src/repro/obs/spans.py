"""Structured span/event tracer.

The observability layer's first pillar: nested **spans** with wall-clock
and virtual-time attribution.  Two span flavours exist because the
codebase runs on two clocks:

* **wall spans** -- real elapsed time of pipeline stages
  (characterize / estimate / measure / evaluate), opened and closed as
  Python context managers.  Nesting is tracked per thread (the engine
  runs one Python thread per simulated rank), so concurrent rank
  threads each get their own ancestor stack.
* **virtual spans** -- completed intervals on the simulation's virtual
  clock (an I/O operation of rank 3 from t=12.5s for 0.8s).  These are
  recorded post-hoc in one call because the simulator computes a whole
  interval at once; their timeline is the phase-aligned picture of the
  paper's Figs. 2 and 8.

Instant **events** (no duration) mark points of interest on either
clock.

All mutation is lock-protected; the tracer may be fed from the
scheduler thread and every rank thread at once.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

#: Clock identifiers carried by every span/event.
WALL = "wall"
VIRTUAL = "virtual"


@dataclass
class Span:
    """One completed (or in-flight) span."""

    span_id: int
    parent_id: int | None
    name: str
    cat: str
    tid: str  # logical track: "main", "rank 3", ...
    clock: str  # WALL | VIRTUAL
    start: float  # seconds (perf_counter origin for wall, t=0 for virtual)
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def annotate(self, **attrs) -> None:
        """Attach attributes to the span (e.g. results known at exit)."""
        self.attrs.update(attrs)

    def set_virtual(self, start: float, duration: float) -> None:
        """Attach a virtual-time interval to a wall span's attrs."""
        self.attrs["virtual_start"] = start
        self.attrs["virtual_duration"] = duration


@dataclass
class Event:
    """An instant event (Chrome trace ``ph: i``)."""

    name: str
    cat: str
    tid: str
    clock: str
    ts: float
    attrs: dict = field(default_factory=dict)


class _NullSpan:
    """Do-nothing span handed out when observability is disabled.

    Supports the full :class:`Span` surface so instrumentation sites
    never need an enabled-check around attribute calls.
    """

    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def set_virtual(self, start: float, duration: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Shared singleton: ``obs.span(...)`` returns this when disabled, so
#: the disabled cost is one branch plus one attribute load.
NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager binding a wall span to the tracer's thread stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self._tracer = tracer
        self.span = span

    def annotate(self, **attrs) -> None:
        self.span.annotate(**attrs)

    def set_virtual(self, start: float, duration: float) -> None:
        self.span.set_virtual(start, duration)

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self.span)
        return False


class SpanTracer:
    """Collects spans and events; thread-safe; context-propagating."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self._epoch = clock()

    # -- context propagation ---------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open wall span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- wall spans ------------------------------------------------------------
    def span(self, name: str, cat: str = "app", tid: str = "main",
             **attrs) -> _OpenSpan:
        """Open a nested wall-clock span; use as a context manager."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            sp = Span(
                span_id=next(self._ids),
                parent_id=parent,
                name=name,
                cat=cat,
                tid=tid,
                clock=WALL,
                start=self._clock() - self._epoch,
                attrs=dict(attrs),
            )
            self.spans.append(sp)
        stack.append(sp)
        return _OpenSpan(self, sp)

    def _close(self, sp: Span) -> None:
        stack = self._stack()
        # Unwind to the closed span: tolerates exceptions skipping exits.
        while stack:
            top = stack.pop()
            if top.span_id == sp.span_id:
                break
        sp.duration = (self._clock() - self._epoch) - sp.start

    # -- virtual spans ---------------------------------------------------------
    def record(self, name: str, cat: str, tid: str, start: float,
               duration: float, **attrs) -> Span:
        """Record a completed virtual-time span in one call."""
        with self._lock:
            sp = Span(
                span_id=next(self._ids),
                parent_id=None,
                name=name,
                cat=cat,
                tid=tid,
                clock=VIRTUAL,
                start=start,
                duration=duration,
                attrs=dict(attrs),
            )
            self.spans.append(sp)
        return sp

    # -- instant events --------------------------------------------------------
    def event(self, name: str, cat: str = "app", tid: str = "main",
              clock: str = WALL, ts: float | None = None, **attrs) -> None:
        if ts is None:
            ts = (self._clock() - self._epoch) if clock == WALL else 0.0
        with self._lock:
            self.events.append(Event(name=name, cat=cat, tid=tid,
                                     clock=clock, ts=ts, attrs=dict(attrs)))

    # -- finalization ----------------------------------------------------------
    def finish(self) -> list[Span]:
        """Canonical snapshot: spans sorted by (clock, tid, start, id).

        The id tiebreaker makes the order total and stable, so repeated
        calls (and identical runs) produce identical sequences.
        """
        with self._lock:
            return sorted(self.spans,
                          key=lambda s: (s.clock, s.tid, s.start, s.span_id))

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.events.clear()

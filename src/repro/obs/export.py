"""Exporters: JSON-lines, Chrome ``trace_event``, Prometheus text.

Three views of one observed run:

* **JSON lines** (``events.jsonl``) -- one self-describing object per
  span/event/metric sample; the machine-friendly archive format.
* **Chrome trace_event** (``trace.chrome.json``) -- loadable in
  Perfetto / ``chrome://tracing``.  Virtual-clock spans land in a
  "virtual time" process with one thread per simulated rank, which
  renders the paper's phase-aligned timeline (Fig. 8); wall-clock
  pipeline spans land in a separate "wall clock" process.  Events are
  emitted sorted by ``(pid, tid, ts)`` so ``ts`` is monotonic per
  track.
* **Prometheus text** (``metrics.prom``) -- the classic
  ``# HELP/# TYPE`` exposition format, histograms with cumulative
  ``le`` buckets, ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import Histogram, MetricsRegistry
from .spans import Event, Span, VIRTUAL

#: Chrome trace pids: one process per clock domain.
PID_WALL = 1
PID_VIRTUAL = 2


# -- JSON lines ----------------------------------------------------------------

def span_to_json(sp: Span) -> dict:
    return {
        "type": "span",
        "id": sp.span_id,
        "parent": sp.parent_id,
        "name": sp.name,
        "cat": sp.cat,
        "tid": sp.tid,
        "clock": sp.clock,
        "start": sp.start,
        "duration": sp.duration,
        "attrs": sp.attrs,
    }


def event_to_json(ev: Event) -> dict:
    return {
        "type": "event",
        "name": ev.name,
        "cat": ev.cat,
        "tid": ev.tid,
        "clock": ev.clock,
        "ts": ev.ts,
        "attrs": ev.attrs,
    }


def metric_samples(registry: MetricsRegistry) -> Iterable[dict]:
    for fam in registry.families():
        for values, child in fam.samples():
            labels = dict(zip(fam.labelnames, values))
            if isinstance(child, Histogram):
                yield {
                    "type": "metric", "kind": "histogram", "name": fam.name,
                    "labels": labels, "sum": child.sum, "count": child.count,
                    "buckets": [[le, c] for le, c in child.cumulative()
                                if not math.isinf(le)],
                }
            else:
                yield {
                    "type": "metric", "kind": child.kind, "name": fam.name,
                    "labels": labels, "value": child.value,
                }


def write_jsonl(path: str | Path, spans: Sequence[Span],
                events: Sequence[Event],
                registry: MetricsRegistry | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fp:
        for sp in spans:
            fp.write(json.dumps(span_to_json(sp)) + "\n")
        for ev in events:
            fp.write(json.dumps(event_to_json(ev)) + "\n")
        if registry is not None:
            for sample in metric_samples(registry):
                fp.write(json.dumps(sample) + "\n")
    return path


# -- Chrome trace_event --------------------------------------------------------

def _chrome_args(attrs: dict) -> dict:
    # trace_event args must be JSON-encodable; stringify anything odd.
    out = {}
    for k, v in attrs.items():
        out[k] = v if isinstance(v, (int, float, str, bool, type(None))) else str(v)
    return out


def chrome_trace_events(spans: Sequence[Span],
                        events: Sequence[Event]) -> list[dict]:
    """Build the ``traceEvents`` list, sorted so ts is monotonic per tid."""
    out: list[dict] = []
    pids = set()
    tids = set()
    for sp in spans:
        pid = PID_VIRTUAL if sp.clock == VIRTUAL else PID_WALL
        pids.add(pid)
        tids.add((pid, sp.tid))
        out.append({
            "name": sp.name, "cat": sp.cat, "ph": "X",
            "ts": sp.start * 1e6, "dur": sp.duration * 1e6,
            "pid": pid, "tid": sp.tid, "args": _chrome_args(sp.attrs),
        })
    for ev in events:
        pid = PID_VIRTUAL if ev.clock == VIRTUAL else PID_WALL
        pids.add(pid)
        tids.add((pid, ev.tid))
        out.append({
            "name": ev.name, "cat": ev.cat, "ph": "i",
            "ts": ev.ts * 1e6, "s": "t",
            "pid": pid, "tid": ev.tid, "args": _chrome_args(ev.attrs),
        })
    out.sort(key=lambda e: (e["pid"], str(e["tid"]), e["ts"]))
    meta: list[dict] = []
    names = {PID_WALL: "wall clock", PID_VIRTUAL: "virtual time"}
    for pid in sorted(pids):
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": "",
                     "args": {"name": names[pid]}})
    for pid, tid in sorted(tids, key=lambda x: (x[0], str(x[1]))):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                     "args": {"name": str(tid)}})
    return meta + out


def write_chrome_trace(path: str | Path, spans: Sequence[Span],
                       events: Sequence[Event]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": chrome_trace_events(spans, events),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path


# -- Prometheus text -----------------------------------------------------------

def _fmt_labels(labelnames: Sequence[str], values: Sequence[str],
                extra: tuple[str, str] | None = None) -> str:
    parts = [f'{k}="{v}"' for k, v in zip(labelnames, values)]
    if extra is not None:
        parts.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full registry in Prometheus exposition format."""
    lines: list[str] = []
    for fam in registry.families():
        lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for values, child in fam.samples():
            if isinstance(child, Histogram):
                for le, acc in child.cumulative():
                    labels = _fmt_labels(fam.labelnames, values,
                                         extra=("le", _fmt_value(le)))
                    lines.append(f"{fam.name}_bucket{labels} {acc}")
                base = _fmt_labels(fam.labelnames, values)
                lines.append(f"{fam.name}_sum{base} {_fmt_value(child.sum)}")
                lines.append(f"{fam.name}_count{base} {child.count}")
            else:
                labels = _fmt_labels(fam.labelnames, values)
                lines.append(f"{fam.name}{labels} {_fmt_value(child.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str | Path, registry: MetricsRegistry) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_prometheus(registry))
    return path

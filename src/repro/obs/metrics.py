"""Metrics registry: counters, gauges, fixed-bucket histograms.

Prometheus-flavoured data model, simulation-sized implementation.  A
*family* is a named metric with a fixed label-name tuple; ``labels()``
resolves one child time series per label-value combination.  Families
with no labels act as their own child, so ``registry.counter("x").inc()``
works directly.

Everything is guarded by one registry lock -- updates come from the
engine scheduler thread and rank threads concurrently.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

KB = 1024
MB = 1024 * KB

#: Fixed request/transfer size buckets (bytes), 4 KiB .. 1 GiB.
BYTES_BUCKETS = (4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB,
                 16 * MB, 64 * MB, 256 * MB, 1024 * MB)

#: Fixed latency/wait buckets (seconds), 10 us .. 100 s.
SECONDS_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0, 100.0)


def _label_key(labelnames: tuple[str, ...], labels: dict) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}")
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Value that can go anywhere (queue depth, busy fraction, BW)."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``counts[i]`` is the number of observations ``<= bounds[i]`` minus
    those in earlier buckets (per-bucket, *not* cumulative; cumulation
    happens at export time).  The implicit ``+Inf`` bucket is
    ``count - sum(counts)``.
    """

    kind = "histogram"

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self._lock = lock
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = bisect_left(self.bounds, value)
        with self._lock:
            if i < len(self.counts):
                self.counts[i] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs ending with ``(inf, count)``."""
        with self._lock:
            out, acc = [], 0
            for bound, c in zip(self.bounds, self.counts):
                acc += c
                out.append((bound, acc))
            out.append((float("inf"), self.count))
            return out


class _Family:
    """One named metric family: fixed labelnames, one child per value set."""

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: tuple[str, ...], lock: threading.Lock,
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "counter":
            return Counter(self._lock)
        if self.kind == "gauge":
            return Gauge(self._lock)
        return Histogram(self._lock, self.buckets)

    def labels(self, **labels):
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Label-free families act as their own single child.
    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """Sorted ``(label values, child)`` pairs."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Get-or-create registry of metric families."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, name: str, help: str, kind: str,
                       labelnames: tuple[str, ...],
                       buckets: tuple[float, ...] | None = None) -> _Family:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind} "
                    f"with labels {fam.labelnames}")
            return fam
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, help, kind, tuple(labelnames), self._lock,
                              buckets=buckets)
                self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> _Family:
        return self._get_or_create(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> _Family:
        return self._get_or_create(name, help, "gauge", labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = SECONDS_BUCKETS) -> _Family:
        return self._get_or_create(name, help, "histogram", labelnames,
                                   buckets=tuple(buckets))

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

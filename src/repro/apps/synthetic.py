"""The 4-process example application of the paper's Figs. 2-5.

Four processes share one file through a strided view (etype 40 bytes,
one block of rs per process per repetition).  Each process performs 40
collective writes -- separated by ~121 ticks of communication, so every
write is its own phase (Phases 1-40) -- followed by 40 back-to-back
collective reads that form a single phase (Phase 41, the "vertical blue
line" of Fig. 5).

The trace numbers reproduce Fig. 2: request size 10 612 080 bytes,
view-relative offsets advancing by 265 302 etypes per repetition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.context import CoroContext
from repro.simmpi.datatypes import Basic, Vector

#: Fig. 2's request size (bytes) and its etype (40-byte record).
ETYPE_BYTES = 40
REQUEST_SIZE = 10_612_080
BLOCK_ETYPES = REQUEST_SIZE // ETYPE_BYTES  # 265302


@dataclass(frozen=True)
class SyntheticParams:
    """Shape of the example workload."""

    nrep: int = 40  # write repetitions (= write phases)
    request_size: int = REQUEST_SIZE
    comm_events_per_step: int = 121  # tick gap between writes (Fig. 2)
    compute_seconds: float = 0.0
    filename: str = "synthetic.dat"


def synthetic_program(ctx: CoroContext, params: SyntheticParams = SyntheticParams()):
    """Rank program for the Figs. 2-5 example (coroutine style)."""
    np = ctx.size
    etype = Basic(ETYPE_BYTES)
    block = params.request_size // ETYPE_BYTES
    fh = yield from ctx.file_open(params.filename)
    # Strided view: process p owns block p of every repetition group.
    filetype = Vector(count=params.nrep, blocklen=block, stride=np * block, base=etype)
    yield from fh.set_view(disp=ctx.rank * params.request_size, etype=etype,
                            filetype=filetype)

    for rep in range(params.nrep):
        # Busy-work + communication between writes (the 121-tick gap).
        if params.compute_seconds:
            yield from ctx.compute(params.compute_seconds)
        for _ in range(params.comm_events_per_step):
            yield from ctx.allreduce(1.0)
        yield from fh.write_at_all(rep * block, params.request_size)

    # 40 back-to-back reads: one phase (no MPI events in between).
    for rep in range(params.nrep):
        yield from fh.read_at_all(rep * block, params.request_size)
    yield from fh.close()
    yield from ctx.barrier()

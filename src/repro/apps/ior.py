"""IOR reimplemented on the simulated substrate (paper Tables III/V).

IOR is both a characterization workload and -- in the paper's
methodology -- the *replication tool*: every phase of an application's
I/O model is replayed by one IOR run configured with
``s=1, b=weight(ph), t=rs(ph), NP=np(ph)`` plus ``-F`` for unique files
and ``-c`` for collective I/O (section III-B).

This module mirrors the relevant IOR options:

=========  =====================================================
``-s``     segments per process
``-b``     block size: contiguous bytes per process per segment
``-t``     transfer size: bytes per I/O call
``-F``     filePerProcess (unique access type)
``-c``     collective I/O
``-z``     random offsets within the block
``-w/-r``  write / read tests
=========  =====================================================

File layout matches IOR's: a shared file interleaves per-process blocks
segment-major (process p, segment s at offset ``(s*np + p) * b``).

The result reports mean bandwidth per operation type, computed over the
span from the first operation's start to the last one's end -- IOR's
inter-test timing with barriers.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.simmpi.context import CoroContext
from repro.simmpi.engine import Engine, Platform
from repro.simmpi.errors import MPIUsageError
from repro.simmpi.fileio import IOEvent

MB = 1024 * 1024


@dataclass(frozen=True)
class IORParams:
    """One IOR invocation (api=MPIIO)."""

    np: int = 4
    block_size: int = 16 * MB  # -b
    transfer_size: int = 1 * MB  # -t
    segments: int = 1  # -s
    file_per_process: bool = False  # -F
    collective: bool = False  # -c
    random_offsets: bool = False  # -z
    kinds: tuple[str, ...] = ("write", "read")  # -w -r
    filename: str = "ior.testfile"
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.np <= 0:
            raise MPIUsageError("NP must be positive")
        if self.block_size <= 0 or self.transfer_size <= 0 or self.segments <= 0:
            raise MPIUsageError("block, transfer and segment sizes must be positive")
        if self.block_size % self.transfer_size:
            raise MPIUsageError(
                f"block size {self.block_size} not a multiple of transfer size "
                f"{self.transfer_size} (IOR requires -b = k * -t)"
            )
        for k in self.kinds:
            if k not in ("write", "read"):
                raise MPIUsageError(f"unknown test kind {k!r}")

    @property
    def transfers_per_segment(self) -> int:
        return self.block_size // self.transfer_size

    @property
    def total_bytes_per_kind(self) -> int:
        return self.np * self.segments * self.block_size

    def command_line(self) -> str:
        """The equivalent real-IOR command (for reports and docs)."""
        parts = ["ior", "-a", "MPIIO", f"-s {self.segments}",
                 f"-b {self.block_size}", f"-t {self.transfer_size}"]
        if self.file_per_process:
            parts.append("-F")
        if self.collective:
            parts.append("-c")
        if self.random_offsets:
            parts.append("-z")
        parts.append("-" + "".join(k[0] for k in self.kinds))
        return " ".join(parts)


@dataclass
class IORResult:
    """Bandwidths measured by one IOR run."""

    params: IORParams
    bw_mb_s: dict[str, float] = field(default_factory=dict)  # per kind
    times: dict[str, float] = field(default_factory=dict)  # elapsed per kind
    elapsed: float = 0.0

    def bw(self, kind: str) -> float:
        return self.bw_mb_s[kind]


def ior_program(ctx: CoroContext, params: IORParams):
    """Rank program of the IOR benchmark (coroutine style)."""
    fh = yield from ctx.file_open(params.filename, unique=params.file_per_process)
    ntransfers = params.transfers_per_segment
    order = list(range(ntransfers))

    for kind in params.kinds:
        yield from ctx.barrier()
        for seg in range(params.segments):
            if params.random_offsets:
                rng = random.Random(params.seed + 7919 * ctx.rank + seg)
                order = list(range(ntransfers))
                rng.shuffle(order)
            if params.file_per_process:
                seg_base = seg * params.block_size
            else:
                seg_base = (seg * ctx.size + ctx.rank) * params.block_size
            for i in order:
                offset = seg_base + i * params.transfer_size
                if kind == "write":
                    if params.collective:
                        yield from fh.write_at_all(offset, params.transfer_size)
                    else:
                        yield from fh.write_at(offset, params.transfer_size)
                else:
                    if params.collective:
                        yield from fh.read_at_all(offset, params.transfer_size)
                    else:
                        yield from fh.read_at(offset, params.transfer_size)
        yield from ctx.barrier()
    yield from fh.close()


def run_ior(platform: Platform, params: IORParams) -> IORResult:
    """Execute IOR on a platform and report per-kind mean bandwidth.

    The platform should be freshly built (or ``reset``) so queue state
    from earlier experiments does not leak into the measurement.

    Results are memoized by ``(params, platform fingerprint)``: the run
    is a pure function of both, so replaying the same phase against a
    structurally identical configuration (the common case inside
    ``estimate_model`` / ``full_study`` sweeps) returns the cached
    bandwidths without re-simulating.  Platforms without a
    ``fingerprint()`` method opt out.
    """
    from repro.core import cache as simcache  # late: avoids an import cycle

    memo = simcache.cache("ior")
    fp = simcache.platform_fingerprint(platform)
    # The filename only labels the simulated trace; normalize it away so
    # per-phase replications (ior.phase0, ior.phase1, ...) with the same
    # geometry share one cache entry.
    key = ((dataclasses.replace(params, filename=""), fp)
           if fp is not None else None)
    if key is not None:
        hit = memo.lookup(key)
        if hit is not simcache._MISS:
            # Rebuild with the caller's params (their filename may differ
            # from the entry's).
            return IORResult(params=params, bw_mb_s=dict(hit.bw_mb_s),
                             times=dict(hit.times), elapsed=hit.elapsed)

    events: list[IOEvent] = []
    engine = Engine(params.np, platform=platform)
    engine.add_io_hook(events.append)
    run = engine.run(ior_program, params)

    result = IORResult(params=params, elapsed=run.elapsed)
    for kind in params.kinds:
        evs = [e for e in events if e.kind == kind]
        if not evs:
            continue
        begin = min(e.time for e in evs)
        end = max(e.time + e.duration for e in evs)
        nbytes = sum(e.request_size for e in evs)
        span = max(end - begin, 1e-12)
        result.times[kind] = span
        result.bw_mb_s[kind] = nbytes / MB / span
    if key is not None:
        memo.store(key, IORResult(params=result.params,
                                  bw_mb_s=dict(result.bw_mb_s),
                                  times=dict(result.times),
                                  elapsed=result.elapsed))
    return result

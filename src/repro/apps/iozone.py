"""IOzone-style device-level characterization (paper Tables IV/V, eq. 3).

IOzone runs *on* an I/O node, against its local filesystem -- no MPI, no
network.  The methodology uses it to obtain each I/O node's peak
bandwidth ``maxBW(ION_i)``: the maximum over access patterns
(sequential / strided / random) per operation type, with a file at
least twice the node's RAM so the page cache cannot absorb the run
(Table II's ``minimum size = 2 * RAMsize`` rule).

``run_iozone`` sweeps the requested patterns and request sizes and
returns the full grid; ``peak_bw`` reduces it to eq. (3)'s maxima.
``BW_PK`` for a whole configuration (eq. 4) is the sum over I/O nodes
for parallel filesystems -- see
:meth:`repro.iosim.cluster.Cluster.peak_bw` and
:func:`repro.core.estimate.peak_bandwidth`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.iosim.nodes import IONode

MB = 1024 * 1024

#: Access patterns IOzone covers (-i 0/1, -i 0/5, -i 0/2).
PATTERNS = ("sequential", "strided", "random")


@dataclass(frozen=True)
class IOzoneParams:
    """One IOzone sweep on a single I/O node."""

    file_size_mb: int | None = None  # default: 2 x node RAM
    request_sizes_kb: tuple[int, ...] = (64, 256, 1024, 4096)
    patterns: tuple[str, ...] = PATTERNS
    stride_factor: int = 4  # -j: stride = factor * request size
    kinds: tuple[str, ...] = ("write", "read")
    #: Steady-state truncation: a cell's bandwidth converges after a few
    #: thousand operations; simulating every request of a 2xRAM file at
    #: 64 KB granularity would only repeat the steady state.
    max_ops_per_cell: int = 4096
    #: Analytic cell closure: simulate this many operations, and once the
    #: per-operation cost is stationary close the remaining ones as
    #: ``t += (nops - K) * delta`` instead of looping.  With the cell's
    #: write-back cache disabled every pattern reaches its steady state
    #: within a couple of operations, so the closure reproduces the full
    #: loop to ~1e-11 relative.  Set to 0 to simulate every operation.
    steady_state_ops: int = 32

    def resolved_file_size_mb(self, ion: IONode) -> int:
        if self.file_size_mb is not None:
            return self.file_size_mb
        return int(2 * ion.ram_gb * 1024)


@dataclass
class IOzoneResult:
    """The measurement grid: (pattern, kind, request_kb) -> MB/s."""

    ion_name: str
    file_size_mb: int
    grid: dict[tuple[str, str, int], float] = field(default_factory=dict)

    def bw(self, pattern: str, kind: str, request_kb: int) -> float:
        return self.grid[(pattern, kind, request_kb)]

    def peak_bw(self, kind: str) -> float:
        """eq. (3): maxBW(ION) for one operation type."""
        vals = [v for (p, k, r), v in self.grid.items() if k == kind]
        if not vals:
            raise ValueError(f"no measurements for kind {kind!r}")
        return max(vals)

    def rows(self) -> list[tuple[str, str, int, float]]:
        return sorted((p, k, r, v) for (p, k, r), v in self.grid.items())


def run_iozone(ion: IONode, params: IOzoneParams = IOzoneParams()) -> IOzoneResult:
    """Sweep the node's local FS with IOzone's patterns.

    Each cell writes/reads ``file_size`` bytes in ``request_size`` chunks
    laid out per the pattern, in virtual time, and reports mean MB/s.
    The node is reset before each cell so cells are independent.

    Results are memoized by ``(ion fingerprint, params)``: structurally
    identical nodes (e.g. configuration B's three ``nasd`` servers, or
    Finisterrae's OSS pool) share one characterization.
    """
    from repro.core import cache as simcache  # late: avoids an import cycle

    memo = simcache.cache("iozone")
    key = (ion.fingerprint(), params)
    hit = memo.lookup(key)
    if hit is not simcache._MISS:
        return IOzoneResult(ion_name=ion.name, file_size_mb=hit.file_size_mb,
                            grid=dict(hit.grid))

    fz_mb = params.resolved_file_size_mb(ion)
    result = IOzoneResult(ion_name=ion.name, file_size_mb=fz_mb)
    fz = fz_mb * MB
    # A 2xRAM file runs far past the page cache: cells measure the
    # media's *sustained* rate.  With cells truncated to max_ops_per_cell
    # the equivalent is measuring with the write-back cache disabled.
    saved_cache = ion.fs.cache_mb
    ion.fs.cache_mb = 0.0
    try:
        for pattern in params.patterns:
            for kind in params.kinds:
                for rkb in params.request_sizes_kb:
                    rs = rkb * 1024
                    nops = max(1, min(fz // rs, params.max_ops_per_cell))
                    ion.reset()
                    t = _run_cell(ion, params, pattern, kind, rs, nops)
                    bw = (nops * rs) / MB / max(t, 1e-12)
                    result.grid[(pattern, kind, rkb)] = bw
    finally:
        ion.fs.cache_mb = saved_cache
        ion.reset()
    memo.store(key, IOzoneResult(ion_name=ion.name,
                                 file_size_mb=result.file_size_mb,
                                 grid=dict(result.grid)))
    return result


def _run_cell(ion: IONode, params: IOzoneParams, pattern: str, kind: str,
              rs: int, nops: int) -> float:
    """Virtual completion time of one (pattern, kind, request-size) cell.

    With ``steady_state_ops = K > 0`` the first K operations run through
    the device model; if the last per-operation costs agree the cell is
    closed analytically.  A cell whose cost has not settled (it always
    has, with the write-back cache off) falls back to the full loop.
    """
    t = 0.0
    k = params.steady_state_ops
    if not k or nops <= k:
        for i in range(nops):
            off = _offset(pattern, i, rs, nops, params.stride_factor)
            t = ion.fs.transfer(t, off, rs, kind)
        return t
    prev = 0.0
    deltas: list[float] = []
    for i in range(k):
        off = _offset(pattern, i, rs, nops, params.stride_factor)
        t = ion.fs.transfer(t, off, rs, kind)
        deltas.append(t - prev)
        prev = t
    d = deltas[-1]
    window = deltas[-min(4, k - 1):]
    stationary = all(abs(x - d) <= 1e-9 * max(abs(d), 1e-30) for x in window)
    if stationary:
        return t + (nops - k) * d
    for i in range(k, nops):
        off = _offset(pattern, i, rs, nops, params.stride_factor)
        t = ion.fs.transfer(t, off, rs, kind)
    return t


def _offset(pattern: str, i: int, rs: int, nops: int, stride_factor: int) -> int:
    if pattern == "sequential":
        return i * rs
    if pattern == "strided":
        return i * rs * stride_factor
    if pattern == "random":
        # Deterministic pseudo-random permutation: multiplicative hash on
        # the op index, scaled to the file extent.
        return ((i * 2654435761) % max(1, nops)) * rs
    raise ValueError(f"unknown pattern {pattern!r}")


def characterize_peaks(ions: list[IONode],
                       params: IOzoneParams = IOzoneParams()) -> dict[str, dict[str, float]]:
    """Run IOzone on every I/O node; returns {ion: {kind: maxBW}} (eq. 3)."""
    out = {}
    for ion in ions:
        res = run_iozone(ion, params)
        out[ion.name] = {k: res.peak_bw(k) for k in params.kinds}
    return out

"""ROMS-style 'upwelling' workload over parallel HDF5 (paper future work).

The Regional Ocean Modeling System's upwelling test case integrates a
coastal ocean and periodically dumps *history* files (2-D free surface
plus 3-D momentum and tracer fields) and a final *restart* file, each a
separate HDF5 file created during execution.  The paper's future-work
section traces exactly this on Finisterrae and observes that "the model
is applicable to each file".

This implementation reproduces that I/O structure on the substrate:

* every ``history_every`` steps a new ``his_NNNN.nc`` is created and
  the field set is written collectively (one phase group per file);
* at the end, ``rst.nc`` receives two time levels of the 3-D state;
* small attribute/metadata writes accompany each file, as HDF5 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdf5lite import CoroH5File
from repro.simmpi.context import CoroContext

#: (name, dimensionality) of the upwelling history fields.
HISTORY_FIELDS = [
    ("zeta", 2),  # free surface
    ("ubar", 2),
    ("vbar", 2),
    ("u", 3),
    ("v", 3),
    ("temp", 3),
    ("salt", 3),
]


@dataclass(frozen=True)
class ROMSParams:
    """Upwelling test-case shape."""

    nx: int = 128
    ny: int = 64
    nz: int = 16
    nsteps: int = 24
    history_every: int = 8
    busy_seconds_per_step: float = 0.02
    comm_events_per_step: int = 6

    def field_bytes(self, dims: int) -> int:
        cells = self.nx * self.ny * (self.nz if dims == 3 else 1)
        return cells * 8  # double precision

    @property
    def n_history_files(self) -> int:
        return self.nsteps // self.history_every

    def history_bytes(self) -> int:
        return sum(self.field_bytes(d) for _, d in HISTORY_FIELDS)


def roms_program(ctx: CoroContext, params: ROMSParams = ROMSParams()):
    """Rank program: time stepping with periodic multi-file history output."""
    his_index = 0
    for step in range(1, params.nsteps + 1):
        if params.busy_seconds_per_step:
            yield from ctx.compute(params.busy_seconds_per_step)
        for _ in range(params.comm_events_per_step):
            yield from ctx.allreduce(1.0)  # barotropic/baroclinic coupling
        if step % params.history_every == 0:
            his_index += 1
            f = yield from CoroH5File.open(ctx, f"his_{his_index:04d}.nc")
            try:
                yield from f.attrs.set("ocean_time", step)
                for name, dims in HISTORY_FIELDS:
                    ds = yield from f.create_dataset(name,
                                                     params.field_bytes(dims))
                    yield from ds.write_slab()
            finally:
                yield from f.close()

    # Final restart: two time levels of the 3-D prognostic state.
    f = yield from CoroH5File.open(ctx, "rst.nc")
    try:
        yield from f.attrs.set("ntimes", params.nsteps)
        for level in range(2):
            for name, dims in HISTORY_FIELDS:
                if dims != 3:
                    continue
                ds = yield from f.create_dataset(f"{name}_{level}",
                                                 params.field_bytes(3))
                yield from ds.write_slab()
    finally:
        yield from f.close()
    yield from ctx.barrier()

"""NAS BT-IO, subtype FULL (paper section IV-B, Tables XI-XIV, Figs. 9-10).

The Block-Tridiagonal benchmark solves 3-D compressible Navier-Stokes on
a cubic mesh with a square number of processes.  The BTIO variant dumps
the whole solution field -- five double-precision words per mesh point
(a 40-byte record, the paper's "etype of 40") -- every 5 time steps,
through collective MPI-IO writes of a nested strided datatype; after the
last step all dumps are read back and verified.

FULL subtype = collective buffering: each dump is one
``MPI_File_write_at_all`` of ``rs = 40 * points/np`` bytes per process.
With the canonical layout, dump ``d`` of process ``p`` occupies bytes
``(d*np + p) * rs``: the Table XI formula
``rs*idP + rs*(ph-1) + rs*(np-1)*(ph-1)``.

Classes (mesh, time steps): A 64^3/200, B 102^3/200, C 162^3/200,
D 408^3/250.  A dump every 5 steps gives 40 write phases for class C and
50 for class D, plus the final read phase (rep 40/50) -- Table XI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.context import CoroContext
from repro.simmpi.datatypes import Basic, Vector
from repro.simmpi.errors import MPIUsageError

#: Bytes per mesh point: 5 double-precision solution words.
POINT_BYTES = 40

#: (mesh dimension, time steps) per problem class.
CLASSES = {
    "A": (64, 200),
    "B": (102, 200),
    "C": (162, 200),
    "D": (408, 250),
}

#: Dump the solution every this many steps.
DUMP_INTERVAL = 5

#: MPI events per time step (the x/y/z solver sweeps exchange faces);
#: chosen to reproduce the ~121-tick gap between write phases in Fig. 2.
COMM_EVENTS_PER_STEP = 24


@dataclass(frozen=True)
class BTIOParams:
    """One BT-IO invocation."""

    cls: str = "C"
    subtype: str = "full"
    busy_seconds_per_step: float = 0.01
    comm_events_per_step: int = COMM_EVENTS_PER_STEP
    filename: str = "btio.out"

    def __post_init__(self) -> None:
        if self.cls not in CLASSES:
            raise MPIUsageError(f"unknown BT class {self.cls!r}")
        if self.subtype not in ("full", "simple"):
            raise MPIUsageError(f"unknown BT-IO subtype {self.subtype!r}")

    @property
    def mesh(self) -> int:
        return CLASSES[self.cls][0]

    @property
    def nsteps(self) -> int:
        return CLASSES[self.cls][1]

    @property
    def ndumps(self) -> int:
        return self.nsteps // DUMP_INTERVAL

    def points_per_proc(self, np: int) -> int:
        """Mesh points each process dumps (balanced decomposition)."""
        total = self.mesh ** 3
        return total // np

    def request_size(self, np: int) -> int:
        """Per-process bytes per dump (the model's rs; ~10 MB for C/16)."""
        return self.points_per_proc(np) * POINT_BYTES


def validate_np(np: int) -> int:
    """BT requires a square process count; returns sqrt(np)."""
    root = int(round(np ** 0.5))
    if root * root != np:
        raise MPIUsageError(f"BT-IO requires a square number of processes, got {np}")
    return root


def btio_program(ctx: CoroContext, params: BTIOParams = BTIOParams()):
    """Rank program for BT-IO FULL (and SIMPLE, without collectives)."""
    np = ctx.size
    validate_np(np)
    rs = params.request_size(np)
    pts = params.points_per_proc(np)
    ndumps = params.ndumps
    etype = Basic(POINT_BYTES)

    fh = yield from ctx.file_open(params.filename)
    # Nested strided view: process p owns slot p of each of the ndumps
    # dump groups -> absolute offset of dump d is (d*np + p) * rs.
    filetype = Vector(count=ndumps, blocklen=pts, stride=np * pts, base=etype)
    yield from fh.set_view(disp=ctx.rank * rs, etype=etype, filetype=filetype)

    collective = params.subtype == "full"
    for step in range(1, params.nsteps + 1):
        if params.busy_seconds_per_step:
            yield from ctx.compute(params.busy_seconds_per_step)
        # Solver sweeps: face exchanges with the process grid neighbours.
        for _ in range(params.comm_events_per_step):
            yield from ctx.allreduce(1.0)
        if step % DUMP_INTERVAL == 0:
            dump = step // DUMP_INTERVAL  # 1-based phase number
            view_off = (dump - 1) * pts  # etype units within the view
            if collective:
                yield from fh.write_at_all(view_off, rs)
            else:
                yield from fh.write_at(view_off, rs)

    yield from ctx.barrier()
    # Verification pass: re-read every dump, back to back (one phase).
    for dump in range(1, ndumps + 1):
        view_off = (dump - 1) * pts
        if collective:
            yield from fh.read_at_all(view_off, rs)
        else:
            yield from fh.read_at(view_off, rs)
    yield from fh.close()
    yield from ctx.barrier()


def expected_phase_count(params: BTIOParams) -> int:
    """Write phases + the single read phase (Table XI: 41 for C, 51 for D)."""
    return params.ndumps + 1

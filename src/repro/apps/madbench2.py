"""MADbench2 in IO mode (paper section IV-A, Table VIII, Fig. 7).

MADbench2 is the I/O benchmark distilled from the MADspec CMB analysis
code.  In IO mode all calculation/communication is replaced by
busy-work, and three functions drive the I/O on one shared file through
*individual file pointers with non-collective blocking operations*:

* **S** writes ``nbin`` component matrices (8 back-to-back writes);
* **W** reads every matrix and writes it back, software-pipelined with a
  lookahead of 2: read bin0, read bin1, then alternate (write bin i-2,
  read bin i), and finally write the last two bins;
* **C** reads all ``nbin`` matrices.

Each process owns a contiguous region of the shared file holding its
slice of all bins: process ``p``'s bin ``j`` lives at
``(p*nbin + j) * rs`` -- which is exactly Table VIII's
``initOffset = idP * 8 * 32MB`` family of phases, with the pipelined W
function splitting into read(rep 2) / write-read(rep 6) / write(rep 2).

With 16 processes, 8KPIX and 8 bins the per-process slice is
``8192^2 * 8 bytes / 16 = 32 MB`` -- the paper's request size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.context import CoroContext
from repro.simmpi.errors import MPIUsageError


@dataclass(frozen=True)
class MADbench2Params:
    """MADbench2 invocation (IO mode)."""

    kpix: int = 8  # map size in kilo-pixels (8KPIX -> 8192 x 8192 matrix)
    nbin: int = 8  # number of component matrices
    ngang: int = 1  # gangs (single-gang by default, as in the paper)
    busy_seconds: float = 0.05  # busy-work between I/O calls
    filename: str = "madbench2.dat"
    filetype_shared: bool = True  # SHARED filetype (one file for all)

    def npix(self) -> int:
        return self.kpix * 1024

    def request_size(self, np: int) -> int:
        """Per-process slice of one matrix: npix^2 * 8 bytes / np."""
        total = self.npix() ** 2 * 8
        if total % np:
            raise MPIUsageError(
                f"matrix of {total} bytes does not divide over {np} processes"
            )
        return total // np


def madbench2_program(ctx: CoroContext,
                      params: MADbench2Params = MADbench2Params()):
    """Rank program: S, W, C with busy-work, on one shared file.

    Multi-gang mode (``ngang > 1``): S builds and writes the matrices
    over all processes, then the processes are redistributed into gangs
    and W/C synchronize within their gang only -- the paper's "the
    matrices are built, summed and inverted over all the processors (S &
    D), but then redistributed over subsets of processors (gangs) for
    their subsequent manipulations (W & C)".  Each process still owns
    the same file region, so the I/O phases are unchanged.
    """
    np = ctx.size
    root = int(round(np ** 0.5))
    if root * root != np:
        raise MPIUsageError(f"MADbench2 requires a square process count, got {np}")
    if params.ngang < 1 or np % params.ngang != 0:
        raise MPIUsageError(
            f"ngang={params.ngang} must divide the process count {np}")
    rs = params.request_size(np)
    nbin = params.nbin
    fh = yield from ctx.file_open(params.filename,
                                  unique=not params.filetype_shared)
    base = ctx.rank * nbin * rs  # this process's region (bytes == etypes here)

    def busy():
        if params.busy_seconds:
            yield from ctx.compute(params.busy_seconds)

    # ---- S: write all bins -------------------------------------------------
    yield from fh.seek(base)
    for _ in range(nbin):
        yield from busy()
        yield from fh.write(rs)
    yield from ctx.barrier()
    yield from ctx.allreduce(1.0)  # dgemm-scale busy-work: reduction in S/W

    # Gang redistribution for W & C (no-op in single-gang mode).
    if params.ngang > 1:
        gang = yield from ctx.split(color=ctx.rank * params.ngang // np)
    else:
        gang = None

    # ---- W: read + write every bin, pipelined with lookahead 2 -------------
    lookahead = min(2, nbin)
    yield from fh.seek(base)
    for j in range(lookahead):  # prefetch
        yield from busy()
        yield from fh.read(rs)
    for j in range(lookahead, nbin):  # steady state: write back, read next
        yield from busy()
        yield from fh.seek(base + (j - lookahead) * rs)
        yield from fh.write(rs)
        yield from fh.seek(base + j * rs)
        yield from fh.read(rs)
    for j in range(nbin - lookahead, nbin):  # drain
        yield from busy()
        yield from fh.seek(base + j * rs)
        yield from fh.write(rs)
    yield from ctx.barrier(gang)
    yield from ctx.allreduce(1.0, comm=gang)

    # ---- C: read all bins ----------------------------------------------------
    yield from fh.seek(base)
    for _ in range(nbin):
        yield from busy()
        yield from fh.read(rs)
    yield from fh.close()
    yield from ctx.barrier()


#: The five phases of Table VIII for (16 procs, 8KPIX, 8 bins, 32 MB rs):
#: (label, op kinds, rep, weight in units of np*rs).
TABLE_VIII_SHAPE = [
    ("1", ("write",), 8, 8),
    ("2", ("read",), 2, 2),
    ("3", ("write", "read"), 6, 12),
    ("4", ("write",), 2, 2),
    ("5", ("read",), 8, 8),
]

"""Workloads on the simulated substrate.

* :mod:`repro.apps.ior` -- IOR (characterization + phase replication).
* :mod:`repro.apps.iozone` -- IOzone device-level characterization.
* :mod:`repro.apps.madbench2` -- MADbench2 in IO mode.
* :mod:`repro.apps.btio` -- NAS BT-IO, subtype FULL.
* :mod:`repro.apps.synthetic` -- the 4-process example of Figs. 2-5.
* :mod:`repro.apps.roms` -- ROMS-style upwelling over parallel HDF5
  (the paper's future-work workload).
"""

from .btio import BTIOParams, btio_program, expected_phase_count, validate_np
from .ior import IORParams, IORResult, ior_program, run_ior
from .iozone import IOzoneParams, IOzoneResult, characterize_peaks, run_iozone
from .madbench2 import MADbench2Params, TABLE_VIII_SHAPE, madbench2_program
from .roms import HISTORY_FIELDS, ROMSParams, roms_program
from .synthetic import SyntheticParams, synthetic_program

__all__ = [
    "BTIOParams",
    "IORParams",
    "IORResult",
    "IOzoneParams",
    "HISTORY_FIELDS",
    "IOzoneResult",
    "MADbench2Params",
    "ROMSParams",
    "SyntheticParams",
    "TABLE_VIII_SHAPE",
    "btio_program",
    "characterize_peaks",
    "expected_phase_count",
    "ior_program",
    "madbench2_program",
    "roms_program",
    "run_ior",
    "run_iozone",
    "synthetic_program",
    "validate_np",
]

"""MPI-IO layer of the simulated runtime.

Implements the subset of MPI-IO the paper's workloads exercise:

* explicit-offset operations (``read_at``/``write_at`` and their
  collective ``*_all`` forms) -- NAS BT-IO;
* individual-file-pointer operations (``seek``/``read``/``write``) --
  MADbench2 ("individual file pointers, non-collective");
* shared-file-pointer operations (``read_shared``/``write_shared``);
* file views (``set_view``) with the strided datatypes of
  :mod:`repro.simmpi.datatypes` -- the Fig. 2-5 example and BT-IO.

Offset units follow MPI: explicit offsets, seek positions and the
individual/shared file pointers are measured in **etypes** (whole
elementary-type units of the current view), while request sizes are in
**bytes**.  This is exactly the convention of the paper's traces --
Fig. 2 shows offsets stepping by 265302 (etypes of 40 bytes) while the
request size column reads 10612080 bytes.

Every operation is implemented once as a generator core (``_g_*`` in
:class:`_FileHandleCore`) yielding op dicts to the engine.  Two shells
expose them: :class:`SimFileHandle` (blocking, for plain rank programs
on the threaded scheduler) and :class:`CoroFileHandle` (generator, for
``yield from``-style programs on the coroutine scheduler).

Every data operation produces an :class:`IOEvent` delivered to the
engine's I/O hooks; the tracer (``repro.tracer``) turns those into the
paper's trace-file format.  Offsets in events are *view-relative etype
offsets*, as in the paper's traces; the I/O subsystem simulator receives
the view-mapped absolute byte runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from .datatypes import BYTE, Datatype, FileView
from .engine import Comm, Engine, IORequest, drive_blocking
from .errors import MPIFileError, MPIUsageError

if TYPE_CHECKING:  # pragma: no cover
    from .context import RankContext

#: Canonical MPI routine names emitted in events, keyed by
#: (kind, addressing, collective).
OP_NAMES = {
    ("write", "explicit", True): "MPI_File_write_at_all",
    ("write", "explicit", False): "MPI_File_write_at",
    ("read", "explicit", True): "MPI_File_read_at_all",
    ("read", "explicit", False): "MPI_File_read_at",
    ("write", "individual", True): "MPI_File_write_all",
    ("write", "individual", False): "MPI_File_write",
    ("read", "individual", True): "MPI_File_read_all",
    ("read", "individual", False): "MPI_File_read",
    ("write", "shared", False): "MPI_File_write_shared",
    ("read", "shared", False): "MPI_File_read_shared",
}


@dataclass(frozen=True)
class IOEvent:
    """One traced I/O operation -- the row format of the paper's Fig. 2."""

    rank: int  # idP
    file_id: int  # idF
    filename: str
    op: str  # MPI routine name
    offset: int  # view-relative offset in etype units (MPI convention)
    abs_offset: int  # absolute file offset of the first accessed byte
    tick: int  # logical time of the event on this rank
    request_size: int  # bytes
    time: float  # virtual start time (s)
    duration: float  # virtual duration (s)
    kind: str  # "write" | "read"
    collective: bool
    unique_file: bool


@dataclass
class FileMeta:
    """Access metadata accumulated per file (the model's *metadata* part)."""

    used_explicit_offset: bool = False
    used_individual_pointer: bool = False
    used_shared_pointer: bool = False
    used_collective: bool = False
    used_noncollective: bool = False
    used_nonblocking: bool = False
    used_set_view: bool = False
    etype_size: int = 1
    view_descriptions: set[str] = field(default_factory=set)
    access_type: str = "shared"  # "shared" (one file, all procs) | "unique"

    @property
    def access_mode(self) -> str:
        """"strided" when a non-contiguous view was set, else "sequential"."""
        return "strided" if self.used_set_view and self.view_descriptions else "sequential"


class SimFile:
    """A simulated file: size, shared pointer, metadata flags."""

    def __init__(self, file_id: int, name: str, unique: bool):
        self.file_id = file_id
        self.name = name
        self.size = 0
        self.shared_pointer = 0
        self.meta = FileMeta(access_type="unique" if unique else "shared")
        self.unique = unique
        self.openers: set[int] = set()

    def grow(self, end: int) -> None:
        if end > self.size:
            self.size = end


class _FileHandleCore:
    """A rank's handle onto a simulated file (view + individual pointer).

    Holds all state and the generator cores of every MPI-IO verb; the
    blocking/coroutine shells below only choose how the yielded ops
    reach the engine.
    """

    #: Completion-handle class the nonblocking verbs produce.
    _req_handle_class: type["IORequestHandle"]

    def __init__(self, engine: Engine, ctx: "RankContext", simfile: SimFile,
                 mode: str, comm: Comm):
        self._engine = engine
        self._ctx = ctx
        self.file = simfile
        self.mode = mode
        self.comm = comm
        self.view = FileView()
        self.individual_pointer = 0
        self.closed = False

    # -- open / close --------------------------------------------------------------
    @classmethod
    def _g_open(cls, engine: Engine, ctx: "RankContext", filename: str,
                mode: str = "rw", unique: bool = False,
                comm: Comm | None = None) -> Generator:
        comm = comm or engine.world
        actual_name = f"{filename}.{ctx.rank}" if unique else filename
        simfile = engine.get_file(actual_name, lambda fid: SimFile(fid, actual_name, unique))
        handle = cls(engine, ctx, simfile, mode, comm)

        platform = engine.platform

        if unique:
            # Opening a per-process file is an independent event.
            yield {
                "kind": "local", "ticks": 1,
                "fn": lambda start: (platform.comm_time(0, 1, "file_open", start), None),
            }
        else:
            def finalize(t0: float, ops: dict[int, Any]):
                dur = platform.comm_time(0, len(ops), "file_open", t0)
                return {r: dur for r in ops}, {r: None for r in ops}

            yield from ctx._g_collective("file_open", comm, finalize)
        simfile.openers.add(ctx.rank)
        return handle

    def _g_close(self) -> Generator:
        """Close the handle (counts as one MPI event, negligible time)."""
        self._check_open()
        self.closed = True
        # Bookkeeping only: not a traced MPI event (no tick).
        yield {"kind": "local", "ticks": 0, "fn": lambda start: (0.0, None)}

    # -- views ------------------------------------------------------------------------
    def _g_set_view(self, disp: int = 0, etype: Datatype = BYTE,
                    filetype: Datatype | None = None) -> Generator:
        """``MPI_File_set_view``: install a (possibly strided) view."""
        self._check_open()
        self.view = FileView(disp=disp, etype=etype, filetype=filetype or etype)
        self.individual_pointer = 0
        meta = self.file.meta
        meta.used_set_view = True
        meta.etype_size = etype.size
        if not self.view.is_contiguous:
            ft = self.view.filetype
            meta.view_descriptions.add(
                f"filetype(size={ft.size},extent={ft.extent})"
            )
        # View installation is metadata, not a data event (no tick).
        yield {"kind": "local", "ticks": 0, "fn": lambda start: (0.0, None)}

    # -- explicit offset ----------------------------------------------------------------
    def _g_write_at(self, offset: int, nbytes: int) -> Generator:
        return (yield from self._g_independent_io("write", "explicit", offset, nbytes))

    def _g_read_at(self, offset: int, nbytes: int) -> Generator:
        return (yield from self._g_independent_io("read", "explicit", offset, nbytes))

    def _g_iwrite_at(self, offset: int, nbytes: int) -> Generator:
        """``MPI_File_iwrite_at``: starts the write, returns a handle.

        The operation is charged against the I/O subsystem immediately
        (the resource is occupied), but the rank's clock does not
        advance until the handle's ``wait`` -- modelling computation/I/O
        overlap.
        """
        return (yield from self._g_nonblocking_io("write", offset, nbytes))

    def _g_iread_at(self, offset: int, nbytes: int) -> Generator:
        """``MPI_File_iread_at``: see ``iwrite_at``."""
        return (yield from self._g_nonblocking_io("read", offset, nbytes))

    def _g_write_at_all(self, offset: int, nbytes: int) -> Generator:
        return (yield from self._g_collective_io("write", "explicit", offset, nbytes))

    def _g_read_at_all(self, offset: int, nbytes: int) -> Generator:
        return (yield from self._g_collective_io("read", "explicit", offset, nbytes))

    # -- individual pointer ----------------------------------------------------------------
    def _g_seek(self, offset: int, whence: str = "set") -> Generator:
        """``MPI_File_seek`` on the individual pointer (etype units)."""
        self._check_open()
        if whence == "set":
            new = offset
        elif whence == "cur":
            new = self.individual_pointer + offset
        elif whence == "end":
            new = (self.file.size - self.view.disp) // self.view.etype.size + offset
        else:
            raise MPIUsageError(f"unknown whence {whence!r}")
        if new < 0:
            raise MPIFileError(f"seek to negative offset {new}")
        self.individual_pointer = new
        # Pointer bookkeeping, not a traced MPI event (no tick).
        yield {"kind": "local", "ticks": 0, "fn": lambda start: (0.0, None)}

    def _g_write(self, nbytes: int) -> Generator:
        off = self.individual_pointer
        yield from self._g_independent_io("write", "individual", off, nbytes)
        self.individual_pointer = off + self._etypes(nbytes)

    def _g_read(self, nbytes: int) -> Generator:
        off = self.individual_pointer
        yield from self._g_independent_io("read", "individual", off, nbytes)
        self.individual_pointer = off + self._etypes(nbytes)

    def _g_write_all(self, nbytes: int) -> Generator:
        off = self.individual_pointer
        yield from self._g_collective_io("write", "individual", off, nbytes)
        self.individual_pointer = off + self._etypes(nbytes)

    def _g_read_all(self, nbytes: int) -> Generator:
        off = self.individual_pointer
        yield from self._g_collective_io("read", "individual", off, nbytes)
        self.individual_pointer = off + self._etypes(nbytes)

    # -- shared pointer ----------------------------------------------------------------------
    def _g_write_shared(self, nbytes: int) -> Generator:
        return (yield from self._g_shared_io("write", nbytes))

    def _g_read_shared(self, nbytes: int) -> Generator:
        return (yield from self._g_shared_io("read", nbytes))

    # -- internals ----------------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise MPIFileError(f"operation on closed file {self.file.name!r}")

    def _check_io(self, kind: str, nbytes: int) -> None:
        self._check_open()
        if nbytes <= 0:
            raise MPIUsageError(f"request size must be positive, got {nbytes}")
        if nbytes % self.view.etype.size != 0:
            raise MPIUsageError(
                f"request of {nbytes} bytes is not a whole number of etypes "
                f"(etype size {self.view.etype.size})"
            )
        if kind == "write" and "w" not in self.mode:
            raise MPIFileError(f"file {self.file.name!r} not opened for writing")
        if kind == "read" and "r" not in self.mode:
            raise MPIFileError(f"file {self.file.name!r} not opened for reading")

    def _etypes(self, nbytes: int) -> int:
        """Convert a byte count to etype units of the current view."""
        return nbytes // self.view.etype.size

    def _mark_meta(self, addressing: str, collective: bool) -> None:
        meta = self.file.meta
        if addressing == "explicit":
            meta.used_explicit_offset = True
        elif addressing == "individual":
            meta.used_individual_pointer = True
        else:
            meta.used_shared_pointer = True
        if collective:
            meta.used_collective = True
        else:
            meta.used_noncollective = True

    def _build_request(self, kind: str, offset: int, nbytes: int,
                       collective: bool) -> IORequest:
        # `offset` is in etype units (MPI convention); the view maps bytes.
        runs = self.view.map_range(offset * self.view.etype.size, nbytes)
        return IORequest(
            rank=self._ctx.rank,
            node=self._engine.platform.node_of_rank(self._ctx.rank, self._engine.nprocs),
            filename=self.file.name,
            file_id=self.file.file_id,
            kind=kind,
            runs=runs,
            start=0.0,  # filled at service time
            collective=collective,
            unique_file=self.file.unique,
        )

    def _emit(self, kind: str, addressing: str, collective: bool, offset: int,
              nbytes: int, start: float, duration: float, tick: int,
              abs_offset: int) -> None:
        event = IOEvent(
            rank=self._ctx.rank,
            file_id=self.file.file_id,
            filename=self.file.name,
            op=OP_NAMES[(kind, addressing, collective)],
            offset=offset,
            abs_offset=abs_offset,
            tick=tick,
            request_size=nbytes,
            time=start,
            duration=duration,
            kind=kind,
            collective=collective,
            unique_file=self.file.unique,
        )
        self._engine.emit_io_event(event)

    def _g_independent_io(self, kind: str, addressing: str, offset: int,
                          nbytes: int) -> Generator:
        self._check_io(kind, nbytes)
        self._mark_meta(addressing, collective=False)
        req = self._build_request(kind, offset, nbytes, collective=False)
        engine = self._engine
        rank = self._ctx.rank
        simfile = self.file

        def fn(start: float):
            req.start = start
            duration = engine.platform.service_io(req)
            if kind == "write" and req.runs:
                simfile.grow(req.runs[-1][0] + req.runs[-1][1])
            tick = engine._states[rank].tick + 1
            abs_off = req.runs[0][0] if req.runs else 0
            self._emit(kind, addressing, False, offset, nbytes, start, duration,
                       tick, abs_off)
            return duration, None

        yield {"kind": "local", "ticks": 1, "fn": fn}

    def _g_collective_io(self, kind: str, addressing: str, offset: int,
                         nbytes: int) -> Generator:
        self._check_io(kind, nbytes)
        self._mark_meta(addressing, collective=True)
        req = self._build_request(kind, offset, nbytes, collective=True)
        engine = self._engine
        simfile = self.file
        handle = self

        def finalize(t0: float, ops: dict[int, Any]):
            reqs = []
            for r in sorted(ops):
                peer_req: IORequest = ops[r]["req"]
                peer_req.start = t0
                reqs.append(peer_req)
            durations = engine.platform.service_collective_io(reqs, t0)
            for r in sorted(ops):
                peer_req = ops[r]["req"]
                if kind == "write" and peer_req.runs:
                    simfile.grow(peer_req.runs[-1][0] + peer_req.runs[-1][1])
                peer_handle: _FileHandleCore = ops[r]["handle"]
                tick = engine._states[r].tick + 1
                abs_off = peer_req.runs[0][0] if peer_req.runs else 0
                peer_handle._emit(kind, addressing, True, ops[r]["view_offset"],
                                  ops[r]["nbytes"], t0, durations[r], tick, abs_off)
            return durations, {r: None for r in ops}

        name = OP_NAMES[(kind, addressing, True)]
        yield from self._ctx._g_collective(name, self.comm, finalize, req=req,
                                           handle=handle, view_offset=offset,
                                           nbytes=nbytes)

    def _g_nonblocking_io(self, kind: str, offset: int,
                          nbytes: int) -> Generator:
        self._check_io(kind, nbytes)
        self._mark_meta("explicit", collective=False)
        self.file.meta.used_nonblocking = True
        req = self._build_request(kind, offset, nbytes, collective=False)
        engine = self._engine
        rank = self._ctx.rank
        simfile = self.file
        handle = self._req_handle_class(self)

        op_name = "MPI_File_iwrite_at" if kind == "write" else "MPI_File_iread_at"

        def fn(start: float):
            req.start = start
            duration = engine.platform.service_io(req)
            if kind == "write" and req.runs:
                simfile.grow(req.runs[-1][0] + req.runs[-1][1])
            tick = engine._states[rank].tick + 1
            abs_off = req.runs[0][0] if req.runs else 0
            event = IOEvent(
                rank=rank, file_id=simfile.file_id, filename=simfile.name,
                op=op_name, offset=offset, abs_offset=abs_off, tick=tick,
                request_size=nbytes, time=start, duration=duration,
                kind=kind, collective=False, unique_file=simfile.unique,
            )
            engine.emit_io_event(event)
            handle._completion = start + duration
            # The rank continues immediately: overlap with computation.
            return 0.0, None

        yield {"kind": "local", "ticks": 1, "fn": fn}
        return handle

    def _g_shared_io(self, kind: str, nbytes: int) -> Generator:
        self._check_io(kind, nbytes)
        self._mark_meta("shared", collective=False)
        engine = self._engine
        rank = self._ctx.rank
        simfile = self.file
        handle = self

        def fn(start: float):
            offset = simfile.shared_pointer
            simfile.shared_pointer = offset + nbytes
            req = handle._build_request(kind, offset, nbytes, collective=False)
            req.start = start
            duration = engine.platform.service_io(req)
            if kind == "write" and req.runs:
                simfile.grow(req.runs[-1][0] + req.runs[-1][1])
            tick = engine._states[rank].tick + 1
            abs_off = req.runs[0][0] if req.runs else 0
            handle._emit(kind, "shared", False, offset, nbytes, start, duration,
                         tick, abs_off)
            return duration, None

        yield {"kind": "local", "ticks": 1, "fn": fn}


class SimFileHandle(_FileHandleCore):
    """Blocking shell over the file-handle core (threaded scheduler)."""

    def _drive(self, gen: Generator) -> Any:
        return drive_blocking(self._engine, self._ctx.rank, gen)

    @classmethod
    def open(cls, engine: Engine, ctx: "RankContext", filename: str,
             mode: str = "rw", unique: bool = False,
             comm: Comm | None = None) -> "SimFileHandle":
        return drive_blocking(engine, ctx.rank,
                              cls._g_open(engine, ctx, filename, mode=mode,
                                          unique=unique, comm=comm))

    def close(self) -> None:
        return self._drive(self._g_close())

    def set_view(self, disp: int = 0, etype: Datatype = BYTE,
                 filetype: Datatype | None = None) -> None:
        return self._drive(self._g_set_view(disp, etype, filetype))

    def write_at(self, offset: int, nbytes: int) -> None:
        return self._drive(self._g_write_at(offset, nbytes))

    def read_at(self, offset: int, nbytes: int) -> None:
        return self._drive(self._g_read_at(offset, nbytes))

    def iwrite_at(self, offset: int, nbytes: int) -> "IORequestHandle":
        return self._drive(self._g_iwrite_at(offset, nbytes))

    def iread_at(self, offset: int, nbytes: int) -> "IORequestHandle":
        return self._drive(self._g_iread_at(offset, nbytes))

    def write_at_all(self, offset: int, nbytes: int) -> None:
        return self._drive(self._g_write_at_all(offset, nbytes))

    def read_at_all(self, offset: int, nbytes: int) -> None:
        return self._drive(self._g_read_at_all(offset, nbytes))

    def seek(self, offset: int, whence: str = "set") -> None:
        return self._drive(self._g_seek(offset, whence))

    def write(self, nbytes: int) -> None:
        return self._drive(self._g_write(nbytes))

    def read(self, nbytes: int) -> None:
        return self._drive(self._g_read(nbytes))

    def write_all(self, nbytes: int) -> None:
        return self._drive(self._g_write_all(nbytes))

    def read_all(self, nbytes: int) -> None:
        return self._drive(self._g_read_all(nbytes))

    def write_shared(self, nbytes: int) -> None:
        return self._drive(self._g_write_shared(nbytes))

    def read_shared(self, nbytes: int) -> None:
        return self._drive(self._g_read_shared(nbytes))


class CoroFileHandle(_FileHandleCore):
    """Generator shell over the file-handle core (coroutine scheduler).

    Every method returns a generator to be delegated to with
    ``yield from``, e.g. ``yield from fh.write_at(0, 1024)``.
    """

    open = _FileHandleCore._g_open
    close = _FileHandleCore._g_close
    set_view = _FileHandleCore._g_set_view
    write_at = _FileHandleCore._g_write_at
    read_at = _FileHandleCore._g_read_at
    iwrite_at = _FileHandleCore._g_iwrite_at
    iread_at = _FileHandleCore._g_iread_at
    write_at_all = _FileHandleCore._g_write_at_all
    read_at_all = _FileHandleCore._g_read_at_all
    seek = _FileHandleCore._g_seek
    write = _FileHandleCore._g_write
    read = _FileHandleCore._g_read
    write_all = _FileHandleCore._g_write_all
    read_all = _FileHandleCore._g_read_all
    write_shared = _FileHandleCore._g_write_shared
    read_shared = _FileHandleCore._g_read_shared


class IORequestHandle:
    """Completion handle for a nonblocking I/O operation (``MPI_Wait``)."""

    def __init__(self, fh: _FileHandleCore):
        self._fh = fh
        self._completion: float | None = None
        self._done = False

    @property
    def completed(self) -> bool:
        return self._done

    def _g_wait(self) -> Generator:
        """Block until the operation completes (advances virtual time)."""
        if self._done:
            return
        self._done = True
        completion = self._completion

        def fn(start: float):
            if completion is None:
                return 0.0, None
            return max(0.0, completion - start), None

        # Waiting is synchronization bookkeeping, not a traced data event.
        yield {"kind": "local", "ticks": 0, "fn": fn}

    def wait(self) -> None:
        """Block until the operation completes (advances virtual time)."""
        drive_blocking(self._fh._engine, self._fh._ctx.rank, self._g_wait())

    def test(self) -> bool:
        """``MPI_Test``: non-blocking completion check."""
        if self._done:
            return True
        if self._completion is not None and \
                self._fh._ctx.clock >= self._completion:
            self._done = True
            return True
        return False


class CoroIORequestHandle(IORequestHandle):
    """Generator-style completion handle: ``yield from handle.wait()``."""

    wait = IORequestHandle._g_wait


SimFileHandle._req_handle_class = IORequestHandle
CoroFileHandle._req_handle_class = CoroIORequestHandle

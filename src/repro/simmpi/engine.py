"""Deterministic discrete-event SPMD engine.

This module is the substitute for a real MPI runtime (mpich2/OpenMPI in
the paper).  The engine enforces *strict one-at-a-time* execution: a
rank runs only between two MPI calls, and every MPI call is a
scheduling point.  The scheduler always acts on the rank with the
smallest ``(virtual clock, rank id)``, so a whole run is a pure function
of the program -- identical traces on every execution (verified by the
determinism tests).

Two schedulers implement that contract:

* the **coroutine scheduler** (default for generator rank programs):
  every rank is a generator that *yields* op dicts to a single-threaded
  event loop -- no threads, no locks, near-zero cost per simulated MPI
  call.  Rank programs use ``yield from ctx.<verb>(...)`` with a
  :class:`~repro.simmpi.context.CoroContext`.
* the **threaded scheduler** (plain-callable rank programs): each rank
  runs as a Python thread that blocks in :meth:`Engine.submit` between
  MPI calls.  It predates the coroutine core and remains for programs
  that cannot be expressed as generators.

Both paths share the op-processing machinery (:meth:`Engine._process_op`
and the collective/p2p matching), so a generator program produces
bit-identical traces, clocks and ticks under either scheduler
(``mode="threads"`` forces the threaded path for the equivalence tests).

Virtual time is tracked per rank in seconds; *ticks* are per-rank logical
event counters incremented at every MPI event, exactly the logical time
unit the paper uses to order I/O and communication events (Table I,
Fig. 2).

The engine delegates all costs to a :class:`Platform`: the I/O subsystem
simulator (``repro.iosim.Cluster``) in real studies, or the trivial
:class:`IdealPlatform` in unit tests.
"""

from __future__ import annotations

import heapq
import inspect
import threading
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Generator, Protocol, Sequence

from repro import obs

from .errors import (
    CollectiveMismatch,
    DeadlockError,
    MPIUsageError,
    RankFailedError,
    SimMPIError,
)

# Rank statuses -------------------------------------------------------------
_INIT = "init"
_RUNNING = "running"
_WAITING_SCHED = "waiting_sched"  # posted an op, waiting for it to be processed
_IN_COLLECTIVE = "in_collective"  # arrived at a collective, peers missing
_WAITING_RESUME = "waiting_resume"  # op processed, waiting for CPU handoff
_DONE = "done"
_FAILED = "failed"


@dataclass
class IORequest:
    """One rank's part of an I/O operation, as seen by the platform.

    ``runs`` are absolute ``(offset, length)`` byte ranges in the file --
    already mapped through the rank's file view.
    """

    rank: int
    node: int
    filename: str
    file_id: int
    kind: str  # "write" | "read"
    runs: list[tuple[int, int]]
    start: float
    collective: bool = False
    unique_file: bool = False

    @cached_property
    def nbytes(self) -> int:
        # ``runs`` is fixed at construction (only ``start`` is mutated at
        # service time), so the sum is computed once -- this property sits
        # on the scheduler and platform hot paths.
        return sum(length for _, length in self.runs)


class Platform(Protocol):
    """Cost model the engine charges MPI and I/O operations against."""

    def service_io(self, req: IORequest) -> float:
        """Duration (s) of one independent I/O request starting at req.start."""
        ...

    def service_collective_io(self, reqs: Sequence[IORequest], start: float) -> dict[int, float]:
        """Durations per rank for a collective I/O op entered together at start."""
        ...

    def comm_time(self, nbytes: int, nranks: int, pattern: str, start: float) -> float:
        """Duration of a communication op (barrier/bcast/allreduce/p2p)."""
        ...

    def node_of_rank(self, rank: int, nranks: int) -> int:
        """Compute node hosting a rank (placement policy)."""
        ...


class IdealPlatform:
    """Flat-cost platform for unit tests: fixed bandwidth, zero contention."""

    def __init__(self, bw_bytes_per_s: float = 100e6, latency: float = 1e-4):
        self.bw = float(bw_bytes_per_s)
        self.latency = float(latency)

    def fingerprint(self) -> tuple:
        """Structural identity for memoization (see repro.core.cache)."""
        return ("IdealPlatform", self.bw, self.latency)

    def service_io(self, req: IORequest) -> float:
        return self.latency + req.nbytes / self.bw

    def service_collective_io(self, reqs: Sequence[IORequest], start: float) -> dict[int, float]:
        total = sum(r.nbytes for r in reqs)
        dur = self.latency + total / self.bw
        return {r.rank: dur for r in reqs}

    def comm_time(self, nbytes: int, nranks: int, pattern: str, start: float) -> float:
        return self.latency + nbytes / self.bw

    def node_of_rank(self, rank: int, nranks: int) -> int:
        return rank


@dataclass
class _RankState:
    rank: int
    clock: float = 0.0
    tick: int = 0
    status: str = _INIT
    pending: Any = None
    op_result: Any = None
    resume_event: threading.Event = field(default_factory=threading.Event)
    thread: threading.Thread | None = None
    exception: BaseException | None = None


@dataclass
class _Collective:
    """An in-flight collective instance on one communicator."""

    comm_key: tuple
    index: int
    op: str
    expected: frozenset[int]
    arrived: dict[int, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        # Arrivals are membership-checked and at most one per rank per
        # index, so counting replaces the per-arrival set comparison.
        return len(self.arrived) == len(self.expected)


class Comm:
    """A communicator: an ordered set of world ranks.

    ``rank(world_rank)`` gives the rank *within* the communicator.  The
    engine keys collective matching on the communicator identity plus a
    per-rank entry counter, and raises :class:`CollectiveMismatch` when
    members disagree on the operation.
    """

    _next_id = 0

    def __init__(self, world_ranks: Sequence[int], name: str = "comm"):
        if len(set(world_ranks)) != len(world_ranks):
            raise MPIUsageError("communicator ranks must be unique")
        self.world_ranks = tuple(sorted(world_ranks))
        self._members = frozenset(self.world_ranks)
        self.name = name
        self.cid = Comm._next_id
        Comm._next_id += 1

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def rank(self, world_rank: int) -> int:
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            raise MPIUsageError(
                f"world rank {world_rank} is not in communicator {self.name}"
            ) from None

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._members

    def __repr__(self) -> str:  # pragma: no cover
        return f"Comm({self.name}, size={self.size})"


class RunResult:
    """Outcome of an engine run: per-rank virtual times and event counts."""

    def __init__(self, clocks: dict[int, float], ticks: dict[int, int]):
        self.clocks = clocks
        self.ticks = ticks

    @property
    def elapsed(self) -> float:
        """Virtual makespan of the run (max rank clock)."""
        return max(self.clocks.values()) if self.clocks else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"RunResult(elapsed={self.elapsed:.6f}s, nprocs={len(self.clocks)})"


class Engine:
    """Runs an SPMD program of ``nprocs`` ranks over a :class:`Platform`.

    Usage::

        eng = Engine(nprocs=4, platform=IdealPlatform())
        result = eng.run(program)         # program(ctx) per rank

    Event hooks (``add_io_hook``) observe every I/O operation with the full
    record the paper's tracer needs.
    """

    def __init__(self, nprocs: int, platform: Platform | None = None,
                 mode: str = "auto"):
        if nprocs <= 0:
            raise MPIUsageError(f"nprocs must be positive, got {nprocs}")
        if mode not in ("auto", "coro", "threads"):
            raise MPIUsageError(
                f"mode must be 'auto', 'coro' or 'threads', got {mode!r}")
        self.nprocs = nprocs
        self.mode = mode
        self.platform: Platform = platform if platform is not None else IdealPlatform()
        self._states = [_RankState(r) for r in range(nprocs)]
        self._sched_event = threading.Event()
        self._collectives: dict[tuple, _Collective] = {}
        self._coll_counts: dict[tuple, int] = {}
        self._p2p_queues: dict[tuple, list] = {}  # (src, dst, tag) -> waiting ops
        self._io_hooks: list[Callable[..., None]] = []
        self._files: dict[str, Any] = {}  # filename -> fileio.SimFile
        self._next_file_id = 0
        self.world = Comm(range(nprocs), name="world")
        self._abort = False
        # Coroutine-scheduler ready heap; None under the threaded
        # scheduler, whose loop scans statuses itself.
        self._woken: list[tuple[float, int]] | None = None

    # -- hooks ---------------------------------------------------------------
    def add_io_hook(self, hook: Callable[..., None]) -> None:
        """Register ``hook(record)`` called after every I/O event (IOEvent)."""
        self._io_hooks.append(hook)

    def emit_io_event(self, record: Any) -> None:
        for hook in self._io_hooks:
            hook(record)
        if obs.ACTIVE:
            obs.observe_io_event(record)

    # -- file registry (used by fileio) ---------------------------------------
    def get_file(self, filename: str, factory: Callable[[int], Any]) -> Any:
        if filename not in self._files:
            self._files[filename] = factory(self._next_file_id)
            self._next_file_id += 1
        return self._files[filename]

    @property
    def files(self) -> dict[str, Any]:
        return dict(self._files)

    # -- main entry ------------------------------------------------------------
    def run(self, program: Callable, *args: Any) -> RunResult:
        """Execute ``program(ctx, *args)`` on every rank; return RunResult.

        Generator programs (``yield from ctx...``) run on the
        single-threaded coroutine scheduler; plain callables run on the
        threaded scheduler.  ``mode="threads"`` forces a generator
        program onto the threaded path (for equivalence testing);
        ``mode="coro"`` rejects plain callables, which cannot be
        suspended without a thread.
        """
        is_gen = inspect.isgeneratorfunction(program)
        mode = self.mode
        if mode == "auto":
            mode = "coro" if is_gen else "threads"
        if mode == "coro" and not is_gen:
            raise MPIUsageError(
                "the coroutine scheduler needs a generator rank program "
                "(one using 'yield from ctx...'); plain callables require "
                "mode='threads'")
        if obs.ACTIVE:
            obs.inc("engine_runs_total")
        run_span = obs.span("engine.run", cat="engine", nprocs=self.nprocs,
                            platform=type(self.platform).__name__,
                            scheduler=mode)
        if mode == "coro":
            with run_span:
                self._run_coro(program, args)
        else:
            self._run_threads(program, args, is_gen, run_span)
        return self._collect_result(run_span)

    def _collect_result(self, run_span: Any) -> RunResult:
        failed = [st for st in self._states if st.status == _FAILED]
        if failed:
            st = failed[0]
            assert st.exception is not None
            if isinstance(st.exception, SimMPIError):
                raise st.exception
            raise RankFailedError(st.rank, st.exception) from st.exception
        run_span.annotate(
            elapsed=max((st.clock for st in self._states), default=0.0))
        return RunResult(
            clocks={st.rank: st.clock for st in self._states},
            ticks={st.rank: st.tick for st in self._states},
        )

    # -- coroutine scheduler -----------------------------------------------------
    def _run_coro(self, program: Callable, args: tuple) -> None:
        """Single-threaded event loop over generator rank programs.

        Every rank is a generator; ``_WAITING_RESUME`` means "has an op
        result to consume", and resuming is a plain ``gen.send`` instead
        of a condition-variable handoff.  The pick rule and the op
        processing are exactly the threaded scheduler's, so both paths
        produce identical traces.
        """
        from .context import CoroContext  # local import to avoid cycle

        states = self._states
        gens: dict[int, Generator] = {}
        # Lazy-deletion ready heap of (clock, rank): every rank gets an
        # entry each time it becomes runnable (startup, `_wake`, or after
        # posting an op below), and a rank's clock never changes *while*
        # runnable, so the smallest non-stale entry is exactly the
        # threaded scheduler's pick -- min (clock, rank) -- in O(log n)
        # per step instead of an O(n) scan.
        heap: list[tuple[float, int]] = []
        heappush, heappop = heapq.heappush, heapq.heappop
        self._woken = heap
        for st in states:
            gens[st.rank] = program(CoroContext(self, st.rank), *args)
            st.status = _WAITING_RESUME
            st.op_result = None
            heappush(heap, (st.clock, st.rank))
        n_done = 0
        try:
            while True:
                st = None
                while heap:
                    clock, rank = heappop(heap)
                    cand = states[rank]
                    status = cand.status
                    if ((status is _WAITING_SCHED
                         or status is _WAITING_RESUME)
                            and cand.clock == clock):
                        st = cand
                        break
                if st is None:
                    if n_done == len(states):
                        return
                    blocked = [s.rank for s in states
                               if s.status == _IN_COLLECTIVE]
                    raise DeadlockError(
                        f"no runnable rank; ranks {blocked} blocked in collectives "
                        f"{sorted((c.op, sorted(c.arrived)) for c in self._collectives.values())}"
                    )
                if st.status is _WAITING_SCHED:
                    self._process_op(st)  # re-enqueues via _wake
                    continue
                # _WAITING_RESUME: feed the op result to the rank's
                # generator; it runs until its next yielded op (or ends).
                result, st.op_result = st.op_result, None
                st.status = _RUNNING
                try:
                    if isinstance(result, BaseException):
                        op = gens[st.rank].throw(result)
                    else:
                        op = gens[st.rank].send(result)
                except StopIteration:
                    st.status = _DONE
                    n_done += 1
                except _AbortRun:
                    st.status = _DONE
                    n_done += 1
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    st.exception = exc
                    st.status = _FAILED
                    return
                else:
                    st.pending = op
                    st.status = _WAITING_SCHED
                    heappush(heap, (st.clock, st.rank))
        finally:
            self._woken = None
            for st in states:
                if st.status not in (_DONE, _FAILED):
                    gens[st.rank].close()

    # -- threaded scheduler -------------------------------------------------------
    def _run_threads(self, program: Callable, args: tuple, is_gen: bool,
                     run_span: Any) -> None:
        from .context import CoroContext, RankContext  # avoid cycle

        if is_gen:
            # Drive the generator from a per-rank thread: each yielded op
            # goes through the same blocking ``submit`` a plain program
            # would use, which is what makes the two schedulers
            # trace-equivalent on the same program.
            def entry(ctx: Any, *a: Any) -> None:
                drive_blocking(self, ctx.rank, program(ctx, *a))

            contexts: list[Any] = [CoroContext(self, r)
                                   for r in range(self.nprocs)]
        else:
            entry = program
            contexts = [RankContext(self, r) for r in range(self.nprocs)]
        for st, ctx in zip(self._states, contexts):
            st.thread = threading.Thread(
                target=self._thread_main,
                args=(st, entry, ctx, args),
                name=f"simmpi-rank-{st.rank}",
                daemon=True,
            )
            st.status = _WAITING_RESUME
            st.thread.start()

        try:
            with run_span:
                self._scheduler_loop()
        finally:
            self._abort = True
            for st in self._states:
                st.resume_event.set()
            for st in self._states:
                if st.thread is not None:
                    st.thread.join(timeout=5.0)

    # -- rank thread ------------------------------------------------------------
    def _thread_main(self, st: _RankState, program: Callable, ctx: Any, args: tuple) -> None:
        st.resume_event.wait()
        st.resume_event.clear()
        if self._abort:
            st.status = _DONE
            self._sched_event.set()
            return
        try:
            program(ctx, *args)
            st.status = _DONE
        except _AbortRun:
            st.status = _DONE
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            st.exception = exc
            st.status = _FAILED
        finally:
            self._sched_event.set()

    def submit(self, rank: int, op: Any) -> Any:
        """Called from a rank thread: post an op and block until processed+resumed."""
        st = self._states[rank]
        st.pending = op
        st.status = _WAITING_SCHED
        self._sched_event.set()
        st.resume_event.wait()
        st.resume_event.clear()
        if self._abort:
            raise _AbortRun()
        st.status = _RUNNING
        result, st.op_result = st.op_result, None
        if isinstance(result, BaseException):
            raise result
        return result

    # -- scheduler ---------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        states = self._states
        while True:
            if any(st.status == _FAILED for st in states):
                return
            if all(st.status == _DONE for st in states):
                return
            actionable = [
                st for st in states if st.status in (_WAITING_SCHED, _WAITING_RESUME)
            ]
            if not actionable:
                if any(st.status == _RUNNING for st in states):
                    # A thread is between states; wait for it to post.
                    self._sched_event.wait()
                    self._sched_event.clear()
                    continue
                blocked = [st.rank for st in states if st.status == _IN_COLLECTIVE]
                raise DeadlockError(
                    f"no runnable rank; ranks {blocked} blocked in collectives "
                    f"{sorted((c.op, sorted(c.arrived)) for c in self._collectives.values())}"
                )
            st = min(actionable, key=lambda s: (s.clock, s.rank))
            if st.status == _WAITING_SCHED:
                self._process_op(st)
            else:  # _WAITING_RESUME: hand the CPU to this rank
                st.status = _RUNNING
                self._sched_event.clear()
                st.resume_event.set()
                self._sched_event.wait()
                self._sched_event.clear()

    def _wake(self, st: _RankState) -> None:
        """Mark a rank runnable (clock and op_result must be final).

        Under the coroutine scheduler this also enqueues the rank on
        the ready heap; the threaded scheduler's loop scans statuses
        itself and ignores the heap.
        """
        st.status = _WAITING_RESUME
        if self._woken is not None:
            heapq.heappush(self._woken, (st.clock, st.rank))

    def _process_op(self, st: _RankState) -> None:
        op = st.pending
        st.pending = None
        kind = op["kind"]
        if obs.ACTIVE:
            obs.inc("engine_ops_total", kind=kind)
        if kind == "local":
            # op["fn"](start) -> (duration, result); ticks charged as given.
            duration, result = op["fn"](st.clock)
            st.clock += duration
            st.tick += op.get("ticks", 1)
            st.op_result = result
            self._wake(st)
        elif kind == "collective":
            self._arrive_collective(st, op)
        elif kind == "p2p":
            self._arrive_p2p(st, op)
        else:  # pragma: no cover - defensive
            st.op_result = MPIUsageError(f"unknown op kind {kind!r}")
            self._wake(st)

    # -- point-to-point -------------------------------------------------------
    def _arrive_p2p(self, st: _RankState, op: Any) -> None:
        """Synchronous (rendezvous) send/recv matching by (src, dst, tag)."""
        if op["role"] == "send":
            key = (st.rank, op["peer"], op["tag"])
        else:
            key = (op["peer"], st.rank, op["tag"])
        queue = self._p2p_queues.setdefault(key, [])
        # A match is a queued op from the *other* role.
        for i, (peer_st, peer_op) in enumerate(queue):
            if peer_op["role"] != op["role"]:
                del queue[i]
                self._finalize_p2p(key, (peer_st, peer_op), (st, op))
                return
        queue.append((st, op))
        st.status = _IN_COLLECTIVE

    def _finalize_p2p(self, key: tuple, a: tuple, b: tuple) -> None:
        (st_a, op_a), (st_b, op_b) = a, b
        send_op = op_a if op_a["role"] == "send" else op_b
        t0 = max(st_a.clock, st_b.clock)
        dur = self.platform.comm_time(send_op["nbytes"], 2, "p2p", t0)
        if obs.ACTIVE:
            src, dst, _tag = key
            obs.observe_p2p(src, dst, t0, dur, send_op["nbytes"])
        for st, op in (a, b):
            st.clock = t0 + dur
            st.tick += op.get("ticks", 1)
            st.op_result = send_op.get("payload")
            self._wake(st)

    # -- collectives ---------------------------------------------------------------
    def _arrive_collective(self, st: _RankState, op: Any) -> None:
        comm: Comm = op["comm"]
        if st.rank not in comm:
            st.op_result = MPIUsageError(
                f"rank {st.rank} called a collective on {comm!r} it does not belong to"
            )
            self._wake(st)
            return
        count_key = (comm.cid, st.rank)
        index = self._coll_counts.get(count_key, 0)
        self._coll_counts[count_key] = index + 1
        key = (comm.cid, index)
        coll = self._collectives.get(key)
        if coll is None:
            coll = _Collective(
                comm_key=(comm.cid,),
                index=index,
                op=op["name"],
                expected=frozenset(comm.world_ranks),
            )
            self._collectives[key] = coll
        if coll.op != op["name"]:
            err = CollectiveMismatch(
                f"collective #{index} on {comm!r}: rank {st.rank} called "
                f"{op['name']!r} but peers called {coll.op!r}"
            )
            # Fail everyone involved to unblock the run.
            st.op_result = err
            self._wake(st)
            for r, arr in coll.arrived.items():
                peer = self._states[r]
                peer.op_result = err
                self._wake(peer)
            del self._collectives[key]
            return
        coll.arrived[st.rank] = op
        st.status = _IN_COLLECTIVE
        if coll.complete:
            self._finalize_collective(key, coll)

    def _finalize_collective(self, key: tuple, coll: _Collective) -> None:
        del self._collectives[key]
        parts = [self._states[r] for r in sorted(coll.arrived)]
        t0 = max(p.clock for p in parts)
        ops = coll.arrived
        sample = ops[parts[0].rank]
        finalize = sample["finalize"]
        # finalize(start, {rank: op}) -> ({rank: duration}, {rank: result})
        durations, results = finalize(t0, ops)
        if obs.ACTIVE:
            obs.observe_collective(coll.op, t0, durations)
        for p in parts:
            p.clock = t0 + durations.get(p.rank, 0.0)
            p.tick += ops[p.rank].get("ticks", 1)
            p.op_result = results.get(p.rank)
            self._wake(p)


class _AbortRun(BaseException):
    """Internal: unwinds rank threads when the run is torn down."""


def drive_blocking(engine: Engine, rank: int, gen: Generator) -> Any:
    """Run a generator of ops to completion via blocking ``Engine.submit``.

    This is the bridge between the generator-core MPI verbs and the two
    execution styles: the blocking API (:class:`~repro.simmpi.context.
    RankContext`) drives each verb's generator through ``submit`` from
    the calling rank thread, and the threaded scheduler uses it to run
    whole generator programs for the golden-trace equivalence tests.

    Exceptions produced by an op are thrown *into* the generator so
    program-level handlers and ``finally`` blocks behave exactly as they
    do under the coroutine scheduler.
    """
    resume, payload = gen.send, None
    while True:
        try:
            op = resume(payload)
        except StopIteration as stop:
            return stop.value
        try:
            payload = engine.submit(rank, op)
            resume = gen.send
        except BaseException as exc:  # noqa: BLE001 - delivered to the program
            resume, payload = gen.throw, exc

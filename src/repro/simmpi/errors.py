"""Error types raised by the simulated MPI runtime.

The hierarchy mirrors the MPI error classes that matter for the
reproduction: misuse of the API (``MPIUsageError``), collective-call
mismatches that would deadlock a real MPI program (``CollectiveMismatch``
/ ``DeadlockError``), and file-level errors (``MPIFileError``).
"""

from __future__ import annotations


class SimMPIError(Exception):
    """Base class for all simulated-MPI errors."""


class MPIUsageError(SimMPIError):
    """An API was called with invalid arguments (wrong rank, bad count, ...)."""


class DeadlockError(SimMPIError):
    """The scheduler found no runnable rank while ranks are still blocked.

    This is the simulated equivalent of an MPI program hanging forever,
    e.g. because only a subset of a communicator entered a collective.
    """


class CollectiveMismatch(SimMPIError):
    """Ranks of one communicator disagree on the collective being executed."""


class MPIFileError(SimMPIError):
    """Error raised by the MPI-IO layer (bad offset, closed file, ...)."""


class RankFailedError(SimMPIError):
    """A rank program raised an exception; carries the original traceback."""

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} failed: {original!r}")

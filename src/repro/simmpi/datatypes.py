"""MPI datatype subset used for file views.

The reproduction needs just enough of the MPI datatype machinery to model
the file views that the paper's workloads use:

* contiguous etypes (``Basic``/``Contiguous``),
* strided views (``Vector``) -- the 4-process example of Figs. 2-5, and
* nested strided views (vector of vectors) -- NAS BT-IO's datatype.

A datatype is described by its *size* (bytes of actual data per instance),
its *extent* (bytes of file it spans per instance) and its ``segments()``
-- the contiguous (offset, length) data runs inside one extent.  A file
view (``FileView``) tiles the filetype from a displacement and maps
view-relative byte offsets (what MPI-IO calls and the paper's traces use)
to absolute file byte ranges (what the I/O subsystem sees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import MPIUsageError


class Datatype:
    """Base class for the datatype subset.

    Subclasses define :attr:`size`, :attr:`extent` and :meth:`segments`.
    """

    size: int
    extent: int

    @property
    def is_dense(self) -> bool:
        """True when the type is one gap-free run of bytes."""
        return self.size == self.extent

    def segments(self) -> list[tuple[int, int]]:
        """Contiguous ``(offset_in_extent, length)`` data runs, sorted."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(size={self.size}, extent={self.extent})"


class Basic(Datatype):
    """An elementary type of ``nbytes`` bytes (e.g. MPI_DOUBLE = Basic(8))."""

    def __init__(self, nbytes: int, name: str = "byte"):
        if nbytes <= 0:
            raise MPIUsageError(f"basic datatype must be positive, got {nbytes}")
        self.size = nbytes
        self.extent = nbytes
        self.name = name

    def segments(self) -> list[tuple[int, int]]:
        return [(0, self.size)]


#: One byte -- the default etype.
BYTE = Basic(1, "byte")
#: Eight bytes -- MPI_DOUBLE, used by BT-IO (5 doubles per mesh point).
DOUBLE = Basic(8, "double")


class Contiguous(Datatype):
    """``count`` repetitions of ``base`` with no gaps."""

    def __init__(self, count: int, base: Datatype = BYTE):
        if count <= 0:
            raise MPIUsageError(f"contiguous count must be positive, got {count}")
        self.count = count
        self.base = base
        self.size = count * base.size
        self.extent = count * base.extent

    def segments(self) -> list[tuple[int, int]]:
        if self.base.is_dense:
            return [(0, self.size)]
        segs: list[tuple[int, int]] = []
        for i in range(self.count):
            for off, ln in self.base.segments():
                segs.append((i * self.base.extent + off, ln))
        return _coalesce(segs)


class Vector(Datatype):
    """``count`` blocks of ``blocklen`` base elements, ``stride`` elements apart.

    Mirrors ``MPI_Type_vector``: stride is measured in *base extents*.  The
    datatype's extent runs to the end of the last block (MPI semantics for
    the significant extent; resizing is expressed with :class:`Resized`).
    """

    def __init__(self, count: int, blocklen: int, stride: int, base: Datatype = BYTE):
        if count <= 0 or blocklen <= 0:
            raise MPIUsageError("vector count/blocklen must be positive")
        if stride < blocklen:
            raise MPIUsageError(
                f"vector stride ({stride}) must be >= blocklen ({blocklen})"
            )
        self.count = count
        self.blocklen = blocklen
        self.stride = stride
        self.base = base
        self.size = count * blocklen * base.size
        self.extent = ((count - 1) * stride + blocklen) * base.extent

    def segments(self) -> list[tuple[int, int]]:
        if self.base.is_dense:
            block_bytes = self.blocklen * self.base.extent
            stride_bytes = self.stride * self.base.extent
            return _coalesce([(i * stride_bytes, block_bytes) for i in range(self.count)])
        segs: list[tuple[int, int]] = []
        block = Contiguous(self.blocklen, self.base)
        for i in range(self.count):
            start = i * self.stride * self.base.extent
            for off, ln in block.segments():
                segs.append((start + off, ln))
        return _coalesce(segs)


class Subarray(Datatype):
    """An n-dimensional subarray (``MPI_Type_create_subarray``).

    Describes a process's block of a global C-ordered array -- the
    datatype real BT-IO builds for its 3-D solution dumps.  ``sizes``
    are the global array dimensions (in base elements), ``subsizes`` the
    local block, ``starts`` its origin.  The resulting segments are the
    contiguous rows of the block laid into the global array.
    """

    def __init__(self, sizes: tuple[int, ...], subsizes: tuple[int, ...],
                 starts: tuple[int, ...], base: Datatype = BYTE):
        if not sizes or len(sizes) != len(subsizes) or len(sizes) != len(starts):
            raise MPIUsageError("sizes/subsizes/starts must be same-length, non-empty")
        for dim, (n, sub, s0) in enumerate(zip(sizes, subsizes, starts)):
            if n <= 0 or sub <= 0 or s0 < 0 or s0 + sub > n:
                raise MPIUsageError(
                    f"subarray dim {dim}: block [{s0}, {s0 + sub}) outside [0, {n})")
        self.sizes = tuple(sizes)
        self.subsizes = tuple(subsizes)
        self.starts = tuple(starts)
        self.base = base
        nelems_global = 1
        nelems_local = 1
        for n, sub in zip(sizes, subsizes):
            nelems_global *= n
            nelems_local *= sub
        self.size = nelems_local * base.size
        # MPI semantics: the extent of a subarray type is the whole array.
        self.extent = nelems_global * base.extent

    def segments(self) -> list[tuple[int, int]]:
        if not self.base.is_dense:
            raise MPIUsageError("subarray over sparse base types is unsupported")
        eb = self.base.extent  # bytes per element
        # Row length: the innermost dimension's contiguous run.
        row_elems = self.subsizes[-1]
        # Strides (in elements) of each dimension in the global array.
        strides = [1] * len(self.sizes)
        for d in range(len(self.sizes) - 2, -1, -1):
            strides[d] = strides[d + 1] * self.sizes[d + 1]
        # Enumerate all rows of the block (outer dims cartesian product).
        segs: list[tuple[int, int]] = []

        def walk(dim: int, offset_elems: int) -> None:
            if dim == len(self.sizes) - 1:
                segs.append(((offset_elems + self.starts[-1]) * eb,
                             row_elems * eb))
                return
            for i in range(self.subsizes[dim]):
                walk(dim + 1,
                     offset_elems + (self.starts[dim] + i) * strides[dim])

        walk(0, 0)
        return _coalesce(segs)


class Resized(Datatype):
    """A datatype with an overridden extent (``MPI_Type_create_resized``)."""

    def __init__(self, base: Datatype, extent: int):
        if extent < base.extent:
            raise MPIUsageError("resized extent must not truncate the base type")
        self.base = base
        self.size = base.size
        self.extent = extent

    def segments(self) -> list[tuple[int, int]]:
        return self.base.segments()


def _coalesce(segs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge adjacent/overlapping (offset, length) runs; returns sorted runs."""
    if not segs:
        return []
    segs = sorted(segs)
    out = [segs[0]]
    for off, ln in segs[1:]:
        last_off, last_ln = out[-1]
        if off <= last_off + last_ln:
            out[-1] = (last_off, max(last_off + last_ln, off + ln) - last_off)
        else:
            out.append((off, ln))
    return out


@dataclass(frozen=True)
class FileView:
    """A process's view of a file: displacement + etype + tiled filetype."""

    disp: int = 0
    etype: Datatype = BYTE
    filetype: Datatype = BYTE

    def __post_init__(self) -> None:
        if self.disp < 0:
            raise MPIUsageError(f"view displacement must be >= 0, got {self.disp}")
        if self.filetype.size % self.etype.size != 0:
            raise MPIUsageError("filetype size must be a multiple of etype size")

    @property
    def is_contiguous(self) -> bool:
        """True when the view maps view offsets 1:1 onto file offsets."""
        return self.filetype.size == self.filetype.extent

    def _segments_cached(self) -> list[tuple[int, int]]:
        """Filetype segments, computed once per view (views are frozen)."""
        segs = getattr(self, "_segs", None)
        if segs is None:
            segs = self.filetype.segments()
            object.__setattr__(self, "_segs", segs)
        return segs

    def map_range(self, view_offset: int, nbytes: int) -> list[tuple[int, int]]:
        """Map ``nbytes`` at view-relative byte ``view_offset`` to absolute runs.

        Returns a coalesced, sorted list of absolute ``(offset, length)``
        byte ranges.  This is what the I/O subsystem simulator consumes to
        judge contiguity and striding of an access.
        """
        if view_offset < 0 or nbytes < 0:
            raise MPIUsageError("view offset and length must be non-negative")
        if nbytes == 0:
            return []
        if self.is_contiguous:
            return [(self.disp + view_offset, nbytes)]

        ft = self.filetype
        tile_size = ft.size
        # Tiling uses the filetype extent per repetition (MPI semantics).
        tile_extent = ft.extent
        segs = self._segments_cached()
        runs: list[tuple[int, int]] = []
        remaining = nbytes
        pos = view_offset  # byte position in the data (view) space
        while remaining > 0:
            tile, in_tile = divmod(pos, tile_size)
            base = self.disp + tile * tile_extent
            consumed_in_tile = 0
            for seg_off, seg_len in segs:
                if remaining <= 0:
                    break
                if consumed_in_tile + seg_len <= in_tile:
                    consumed_in_tile += seg_len
                    continue
                skip = max(0, in_tile - consumed_in_tile)
                take = min(seg_len - skip, remaining)
                runs.append((base + seg_off + skip, take))
                remaining -= take
                consumed_in_tile += seg_len
                in_tile = consumed_in_tile
            pos = (tile + 1) * tile_size
            in_tile = 0
        return _coalesce(runs)

    def extent_of(self, view_offset: int, nbytes: int) -> tuple[int, int]:
        """Absolute (first_byte, last_byte_exclusive) spanned by an access."""
        runs = self.map_range(view_offset, nbytes)
        if not runs:
            at = self.map_range(view_offset, 1)
            start = at[0][0] if at else self.disp
            return (start, start)
        return (runs[0][0], runs[-1][0] + runs[-1][1])

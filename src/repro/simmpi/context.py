"""Rank-facing API of the simulated MPI runtime.

A rank program receives a :class:`RankContext` and calls the usual MPI
verbs on it (``barrier``, ``bcast``, ``allreduce``, ``send``/``recv``,
``compute`` for busy-work, and ``file_open`` for MPI-IO).  Every call is
a scheduling point of the deterministic engine and increments the rank's
*tick* (the paper's logical time unit); ``compute`` advances virtual time
without a tick since it is not an MPI event.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .engine import Comm, Engine
from .errors import MPIUsageError
from .fileio import SimFileHandle


class RankContext:
    """The MPI world as seen by a single rank."""

    def __init__(self, engine: Engine, rank: int):
        self._engine = engine
        self._rank = rank

    # -- identity --------------------------------------------------------------
    @property
    def rank(self) -> int:
        """World rank of this process (the paper's ``idP``)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the world communicator (``np``)."""
        return self._engine.nprocs

    @property
    def world(self) -> Comm:
        return self._engine.world

    @property
    def clock(self) -> float:
        """Current virtual time of this rank, in seconds."""
        return self._engine._states[self._rank].clock

    @property
    def tick(self) -> int:
        """Logical event counter of this rank (paper's ``tick``)."""
        return self._engine._states[self._rank].tick

    # -- computation -------------------------------------------------------------
    def compute(self, seconds: float) -> None:
        """Busy-work: advance virtual time without an MPI event (no tick)."""
        if seconds < 0:
            raise MPIUsageError(f"compute time must be >= 0, got {seconds}")
        self._engine.submit(
            self._rank,
            {"kind": "local", "ticks": 0, "fn": lambda start: (seconds, None)},
        )

    # -- collectives --------------------------------------------------------------
    def _collective(
        self,
        name: str,
        comm: Comm | None,
        finalize: Callable,
        payload: Any = None,
        **extra: Any,
    ) -> Any:
        comm = comm or self._engine.world
        op = {
            "kind": "collective",
            "name": name,
            "comm": comm,
            "ticks": 1,
            "payload": payload,
            "finalize": finalize,
        }
        op.update(extra)
        return self._engine.submit(self._rank, op)

    def barrier(self, comm: Comm | None = None) -> None:
        """Synchronize all ranks of ``comm`` (world by default)."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            dur = platform.comm_time(0, len(ops), "barrier", t0)
            return {r: dur for r in ops}, {r: None for r in ops}

        self._collective("barrier", comm, finalize)

    def bcast(self, value: Any = None, root: int = 0, nbytes: int = 8,
              comm: Comm | None = None) -> Any:
        """Broadcast ``value`` from world-rank ``root``; returns it on all ranks."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            if root not in ops:
                raise MPIUsageError(f"bcast root {root} not in communicator")
            result = ops[root]["payload"]
            dur = platform.comm_time(nbytes, len(ops), "bcast", t0)
            return {r: dur for r in ops}, {r: result for r in ops}

        return self._collective("bcast", comm, finalize, payload=value)

    def allreduce(self, value: Any, op: Callable[[Sequence[Any]], Any] = sum,
                  nbytes: int = 8, comm: Comm | None = None) -> Any:
        """Reduce ``value`` across ranks with ``op`` (sum by default)."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            values = [ops[r]["payload"] for r in sorted(ops)]
            result = op(values)
            dur = platform.comm_time(nbytes, len(ops), "allreduce", t0)
            return {r: dur for r in ops}, {r: result for r in ops}

        return self._collective("allreduce", comm, finalize, payload=value)

    def gather(self, value: Any, root: int = 0, nbytes: int = 8,
               comm: Comm | None = None) -> list[Any] | None:
        """Gather values to ``root``; returns the list on root, None elsewhere."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            values = [ops[r]["payload"] for r in sorted(ops)]
            dur = platform.comm_time(nbytes * len(ops), len(ops), "gather", t0)
            return (
                {r: dur for r in ops},
                {r: (values if r == root else None) for r in ops},
            )

        return self._collective("gather", comm, finalize, payload=value)

    def reduce(self, value: Any, root: int = 0,
               op: Callable[[Sequence[Any]], Any] = sum, nbytes: int = 8,
               comm: Comm | None = None) -> Any:
        """Reduce to ``root``; returns the result on root, None elsewhere."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            if root not in ops:
                raise MPIUsageError(f"reduce root {root} not in communicator")
            values = [ops[r]["payload"] for r in sorted(ops)]
            result = op(values)
            dur = platform.comm_time(nbytes, len(ops), "reduce", t0)
            return ({r: dur for r in ops},
                    {r: (result if r == root else None) for r in ops})

        return self._collective("reduce", comm, finalize, payload=value)

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0,
                nbytes: int = 8, comm: Comm | None = None) -> Any:
        """Scatter ``values`` (one per comm rank, given on root) from root."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            if root not in ops:
                raise MPIUsageError(f"scatter root {root} not in communicator")
            vals = ops[root]["payload"]
            ranks = sorted(ops)
            if vals is None or len(vals) != len(ranks):
                raise MPIUsageError(
                    f"scatter needs exactly {len(ranks)} values on the root")
            dur = platform.comm_time(nbytes * len(ranks), len(ranks),
                                     "gather", t0)
            return ({r: dur for r in ops},
                    {r: vals[i] for i, r in enumerate(ranks)})

        return self._collective("scatter", comm, finalize, payload=values)

    def allgather(self, value: Any, nbytes: int = 8,
                  comm: Comm | None = None) -> list[Any]:
        """Gather values from all ranks to all ranks."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            values = [ops[r]["payload"] for r in sorted(ops)]
            dur = platform.comm_time(nbytes * len(ops), len(ops),
                                     "alltoall", t0)
            return {r: dur for r in ops}, {r: list(values) for r in ops}

        return self._collective("allgather", comm, finalize, payload=value)

    def sendrecv(self, dest: int, source: int, nbytes: int = 8, tag: int = 0,
                 payload: Any = None) -> Any:
        """Combined send-to-dest / receive-from-source (deadlock-free).

        Implemented as two rendezvous halves ordered by rank parity so a
        ring of sendrecvs (the classic halo exchange) cannot deadlock.
        """
        if dest == source == self._rank:
            raise MPIUsageError("sendrecv with self on both sides")
        if self._rank % 2 == 0:
            self.send(dest, nbytes, tag=tag, payload=payload)
            return self.recv(source, tag=tag)
        received = self.recv(source, tag=tag)
        self.send(dest, nbytes, tag=tag, payload=payload)
        return received

    def alltoall(self, nbytes_per_peer: int = 8, comm: Comm | None = None) -> None:
        """Model an all-to-all exchange of ``nbytes_per_peer`` per pair."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            n = len(ops)
            dur = platform.comm_time(nbytes_per_peer * n, n, "alltoall", t0)
            return {r: dur for r in ops}, {r: None for r in ops}

        self._collective("alltoall", comm, finalize)

    def split(self, color: int, key: int | None = None,
              comm: Comm | None = None) -> Comm:
        """Split a communicator by ``color`` (like ``MPI_Comm_split``)."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            groups: dict[int, list[tuple[int, int]]] = {}
            for r in sorted(ops):
                c, k = ops[r]["payload"]
                groups.setdefault(c, []).append((k, r))
            comms: dict[int, Comm] = {}
            results: dict[int, Comm] = {}
            for c, members in groups.items():
                ranks = [r for _, r in sorted(members)]
                comms[c] = Comm(ranks, name=f"split-{c}")
            for r in sorted(ops):
                c, _ = ops[r]["payload"]
                results[r] = comms[c]
            dur = platform.comm_time(8, len(ops), "split", t0)
            return {r: dur for r in ops}, results

        me = key if key is not None else self._rank
        return self._collective("split", comm, finalize, payload=(color, me))

    # -- point-to-point --------------------------------------------------------------
    def send(self, peer: int, nbytes: int, tag: int = 0, payload: Any = None) -> None:
        """Synchronous send of ``nbytes`` to world-rank ``peer``."""
        self._check_peer(peer)
        self._engine.submit(
            self._rank,
            {"kind": "p2p", "role": "send", "peer": peer, "tag": tag,
             "nbytes": nbytes, "payload": payload, "ticks": 1},
        )

    def recv(self, peer: int, tag: int = 0) -> Any:
        """Blocking receive from world-rank ``peer``; returns the payload."""
        self._check_peer(peer)
        return self._engine.submit(
            self._rank,
            {"kind": "p2p", "role": "recv", "peer": peer, "tag": tag,
             "nbytes": 0, "ticks": 1},
        )

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self._engine.nprocs):
            raise MPIUsageError(f"peer rank {peer} out of range [0, {self._engine.nprocs})")
        if peer == self._rank:
            raise MPIUsageError("send/recv to self would deadlock a rendezvous pair")

    # -- MPI-IO ------------------------------------------------------------------------
    def file_open(self, filename: str, mode: str = "rw", unique: bool = False,
                  comm: Comm | None = None) -> SimFileHandle:
        """Open a file; ``unique=True`` opens a per-process file (``name.<rank>``).

        A shared open (the default) is collective over ``comm`` and all
        ranks obtain handles onto the same simulated file, mirroring
        ``MPI_File_open`` on a communicator.
        """
        return SimFileHandle.open(self._engine, self, filename, mode=mode,
                                  unique=unique, comm=comm or self._engine.world)

"""Rank-facing API of the simulated MPI runtime.

A rank program receives a context and calls the usual MPI verbs on it
(``barrier``, ``bcast``, ``allreduce``, ``send``/``recv``, ``compute``
for busy-work, and ``file_open`` for MPI-IO).  Every call is a
scheduling point of the deterministic engine and increments the rank's
*tick* (the paper's logical time unit); ``compute`` advances virtual
time without a tick since it is not an MPI event.

Every verb is implemented **once**, as a generator that yields op dicts
to the engine (the ``_g_*`` cores in :class:`_ContextCore`).  Two thin
shells expose them:

* :class:`RankContext` -- the blocking API for plain-callable programs
  on the threaded scheduler: each verb drives its core generator through
  ``Engine.submit`` and returns the result.
* :class:`CoroContext` -- the generator API for coroutine programs:
  each verb *is* the core generator, used as ``yield from ctx.verb(...)``
  so the single-threaded scheduler can suspend the rank at every op.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

from .engine import Comm, Engine, drive_blocking
from .errors import MPIUsageError
from .fileio import CoroFileHandle, SimFileHandle


class _ContextCore:
    """Shared state and generator-core implementations of the MPI verbs."""

    #: File-handle class ``file_open`` produces (set by the shells).
    _fh_class: type = SimFileHandle

    def __init__(self, engine: Engine, rank: int):
        self._engine = engine
        self._rank = rank

    # -- identity --------------------------------------------------------------
    @property
    def rank(self) -> int:
        """World rank of this process (the paper's ``idP``)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the world communicator (``np``)."""
        return self._engine.nprocs

    @property
    def world(self) -> Comm:
        return self._engine.world

    @property
    def clock(self) -> float:
        """Current virtual time of this rank, in seconds."""
        return self._engine._states[self._rank].clock

    @property
    def tick(self) -> int:
        """Logical event counter of this rank (paper's ``tick``)."""
        return self._engine._states[self._rank].tick

    # -- computation -------------------------------------------------------------
    def _g_compute(self, seconds: float) -> Generator:
        """Busy-work: advance virtual time without an MPI event (no tick)."""
        if seconds < 0:
            raise MPIUsageError(f"compute time must be >= 0, got {seconds}")
        yield {"kind": "local", "ticks": 0,
               "fn": lambda start: (seconds, None)}

    # -- collectives --------------------------------------------------------------
    def _g_collective(
        self,
        name: str,
        comm: Comm | None,
        finalize: Callable,
        payload: Any = None,
        **extra: Any,
    ) -> Generator:
        comm = comm or self._engine.world
        op = {
            "kind": "collective",
            "name": name,
            "comm": comm,
            "ticks": 1,
            "payload": payload,
            "finalize": finalize,
        }
        op.update(extra)
        result = yield op
        return result

    def _g_barrier(self, comm: Comm | None = None) -> Generator:
        """Synchronize all ranks of ``comm`` (world by default)."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            dur = platform.comm_time(0, len(ops), "barrier", t0)
            return {r: dur for r in ops}, {r: None for r in ops}

        return (yield from self._g_collective("barrier", comm, finalize))

    def _g_bcast(self, value: Any = None, root: int = 0, nbytes: int = 8,
                 comm: Comm | None = None) -> Generator:
        """Broadcast ``value`` from world-rank ``root``; returns it on all ranks."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            if root not in ops:
                raise MPIUsageError(f"bcast root {root} not in communicator")
            result = ops[root]["payload"]
            dur = platform.comm_time(nbytes, len(ops), "bcast", t0)
            return {r: dur for r in ops}, {r: result for r in ops}

        return (yield from self._g_collective("bcast", comm, finalize,
                                              payload=value))

    def _g_allreduce(self, value: Any,
                     op: Callable[[Sequence[Any]], Any] = sum,
                     nbytes: int = 8, comm: Comm | None = None) -> Generator:
        """Reduce ``value`` across ranks with ``op`` (sum by default)."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            values = [ops[r]["payload"] for r in sorted(ops)]
            result = op(values)
            dur = platform.comm_time(nbytes, len(ops), "allreduce", t0)
            return {r: dur for r in ops}, {r: result for r in ops}

        return (yield from self._g_collective("allreduce", comm, finalize,
                                              payload=value))

    def _g_gather(self, value: Any, root: int = 0, nbytes: int = 8,
                  comm: Comm | None = None) -> Generator:
        """Gather values to ``root``; returns the list on root, None elsewhere."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            values = [ops[r]["payload"] for r in sorted(ops)]
            dur = platform.comm_time(nbytes * len(ops), len(ops), "gather", t0)
            return (
                {r: dur for r in ops},
                {r: (values if r == root else None) for r in ops},
            )

        return (yield from self._g_collective("gather", comm, finalize,
                                              payload=value))

    def _g_reduce(self, value: Any, root: int = 0,
                  op: Callable[[Sequence[Any]], Any] = sum, nbytes: int = 8,
                  comm: Comm | None = None) -> Generator:
        """Reduce to ``root``; returns the result on root, None elsewhere."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            if root not in ops:
                raise MPIUsageError(f"reduce root {root} not in communicator")
            values = [ops[r]["payload"] for r in sorted(ops)]
            result = op(values)
            dur = platform.comm_time(nbytes, len(ops), "reduce", t0)
            return ({r: dur for r in ops},
                    {r: (result if r == root else None) for r in ops})

        return (yield from self._g_collective("reduce", comm, finalize,
                                              payload=value))

    def _g_scatter(self, values: Sequence[Any] | None = None, root: int = 0,
                   nbytes: int = 8, comm: Comm | None = None) -> Generator:
        """Scatter ``values`` (one per comm rank, given on root) from root."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            if root not in ops:
                raise MPIUsageError(f"scatter root {root} not in communicator")
            vals = ops[root]["payload"]
            ranks = sorted(ops)
            if vals is None or len(vals) != len(ranks):
                raise MPIUsageError(
                    f"scatter needs exactly {len(ranks)} values on the root")
            dur = platform.comm_time(nbytes * len(ranks), len(ranks),
                                     "gather", t0)
            return ({r: dur for r in ops},
                    {r: vals[i] for i, r in enumerate(ranks)})

        return (yield from self._g_collective("scatter", comm, finalize,
                                              payload=values))

    def _g_allgather(self, value: Any, nbytes: int = 8,
                     comm: Comm | None = None) -> Generator:
        """Gather values from all ranks to all ranks."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            values = [ops[r]["payload"] for r in sorted(ops)]
            dur = platform.comm_time(nbytes * len(ops), len(ops),
                                     "alltoall", t0)
            return {r: dur for r in ops}, {r: list(values) for r in ops}

        return (yield from self._g_collective("allgather", comm, finalize,
                                              payload=value))

    def _g_sendrecv(self, dest: int, source: int, nbytes: int = 8,
                    tag: int = 0, payload: Any = None) -> Generator:
        """Combined send-to-dest / receive-from-source (deadlock-free).

        Implemented as two rendezvous halves ordered by rank parity so a
        ring of sendrecvs (the classic halo exchange) cannot deadlock.
        """
        if dest == source == self._rank:
            raise MPIUsageError("sendrecv with self on both sides")
        if self._rank % 2 == 0:
            yield from self._g_send(dest, nbytes, tag=tag, payload=payload)
            return (yield from self._g_recv(source, tag=tag))
        received = yield from self._g_recv(source, tag=tag)
        yield from self._g_send(dest, nbytes, tag=tag, payload=payload)
        return received

    def _g_alltoall(self, nbytes_per_peer: int = 8,
                    comm: Comm | None = None) -> Generator:
        """Model an all-to-all exchange of ``nbytes_per_peer`` per pair."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            n = len(ops)
            dur = platform.comm_time(nbytes_per_peer * n, n, "alltoall", t0)
            return {r: dur for r in ops}, {r: None for r in ops}

        return (yield from self._g_collective("alltoall", comm, finalize))

    def _g_split(self, color: int, key: int | None = None,
                 comm: Comm | None = None) -> Generator:
        """Split a communicator by ``color`` (like ``MPI_Comm_split``)."""
        platform = self._engine.platform

        def finalize(t0: float, ops: dict[int, Any]):
            groups: dict[int, list[tuple[int, int]]] = {}
            for r in sorted(ops):
                c, k = ops[r]["payload"]
                groups.setdefault(c, []).append((k, r))
            comms: dict[int, Comm] = {}
            results: dict[int, Comm] = {}
            for c, members in groups.items():
                ranks = [r for _, r in sorted(members)]
                comms[c] = Comm(ranks, name=f"split-{c}")
            for r in sorted(ops):
                c, _ = ops[r]["payload"]
                results[r] = comms[c]
            dur = platform.comm_time(8, len(ops), "split", t0)
            return {r: dur for r in ops}, results

        me = key if key is not None else self._rank
        return (yield from self._g_collective("split", comm, finalize,
                                              payload=(color, me)))

    # -- point-to-point --------------------------------------------------------------
    def _g_send(self, peer: int, nbytes: int, tag: int = 0,
                payload: Any = None) -> Generator:
        """Synchronous send of ``nbytes`` to world-rank ``peer``."""
        self._check_peer(peer)
        yield {"kind": "p2p", "role": "send", "peer": peer, "tag": tag,
               "nbytes": nbytes, "payload": payload, "ticks": 1}

    def _g_recv(self, peer: int, tag: int = 0) -> Generator:
        """Blocking receive from world-rank ``peer``; returns the payload."""
        self._check_peer(peer)
        return (yield {"kind": "p2p", "role": "recv", "peer": peer,
                       "tag": tag, "nbytes": 0, "ticks": 1})

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self._engine.nprocs):
            raise MPIUsageError(f"peer rank {peer} out of range [0, {self._engine.nprocs})")
        if peer == self._rank:
            raise MPIUsageError("send/recv to self would deadlock a rendezvous pair")

    # -- MPI-IO ------------------------------------------------------------------------
    def _g_file_open(self, filename: str, mode: str = "rw",
                     unique: bool = False,
                     comm: Comm | None = None) -> Generator:
        """Open a file; ``unique=True`` opens a per-process file (``name.<rank>``).

        A shared open (the default) is collective over ``comm`` and all
        ranks obtain handles onto the same simulated file, mirroring
        ``MPI_File_open`` on a communicator.
        """
        return (yield from self._fh_class._g_open(
            self._engine, self, filename, mode=mode, unique=unique,
            comm=comm or self._engine.world))


class RankContext(_ContextCore):
    """The MPI world as seen by a single rank (blocking API).

    Used by plain-callable rank programs on the threaded scheduler:
    every verb blocks the calling rank thread until the engine has
    processed the op.
    """

    _fh_class = SimFileHandle

    def _drive(self, gen: Generator) -> Any:
        return drive_blocking(self._engine, self._rank, gen)

    def compute(self, seconds: float) -> None:
        return self._drive(self._g_compute(seconds))

    def _collective(self, name: str, comm: Comm | None, finalize: Callable,
                    payload: Any = None, **extra: Any) -> Any:
        return self._drive(self._g_collective(name, comm, finalize,
                                              payload=payload, **extra))

    def barrier(self, comm: Comm | None = None) -> None:
        return self._drive(self._g_barrier(comm))

    def bcast(self, value: Any = None, root: int = 0, nbytes: int = 8,
              comm: Comm | None = None) -> Any:
        return self._drive(self._g_bcast(value, root, nbytes, comm))

    def allreduce(self, value: Any, op: Callable[[Sequence[Any]], Any] = sum,
                  nbytes: int = 8, comm: Comm | None = None) -> Any:
        return self._drive(self._g_allreduce(value, op, nbytes, comm))

    def gather(self, value: Any, root: int = 0, nbytes: int = 8,
               comm: Comm | None = None) -> list[Any] | None:
        return self._drive(self._g_gather(value, root, nbytes, comm))

    def reduce(self, value: Any, root: int = 0,
               op: Callable[[Sequence[Any]], Any] = sum, nbytes: int = 8,
               comm: Comm | None = None) -> Any:
        return self._drive(self._g_reduce(value, root, op, nbytes, comm))

    def scatter(self, values: Sequence[Any] | None = None, root: int = 0,
                nbytes: int = 8, comm: Comm | None = None) -> Any:
        return self._drive(self._g_scatter(values, root, nbytes, comm))

    def allgather(self, value: Any, nbytes: int = 8,
                  comm: Comm | None = None) -> list[Any]:
        return self._drive(self._g_allgather(value, nbytes, comm))

    def sendrecv(self, dest: int, source: int, nbytes: int = 8, tag: int = 0,
                 payload: Any = None) -> Any:
        return self._drive(self._g_sendrecv(dest, source, nbytes, tag, payload))

    def alltoall(self, nbytes_per_peer: int = 8,
                 comm: Comm | None = None) -> None:
        return self._drive(self._g_alltoall(nbytes_per_peer, comm))

    def split(self, color: int, key: int | None = None,
              comm: Comm | None = None) -> Comm:
        return self._drive(self._g_split(color, key, comm))

    def send(self, peer: int, nbytes: int, tag: int = 0,
             payload: Any = None) -> None:
        return self._drive(self._g_send(peer, nbytes, tag, payload))

    def recv(self, peer: int, tag: int = 0) -> Any:
        return self._drive(self._g_recv(peer, tag))

    def file_open(self, filename: str, mode: str = "rw", unique: bool = False,
                  comm: Comm | None = None) -> SimFileHandle:
        return self._drive(self._g_file_open(filename, mode, unique, comm))


class CoroContext(_ContextCore):
    """The MPI world as seen by a single rank (generator API).

    Used by generator rank programs on the coroutine scheduler: every
    verb returns a generator the program must delegate to with
    ``yield from``::

        def program(ctx):
            fh = yield from ctx.file_open("data")
            yield from fh.write_at(0, 1024)
            yield from ctx.barrier()
    """

    _fh_class = CoroFileHandle

    compute = _ContextCore._g_compute
    _collective = _ContextCore._g_collective
    barrier = _ContextCore._g_barrier
    bcast = _ContextCore._g_bcast
    allreduce = _ContextCore._g_allreduce
    gather = _ContextCore._g_gather
    reduce = _ContextCore._g_reduce
    scatter = _ContextCore._g_scatter
    allgather = _ContextCore._g_allgather
    sendrecv = _ContextCore._g_sendrecv
    alltoall = _ContextCore._g_alltoall
    split = _ContextCore._g_split
    send = _ContextCore._g_send
    recv = _ContextCore._g_recv
    file_open = _ContextCore._g_file_open

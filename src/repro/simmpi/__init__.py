"""Deterministic simulated MPI runtime (substitute for mpich2/OpenMPI).

Public surface::

    from repro.simmpi import Engine, IdealPlatform, RankContext
    from repro.simmpi import datatypes

    def program(ctx):
        fh = ctx.file_open("data.out")
        fh.write_at_all(ctx.rank * 1024, 1024)
        fh.close()

    Engine(nprocs=4, platform=IdealPlatform()).run(program)
"""

from .context import CoroContext, RankContext
from .datatypes import (
    BYTE,
    DOUBLE,
    Basic,
    Contiguous,
    Datatype,
    FileView,
    Resized,
    Subarray,
    Vector,
)
from .engine import Comm, Engine, IdealPlatform, IORequest, Platform, RunResult
from .errors import (
    CollectiveMismatch,
    DeadlockError,
    MPIFileError,
    MPIUsageError,
    RankFailedError,
    SimMPIError,
)
from .fileio import (
    CoroFileHandle,
    CoroIORequestHandle,
    IOEvent,
    IORequestHandle,
    OP_NAMES,
    SimFile,
    SimFileHandle,
)

__all__ = [
    "BYTE",
    "DOUBLE",
    "Basic",
    "Comm",
    "CollectiveMismatch",
    "Contiguous",
    "CoroContext",
    "CoroFileHandle",
    "CoroIORequestHandle",
    "Datatype",
    "DeadlockError",
    "Engine",
    "FileView",
    "IOEvent",
    "IORequest",
    "IORequestHandle",
    "IdealPlatform",
    "MPIFileError",
    "MPIUsageError",
    "OP_NAMES",
    "Platform",
    "RankContext",
    "RankFailedError",
    "Resized",
    "RunResult",
    "SimFile",
    "SimFileHandle",
    "SimMPIError",
    "Subarray",
    "Vector",
]

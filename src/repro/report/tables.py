"""Paper-style ASCII table rendering.

Every evaluation table of the paper (VI through XIV) has a renderer
here; the benchmark harness prints them so a run's output can be read
against the paper side by side.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.model import IOModel
from repro.core.pipeline import Evaluation
from repro.iosim.cluster import ClusterDescription

MB = 1024 * 1024
GB = 1024 * MB


def render(headers: Sequence[str], rows: Sequence[Sequence[object]],
           title: str | None = None, markdown: bool = False) -> str:
    """Generic fixed-width table (``markdown=True`` for GFM pipes)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out = []
    if title:
        out.append(f"**{title}**" if markdown else title)
        if markdown:
            out.append("")
    if markdown:
        out.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in cells:
            out.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
        return "\n".join(out)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("-+-".join("-" * w for w in widths))
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def fmt_bytes(n: int) -> str:
    """Human form used by the paper: whole GB/MB."""
    if n >= GB and n % GB == 0:
        return f"{n // GB}GB"
    if n >= GB:
        return f"{n / GB:.1f}GB"
    return f"{n // MB}MB"


def configuration_table(descs: Sequence[ClusterDescription],
                        title: str = "I/O configurations") -> str:
    """Tables VI/VII: one column per configuration."""
    rows = [
        ("I/O library", [d.io_library for d in descs]),
        ("Communication Network", [d.comm_network for d in descs]),
        ("Storage Network", [d.storage_network for d in descs]),
        ("Filesystem Global", [d.global_filesystem for d in descs]),
        ("I/O nodes", [d.io_nodes for d in descs]),
        ("Filesystem Local", [d.local_filesystem for d in descs]),
        ("Redundancy", [d.redundancy for d in descs]),
        ("Number of I/O Devices", [str(d.n_devices) for d in descs]),
        ("Capacity of I/O Devices", [d.device_capacity for d in descs]),
        ("Mounting Point", [d.mount_point for d in descs]),
    ]
    headers = ["I/O Element"] + [d.name for d in descs]
    return render(headers, [[label] + vals for label, vals in rows], title=title)


def phases_table(model: IOModel, title: str | None = None) -> str:
    """Table VIII / XI style: phase id, ops, initOffset, rep, weight."""
    rows = []
    for ph in model.phases:
        for i, op in enumerate(ph.ops):
            rows.append([
                str(ph.phase_id) if i == 0 else "",
                f"{ph.np} {'write' if op.kind == 'write' else 'read'}",
                op.abs_offset_fn.expression(rs=op.request_size),
                ph.rep if i == 0 else "",
                fmt_bytes(ph.np * ph.rep * op.request_size),
            ])
    return render(["Phase", "#Oper.", "InitOffset", "Rep", "weight"], rows,
                  title=title or f"I/O phases of {model.app_name} ({model.np} procs)")


def usage_table(evaluation: Evaluation, title: str | None = None) -> str:
    """Tables IX/X: per-phase weight, BW_PK, BW_MD, system usage."""
    rows = []
    for r in evaluation.rows:
        rows.append([
            r.phase_id,
            f"{r.n_operations} {r.op_label}",
            fmt_bytes(r.weight),
            f"{r.bw_pk_mb_s:.0f}" if r.bw_pk_mb_s else "-",
            f"{r.bw_md_mb_s:.0f}",
            f"{r.usage_pct:.0f}" if r.bw_pk_mb_s else "-",
        ])
    return render(
        ["Phase", "#Oper.", "weight", "BW_PK", "BW_MD", "System Usage %"],
        rows,
        title=title or f"I/O system utilization on {evaluation.config_name}",
    )


def time_estimation_table(totals: dict[str, dict[str, float]],
                          title: str = "I/O time estimation (s)") -> str:
    """Table XII: phase-group rows x configuration columns."""
    groups = sorted({g for per in totals.values() for g in per})
    headers = ["Phase"] + [f"Time_io(CH) on {name}" for name in totals]
    rows = []
    for g in groups:
        rows.append([g] + [f"{totals[name].get(g, float('nan')):.2f}"
                           for name in totals])
    return render(headers, rows, title=title)


def error_table(evaluation: Evaluation, groups: dict[str, Sequence[int]],
                title: str | None = None) -> str:
    """Tables XIII/XIV: Time_CH vs Time_MD and relative error per group.

    ``groups`` maps a row label (e.g. "Phase 1-50") to the phase ids it
    aggregates.
    """
    by_id = {r.phase_id: r for r in evaluation.rows}
    rows = []
    for label, ids in groups.items():
        t_ch = sum(by_id[i].time_ch for i in ids if i in by_id)
        t_md = sum(by_id[i].time_md for i in ids if i in by_id)
        err = 100.0 * abs(t_ch - t_md) / max(t_md, 1e-12)
        rows.append([label, f"{t_ch:.2f}", f"{t_md:.2f}", f"{err:.0f}%"])
    return render(["Phase", "Time_io(CH)", "Time_io(MD)", "error_rel"], rows,
                  title=title or f"Estimation error on {evaluation.config_name}")


def btio_phase_groups(ndumps: int) -> dict[str, list[int]]:
    """The paper's BT-IO row grouping: "Phase 1-N" and "Phase N+1"."""
    return {
        f"Phase 1-{ndumps}": list(range(1, ndumps + 1)),
        f"Phase {ndumps + 1}": [ndumps + 1],
    }

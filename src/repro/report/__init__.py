"""Paper-style reporting: ASCII tables (Tables VI-XIV) and figure series
(Figs. 2-10)."""

from .figures import (
    device_series_ascii,
    device_series_csv,
    figure2_trace_excerpt,
    figure3_lap,
    figure4_phases,
    figure5_global_pattern,
    figure8_device_series,
    save_figure_artifacts,
)
from .tables import (
    btio_phase_groups,
    configuration_table,
    error_table,
    fmt_bytes,
    phases_table,
    render,
    time_estimation_table,
    usage_table,
)

__all__ = [
    "btio_phase_groups",
    "configuration_table",
    "device_series_ascii",
    "device_series_csv",
    "error_table",
    "figure2_trace_excerpt",
    "figure3_lap",
    "figure4_phases",
    "figure5_global_pattern",
    "figure8_device_series",
    "fmt_bytes",
    "phases_table",
    "render",
    "save_figure_artifacts",
    "time_estimation_table",
    "usage_table",
]

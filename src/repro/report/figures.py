"""Figure-series regeneration (paper Figs. 2-10).

The paper's figures are trace excerpts (Fig. 2-4), 3-D global access
patterns (Figs. 5-7, 9-10) and device-activity timelines (Fig. 8).
Each has a generator here producing text/CSV artifacts -- the series a
plotting tool would consume -- plus a coarse ASCII rendering for
eyeballing in a terminal.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.core.lap import LAPEntry
from repro.core.model import IOModel
from repro.core.patterns import PatternPoint, ascii_plot, global_access_pattern, to_csv
from repro.iosim.monitor import DeviceMonitor
from repro.tracer.hooks import TraceBundle
from repro.tracer.tracefile import HEADER, TraceRecord


def figure2_trace_excerpt(bundle: TraceBundle, nrows: int = 4,
                          ranks: Sequence[int] = (0, 1)) -> str:
    """Fig. 2: the first rows of each process's trace file."""
    out = []
    for rank in ranks:
        out.append(HEADER)
        for rec in bundle.by_rank(rank)[:nrows]:
            out.append(rec.to_line())
        out.append("")
    return "\n".join(out)


def figure3_lap(entries: Sequence[LAPEntry], ranks: Sequence[int] | None = None) -> str:
    """Fig. 3: the access-pattern (LAP) files."""
    out = ["IdP IdF MPI-Operation Rep RequestSize Disp OffsetInit"]
    for e in entries:
        if ranks is not None and e.rank not in ranks:
            continue
        out.extend(e.to_lines())
    return "\n".join(out)


def figure4_phases(model: IOModel, nphases: int = 2) -> str:
    """Fig. 4: the first phases with their per-process rows."""
    out = []
    for ph in model.phases[:nphases]:
        out.append(f"Phase {ph.phase_id}")
        out.append("IdP IdF MPI-Operation Offset tick RequestSize")
        for rank in ph.ranks:
            for op in ph.ops:
                out.append(f"{rank} {ph.file_ids[0] if ph.file_ids else 0} {op.op} "
                           f"{op.offset_fn(rank)} {int(ph.tick)} {op.request_size}")
        out.append("")
    return "\n".join(out)


def figure5_global_pattern(bundle: TraceBundle, model: IOModel) -> list[PatternPoint]:
    """Figs. 5/6/7/9/10: the (tick, process, offset) point cloud."""
    return global_access_pattern(bundle.records, model)


def figure8_device_series(monitor: DeviceMonitor, bucket: float = 1.0) -> dict[str, list]:
    """Fig. 8: per-device sectors/s + %busy series (iostat -x -p 1)."""
    return {dev: monitor.series(dev, bucket=bucket) for dev in monitor.devices()}


def device_series_csv(monitor: DeviceMonitor, bucket: float = 1.0) -> str:
    """CSV export of every device's iostat-like series (Fig. 8 data)."""
    lines = ["device,time,wsec_per_s,rsec_per_s,busy_pct"]
    for dev in monitor.devices():
        for row in monitor.series(dev, bucket=bucket):
            lines.append(f"{dev},{row.time:.1f},{row.sectors_written_per_s:.0f},"
                         f"{row.sectors_read_per_s:.0f},{row.busy_fraction * 100:.0f}")
    return "\n".join(lines) + "\n"


def device_series_ascii(monitor: DeviceMonitor, device: str, bucket: float = 1.0,
                        width: int = 64) -> str:
    """Terminal sparkline of one device's write activity over time."""
    rows = monitor.series(device, bucket=bucket)
    if not rows:
        return f"{device}: (no activity)"
    peak = max(r.sectors_written_per_s + r.sectors_read_per_s for r in rows) or 1.0
    # Downsample to `width` columns.
    out = [f"{device}: sectors/s over time (peak {peak:.0f}/s)"]
    step = max(1, len(rows) // width)
    marks = []
    levels = " .:-=+*#%@"
    for i in range(0, len(rows), step):
        chunk = rows[i:i + step]
        v = max(r.sectors_written_per_s + r.sectors_read_per_s for r in chunk)
        marks.append(levels[min(len(levels) - 1, int(v / peak * (len(levels) - 1)))])
    out.append("".join(marks))
    return "\n".join(out)


def save_figure_artifacts(directory: str | Path, name: str, *,
                          bundle: TraceBundle | None = None,
                          model: IOModel | None = None,
                          monitor: DeviceMonitor | None = None) -> list[Path]:
    """Write the CSV/text artifacts for one figure into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    if bundle is not None and model is not None:
        points = figure5_global_pattern(bundle, model)
        path = directory / f"{name}.global_pattern.csv"
        path.write_text(to_csv(points))
        written.append(path)
        path = directory / f"{name}.global_pattern.txt"
        path.write_text(ascii_plot(points))
        written.append(path)
    if monitor is not None:
        path = directory / f"{name}.devices.csv"
        path.write_text(device_series_csv(monitor))
        written.append(path)
    return written

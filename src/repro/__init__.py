"""repro -- reproduction of Mendez, Rexachs & Luque, "Modeling Parallel
Scientific Applications through their Input/Output Phases" (IEEE CLUSTER 2012).

Subpackages
-----------
``repro.simmpi``
    Deterministic simulated MPI runtime (engine, MPI-IO, datatypes).
``repro.iosim``
    I/O subsystem simulator: disks, RAID/JBOD, networks, I/O nodes,
    NFS/PVFS2/Lustre, device monitoring.
``repro.tracer``
    PAS2P-style MPI-IO tracing tool producing the paper's trace format.
``repro.core``
    The paper's contribution: local access patterns, I/O phases,
    f(initOffset), the I/O abstract model, IOR replication and the
    time/usage/error estimators (eqs. 1-7).
``repro.apps``
    Workloads on the substrate: IOR, IOzone, MADbench2, NAS BT-IO and the
    4-process example of Figs. 2-5.
``repro.clusters``
    The paper's four I/O configurations (Aohyper A/B, configuration C,
    Finisterrae).
``repro.report``
    Paper-style table and figure-series rendering.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""I/O phase identification -- paper section III-A.1, Fig. 4.

An I/O phase is "a repetitive sequence of the same pattern on a file for
a number of processes": LAP entries of different ranks that are
*similar* (same op unit, repetition count, request size, displacement --
everything but the initial offset) and happen at similar logical times
(ticks).  Each phase gets:

* ``weight = sum over member ranks of rep x rs`` (= np * rep * rs for
  the usual all-ranks phase -- Table VIII's 4 GB for 16 x 8 x 32 MB);
* an inferred ``f(initOffset)`` per unit operation, in both
  view-relative and absolute units (Table VIII / Table XI formulas).

Unique access type (one file per process, IOR's ``-F``) is handled by
grouping per-rank files through their base name, so a phase can span
files ``out.0 .. out.N-1``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from operator import attrgetter
from statistics import median
from typing import Mapping, Sequence

from .lap import LAPEntry, LAPOp
from .offsetfn import OffsetFunction, fit_offsets, fit_offsets_arrays

#: Default tick tolerance when matching LAPs across ranks.  Ranks of an
#: SPMD program drift by a few events (Fig. 2: ticks 148 vs 147).
DEFAULT_TICK_TOL = 16


@dataclass(frozen=True)
class PhaseOp:
    """One operation of a phase's repeating unit, aggregated across ranks."""

    op: str
    kind: str  # "write" | "read"
    request_size: int
    disp: int
    offset_fn: OffsetFunction  # view-relative initial offset vs idP
    abs_offset_fn: OffsetFunction  # absolute initial byte offset vs idP

    @property
    def collective(self) -> bool:
        return self.op.endswith("_all")


@dataclass
class Phase:
    """One I/O phase of the application's I/O abstract model."""

    phase_id: int
    file_group: str
    rep: int
    ops: tuple[PhaseOp, ...]
    ranks: tuple[int, ...]
    tick: float  # representative (median) first tick
    first_time: float
    duration: float  # max over ranks of summed op durations (measured)
    unique_file: bool = False
    file_ids: tuple[int, ...] = ()

    @property
    def np(self) -> int:
        """Number of processes participating in the phase."""
        return len(self.ranks)

    @property
    def weight(self) -> int:
        """Phase weight in bytes: np * rep * sum of unit request sizes."""
        return self.np * self.rep * sum(o.request_size for o in self.ops)

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({o.kind for o in self.ops}))

    @property
    def op_label(self) -> str:
        """Paper-style operation label: W, R or W-R (Tables IX/X)."""
        kinds = set(self.kinds)
        if kinds == {"write"}:
            return "W"
        if kinds == {"read"}:
            return "R"
        return "W-R"

    @property
    def n_operations(self) -> int:
        """Total I/O operations in the phase (e.g. 128 W for Table IX)."""
        return self.np * self.rep * len(self.ops)

    @property
    def collective(self) -> bool:
        return any(o.collective for o in self.ops)

    @property
    def request_size(self) -> int:
        """Request size of the (first op of the) unit -- the model's rs."""
        return self.ops[0].request_size


_UNIQUE_SUFFIX = re.compile(r"\.(\d+)$")


def file_groups_from_metadata(metadata) -> dict[int, tuple[str, bool]]:
    """Map file_id -> (group key, unique?) from tracer metadata.

    Per-process files named ``base.<rank>`` with access type "unique"
    collapse onto the group ``base``.
    """
    groups: dict[int, tuple[str, bool]] = {}
    for f in metadata.files:
        if f.access_type == "unique":
            base = _UNIQUE_SUFFIX.sub("", f.filename)
            groups[f.file_id] = (base, True)
        else:
            groups[f.file_id] = (f.filename, False)
    return groups


def identify_phases(
    entries: Sequence[LAPEntry],
    file_groups: Mapping[int, tuple[str, bool]] | None = None,
    tick_tol: int = DEFAULT_TICK_TOL,
) -> list[Phase]:
    """Group similar, tick-close LAP entries of different ranks into phases.

    Entries are bucketed by similarity signature (with the file id
    replaced by its file group), then greedily clustered along the tick
    axis: a cluster absorbs at most one entry per rank, within
    ``tick_tol`` of the cluster seed's first tick.  Clusters become
    phases ordered by virtual start time.
    """
    # file_id -> (group, unique) is asked once per LAP entry; the trace
    # has a handful of files, so resolve each id exactly once.
    _ginfo: dict[int, tuple[str, bool]] = {}

    def groupinfo(file_id: int) -> tuple[str, bool]:
        info = _ginfo.get(file_id)
        if info is None:
            if file_groups and file_id in file_groups:
                info = file_groups[file_id]
            else:
                info = (f"file{file_id}", False)
            _ginfo[file_id] = info
        return info

    buckets: dict[tuple, list[LAPEntry]] = {}
    for e in entries:
        group, _unique = groupinfo(e.file_id)
        sig = (group, e.rep, tuple((o.op, o.request_size, o.disp) for o in e.ops))
        buckets.setdefault(sig, []).append(e)

    clusters: list[tuple[tuple, list[LAPEntry]]] = []
    for sig, bucket in buckets.items():
        bucket = sorted(bucket, key=attrgetter("first_tick", "rank"))
        n = len(bucket)
        used = [False] * n
        # The bucket is tick-sorted, so nothing beyond the seed's tick
        # window can ever be absorbed: the scan stops at the window edge
        # and skips used entries through path-compressed next pointers
        # (identical clusters, but O(window) per seed instead of O(n)
        # re-scans over consumed/duplicate-rank entries).
        nxt = list(range(1, n + 1))

        def next_unused(j: int) -> int:
            root = j
            while root < n and used[root]:
                root = nxt[root]
            while j < n and used[j]:
                nxt[j], j = root, nxt[j]
            return root

        i = next_unused(0)
        while i < n:
            seed = bucket[i]
            used[i] = True
            members = [seed]
            seen_ranks = {seed.rank}
            limit = seed.first_tick + tick_tol
            j = next_unused(i + 1)
            while j < n:
                cand = bucket[j]
                if cand.first_tick > limit:
                    break
                if cand.rank not in seen_ranks:
                    members.append(cand)
                    used[j] = True
                    seen_ranks.add(cand.rank)
                j = next_unused(j + 1)
            clusters.append((sig, members))
            i = next_unused(i + 1)

    clusters.sort(key=lambda c: (min(m.first_time for m in c[1]),
                                 median(m.first_tick for m in c[1])))
    phases = []
    for idx, (sig, members) in enumerate(clusters, start=1):
        phases.append(_make_phase(idx, sig, members, groupinfo))
    return phases


def _make_phase(phase_id: int, sig: tuple, members: list[LAPEntry],
                groupinfo) -> Phase:
    members = sorted(members, key=attrgetter("rank"))
    group, unique = groupinfo(members[0].file_id)
    nops = len(members[0].ops)
    ranks = [e.rank for e in members]
    phase_ops = []
    for j in range(nops):
        view_offs = [e.ops[j].init_offset for e in members]
        abs_offs = [e.ops[j].init_abs_offset for e in members]
        proto: LAPOp = members[0].ops[j]
        phase_ops.append(PhaseOp(
            op=proto.op,
            kind=proto.kind,
            request_size=proto.request_size,
            disp=proto.disp,
            offset_fn=fit_offsets_arrays(ranks, view_offs),
            abs_offset_fn=fit_offsets_arrays(ranks, abs_offs),
        ))
    return Phase(
        phase_id=phase_id,
        file_group=group,
        rep=members[0].rep,
        ops=tuple(phase_ops),
        ranks=tuple(e.rank for e in members),
        tick=median(e.first_tick for e in members),
        first_time=min(e.first_time for e in members),
        duration=max(e.total_duration for e in members),
        unique_file=unique,
        file_ids=tuple(sorted({e.file_id for e in members})),
    )


def merge_adjacent_phases(phases: Sequence[Phase], max_phases: int | None = None) -> list[Phase]:
    """Optionally coarsen a model by merging equal-signature adjacent phases.

    BT-IO's phases 1-40 are reported as one row ("Phase 1-40") in Table
    XI; this helper produces that aggregate view: consecutive phases
    with identical ops/rep/np collapse, their weights summing via an
    increased repetition count.
    """
    out: list[Phase] = []
    for ph in phases:
        if out:
            prev = out[-1]
            same = (
                prev.file_group == ph.file_group
                and prev.ranks == ph.ranks
                and len(prev.ops) == len(ph.ops)
                and all(a.op == b.op and a.request_size == b.request_size
                        for a, b in zip(prev.ops, ph.ops))
            )
            if same and (max_phases is None or len(out) <= max_phases):
                merged = Phase(
                    phase_id=prev.phase_id,
                    file_group=prev.file_group,
                    rep=prev.rep + ph.rep,
                    ops=prev.ops,
                    ranks=prev.ranks,
                    tick=prev.tick,
                    first_time=prev.first_time,
                    duration=prev.duration + ph.duration,
                    unique_file=prev.unique_file,
                    file_ids=prev.file_ids,
                )
                out[-1] = merged
                continue
        out.append(ph)
    for i, ph in enumerate(out, start=1):
        ph.phase_id = i
    return out

"""Model-driven application synthesis: from an I/O model back to a program.

The logical completion of the methodology: an :class:`IOModel` carries
everything needed to *re-enact* the application's I/O -- the phase
sequence (temporal pattern), each phase's per-rank offsets (spatial
pattern via f(initOffset)), request sizes, repetition counts, and the
collective/independent and shared/unique flags.  ``synthesize_program``
turns a model into a rank program whose traced model is the original
(the round-trip property the tests pin down):

    model == IOModel.from_trace(trace_run(synthesize_program(model), np))

Uses:

* replaying a *whole application* on a target system from its model
  file alone (the per-phase IOR/`replayer` replications measure one
  phase at a time; this replays the full temporal structure, including
  inter-phase gaps);
* shipping executable benchmarks instead of applications -- the paper's
  off-line characterization made runnable.

Limitations (checked, raising :class:`SynthesisError`): phases must be
linear in ``idP`` (table offset functions would need the original rank
set) and rank sets must be subsets of the replay's world.

One fidelity caveat mirrors the paper's own IOR limitation with strided
mode: phases extracted from strided *views* replay with their
view-relative displacements linearized onto bytes, so the traced model
round-trips exactly (ops, sizes, reps, phase starts, displacements) but
the absolute byte placement of repetitions inside a strided file view
is compacted.  Per-phase start offsets (f(initOffset)) are preserved.
"""

from __future__ import annotations

from typing import Callable

from repro.simmpi.context import RankContext
from repro.simmpi.errors import MPIUsageError

from .model import IOModel
from .phases import Phase

#: MPI events inserted between phases to reproduce distinct tick bursts.
INTER_PHASE_EVENTS = 4


class SynthesisError(ValueError):
    """The model cannot be turned into a program."""


def _check(model: IOModel) -> None:
    for ph in model.phases:
        for op in ph.ops:
            if not op.offset_fn.is_linear or not op.abs_offset_fn.is_linear:
                raise SynthesisError(
                    f"phase {ph.phase_id}: table-based offset function "
                    "cannot be synthesized")


def synthesize_program(model: IOModel,
                       compute_between_phases: float = 0.0) -> Callable:
    """Build a rank program re-enacting ``model``'s I/O behaviour.

    The program must be run with ``nprocs == model.np``.  Offsets are
    taken from the *absolute* offset functions, replayed through a
    byte-granular view (etype differences do not change the simulated
    behaviour; the paper's offsets are recovered in bytes).
    """
    _check(model)
    phases = list(model.phases)

    def program(ctx: RankContext) -> None:
        if ctx.size != model.np:
            raise MPIUsageError(
                f"synthesized program needs np={model.np}, got {ctx.size}")
        handles: dict[str, object] = {}
        for ph in phases:
            fh = handles.get(ph.file_group)
            if fh is None:
                fh = ctx.file_open(ph.file_group, unique=ph.unique_file)
                handles[ph.file_group] = fh
            if compute_between_phases:
                ctx.compute(compute_between_phases)
            # Distinct tick bursts between phases (temporal pattern).
            for _ in range(INTER_PHASE_EVENTS):
                ctx.allreduce(1.0)
            _replay_phase(ctx, fh, ph)
        for fh in handles.values():
            fh.close()
        ctx.barrier()

    program.__doc__ = f"Synthesized replay of {model.app_name} (np={model.np})"
    return program


def _replay_phase(ctx: RankContext, fh, ph: Phase) -> None:
    participate = ctx.rank in ph.ranks
    for k in range(ph.rep):
        for op in ph.ops:
            if ph.collective and not ph.unique_file:
                # Collective ops synchronize the full communicator the
                # file was opened on; non-members skip (their absence is
                # modelled by a matching collective of the participants
                # only when the phase covers every rank -- the common
                # case; partial collectives replay independently).
                if len(ph.ranks) == ctx.size:
                    offset = op.abs_offset_fn(ctx.rank) + k * _step(op)
                    if op.kind == "write":
                        fh.write_at_all(offset, op.request_size)
                    else:
                        fh.read_at_all(offset, op.request_size)
                    continue
            if not participate:
                continue
            offset = op.abs_offset_fn(ctx.rank) + k * _step(op)
            _issue(fh, op, offset)


def _issue(fh, op, offset: int) -> None:
    """Re-enact one operation with the original routine's addressing.

    Individual-pointer routines (``MPI_File_write``/``read``) are
    replayed as seek + pointer op so the traced routine names match the
    source model; shared-pointer routines cannot target a specific
    offset deterministically and are replayed with explicit offsets.
    """
    individual = op.op in ("MPI_File_write", "MPI_File_read",
                           "MPI_File_write_all", "MPI_File_read_all")
    if individual:
        fh.seek(offset)
        if op.kind == "write":
            fh.write(op.request_size)
        else:
            fh.read(op.request_size)
    elif op.kind == "write":
        fh.write_at(offset, op.request_size)
    else:
        fh.read_at(offset, op.request_size)


def _step(op) -> int:
    """Per-repetition offset step: the displacement, or rs when rep==1."""
    return op.disp if op.disp else op.request_size


def replay_model(model: IOModel, platform=None,
                 compute_between_phases: float = 0.0):
    """Trace a synthesized replay of ``model``; returns (model', bundle).

    ``model'`` should satisfy ``models_equivalent(model', model)`` up to
    file naming for unique-file groups.
    """
    from repro.tracer.hooks import trace_run

    from .model import IOModel as _IOModel

    program = synthesize_program(model,
                                 compute_between_phases=compute_between_phases)
    bundle = trace_run(program, model.np, platform)
    return _IOModel.from_trace(bundle, app_name=f"{model.app_name}-replay",
                               tick_tol=model.tick_tol), bundle

"""Local Access Pattern (LAP) extraction -- paper section III-A.1, Fig. 3.

A LAP compresses one process's trace into repetitive units.  Extraction
runs in three steps per (rank, file):

1. **Burst splitting.**  Consecutive I/O records whose tick delta is
   <= ``gap`` (default 1: strictly adjacent MPI events) belong to one
   *burst*.  A tick gap means other MPI events (communication) happened
   in between -- that is the paper's cue that a new phase begins (the
   Fig. 5 example: writes separated by ~121 communication ticks are
   distinct phases; the 40 back-to-back reads are one).

2. **Tandem-repeat compression.**  Within a burst, find maximal runs of
   a repeating *unit* of 1..3 operations.  A unit member matches across
   repetitions when op name and request size agree and its offset
   advances by a constant displacement ``disp``.  This is what
   decomposes MADbench2's W function (R R W R W R ... W W) into the
   paper's Table VIII rows: reads(rep 2), write-read(rep 6), writes(rep 2).

3. Each compressed group becomes a :class:`LAPEntry` (the Fig. 3 rows):
   idP, idF, op(s), rep, request size, disp, initial offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import and_, attrgetter, eq, sub
from typing import Callable, Sequence

from repro.tracer.tracefile import TraceRecord

try:  # optional: extract_laps_columns has a pure-Python twin
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

#: Maximum repeating-unit length the tandem detector searches for.
MAX_UNIT = 3


@dataclass(frozen=True)
class LAPOp:
    """One operation of a (possibly multi-op) repeating unit."""

    op: str  # MPI routine name
    kind: str  # "write" | "read"
    request_size: int  # bytes (rs)
    disp: int  # offset displacement between repetitions (etype units)
    init_offset: int  # view-relative initial offset (etype units)
    init_abs_offset: int  # absolute initial byte offset


@dataclass(frozen=True)
class LAPEntry:
    """One row group of the LAP file (Fig. 3) for a single process."""

    rank: int
    file_id: int
    rep: int
    ops: tuple[LAPOp, ...]
    first_tick: int
    last_tick: int
    first_time: float
    total_duration: float

    @property
    def signature(self) -> tuple:
        """What must match across processes for LAPs to be 'similar'
        (everything except the initial offsets -- Table I's simLAP)."""
        return (
            self.file_id,
            self.rep,
            tuple((o.op, o.request_size, o.disp) for o in self.ops),
        )

    @property
    def nbytes(self) -> int:
        """Bytes this process moves in the entry: rep * sum of unit sizes."""
        return self.rep * sum(o.request_size for o in self.ops)

    def to_lines(self) -> list[str]:
        """Fig. 3-style text rows: IdP IdF Op Rep RequestSize Disp OffsetInit."""
        return [
            f"{self.rank} {self.file_id} {o.op} {self.rep} "
            f"{o.request_size} {o.disp} {o.init_offset}"
            for o in self.ops
        ]


def split_bursts(records: Sequence[TraceRecord], gap: int = 1) -> list[list[TraceRecord]]:
    """Split one rank's (single-file) records into tick-adjacent bursts."""
    bursts: list[list[TraceRecord]] = []
    for rec in records:
        if bursts and rec.tick - bursts[-1][-1].tick <= gap:
            bursts[-1].append(rec)
        else:
            bursts.append([rec])
    return bursts


def _unit_matches(records: Sequence[TraceRecord], start: int, unit: int) -> int:
    """Number of consecutive repetitions of the unit beginning at ``start``.

    Repetition k matches when, for every unit member j, the record at
    ``start + k*unit + j`` has the same op and request size as the
    member's first occurrence and its offset advances linearly
    (constant per-member displacement established by the first two
    repetitions).
    """
    n = len(records)
    if start + unit > n:
        return 0
    base = records[start:start + unit]
    reps = 1
    disp: list[int | None] = [None] * unit
    while True:
        lo = start + reps * unit
        if lo + unit > n:
            break
        ok = True
        for j in range(unit):
            a, b = base[j], records[lo + j]
            if a.op != b.op or a.request_size != b.request_size:
                ok = False
                break
            prev = records[lo + j - unit]
            step = b.offset - prev.offset
            if disp[j] is None:
                disp[j] = step
            elif disp[j] != step:
                ok = False
                break
        if not ok:
            break
        reps += 1
    return reps


def compress_burst(records: Sequence[TraceRecord]) -> list[LAPEntry]:
    """Tandem-repeat compression of one burst into LAP entries.

    Greedy scan: at each position try unit lengths 1..MAX_UNIT, pick the
    one covering the most records, emit an entry, continue after it.
    Multi-operation units must repeat at least three times -- any two
    pairs of records form a trivially "consistent" 2-unit pattern, so two
    repetitions carry no evidence of periodicity.
    """
    entries: list[LAPEntry] = []
    i = 0
    n = len(records)
    while i < n:
        best_unit, best_reps = 1, _unit_matches(records, i, 1)
        for unit in range(2, MAX_UNIT + 1):
            reps = _unit_matches(records, i, unit)
            if reps >= 3 and reps * unit > best_reps * best_unit:
                best_unit, best_reps = unit, reps
        chunk = records[i:i + best_unit * best_reps]
        entries.append(_make_entry(chunk, best_unit, best_reps))
        i += best_unit * best_reps
    return entries


def _make_entry(chunk: Sequence[TraceRecord], unit: int, reps: int) -> LAPEntry:
    ops = []
    for j in range(unit):
        first = chunk[j]
        if reps > 1:
            disp = chunk[unit + j].offset - chunk[j].offset
        else:
            disp = 0
        ops.append(LAPOp(
            op=first.op,
            kind=first.kind,
            request_size=first.request_size,
            disp=disp,
            init_offset=first.offset,
            init_abs_offset=first.abs_offset,
        ))
    return LAPEntry(
        rank=chunk[0].rank,
        file_id=chunk[0].file_id,
        rep=reps,
        ops=tuple(ops),
        first_tick=chunk[0].tick,
        last_tick=chunk[-1].tick,
        first_time=chunk[0].time,
        total_duration=sum(r.duration for r in chunk),
    )


def extract_laps(records: Sequence[TraceRecord], gap: int = 1) -> list[LAPEntry]:
    """Full LAP extraction for an entire trace (all ranks, all files).

    Records are grouped by (rank, file) preserving order, burst-split by
    tick adjacency, and tandem-compressed.  Entries come back ordered by
    (rank, file, first_tick).
    """
    by_rank_file: dict[tuple[int, int], list[TraceRecord]] = {}
    for rec in records:
        by_rank_file.setdefault((rec.rank, rec.file_id), []).append(rec)
    entries: list[LAPEntry] = []
    for key in sorted(by_rank_file):
        for burst in split_bursts(by_rank_file[key], gap=gap):
            entries.extend(compress_burst(burst))
    entries.sort(key=lambda e: (e.rank, e.file_id, e.first_tick))
    return entries


# -- columnar extraction ------------------------------------------------------
#
# Same three steps, but over the parallel arrays of a
# ``repro.tracer.columns.TraceColumns`` instead of per-record objects.
# The numpy backend replaces the per-position ``_unit_matches`` scans
# with run-length arrays so every greedy-scan query is O(1):
#
#   chain[u][p]  op/request_size at p match p-u (same burst)
#   du[u][p]     offset step  off[p] - off[p-u]
#   g[u][p]      chain[u][p] and du[u][p] == du[u][p-u]  (constant disp)
#
# A repetition run of unit u starting at i has a 2nd repetition iff
# chain holds on [i+u, i+2u) -- the step there *establishes* disp, as in
# ``_unit_matches`` -- and extends one repetition per complete block of
# g-True positions after i+2u.  With C/G = suffix run lengths of
# chain/g:
#
#   reps(i, u, e) = 1                      if i+2u > e or C[u][i+u] < u
#                   2 + min(G[u][i+2u]//u, (e-i-2u)//u)   otherwise
#
# Burst boundaries zero ``pos`` (position within burst), which masks
# chain (pos >= u) and g (pos >= 2u), so runs never leak across bursts.
# The equivalence with the record path is asserted property-test-style
# in tests/core/test_columnar_equivalence.py.

def extract_laps_columns(cols, gap: int = 1) -> list[LAPEntry]:
    """:func:`extract_laps` over a ``TraceColumns`` -- identical output."""
    if len(cols) == 0:
        return []
    if cols.backend == "numpy":
        return _columns_entries_numpy(cols, gap)
    return _columns_entries_python(cols, gap)


def _suffix_runs(flags) -> list[int]:
    """runs[p] = length of the consecutive True run starting at p."""
    n = len(flags)
    idx = np.arange(n)
    next_false = np.minimum.accumulate(np.where(flags, n, idx)[::-1])[::-1]
    return (next_false - idx).tolist()


def _columns_entries_numpy(cols, gap: int) -> list[LAPEntry]:
    order = np.lexsort((cols.file_id, cols.rank))  # stable: == dict grouping
    rank = cols.rank[order]
    fid = cols.file_id[order]
    op = cols.op_code[order]
    off = cols.offset[order]
    tick = cols.tick[order]
    rs = cols.request_size[order]
    n = len(rank)

    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = ((rank[1:] != rank[:-1]) | (fid[1:] != fid[:-1])
                    | (tick[1:] - tick[:-1] > gap))
    idx = np.arange(n)
    pos = idx - np.maximum.accumulate(np.where(boundary, idx, 0))

    C: list = [None] * (MAX_UNIT + 1)
    G: list = [None] * (MAX_UNIT + 1)
    for u in range(1, MAX_UNIT + 1):
        chain = np.zeros(n, dtype=bool)
        du = np.zeros(n, dtype=np.int64)
        if n > u:
            chain[u:] = (op[u:] == op[:-u]) & (rs[u:] == rs[:-u])
            chain &= pos >= u
            du[u:] = off[u:] - off[:-u]
        g = np.zeros(n, dtype=bool)
        if n > 2 * u:
            g[2 * u:] = (chain[2 * u:] & (du[2 * u:] == du[u:-u])
                         & (pos[2 * u:] >= 2 * u))
        C[u] = _suffix_runs(chain)
        G[u] = _suffix_runs(g)

    def reps_fn(i: int, u: int, e: int) -> int:
        if i + 2 * u > e or C[u][i + u] < u:
            return 1 if i + u <= e else 0
        avail = (e - i - 2 * u) // u
        if avail <= 0:  # the 2nd repetition ends exactly at the burst edge
            return 2
        return 2 + min(G[u][i + 2 * u] // u, avail)

    starts = np.flatnonzero(boundary).tolist()
    bursts = list(zip(starts, starts[1:] + [n]))
    # numpy scalar indexing is slow; the greedy scan runs on plain lists
    lists = (rank.tolist(), fid.tolist(), op.tolist(), off.tolist(),
             tick.tolist(), rs.tolist(), cols.time[order].tolist(),
             cols.duration[order].tolist(), cols.abs_offset[order].tolist())
    return _scan(lists, bursts, reps_fn, cols.op_table)


class _Gather:
    """Lazy permutation view for the cold columns of the python
    fallback: they are read a handful of times per LAP entry, so
    materializing the whole permuted column would cost more than the
    lookups ever will."""

    __slots__ = ("base", "order")

    def __init__(self, base, order):
        self.base = base
        self.order = order

    def __getitem__(self, i: int):
        return self.base[self.order[i]]


def _columns_entries_python(cols, gap: int) -> list[LAPEntry]:
    # Traces keep (rank, file) constant over long runs, so instead of a
    # per-row Python loop the grouping works on *runs*: a C-speed
    # pair-equality mask, then repeated ``list.index`` scans from one
    # run boundary to the next.
    n = len(cols)
    src_r, src_f = cols.rank, cols.file_id
    same = list(map(and_, map(eq, src_r[1:], src_r),
                    map(eq, src_f[1:], src_f)))
    runs: list[tuple[int, int]] = []
    a = 0
    while a < n:
        try:
            b = same.index(False, a) + 1
        except ValueError:
            b = n
        runs.append((a, b))
        a = b
    groups: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for a, b in runs:
        groups.setdefault((src_r[a], src_f[a]), []).append((a, b))

    # hot columns (touched per event) are materialized in group order
    # by concatenating run slices (C speed); cold ones (touched per
    # entry) stay behind lazy views
    order: list[int] = []
    op: list[int] = []
    off: list[int] = []
    rs: list[int] = []
    dur: list[float] = []
    tick: list[int] = []
    group_starts: list[int] = []
    src_op, src_off = cols.op_code, cols.offset
    src_rs, src_dur, src_tick = cols.request_size, cols.duration, cols.tick
    for key in sorted(groups):
        group_starts.append(len(order))
        for a, b in groups[key]:
            order.extend(range(a, b))
            op += src_op[a:b]
            off += src_off[a:b]
            rs += src_rs[a:b]
            dur += src_dur[a:b]
            tick += src_tick[a:b]
    rank = _Gather(cols.rank, order)
    fid = _Gather(cols.file_id, order)
    time = _Gather(cols.time, order)
    aoff = _Gather(cols.abs_offset, order)

    # burst starts: every group start, plus every within-group tick
    # step > gap -- again a mask plus ``index`` scans.  Steps measured
    # across group boundaries may be arbitrary, but those positions are
    # group starts already, so the union is exactly the boundary set.
    tstep = list(map(sub, tick[1:], tick))
    gapped = list(map(gap.__lt__, tstep))
    starts_set = set(group_starts)
    q = 0
    while True:
        try:
            q = gapped.index(True, q)
        except ValueError:
            break
        starts_set.add(q + 1)
        q += 1
    starts = sorted(starts_set)
    bursts = list(zip(starts, starts[1:] + [n]))

    lists = (rank, fid, op, off, tick, rs, time, dur, aoff)
    return _scan(lists, bursts, _make_reps_fn(op, rs, off), cols.op_table)


def _make_reps_fn(op: list, rs: list, off: list) -> Callable[[int, int, int], int]:
    """The pure-Python greedy-scan repetition query over column lists."""

    def reps_fn(i: int, u: int, e: int, op=op, rs=rs, off=off) -> int:
        if u == 1:  # the hot query: tight single-op scan
            o0, r0 = op[i], rs[i]
            p = i + 1
            if p >= e or op[p] != o0 or rs[p] != r0:
                return 1
            d = off[p] - off[i]
            p += 1
            while (p < e and op[p] == o0 and rs[p] == r0
                   and off[p] - off[p - 1] == d):
                p += 1
            return p - i
        # direct port of _unit_matches onto the column lists
        if i + u > e:
            return 0
        reps = 1
        disp: list[int | None] = [None] * u
        while True:
            lo = i + reps * u
            if lo + u > e:
                break
            ok = True
            for j in range(u):
                p = lo + j
                b = i + j
                if op[b] != op[p] or rs[b] != rs[p]:
                    ok = False
                    break
                step = off[p] - off[p - u]
                dj = disp[j]
                if dj is None:
                    disp[j] = step
                elif dj != step:
                    ok = False
                    break
            if not ok:
                break
            reps += 1
        return reps

    return reps_fn


def _full_run(op, off, rs, s: int, e: int, u: int) -> int:
    """``(e - s) // u`` if the burst ``[s, e)`` is *exactly* a tandem
    repetition of the unit of length ``u`` (with the >= 3 repetition
    floor for multi-op units), else 0.  Runs on C-level slice
    comparisons -- no per-event Python loop."""
    r, rem = divmod(e - s, u)
    if rem or (u > 1 and r < 3):
        return 0
    if r > 1:
        unit_op, unit_rs = op[s:s + u], rs[s:s + u]
        if op[s:e] != unit_op * r or rs[s:e] != unit_rs * r:
            return 0
        for j in range(u):
            col = off[s + j:e:u]
            d = col[1] - col[0]
            if col[1:] != list(map(d.__add__, col[:-1])):
                return 0
    return r


def _scan(lists, bursts, reps_fn: Callable[[int, int, int], int],
          op_table: Sequence[str]) -> list[LAPEntry]:
    """The greedy compress_burst scan over primitive column lists."""
    rank, fid, op, off, tick, rs, time, dur, aoff = lists
    kinds = ["write" if "write" in name else "read" for name in op_table]
    entries: list[LAPEntry] = []
    # LAPOp/LAPEntry are constructed tens of thousands of times per
    # trace; frozen-dataclass __init__ pays one object.__setattr__ per
    # field.  __new__ + a bulk __dict__.update builds the identical
    # object (plain non-slots dataclasses: eq/hash/repr all read the
    # same __dict__) at a fraction of the cost.
    new_op, new_entry = LAPOp.__new__, LAPEntry.__new__

    def emit(i: int, best_u: int, best_r: int) -> int:
        end = i + best_u * best_r
        ops = []
        for j in range(best_u):
            p = i + j
            code = op[p]
            o = new_op(LAPOp)
            o.__dict__.update(
                op=op_table[code],
                kind=kinds[code],
                request_size=rs[p],
                disp=off[p + best_u] - off[p] if best_r > 1 else 0,
                init_offset=off[p],
                init_abs_offset=aoff[p],
            )
            ops.append(o)
        en = new_entry(LAPEntry)
        en.__dict__.update(
            rank=rank[i],
            file_id=fid[i],
            rep=best_r,
            ops=tuple(ops),
            first_tick=tick[i],
            last_tick=tick[end - 1],
            first_time=time[i],
            # sum() over the list slice accumulates left-to-right in
            # the same order as the record path: bit-identical floats
            total_duration=sum(dur[i:end]),
        )
        entries.append(en)
        return end

    for s, e in bursts:
        # Whole-burst fast path.  In the paper's apps a burst is almost
        # always one exact tandem run, and the greedy scan provably
        # agrees with the short-circuit:
        #   u=1 full: no longer unit can strictly beat full coverage.
        #   u=2 full: unit 1 fell short (r1 < e-s), so 2*r2 = e-s wins;
        #     unit 3 cannot strictly beat it.
        #   u=3 full: both shorter units fell short of e-s (a failed
        #     full-run test bounds their coverage strictly below e-s),
        #     so 3*r3 = e-s wins.
        # The tests run in the greedy's own preference order.
        for u in range(1, MAX_UNIT + 1):
            r = _full_run(op, off, rs, s, e, u)
            if r:
                emit(s, u, r)
                break
        else:
            i = s
            while i < e:
                best_u, best_r = 1, reps_fn(i, 1, e)
                if i + best_r < e:
                    # a unit-u run covers at most e - i events, so once
                    # the unit-1 run reaches the burst end no longer
                    # unit can strictly beat its coverage
                    for u in range(2, MAX_UNIT + 1):
                        r = reps_fn(i, u, e)
                        if r >= 3 and r * u > best_r * best_u:
                            best_u, best_r = u, r
                i = emit(i, best_u, best_r)
    entries.sort(key=attrgetter("rank", "file_id", "first_tick"))
    return entries


# -- streaming extraction -----------------------------------------------------

class _Const:
    """Constant pseudo-column: one (rank or file_id) value for a burst."""

    __slots__ = ("v",)

    def __init__(self, v):
        self.v = v

    def __getitem__(self, i: int):
        return self.v


class LAPFolder:
    """Incremental LAP extraction over a *streamed* trace.

    Feed trace chunks (``TraceColumns`` slices, e.g. from
    :func:`repro.tracer.columns.iter_trace_column_chunks`) through
    :meth:`push`; :meth:`finish` returns the LAP entries.  Memory is
    O(open bursts + emitted entries + op table): a burst's rows are
    buffered only until a tick gap (or end of stream) closes it, then
    tandem-compressed with the same ``_full_run``/``_scan`` machinery
    as the batch paths and released.

    The output is **bit-identical** to :func:`extract_laps` over the
    full trace, provided the chunks preserve each (rank, file)'s record
    order -- any interleaving *across* keys is fine (burst buffers are
    per-key and the final entry list is sorted like the batch path).
    A :class:`~repro.tracer.columns.StreamDigest` runs alongside, so
    after :meth:`finish` the folder knows the stream's content digest
    without ever having materialized the columns.
    """

    def __init__(self, gap: int = 1, digest: bool = True):
        from repro.tracer.columns import StreamDigest

        self.gap = gap
        self.op_table: list[str] = []
        self._op_index: dict[str, int] = {}
        #: (rank, file_id) -> dict of open-burst column lists
        self._open: dict[tuple[int, int], dict[str, list]] = {}
        self._entries: list[LAPEntry] = []
        # digest=False skips the per-chunk sha256 work entirely -- for
        # callers that will never ask for content_digest() (e.g. a
        # streaming characterization with no store attached)
        self.digest = StreamDigest() if digest else None
        self.nrows = 0
        self.peak_open_rows = 0  # high-water mark of buffered rows
        self._finished = False

    # -- ingestion ------------------------------------------------------------
    def push(self, chunk) -> None:
        """Fold one ``TraceColumns`` chunk (any backend, any op table)."""
        if self._finished:
            raise RuntimeError("LAPFolder already finished")
        lists = chunk.column_lists()
        remap = []
        for op in chunk.op_table:
            code = self._op_index.get(op)
            if code is None:
                code = self._op_index[op] = len(self.op_table)
                self.op_table.append(op)
            remap.append(code)
        if remap != list(range(len(remap))):
            lists["op_code"] = [remap[c] for c in lists["op_code"]]
        if self.digest is not None:
            self.digest.update(lists)
        self._push_lists(lists)

    def push_records(self, records) -> None:
        """Fold an iterable of ``TraceRecord`` rows (convenience)."""
        from repro.tracer.columns import TraceColumns

        self.push(TraceColumns.from_records(records, backend="python"))

    def _push_lists(self, lists: dict[str, list]) -> None:
        rank, fid = lists["rank"], lists["file_id"]
        n = len(rank)
        self.nrows += n
        if n == 0:
            return
        # (rank, file) runs via C-speed pair-equality masks, as in the
        # batch python path
        same = list(map(and_, map(eq, rank[1:], rank),
                        map(eq, fid[1:], fid)))
        a = 0
        while a < n:
            try:
                b = same.index(False, a) + 1
            except ValueError:
                b = n
            self._push_run((rank[a], fid[a]), lists, a, b)
            a = b
        open_rows = sum(len(buf["op_code"]) for buf in self._open.values())
        if open_rows > self.peak_open_rows:
            self.peak_open_rows = open_rows

    _BUF_COLS = ("op_code", "offset", "tick", "request_size", "time",
                 "duration", "abs_offset")

    def _push_run(self, key: tuple[int, int], lists: dict[str, list],
                  a: int, b: int) -> None:
        """Merge one constant-(rank, file) run into the key's burst."""
        gap = self.gap
        tick = lists["tick"]
        # burst cuts inside the run: positions where the tick step > gap
        cuts = [a]
        gapped = list(map(gap.__lt__, map(sub, tick[a + 1:b], tick[a:b - 1])))
        q = 0
        while True:
            try:
                q = gapped.index(True, q)
            except ValueError:
                break
            cuts.append(a + q + 1)
            q += 1
        cuts.append(b)
        buf = self._open.get(key)
        for s, e in zip(cuts, cuts[1:]):
            if buf is not None and tick[s] - buf["tick"][-1] <= gap:
                for name in self._BUF_COLS:
                    buf[name] += lists[name][s:e]
            else:
                if buf is not None:
                    self._compress(key, buf)
                buf = {name: lists[name][s:e] for name in self._BUF_COLS}
        self._open[key] = buf

    # -- compression ----------------------------------------------------------
    def _compress(self, key: tuple[int, int], buf: dict[str, list]) -> None:
        op, off, rs = buf["op_code"], buf["offset"], buf["request_size"]
        lists = (_Const(key[0]), _Const(key[1]), op, off, buf["tick"], rs,
                 buf["time"], buf["duration"], buf["abs_offset"])
        self._entries.extend(_scan(lists, [(0, len(op))],
                                   _make_reps_fn(op, rs, off), self.op_table))

    def finish(self) -> list[LAPEntry]:
        """Close the remaining bursts; entries in the batch-path order."""
        if not self._finished:
            for key in sorted(self._open):
                self._compress(key, self._open[key])
            self._open.clear()
            self._entries.sort(key=attrgetter("rank", "file_id",
                                              "first_tick"))
            self._finished = True
        return self._entries

    def content_digest(self) -> str:
        """The streamed trace's content digest (valid any time)."""
        if self.digest is None:
            raise RuntimeError("LAPFolder was built with digest=False")
        return self.digest.finalize(self.op_table)


def expand_entry(entry: LAPEntry) -> list[tuple[str, int, int]]:
    """Inverse of compression: the (op, offset, request_size) sequence
    the entry stands for.  Used by the round-trip property tests."""
    out = []
    for k in range(entry.rep):
        for o in entry.ops:
            out.append((o.op, o.init_offset + k * o.disp, o.request_size))
    return out

"""Local Access Pattern (LAP) extraction -- paper section III-A.1, Fig. 3.

A LAP compresses one process's trace into repetitive units.  Extraction
runs in three steps per (rank, file):

1. **Burst splitting.**  Consecutive I/O records whose tick delta is
   <= ``gap`` (default 1: strictly adjacent MPI events) belong to one
   *burst*.  A tick gap means other MPI events (communication) happened
   in between -- that is the paper's cue that a new phase begins (the
   Fig. 5 example: writes separated by ~121 communication ticks are
   distinct phases; the 40 back-to-back reads are one).

2. **Tandem-repeat compression.**  Within a burst, find maximal runs of
   a repeating *unit* of 1..3 operations.  A unit member matches across
   repetitions when op name and request size agree and its offset
   advances by a constant displacement ``disp``.  This is what
   decomposes MADbench2's W function (R R W R W R ... W W) into the
   paper's Table VIII rows: reads(rep 2), write-read(rep 6), writes(rep 2).

3. Each compressed group becomes a :class:`LAPEntry` (the Fig. 3 rows):
   idP, idF, op(s), rep, request size, disp, initial offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.tracer.tracefile import TraceRecord

#: Maximum repeating-unit length the tandem detector searches for.
MAX_UNIT = 3


@dataclass(frozen=True)
class LAPOp:
    """One operation of a (possibly multi-op) repeating unit."""

    op: str  # MPI routine name
    kind: str  # "write" | "read"
    request_size: int  # bytes (rs)
    disp: int  # offset displacement between repetitions (etype units)
    init_offset: int  # view-relative initial offset (etype units)
    init_abs_offset: int  # absolute initial byte offset


@dataclass(frozen=True)
class LAPEntry:
    """One row group of the LAP file (Fig. 3) for a single process."""

    rank: int
    file_id: int
    rep: int
    ops: tuple[LAPOp, ...]
    first_tick: int
    last_tick: int
    first_time: float
    total_duration: float

    @property
    def signature(self) -> tuple:
        """What must match across processes for LAPs to be 'similar'
        (everything except the initial offsets -- Table I's simLAP)."""
        return (
            self.file_id,
            self.rep,
            tuple((o.op, o.request_size, o.disp) for o in self.ops),
        )

    @property
    def nbytes(self) -> int:
        """Bytes this process moves in the entry: rep * sum of unit sizes."""
        return self.rep * sum(o.request_size for o in self.ops)

    def to_lines(self) -> list[str]:
        """Fig. 3-style text rows: IdP IdF Op Rep RequestSize Disp OffsetInit."""
        return [
            f"{self.rank} {self.file_id} {o.op} {self.rep} "
            f"{o.request_size} {o.disp} {o.init_offset}"
            for o in self.ops
        ]


def split_bursts(records: Sequence[TraceRecord], gap: int = 1) -> list[list[TraceRecord]]:
    """Split one rank's (single-file) records into tick-adjacent bursts."""
    bursts: list[list[TraceRecord]] = []
    for rec in records:
        if bursts and rec.tick - bursts[-1][-1].tick <= gap:
            bursts[-1].append(rec)
        else:
            bursts.append([rec])
    return bursts


def _unit_matches(records: Sequence[TraceRecord], start: int, unit: int) -> int:
    """Number of consecutive repetitions of the unit beginning at ``start``.

    Repetition k matches when, for every unit member j, the record at
    ``start + k*unit + j`` has the same op and request size as the
    member's first occurrence and its offset advances linearly
    (constant per-member displacement established by the first two
    repetitions).
    """
    n = len(records)
    if start + unit > n:
        return 0
    base = records[start:start + unit]
    reps = 1
    disp: list[int | None] = [None] * unit
    while True:
        lo = start + reps * unit
        if lo + unit > n:
            break
        ok = True
        for j in range(unit):
            a, b = base[j], records[lo + j]
            if a.op != b.op or a.request_size != b.request_size:
                ok = False
                break
            prev = records[lo + j - unit]
            step = b.offset - prev.offset
            if disp[j] is None:
                disp[j] = step
            elif disp[j] != step:
                ok = False
                break
        if not ok:
            break
        reps += 1
    return reps


def compress_burst(records: Sequence[TraceRecord]) -> list[LAPEntry]:
    """Tandem-repeat compression of one burst into LAP entries.

    Greedy scan: at each position try unit lengths 1..MAX_UNIT, pick the
    one covering the most records, emit an entry, continue after it.
    Multi-operation units must repeat at least three times -- any two
    pairs of records form a trivially "consistent" 2-unit pattern, so two
    repetitions carry no evidence of periodicity.
    """
    entries: list[LAPEntry] = []
    i = 0
    n = len(records)
    while i < n:
        best_unit, best_reps = 1, _unit_matches(records, i, 1)
        for unit in range(2, MAX_UNIT + 1):
            reps = _unit_matches(records, i, unit)
            if reps >= 3 and reps * unit > best_reps * best_unit:
                best_unit, best_reps = unit, reps
        chunk = records[i:i + best_unit * best_reps]
        entries.append(_make_entry(chunk, best_unit, best_reps))
        i += best_unit * best_reps
    return entries


def _make_entry(chunk: Sequence[TraceRecord], unit: int, reps: int) -> LAPEntry:
    ops = []
    for j in range(unit):
        first = chunk[j]
        if reps > 1:
            disp = chunk[unit + j].offset - chunk[j].offset
        else:
            disp = 0
        ops.append(LAPOp(
            op=first.op,
            kind=first.kind,
            request_size=first.request_size,
            disp=disp,
            init_offset=first.offset,
            init_abs_offset=first.abs_offset,
        ))
    return LAPEntry(
        rank=chunk[0].rank,
        file_id=chunk[0].file_id,
        rep=reps,
        ops=tuple(ops),
        first_tick=chunk[0].tick,
        last_tick=chunk[-1].tick,
        first_time=chunk[0].time,
        total_duration=sum(r.duration for r in chunk),
    )


def extract_laps(records: Sequence[TraceRecord], gap: int = 1) -> list[LAPEntry]:
    """Full LAP extraction for an entire trace (all ranks, all files).

    Records are grouped by (rank, file) preserving order, burst-split by
    tick adjacency, and tandem-compressed.  Entries come back ordered by
    (rank, file, first_tick).
    """
    by_rank_file: dict[tuple[int, int], list[TraceRecord]] = {}
    for rec in records:
        by_rank_file.setdefault((rec.rank, rec.file_id), []).append(rec)
    entries: list[LAPEntry] = []
    for key in sorted(by_rank_file):
        for burst in split_bursts(by_rank_file[key], gap=gap):
            entries.extend(compress_burst(burst))
    entries.sort(key=lambda e: (e.rank, e.file_id, e.first_tick))
    return entries


def expand_entry(entry: LAPEntry) -> list[tuple[str, int, int]]:
    """Inverse of compression: the (op, offset, request_size) sequence
    the entry stands for.  Used by the round-trip property tests."""
    out = []
    for k in range(entry.rep):
        for o in entry.ops:
            out.append((o.op, o.init_offset + k * o.disp, o.request_size))
    return out

"""The paper's estimators: equations (1) through (7).

* eq. (1)/(2): estimated I/O time ``Time_io = sum weight(ph)/BW_CH(ph)``,
  where BW_CH is the bandwidth IOR achieves replaying the phase on the
  target configuration;
* eq. (3)/(4): peak device bandwidth BW_PK from IOzone per I/O node
  (summed over nodes for parallel filesystems);
* eq. (5): ``SystemUsage = BW_MD / BW_PK * 100``;
* eq. (6)/(7): absolute/relative error between characterized (BW_CH)
  and measured (BW_MD) bandwidths.

``BW_MD`` -- the application's measured bandwidth per phase -- is
defined as ``weight / T_MD`` with ``T_MD`` the maximum over member ranks
of the summed durations of the rank's operations in the phase (ranks
run their phase operations back to back, so the slowest rank's I/O time
is the phase's elapsed I/O time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.apps.ior import run_ior
from repro.apps.iozone import IOzoneParams, run_iozone
from repro.iosim.cluster import Cluster

from .phases import Phase
from .replication import PhaseReplication, replication_for_phase

MB = 1024 * 1024

#: A zero-argument callable building a *fresh* cluster (no queue state).
ClusterFactory = Callable[[], Cluster]


# ---------------------------------------------------------------------------
# eq. (3) / (4): peak bandwidth
# ---------------------------------------------------------------------------

def peak_bandwidth(cluster_factory: ClusterFactory, kind: str,
                   iozone_params: IOzoneParams | None = None,
                   analytic: bool = False) -> float:
    """BW_PK of a configuration in MB/s.

    ``analytic=True`` uses the device model's nominal streaming rate;
    the default measures each I/O node with IOzone (the paper's method)
    and applies eq. (3) per node / eq. (4) across nodes.
    """
    cluster = cluster_factory()
    if analytic:
        return cluster.peak_bw(kind)
    params = iozone_params or IOzoneParams()
    ions = cluster.globalfs.ions
    # Identical I/O nodes (same fingerprint) measure once: IOzone is
    # deterministic on a fresh node, so a triple-server PVFS2 with three
    # clones pays a single run fanned out three ways (eq. 4 unchanged).
    by_fp: dict = {}
    maxima = []
    for ion in ions:
        fp = ion.fingerprint()
        bw = by_fp.get(fp)
        if bw is None:
            bw = by_fp[fp] = run_iozone(ion, params).peak_bw(kind)
        maxima.append(bw)
    if len(maxima) == 1:
        return maxima[0]  # eq. (3)
    return sum(maxima)  # eq. (4)


# ---------------------------------------------------------------------------
# eq. (1) / (2): estimation via IOR replication
# ---------------------------------------------------------------------------

@dataclass
class PhaseEstimate:
    """BW_CH and Time_io(CH) for one phase (eq. 2)."""

    phase_id: int
    weight: int
    op_label: str
    bw_ch_mb_s: float
    bw_ch_by_kind: dict[str, float] = field(default_factory=dict)

    @property
    def time_ch(self) -> float:
        """eq. (2): Time_io(phase) = weight / BW_CH."""
        return self.weight / MB / self.bw_ch_mb_s


@dataclass
class EstimateReport:
    """Per-phase and total estimated I/O time on one configuration."""

    config_name: str
    phases: list[PhaseEstimate] = field(default_factory=list)

    _index: "tuple | None" = field(default=None, repr=False, compare=False)

    @property
    def total_time_ch(self) -> float:
        """eq. (1): sum over phases."""
        return sum(p.time_ch for p in self.phases)

    def phase(self, phase_id: int) -> PhaseEstimate:
        return _phase_lookup(self, phase_id)


def _phase_lookup(report, phase_id: int):
    """Lazily indexed phase lookup shared by the report classes.

    The index is (re)built whenever the phase list changed length, so
    reports stay append-friendly; first-match semantics are preserved
    for duplicate ids via ``setdefault``.
    """
    cached = report._index
    if cached is None or cached[0] != len(report.phases):
        index = {}
        for p in report.phases:
            index.setdefault(p.phase_id, p)
        report._index = cached = (len(report.phases), index)
    index = cached[1]
    try:
        return index[phase_id]
    except KeyError:
        raise KeyError(f"no phase {phase_id}") from None


def estimate_phase(phase: Phase, cluster_factory: ClusterFactory) -> PhaseEstimate:
    """Replay one phase with IOR on a fresh cluster and compute BW_CH.

    Multi-operation phases run one IOR test per operation type; BW_CH is
    the average of the per-type bandwidths (the paper's rule for phases
    with two or more I/O operations).
    """
    repl: PhaseReplication = replication_for_phase(phase)
    bw_by_kind: dict[str, float] = {}
    for params in repl.runs:
        cluster = cluster_factory()
        result = run_ior(cluster, params)
        (kind,) = params.kinds
        bw_by_kind[kind] = result.bw(kind)
    bw_ch = sum(bw_by_kind.values()) / len(bw_by_kind)
    return PhaseEstimate(
        phase_id=phase.phase_id,
        weight=phase.weight,
        op_label=phase.op_label,
        bw_ch_mb_s=bw_ch,
        bw_ch_by_kind=bw_by_kind,
    )


def estimate_model(phases: Sequence[Phase], cluster_factory: ClusterFactory,
                   config_name: str = "config") -> EstimateReport:
    """eq. (1): estimate every phase of a model on one configuration.

    Identical phases (same signature: np, rep, ops, request sizes,
    collective/unique flags) share one IOR measurement -- BT-IO's 50
    write phases need a single replication run, exactly as the paper
    executes "the benchmark [only] for the phases of [the] I/O model".
    """
    report = EstimateReport(config_name=config_name)
    cache: dict[tuple, PhaseEstimate] = {}
    for ph in phases:
        key = (ph.np, ph.rep, ph.unique_file, ph.collective,
               tuple((o.op, o.request_size) for o in ph.ops))
        hit = cache.get(key)
        if hit is None:
            hit = estimate_phase(ph, cluster_factory)
            cache[key] = hit
        report.phases.append(PhaseEstimate(
            phase_id=ph.phase_id,
            weight=ph.weight,
            op_label=ph.op_label,
            bw_ch_mb_s=hit.bw_ch_mb_s,
            bw_ch_by_kind=dict(hit.bw_ch_by_kind),
        ))
    return report


# ---------------------------------------------------------------------------
# measurement (BW_MD) from a traced run on the target configuration
# ---------------------------------------------------------------------------

@dataclass
class PhaseMeasurement:
    """Measured time and bandwidth of one phase (BW_MD)."""

    phase_id: int
    weight: int
    op_label: str
    time_md: float

    @property
    def bw_md_mb_s(self) -> float:
        return self.weight / MB / max(self.time_md, 1e-12)


@dataclass
class MeasureReport:
    config_name: str
    phases: list[PhaseMeasurement] = field(default_factory=list)

    _index: "tuple | None" = field(default=None, repr=False, compare=False)

    @property
    def total_time_md(self) -> float:
        return sum(p.time_md for p in self.phases)

    def phase(self, phase_id: int) -> PhaseMeasurement:
        return _phase_lookup(self, phase_id)


def measure_phases(phases: Sequence[Phase], config_name: str = "config") -> MeasureReport:
    """BW_MD per phase from a model extracted on the *target* cluster.

    ``Phase.duration`` already holds the slowest member rank's summed
    operation durations, measured during the traced run.
    """
    report = MeasureReport(config_name=config_name)
    for ph in phases:
        report.phases.append(PhaseMeasurement(
            phase_id=ph.phase_id,
            weight=ph.weight,
            op_label=ph.op_label,
            time_md=ph.duration,
        ))
    return report


# ---------------------------------------------------------------------------
# eq. (5): system usage; eq. (6)/(7): errors
# ---------------------------------------------------------------------------

def system_usage(bw_md_mb_s: float, bw_pk_mb_s: float) -> float:
    """eq. (5): percentage of the configuration's capacity in use."""
    if bw_pk_mb_s <= 0:
        raise ValueError("BW_PK must be positive")
    return bw_md_mb_s / bw_pk_mb_s * 100.0


def absolute_error(bw_ch: float, bw_md: float) -> float:
    """eq. (7)."""
    return abs(bw_ch - bw_md)


def relative_error(bw_ch: float, bw_md: float) -> float:
    """eq. (6), in percent."""
    if bw_md <= 0:
        raise ValueError("measured bandwidth must be positive")
    return 100.0 * absolute_error(bw_ch, bw_md) / bw_md


@dataclass
class ConfigurationChoice:
    """Outcome of the selection step: least estimated I/O time wins."""

    best: str
    total_times: dict[str, float]

    def ranking(self) -> list[tuple[str, float]]:
        return sorted(self.total_times.items(), key=lambda kv: kv[1])


def select_configuration(phases: Sequence[Phase],
                         factories: dict[str, ClusterFactory],
                         parallel: bool = False,
                         max_workers: int | None = None,
                         retry=None,
                         timeout_s: float | None = None,
                         raise_on_error: bool = True,
                         checkpoint_dir=None,
                         resume: bool = False,
                         lattice=False,
                         executor=None) -> ConfigurationChoice:
    """Estimate the model on every configuration; pick the fastest.

    This is the paper's use case in Table XII: estimate BT-IO on
    configuration C and Finisterrae, choose Finisterrae.

    The replay requests of all candidate configurations are collected
    into one batched plan (:mod:`repro.core.planner`) first, so only
    unique (phase signature, configuration fingerprint) pairs are
    executed -- identical phases share one IOR replication within *and*
    across configurations.  ``parallel=True`` sweeps those unique
    replays concurrently in worker processes (factories must be
    picklable; unpicklable sweeps fall back to the serial path);
    ``executor="cluster"`` (or ``REPRO_EXECUTOR=cluster``) fans them
    out to socket workers instead (:mod:`repro.core.executors`) with
    bit-identical rankings.

    The resilience knobs mirror :func:`repro.core.sweep.sweep_map` and
    apply per unique replay: ``retry`` absorbs transient faults;
    ``timeout_s`` bounds parallel jobs; ``raise_on_error=False``
    records configurations depending on a failed replay as ``inf`` in
    ``total_times`` (they can never win the selection but the study
    survives); ``checkpoint_dir`` + ``resume`` make an interrupted
    selection resumable (job names are deterministic).

    ``lattice=True`` switches from per-config replay to the analytic
    lattice kernels (:mod:`repro.core.lattice`): every candidate is
    flattened into parameter arrays and eqs. (1)-(2) evaluate over all
    of them in one vectorized pass -- thousands of configurations per
    array program instead of one simulation each.  Pass a prebuilt
    :class:`~repro.core.lattice.LatticeParams` to skip re-extraction.
    The replay path (the default) remains the reference method;
    rankings agree on the seed configurations but can differ for
    near-ties (see docs/performance.md).
    """
    from .planner import build_replay_plan
    from .sweep import JobFailure, SweepJobError

    if lattice is not False and lattice is not None:
        from .lattice import LatticeParams, evaluate_lattice
        params = (lattice if isinstance(lattice, LatticeParams)
                  else LatticeParams.from_factories(factories))
        return evaluate_lattice(phases, params).choice

    plan = build_replay_plan(tuple(phases), factories)
    reports = plan.execute(
        parallel=parallel, max_workers=max_workers,
        retry=retry, timeout_s=timeout_s, raise_on_error=raise_on_error,
        checkpoint_dir=checkpoint_dir, resume=resume, executor=executor)
    totals = {name: (report.total_time_ch
                     if not isinstance(report, JobFailure)
                     else float("inf"))
              for name, report in reports.items()}
    if all(t == float("inf") for t in totals.values()):
        raise SweepJobError("selection",
                            "every configuration's estimate failed", "")
    best = min(totals, key=totals.get)
    return ConfigurationChoice(best=best, total_times=totals)

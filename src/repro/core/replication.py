"""Phase replication with IOR -- paper section III-B.

Each phase of the I/O abstract model is replayed by one IOR run whose
inputs come straight from the model::

    s  = 1
    b  = weight(ph) per process  (= rep * rs)
    t  = rs(ph)
    NP = np(ph)
    -F   if the phase accesses one file per process
    -c   if the phase uses collective I/O

IOR cannot reproduce strided access (the paper: "NAS BT-IO has an
access mode strided and the IOR is not working in this mode, we have
selected the sequential access mode"), so replication always lays the
phase out sequentially -- the fidelity gap the authors discuss, measured
by the ablation bench.

Phases containing several operation types (MADbench2's phase 3 W-R) are
replicated by one IOR run per type and their bandwidths averaged, as the
paper prescribes -- and as its conclusion blames for the ~50 % error on
such phases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ior import IORParams

from .phases import Phase

#: Minimum bytes each IOR process moves when replaying a phase.  A phase
#: whose per-process share is smaller than this is replayed with an
#: inflated block (a whole number of transfers) so the measurement
#: reaches the target's steady state instead of being absorbed by server
#: write-back caches.  BW_CH is a bandwidth, so inflating the measured
#: volume does not change eq. (2)'s ``weight / BW_CH``.  Set to 0 for
#: the paper-literal cold replay (the ablation bench compares both).
STEADY_STATE_MIN_BLOCK = 192 * 1024 * 1024

#: Inflation never exceeds this many transfers per process: tiny-request
#: phases (HDF5 metadata, attribute writes) would otherwise explode into
#: millions of operations for a few bytes of weight.
MAX_INFLATED_TRANSFERS = 512


@dataclass(frozen=True)
class PhaseReplication:
    """The IOR run(s) that stand in for one phase."""

    phase_id: int
    weight: int
    runs: tuple[IORParams, ...]

    @property
    def kinds(self) -> tuple[str, ...]:
        out: list[str] = []
        for r in self.runs:
            out.extend(k for k in r.kinds if k not in out)
        return tuple(out)


def replication_for_phase(phase: Phase, filename: str | None = None,
                          min_block_bytes: int = STEADY_STATE_MIN_BLOCK) -> PhaseReplication:
    """Build the IOR parameter set(s) replaying ``phase`` (section III-B)."""
    kinds_in_order: list[str] = []
    for op in phase.ops:
        if op.kind not in kinds_in_order:
            kinds_in_order.append(op.kind)

    runs = []
    for kind in kinds_in_order:
        per_kind_rs = [o.request_size for o in phase.ops if o.kind == kind]
        # A unit may mix request sizes (e.g. an HDF5 object header piggy-
        # backed on a data slab); IOR has a single -t, so replicate with
        # the mean size -- same bytes per repetition, same op count.
        rs = max(1, sum(per_kind_rs) // len(per_kind_rs))
        reps = phase.rep * len(per_kind_rs)
        if min_block_bytes and reps * rs < min_block_bytes:
            # Steady-state inflation, capped in transfer count.
            reps = max(reps, min(-(-min_block_bytes // rs),
                                 MAX_INFLATED_TRANSFERS))
        runs.append(IORParams(
            np=phase.np,
            block_size=reps * rs,  # b = per-process share of weight
            transfer_size=rs,  # t = rs
            segments=1,  # s = 1
            file_per_process=phase.unique_file,  # -F
            collective=phase.collective,  # -c
            kinds=(kind,),
            filename=filename or f"ior.phase{phase.phase_id}",
        ))
    return PhaseReplication(phase_id=phase.phase_id, weight=phase.weight,
                            runs=tuple(runs))


def replicate_model(phases: list[Phase]) -> list[PhaseReplication]:
    """Replications for every phase of a model, in phase order."""
    return [replication_for_phase(ph) for ph in phases]

"""Model rescaling across process counts.

The paper observes (Table XI, Figs. 9-10) that BT-IO's model has the
same *shape* for 36, 64 and 121 processes: only the per-process request
size changes (the problem volume is fixed), while the offset functions
keep their form ``rs*idP + rs*np*(ph-1)``.  That regularity makes the
model *predictive*: characterize once at a convenient process count,
rescale to the production count, estimate there -- without tracing the
big run at all.

``rescale_model`` implements the weight-preserving SPMD rescaling:

* each phase keeps its weight (the bytes a phase moves are set by the
  problem, not the process count);
* the per-process request size becomes ``weight / (new_np * rep * k)``
  (k = operations per repetition unit), rounded down to whole etypes;
* offset functions are re-derived by scaling their rs-proportional
  coefficients (exact for the linear idP-proportional forms the paper's
  workloads produce).

The assumptions (fixed total volume, block decomposition, all ranks
participate) are checked; phases that violate them raise
:class:`RescaleError`.
"""

from __future__ import annotations

from fractions import Fraction

from .model import IOModel
from .offsetfn import OffsetFunction
from .phases import Phase, PhaseOp


class RescaleError(ValueError):
    """The model does not satisfy the SPMD rescaling assumptions."""


def rescale_model(model: IOModel, new_np: int, etype_size: int | None = None) -> IOModel:
    """Predict the model of the same application on ``new_np`` processes."""
    if new_np <= 0:
        raise RescaleError(f"new_np must be positive, got {new_np}")
    if etype_size is None:
        etype_size = max((f.etype_size for f in model.metadata.files),
                         default=1)
    new_phases = [
        _rescale_phase(ph, model.np, new_np, etype_size)
        for ph in model.phases
    ]
    return IOModel(
        app_name=f"{model.app_name}@np{new_np}",
        np=new_np,
        metadata=model.metadata,
        phases=new_phases,
        tick_tol=model.tick_tol,
    )


def _rescale_phase(ph: Phase, old_np: int, new_np: int,
                   etype_size: int) -> Phase:
    if ph.np != old_np:
        raise RescaleError(
            f"phase {ph.phase_id} involves {ph.np} of {old_np} processes; "
            "only full-participation phases can be rescaled")
    scale = Fraction(old_np, new_np)
    new_ops = []
    for op in ph.ops:
        new_rs_f = op.request_size * scale
        new_rs = int(new_rs_f) // etype_size * etype_size
        if new_rs <= 0:
            raise RescaleError(
                f"phase {ph.phase_id}: request size {op.request_size} does "
                f"not survive rescaling {old_np}->{new_np}")
        rs_ratio = Fraction(new_rs, op.request_size)
        new_ops.append(PhaseOp(
            op=op.op,
            kind=op.kind,
            request_size=new_rs,
            disp=_scale_int(op.disp, rs_ratio),
            offset_fn=_rescale_fn(op.offset_fn, op.request_size, new_rs,
                                  old_np, new_np),
            abs_offset_fn=_rescale_fn(op.abs_offset_fn, op.request_size,
                                      new_rs, old_np, new_np),
        ))
    return Phase(
        phase_id=ph.phase_id,
        file_group=ph.file_group,
        rep=ph.rep,
        ops=tuple(new_ops),
        ranks=tuple(range(new_np)),
        tick=ph.tick,
        first_time=ph.first_time,
        duration=0.0,  # predictions carry no measured duration
        unique_file=ph.unique_file,
        file_ids=ph.file_ids,
    )


def _scale_int(value: int, scale: Fraction) -> int:
    scaled = value * scale
    return int(scaled)


def _rescale_fn(fn: OffsetFunction, old_rs: int, new_rs: int,
                old_np: int, new_np: int) -> OffsetFunction:
    """Rescale a linear offset function to the new decomposition.

    The slope is the per-rank layout extent, proportional to the request
    size.  The intercept mixes two kinds of positioning the paper's
    workloads exhibit:

    * *volume units* -- multiples of the fixed total ``np*rs`` (BT-IO's
      ``rs*np*(ph-1)``: dump d always starts at the same byte);
    * *slice units* -- a remainder below ``np*rs`` measured in the
      per-process request size (MADbench2's ``+2*rs``: two bins into
      the process's own region).

    The decomposition ``intercept = q*(old_np*old_rs) + r`` keeps the
    q-part invariant (the total volume is preserved) and scales the
    remainder by ``new_rs/old_rs``.  Non-linear (table) functions cannot
    be extrapolated to ranks that did not exist -- they raise.
    """
    if not fn.is_linear:
        raise RescaleError("cannot rescale a non-linear offset function")
    rs_ratio = Fraction(new_rs, old_rs)
    if fn.slope > 0 and fn.intercept < fn.slope:
        # The start lies inside rank 0's own region: pure slice units
        # (MADbench2's ``+2*rs`` / ``+6*rs`` bins).
        new_intercept = fn.intercept * rs_ratio
    else:
        volume = old_np * old_rs
        q, r = divmod(fn.intercept, volume) if volume else (0, fn.intercept)
        new_intercept = q * volume + r * rs_ratio
    return OffsetFunction(slope=fn.slope * rs_ratio,
                          intercept=new_intercept, table=())

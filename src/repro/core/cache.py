"""Memoization of pure simulation results keyed by structural fingerprints.

The paper's methodology re-evaluates one application model against many
I/O configurations (section V), and a configuration sweep re-simulates
the *same* (phase, cluster) pairs over and over: BT-IO's 50 write
phases share one signature, configuration B's three I/O nodes differ
only by name, and ``full_study`` replays every phase once per
candidate configuration.  Because the simulators are pure functions of
their inputs -- a fresh cluster plus a parameter record in, a result
record out -- their outputs can be memoized by value.

The key ingredient is a *structural fingerprint*: every simulated
resource (``Disk``, ``Volume``, ``LocalFS``, ``Link``, nodes, global
filesystems, ``Cluster``) exposes ``fingerprint()`` returning a
hashable tuple of its performance-relevant parameters, excluding
instance names.  Two clusters built by different factories hash equal
iff the simulation cannot distinguish them.

Caches register here by name (``"ior"``, ``"iozone"``, ``"replay"``)
so they can be inspected, cleared or disabled as a group::

    from repro.core import cache

    cache.stats()      # {"ior": {"hits": 40, "misses": 2, "entries": 2}}
    cache.clear_all()  # drop every entry and zero the hit/miss counters
    cache.disable()    # bypass lookups entirely (e.g. for benchmarking)

Hits and misses also feed ``repro.obs`` counters
(``cache_hits_total`` / ``cache_misses_total``, labelled by cache) when
observability is enabled.

When a persistent store is attached (:mod:`repro.store`, via
``store.attach(...)`` or the ``REPRO_CACHE_DIR`` environment variable),
every cache transparently extends to disk: an in-memory miss falls
through to the store (counted in ``disk_hits`` and promoted back into
memory), and every insert writes through, so results survive process
exit and are shared by concurrent ``sweep_map`` workers.  Keys that
have no deterministic byte encoding simply stay in-memory-only.
``clear_all()`` drops the in-memory tier only; the disk tier is managed
through ``repro-io cache clear`` / ``ResultStore.clear``.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro import obs
from repro import store as _store

_MISS = object()  # sentinel: lookup found nothing (None is a valid value)


class SimCache:
    """One named memo table with hit/miss accounting."""

    __slots__ = ("name", "hits", "misses", "disk_hits", "_data")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self._data: dict[Hashable, Any] = {}

    def lookup(self, key: Hashable) -> Any:
        """Return the cached value or the module sentinel ``_MISS``."""
        if not _enabled:
            return _MISS
        value = self._data.get(key, _MISS)
        if value is _MISS:
            disk = _store.active()
            if disk is not None:
                found, stored = disk.get(self.name, key)
                if found:
                    # promote: later lookups in this process stay in memory
                    self._data[key] = stored
                    self.hits += 1
                    self.disk_hits += 1
                    if obs.ACTIVE:
                        obs.inc("cache_hits_total", cache=self.name)
                    return stored
            self.misses += 1
            if obs.ACTIVE:
                obs.inc("cache_misses_total", cache=self.name)
        else:
            self.hits += 1
            if obs.ACTIVE:
                obs.inc("cache_hits_total", cache=self.name)
        return value

    def store(self, key: Hashable, value: Any) -> None:
        if not _enabled:
            return
        self._data[key] = value
        disk = _store.active()
        if disk is not None:
            disk.put(self.name, key, value)

    def clear(self) -> None:
        """Drop every in-memory entry and zero the counters (a fresh
        measurement).  An attached persistent store keeps its entries --
        that is the point of it."""
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._data)


_registry: dict[str, SimCache] = {}
_enabled: bool = True


def cache(name: str) -> SimCache:
    """Get (or create) the named cache."""
    c = _registry.get(name)
    if c is None:
        c = _registry[name] = SimCache(name)
    return c


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Turn memoization back on (entries cached earlier are kept)."""
    global _enabled
    _enabled = True


def disable(clear: bool = True) -> None:
    """Bypass every cache; by default also drop current entries."""
    global _enabled
    _enabled = False
    if clear:
        clear_all()


def clear_all() -> None:
    for c in _registry.values():
        c.clear()


def stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counts per cache, for reports and tests.

    ``disk_hits`` counts the subset of ``hits`` served by the attached
    persistent store (always 0 when no store is attached).
    """
    return {
        name: {"hits": c.hits, "misses": c.misses, "entries": len(c),
               "disk_hits": c.disk_hits}
        for name, c in sorted(_registry.items())
    }


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

#: Factory object -> fingerprint of the cluster it builds.  Building a
#: cluster is cheap but not free; sweeps call the same factory hundreds
#: of times, so the fingerprint is derived once per factory object.
_factory_fps: dict[Any, Hashable] = {}


def platform_fingerprint(platform: Any) -> Hashable | None:
    """Structural fingerprint of a platform, or None if it has none.

    Platforms without a ``fingerprint()`` method (e.g. ad-hoc test
    doubles) simply opt out of memoization.
    """
    fp = getattr(platform, "fingerprint", None)
    if fp is None:
        return None
    return fp()


def factory_fingerprint(factory: Callable[[], Any]) -> Hashable | None:
    """Fingerprint of the cluster a factory builds, memoized per factory."""
    try:
        hit = _factory_fps.get(factory, _MISS)
    except TypeError:  # unhashable callable
        return platform_fingerprint(factory())
    if hit is not _MISS:
        return hit
    fp = platform_fingerprint(factory())
    _factory_fps[factory] = fp
    return fp

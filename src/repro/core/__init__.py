"""The paper's contribution: the application I/O abstract model.

Pipeline: trace (``repro.tracer``) -> local access patterns (``lap``)
-> I/O phases (``phases``) -> model (``model``) -> IOR replication
(``replication``) -> time/usage/error estimation (``estimate``) -- with
``pipeline`` wiring the stages and ``patterns`` exporting the spatial /
temporal global access patterns of the paper's figures.
"""

from . import cache
from .estimate import (
    ClusterFactory,
    ConfigurationChoice,
    EstimateReport,
    MeasureReport,
    PhaseEstimate,
    PhaseMeasurement,
    absolute_error,
    estimate_model,
    estimate_phase,
    measure_phases,
    peak_bandwidth,
    relative_error,
    select_configuration,
    system_usage,
)
from .lap import LAPEntry, LAPOp, compress_burst, expand_entry, extract_laps, split_bursts
from .model import IOModel, models_equivalent
from .offsetfn import OffsetFunction, fit_offsets
from .patterns import (
    PatternPoint,
    ascii_plot,
    global_access_pattern,
    spatial_pattern,
    temporal_pattern,
    to_csv,
)
from .phases import (
    DEFAULT_TICK_TOL,
    Phase,
    PhaseOp,
    file_groups_from_metadata,
    identify_phases,
    merge_adjacent_phases,
)
from .pipeline import (
    Evaluation,
    EvaluationRow,
    characterize_app,
    characterize_peaks_for,
    estimate_on,
    evaluate,
    full_study,
    measure_on,
)
from .replayer import ReplayResult, estimate_phase_replayed, replay_phase
from .sweep import sweep_map
from .replication import (
    PhaseReplication,
    STEADY_STATE_MIN_BLOCK,
    replicate_model,
    replication_for_phase,
)
from .rescale import RescaleError, rescale_model
from .validate import Finding, ValidationReport, audit, validate_model
from .synthesis import (
    SynthesisError,
    replay_model,
    synthesize_program,
)
from .signatures import (
    PhaseSignature,
    classify_model,
    classify_phase,
    dominant_signature,
    signature_histogram,
    similarity,
)

__all__ = [
    "ClusterFactory",
    "cache",
    "sweep_map",
    "ConfigurationChoice",
    "DEFAULT_TICK_TOL",
    "EstimateReport",
    "Evaluation",
    "EvaluationRow",
    "IOModel",
    "LAPEntry",
    "LAPOp",
    "MeasureReport",
    "OffsetFunction",
    "PatternPoint",
    "Phase",
    "PhaseEstimate",
    "PhaseMeasurement",
    "PhaseOp",
    "PhaseReplication",
    "PhaseSignature",
    "ReplayResult",
    "RescaleError",
    "STEADY_STATE_MIN_BLOCK",
    "absolute_error",
    "classify_model",
    "classify_phase",
    "ascii_plot",
    "characterize_app",
    "characterize_peaks_for",
    "compress_burst",
    "estimate_model",
    "estimate_on",
    "estimate_phase",
    "evaluate",
    "expand_entry",
    "extract_laps",
    "file_groups_from_metadata",
    "fit_offsets",
    "full_study",
    "global_access_pattern",
    "identify_phases",
    "measure_on",
    "measure_phases",
    "merge_adjacent_phases",
    "models_equivalent",
    "peak_bandwidth",
    "relative_error",
    "dominant_signature",
    "estimate_phase_replayed",
    "replay_phase",
    "replicate_model",
    "replication_for_phase",
    "rescale_model",
    "signature_histogram",
    "similarity",
    "Finding",
    "SynthesisError",
    "ValidationReport",
    "audit",
    "replay_model",
    "synthesize_program",
    "validate_model",
    "select_configuration",
    "spatial_pattern",
    "split_bursts",
    "system_usage",
    "temporal_pattern",
    "to_csv",
]

"""Inference of f(initOffset) -- the per-process initial-offset expression.

Processes of one phase access "similar" patterns whose only difference
is where each starts (Table I: simLAP "where the initOffset can be
different").  The paper expresses the start as a function of the MPI
rank, e.g. MADbench2's ``idP * 8 * 32MB`` (Table VIII) or BT-IO's
``rs*idP + rs*(ph-1) + rs*(np-1)*(ph-1)`` (Table XI).

Both are linear in ``idP``; :func:`fit_offsets` recovers the exact
integer coefficients ``initOffset = slope * idP + intercept`` when one
exists (and degrades to a lookup table otherwise).  ``render`` can
re-express the coefficients in units of a phase's request size, which
reproduces the paper's formula style.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

try:  # optional fast path for fit_offsets_arrays
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.tracer.columns import numpy_enabled


@dataclass(frozen=True)
class OffsetFunction:
    """``f(initOffset)``: either an exact linear form or a table."""

    slope: Fraction | None  # bytes (or etype units) per rank
    intercept: Fraction | None
    table: tuple[tuple[int, int], ...] = ()  # fallback: (idP, offset) pairs

    @property
    def is_linear(self) -> bool:
        return self.slope is not None

    def __call__(self, rank: int) -> int:
        if self.is_linear:
            val = self.slope * rank + self.intercept
            if val.denominator != 1:
                raise ValueError(f"offset function non-integral at rank {rank}")
            return int(val)
        for r, off in self.table:
            if r == rank:
                return off
        raise KeyError(f"rank {rank} not in offset table")

    def expression(self, rs: int | None = None, rs_label: str = "rs") -> str:
        """Human-readable form; factors through ``rs`` when it divides both
        coefficients (paper style: ``idP * 8 * 32MB``)."""
        if not self.is_linear:
            return "table(" + ", ".join(f"{r}:{o}" for r, o in self.table) + ")"
        a, b = self.slope, self.intercept
        if rs and rs > 0 and a.denominator == 1 and b.denominator == 1 \
                and int(a) % rs == 0 and int(b) % rs == 0:
            ka, kb = int(a) // rs, int(b) // rs
            parts = []
            if ka:
                parts.append(f"idP * {ka} * {rs_label}" if ka != 1 else f"idP * {rs_label}")
            if kb:
                sign = "+" if kb > 0 else "-"
                parts.append(f"{sign} {abs(kb)} * {rs_label}")
            return " ".join(parts) if parts else "0"
        parts = []
        if a:
            parts.append(f"idP * {a}")
        if b or not parts:
            if parts:
                sign = "+" if b >= 0 else "-"
                parts.append(f"{sign} {abs(b)}")
            else:
                parts.append(str(b))
        return " ".join(parts)


def fit_offsets(pairs: Mapping[int, int] | Sequence[tuple[int, int]]) -> OffsetFunction:
    """Fit ``offset = slope*idP + intercept`` exactly over (rank, offset) pairs.

    Returns a linear :class:`OffsetFunction` when every pair satisfies
    one line exactly (the common SPMD case); otherwise a table fallback.
    A single pair fits the constant line through it.
    """
    items = sorted(pairs.items() if isinstance(pairs, Mapping) else pairs)
    if not items:
        raise ValueError("need at least one (rank, offset) pair")
    if len(items) == 1:
        r0, o0 = items[0]
        return OffsetFunction(slope=Fraction(0), intercept=Fraction(o0),
                              table=tuple(items))
    (r0, o0), (r1, o1) = items[0], items[1]
    if r1 == r0:
        return OffsetFunction(slope=None, intercept=None, table=tuple(items))
    # exactness by integer cross-multiplication -- no Fraction arithmetic
    # in the loop: (r, o) is on the line through (r0, o0), (r1, o1) iff
    # (o - o0) * (r1 - r0) == (o1 - o0) * (r - r0)
    dr, do = r1 - r0, o1 - o0
    for r, o in items:
        if (o - o0) * dr != do * (r - r0):
            return OffsetFunction(slope=None, intercept=None, table=tuple(items))
    slope = Fraction(do, dr)
    intercept = Fraction(o0) - slope * r0
    return OffsetFunction(slope=slope, intercept=intercept, table=tuple(items))


#: Below this many pairs the ndarray construction/lexsort overhead
#: exceeds the whole pure-Python fit (measured ~3x slower at n=31), so
#: small fits -- one per phase op, the _make_phase hot path -- stay pure.
_NUMPY_MIN_N = 128


def fit_offsets_arrays(ranks: Sequence[int],
                       offsets: Sequence[int]) -> OffsetFunction:
    """:func:`fit_offsets` over parallel rank/offset arrays.

    Vectorizes the exactness check with numpy when the pair count is
    large enough to amortize array setup (``_NUMPY_MIN_N``) and the
    products stay comfortably inside int64 (trace offsets are file
    offsets, so an overflow means petabyte-scale files times thousands
    of ranks -- checked anyway, with a fallback to exact Python
    integers).  Both paths sort pairs the same way, so the fitted
    function and its table are identical whichever path runs.
    """
    n = len(ranks)
    if n > 2 and n >= _NUMPY_MIN_N and numpy_enabled():
        try:
            r = np.asarray(ranks, dtype=np.int64)
            o = np.asarray(offsets, dtype=np.int64)
        except OverflowError:
            return fit_offsets(list(zip(ranks, offsets)))
        order = np.lexsort((o, r))
        r = r[order]
        o = o[order]
        r0, o0 = int(r[0]), int(o[0])
        r1, o1 = int(r[1]), int(o[1])
        if r1 != r0:
            dr, do = r1 - r0, o1 - o0
            max_o = int(np.abs(o - o0).max())
            max_r = int(np.abs(r - r0).max())
            if (max(max_o * abs(dr), abs(do) * max_r) < 2 ** 62
                    and bool(((o - o0) * dr == do * (r - r0)).all())):
                slope = Fraction(do, dr)
                intercept = Fraction(o0) - slope * r0
                return OffsetFunction(slope=slope, intercept=intercept,
                                      table=tuple(zip(r.tolist(), o.tolist())))
        # duplicate first rank, possible overflow, or non-linear: the
        # exact Python path settles it
        return fit_offsets(list(zip(r.tolist(), o.tolist())))
    return fit_offsets(list(zip(ranks, offsets)))

"""Concurrent, fault-tolerant configuration sweeps.

The estimation stage is embarrassingly parallel across configurations:
each ``estimate_on``/``estimate_model`` call is a pure CPU-bound
function of (model, cluster factory) with no shared state.
:func:`sweep_map` fans those calls out over a pluggable *executor*
backend (:mod:`repro.core.executors`):

* ``serial`` -- in-process, one job at a time;
* ``pool`` -- a ``ProcessPoolExecutor`` on this machine (what
  ``parallel=True`` selects);
* ``cluster`` -- socket master/worker across machines
  (``executor="cluster"`` or ``REPRO_EXECUTOR=cluster``).

All three are conforming: same jobs, bit-identical result dicts.  The
backend only runs jobs; everything below is backend-independent and
lives here.

Resilience features (all opt-in, all composable):

* **error policy** -- a failing job is captured with its id and full
  traceback.  ``raise_on_error=True`` (the default) raises a
  :class:`SweepJobError` naming the job; ``raise_on_error=False``
  stores a :class:`JobFailure` in the result dict instead, so one bad
  configuration cannot sink a 50-configuration study.  Failures are
  counted in the ``sweep_job_failures_total`` obs metric either way.
* **retry** -- a :class:`~repro.faults.resilience.RetryPolicy` re-runs
  a job on its retryable (transient-fault) exceptions with bounded
  exponential backoff, inside whichever process runs the job.  The
  cluster backend additionally reads ``max_attempts`` as its requeue
  budget for jobs stranded by worker deaths.
* **timeout** -- ``timeout_s`` bounds each job's wall-clock time on
  the pool and cluster backends (the job is recorded as a timed-out
  :class:`JobFailure`); the serial path treats it as advisory (a
  cooperative single process cannot interrupt itself safely).
* **checkpointing** -- with ``checkpoint_dir`` every completed job's
  result is pickled to ``<dir>/<job>.ckpt`` via an atomic
  write-temp-then-rename, and ``resume=True`` loads those instead of
  recomputing, so a sweep killed mid-flight resumes bit-identically
  on any backend.

Requirements and fallbacks:

* pool/cluster jobs (the function and every argument) must be
  picklable -- cluster factories defined at module level qualify, test
  lambdas do not.  A sweep whose jobs cannot be serialized degrades to
  the serial path (with checkpoint/retry/error handling intact), so
  ``parallel=True`` is always safe to pass;
* memo caches (:mod:`repro.core.cache`) live per process: workers
  start cold (or warm from the shared :mod:`repro.store`) and their
  in-memory insertions are not merged back;
* ``repro.obs`` spans recorded inside pool/cluster workers are lost --
  observability of parallel sweeps happens at the sweep boundary
  (dispatch latency, queue depth, bytes on the wire), not per job.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import obs
from repro.faults.resilience import RetryPolicy
from repro.ioutil import atomic_write_bytes

from .executors import Executor, SerialExecutor, resolve_executor
from .executors.base import (  # re-exported: historical home of these
    JobFailure,
    SweepJobError,
    job_failure as _failure,
    run_job as _run_job,
)

__all__ = [
    "sweep_map", "JobFailure", "SweepJobError", "checkpoint_path",
    "CHAOS_KILL_ENV", "CHAOS_EXIT_CODE",
]

#: Chaos hook (used by the CI kill-and-resume smoke test): when set and
#: a checkpoint directory is active, the process hard-exits with this
#: code after ``REPRO_CHAOS_KILL_AFTER`` checkpoints have been written.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_AFTER"
CHAOS_EXIT_CODE = 17


# -- checkpoint store ----------------------------------------------------------

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def checkpoint_path(directory: str | Path, name: str) -> Path:
    """Where job ``name``'s result checkpoint lives (stable per name)."""
    digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
    safe = _SAFE.sub("_", name)[:80] or "job"
    return Path(directory) / f"{safe}.{digest}.ckpt"


def _store_checkpoint(directory: Path, name: str, result: Any) -> None:
    atomic_write_bytes(checkpoint_path(directory, name),
                       pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


def _load_checkpoints(directory: Path, jobs: Mapping[str, tuple]) -> dict:
    done: dict[str, Any] = {}
    for name in jobs:
        path = checkpoint_path(directory, name)
        if path.exists():
            with path.open("rb") as f:
                done[name] = pickle.load(f)
    return done


class _ChaosKiller:
    """Counts checkpoint writes and hard-exits at the configured one."""

    def __init__(self):
        self.limit = int(os.environ.get(CHAOS_KILL_ENV, "0") or "0")
        self.written = 0

    def note_checkpoint(self) -> None:
        self.written += 1
        if self.limit and self.written >= self.limit:
            os._exit(CHAOS_EXIT_CODE)


# -- error policy --------------------------------------------------------------

def _resolve(name: str, failure: JobFailure | None, result: Any,
             raise_on_error: bool) -> Any:
    if failure is None:
        return result
    if raise_on_error:
        raise SweepJobError(name, failure.error, failure.traceback)
    return failure


def sweep_map(fn: Callable, jobs: Mapping[str, tuple], parallel: bool = False,
              max_workers: int | None = None, *,
              raise_on_error: bool = True,
              retry: RetryPolicy | None = None,
              timeout_s: float | None = None,
              checkpoint_dir: str | Path | None = None,
              resume: bool = False,
              executor: str | Executor | None = None) -> dict[str, Any]:
    """Apply ``fn(*args)`` to every ``{name: args}`` job; dict of results.

    Results preserve the jobs' insertion order regardless of which
    backend ran them or in what order they completed.  The backend is
    chosen by ``executor`` (a name or an
    :class:`~repro.core.executors.base.Executor` instance), falling
    back to the ``REPRO_EXECUTOR`` environment variable and then to
    the ``parallel`` flag; a zero-or-one-job sweep always runs
    serially.  See the module docstring for the resilience knobs; with
    ``raise_on_error=False`` failed jobs appear as (falsy)
    :class:`JobFailure` values in the returned dict.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True needs a checkpoint_dir")
    ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else None
    done: dict[str, Any] = {}
    if ckpt is not None:
        ckpt.mkdir(parents=True, exist_ok=True)
        if resume:
            done = _load_checkpoints(ckpt, jobs)
            if obs.ACTIVE and done:
                obs.inc("sweep_jobs_resumed_total", amount=len(done))
    todo = {name: args for name, args in jobs.items() if name not in done}
    chaos = _ChaosKiller() if ckpt is not None else None

    backend = resolve_executor(executor, parallel)
    if len(todo) <= 1 and not isinstance(backend, SerialExecutor):
        backend = SerialExecutor()  # fan-out cost without fan-out benefit

    fresh: dict[str, Any] = {}
    for name, failure, result in backend.run(fn, todo, retry=retry,
                                             timeout_s=timeout_s,
                                             max_workers=max_workers):
        if failure is None and ckpt is not None:
            _store_checkpoint(ckpt, name, result)
            chaos.note_checkpoint()
        fresh[name] = _resolve(name, failure, result, raise_on_error)

    # Insertion order of `jobs`, resumed results included.
    return {name: done[name] if name in done else fresh[name]
            for name in jobs}

"""Concurrent configuration sweeps over worker processes.

The estimation stage is embarrassingly parallel across configurations:
each ``estimate_on``/``estimate_model`` call is a pure CPU-bound
function of (model, cluster factory) with no shared state.  With
``parallel=True`` the sweep fans those calls out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Requirements and fallbacks:

* jobs (the function and every argument) must be picklable -- cluster
  factories defined at module level qualify, test lambdas do not.  A
  sweep whose jobs cannot be pickled silently degrades to the serial
  path, so ``parallel=True`` is always safe to pass;
* memo caches (:mod:`repro.core.cache`) live per process: workers start
  with a (forked) copy and their insertions are not merged back.  The
  parent's caches still serve repeated sweeps;
* ``repro.obs`` spans recorded inside workers are lost -- observability
  of parallel sweeps happens at the sweep boundary, not per job.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
from typing import Any, Callable, Mapping


def sweep_map(fn: Callable, jobs: Mapping[str, tuple], parallel: bool = False,
              max_workers: int | None = None) -> dict[str, Any]:
    """Apply ``fn(*args)`` to every ``{name: args}`` job; dict of results.

    Results preserve the jobs' insertion order.  ``parallel=False`` (or
    a single job, or unpicklable jobs) runs serially in-process.
    """
    if not parallel or len(jobs) <= 1:
        return {name: fn(*args) for name, args in jobs.items()}
    try:
        pickle.dumps((fn, tuple(jobs.values())))
    except Exception:
        return {name: fn(*args) for name, args in jobs.items()}
    workers = max_workers or min(len(jobs), os.cpu_count() or 1)
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {name: pool.submit(fn, *args) for name, args in jobs.items()}
        return {name: fut.result() for name, fut in futures.items()}

"""Concurrent, fault-tolerant configuration sweeps.

The estimation stage is embarrassingly parallel across configurations:
each ``estimate_on``/``estimate_model`` call is a pure CPU-bound
function of (model, cluster factory) with no shared state.  With
``parallel=True`` the sweep fans those calls out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Resilience features (all opt-in, all composable):

* **error policy** -- a failing job is captured with its id and full
  traceback.  ``raise_on_error=True`` (the default) raises a
  :class:`SweepJobError` naming the job; ``raise_on_error=False``
  stores a :class:`JobFailure` in the result dict instead, so one bad
  configuration cannot sink a 50-configuration study.  Failures are
  counted in the ``sweep_job_failures_total`` obs metric either way.
* **retry** -- a :class:`~repro.faults.resilience.RetryPolicy` re-runs
  a job on its retryable (transient-fault) exceptions with bounded
  exponential backoff, serially in-process or inside the worker.
* **timeout** -- ``timeout_s`` bounds each job's wall-clock time.  It
  is enforced on the parallel path (the future is cancelled and the
  job recorded as a timed-out :class:`JobFailure`); the serial path
  treats it as advisory (a cooperative single process cannot interrupt
  itself safely).
* **checkpointing** -- with ``checkpoint_dir`` every completed job's
  result is pickled to ``<dir>/<job>.ckpt`` via an atomic
  write-temp-then-rename, and ``resume=True`` loads those instead of
  recomputing, so a sweep killed mid-flight resumes bit-identically.

Requirements and fallbacks:

* parallel jobs (the function and every argument) must be picklable --
  cluster factories defined at module level qualify, test lambdas do
  not.  A sweep whose jobs cannot be pickled degrades to the serial
  path (with checkpoint/retry/error handling intact), so
  ``parallel=True`` is always safe to pass;
* memo caches (:mod:`repro.core.cache`) live per process: workers start
  with a (forked) copy and their insertions are not merged back.  The
  parent's caches still serve repeated sweeps;
* ``repro.obs`` spans recorded inside workers are lost -- observability
  of parallel sweeps happens at the sweep boundary, not per job.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
import re
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import obs
from repro.faults.resilience import RetryPolicy, retry_call
from repro.ioutil import atomic_write_bytes

#: Chaos hook (used by the CI kill-and-resume smoke test): when set and
#: a checkpoint directory is active, the process hard-exits with this
#: code after ``REPRO_CHAOS_KILL_AFTER`` checkpoints have been written.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_AFTER"
CHAOS_EXIT_CODE = 17


@dataclass
class JobFailure:
    """A job that did not produce a result (kept in the result dict)."""

    name: str
    error: str
    traceback: str = ""
    timed_out: bool = False

    def __bool__(self) -> bool:  # failures are falsy: filter with `if v`
        return False


class SweepJobError(RuntimeError):
    """A sweep job failed under ``raise_on_error=True``."""

    def __init__(self, name: str, error: str, tb: str):
        super().__init__(
            f"sweep job {name!r} failed: {error}\n"
            f"--- job traceback ---\n{tb}")
        self.job = name
        self.error = error
        self.job_traceback = tb


# -- checkpoint store ----------------------------------------------------------

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def checkpoint_path(directory: str | Path, name: str) -> Path:
    """Where job ``name``'s result checkpoint lives (stable per name)."""
    digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
    safe = _SAFE.sub("_", name)[:80] or "job"
    return Path(directory) / f"{safe}.{digest}.ckpt"


def _store_checkpoint(directory: Path, name: str, result: Any) -> None:
    atomic_write_bytes(checkpoint_path(directory, name),
                       pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


def _load_checkpoints(directory: Path, jobs: Mapping[str, tuple]) -> dict:
    done: dict[str, Any] = {}
    for name in jobs:
        path = checkpoint_path(directory, name)
        if path.exists():
            with path.open("rb") as f:
                done[name] = pickle.load(f)
    return done


class _ChaosKiller:
    """Counts checkpoint writes and hard-exits at the configured one."""

    def __init__(self):
        self.limit = int(os.environ.get(CHAOS_KILL_ENV, "0") or "0")
        self.written = 0

    def note_checkpoint(self) -> None:
        self.written += 1
        if self.limit and self.written >= self.limit:
            os._exit(CHAOS_EXIT_CODE)


# -- zero-copy trace sharing ---------------------------------------------------

def _share_trace_args(jobs: Mapping[str, tuple]) -> tuple[dict, list]:
    """Swap TraceColumns arguments for shared-memory handles.

    Each distinct columns object is published once
    (:mod:`repro.tracer.shm`); every job referencing it gets the same
    tiny handle, so a parallel characterization sweep ships the trace
    to workers without pickling it per process.  Returns the original
    mapping untouched (and no handles) when nothing is substitutable.
    """
    from repro.tracer import shm as _shm
    from repro.tracer.columns import TraceColumns

    if not _shm.shm_available():
        return dict(jobs), []
    shared: dict[int, Any] = {}
    handles: list[Any] = []
    out: dict[str, tuple] = {}
    changed = False
    for name, args in jobs.items():
        new_args = []
        for a in args:
            if isinstance(a, TraceColumns):
                handle = shared.get(id(a))
                if handle is None:
                    handle = shared[id(a)] = _shm.share_columns(a)
                    handles.append(handle)
                new_args.append(handle)
                changed = True
            else:
                new_args.append(a)
        out[name] = tuple(new_args)
    if not changed:
        return dict(jobs), []
    return out, handles


def _release_shared(handles: list) -> None:
    if not handles:
        return
    from repro.tracer import shm as _shm

    for handle in handles:
        _shm.release(handle)


def _attach_shared_args(args: tuple) -> tuple:
    """Worker-side inverse of :func:`_share_trace_args`."""
    from repro.tracer.shm import SharedColumns, attach_columns

    if not any(isinstance(a, SharedColumns) for a in args):
        return args
    return tuple(attach_columns(a) if isinstance(a, SharedColumns) else a
                 for a in args)


# -- job execution -------------------------------------------------------------

def _run_job(fn: Callable, args: tuple, retry: RetryPolicy | None,
             store_root: str | None = None) -> Any:
    """Worker-side body: one job, optionally under a retry policy.

    ``store_root`` re-attaches the parent's persistent result store in
    spawned workers (forked ones inherit it); shared-memory trace
    handles in ``args`` are materialized back into columns here.
    """
    if store_root is not None:
        from repro import store as _result_store

        if _result_store.active() is None:
            _result_store.attach(store_root)
    args = _attach_shared_args(args)
    if retry is None:
        return fn(*args)
    return retry_call(fn, *args, policy=retry)


def _failure(name: str, exc: BaseException,
             timed_out: bool = False) -> JobFailure:
    if obs.ACTIVE:
        obs.inc("sweep_job_failures_total", job=name)
    return JobFailure(name=name, error=repr(exc),
                      traceback=traceback.format_exc(), timed_out=timed_out)


def _resolve(name: str, failure: JobFailure | None, result: Any,
             raise_on_error: bool) -> Any:
    if failure is None:
        return result
    if raise_on_error:
        raise SweepJobError(name, failure.error, failure.traceback)
    return failure


def sweep_map(fn: Callable, jobs: Mapping[str, tuple], parallel: bool = False,
              max_workers: int | None = None, *,
              raise_on_error: bool = True,
              retry: RetryPolicy | None = None,
              timeout_s: float | None = None,
              checkpoint_dir: str | Path | None = None,
              resume: bool = False) -> dict[str, Any]:
    """Apply ``fn(*args)`` to every ``{name: args}`` job; dict of results.

    Results preserve the jobs' insertion order.  ``parallel=False`` (or
    a single job, or unpicklable jobs) runs serially in-process.  See
    the module docstring for the resilience knobs; with
    ``raise_on_error=False`` failed jobs appear as (falsy)
    :class:`JobFailure` values in the returned dict.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True needs a checkpoint_dir")
    ckpt = Path(checkpoint_dir) if checkpoint_dir is not None else None
    done: dict[str, Any] = {}
    if ckpt is not None:
        ckpt.mkdir(parents=True, exist_ok=True)
        if resume:
            done = _load_checkpoints(ckpt, jobs)
            if obs.ACTIVE and done:
                obs.inc("sweep_jobs_resumed_total", amount=len(done))
    todo = {name: args for name, args in jobs.items() if name not in done}
    chaos = _ChaosKiller() if ckpt is not None else None

    use_parallel = parallel and len(todo) > 1
    shared_handles: list = []
    store_root: str | None = None
    if use_parallel:
        # Publish any TraceColumns argument to shared memory first: the
        # picklability gate then checks the cheap handles, not the trace.
        substituted, shared_handles = _share_trace_args(todo)
        try:
            pickle.dumps((fn, tuple(substituted.values()), retry))
            todo = substituted
        except Exception:
            use_parallel = False
            _release_shared(shared_handles)
            shared_handles = []
        else:
            from repro import store as _result_store

            active = _result_store.active()
            store_root = str(active.root) if active is not None else None

    fresh: dict[str, Any] = {}
    if not use_parallel:
        for name, args in todo.items():
            failure, result = None, None
            try:
                result = _run_job(fn, args, retry)
            except Exception as exc:
                failure = _failure(name, exc)
            if failure is None and ckpt is not None:
                _store_checkpoint(ckpt, name, result)
                chaos.note_checkpoint()
            fresh[name] = _resolve(name, failure, result, raise_on_error)
    else:
        workers = max_workers or min(len(todo), os.cpu_count() or 1)
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {name: pool.submit(_run_job, fn, args, retry,
                                             store_root)
                           for name, args in todo.items()}
                for name, fut in futures.items():
                    failure, result = None, None
                    try:
                        result = fut.result(timeout=timeout_s)
                    except concurrent.futures.TimeoutError as exc:
                        fut.cancel()
                        failure = _failure(name, exc, timed_out=True)
                    except Exception as exc:
                        failure = _failure(name, exc)
                    if failure is None and ckpt is not None:
                        _store_checkpoint(ckpt, name, result)
                        chaos.note_checkpoint()
                    fresh[name] = _resolve(name, failure, result,
                                           raise_on_error)
        finally:
            _release_shared(shared_handles)

    # Insertion order of `jobs`, resumed results included.
    return {name: done[name] if name in done else fresh[name]
            for name in jobs}

"""Model quality assurance: does a model fully account for its trace?

Phase extraction is a lossy summarization; before a model is shipped to
size production systems, it should be audited against the trace it came
from.  :func:`validate_model` checks:

* **byte coverage** -- the sum of phase weights equals the traced bytes
  (nothing dropped, nothing double-counted);
* **operation coverage** -- every traced operation count is represented
  by some phase's ``np * rep`` budget, per routine;
* **offset consistency** -- each phase's f(initOffset) reproduces the
  initial offset actually observed for every member rank;
* **ordering** -- phase ids follow virtual start time.

Returns a :class:`ValidationReport` listing any findings; an empty
report means the model is a faithful summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.tracer.hooks import TraceBundle

from .model import IOModel


@dataclass(frozen=True)
class Finding:
    """One validation issue."""

    severity: str  # "error" | "warning"
    where: str  # phase id / "model"
    message: str


@dataclass
class ValidationReport:
    """Outcome of a model audit."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def describe(self) -> str:
        if not self.findings:
            return "model validates cleanly against its trace"
        return "\n".join(f"[{f.severity}] {f.where}: {f.message}"
                         for f in self.findings)

    def _add(self, severity: str, where: str, message: str) -> None:
        self.findings.append(Finding(severity, where, message))


def validate_model(model: IOModel, bundle: TraceBundle) -> ValidationReport:
    """Audit ``model`` against the trace it was extracted from."""
    report = ValidationReport()

    # Byte coverage.
    traced = bundle.total_bytes
    modeled = model.total_weight
    if modeled != traced:
        report._add("error", "model",
                    f"phase weights sum to {modeled} bytes but the trace "
                    f"moved {traced}")

    # Operation counts per routine.
    traced_ops: dict[str, int] = {}
    for rec in bundle.records:
        traced_ops[rec.op] = traced_ops.get(rec.op, 0) + 1
    modeled_ops: dict[str, int] = {}
    for ph in model.phases:
        for op in ph.ops:
            modeled_ops[op.op] = modeled_ops.get(op.op, 0) + ph.np * ph.rep
    for routine in sorted(set(traced_ops) | set(modeled_ops)):
        t, m = traced_ops.get(routine, 0), modeled_ops.get(routine, 0)
        if t != m:
            report._add("error", "model",
                        f"{routine}: trace has {t} operations, phases "
                        f"account for {m}")

    # Offset functions reproduce the observed initial offsets.
    _check_offsets(model, bundle, report)

    # Temporal ordering.
    times = [ph.first_time for ph in model.phases]
    if times != sorted(times):
        report._add("warning", "model",
                    "phase ids are not ordered by virtual start time")

    if model.np != bundle.nprocs:
        report._add("error", "model",
                    f"model np={model.np} but trace has {bundle.nprocs}")
    return report


def _check_offsets(model: IOModel, bundle: TraceBundle,
                   report: ValidationReport) -> None:
    # Index records by (rank, op, tick) for first-occurrence lookups.
    by_rank_op: dict[tuple[int, str], list] = {}
    for rec in bundle.records:
        by_rank_op.setdefault((rec.rank, rec.op), []).append(rec)

    for ph in model.phases:
        for op in ph.ops:
            for rank in ph.ranks:
                candidates = by_rank_op.get((rank, op.op), [])
                expected = op.abs_offset_fn(rank)
                if not any(rec.abs_offset == expected for rec in candidates):
                    report._add(
                        "error", f"phase {ph.phase_id}",
                        f"f(initOffset) predicts byte {expected} for rank "
                        f"{rank} ({op.op}) but no such access was traced")
                    break


def audit(model: IOModel, bundle: TraceBundle,
          raise_on_error: bool = False) -> ValidationReport:
    """Convenience wrapper; optionally raises on a failed audit."""
    report = validate_model(model, bundle)
    if raise_on_error and not report.ok:
        raise ValueError("model failed validation:\n" + report.describe())
    return report

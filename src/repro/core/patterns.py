"""Spatial and temporal global access patterns (paper Figs. 5/6/7/9/10).

The paper visualizes the I/O abstract model as a 3-D global access
pattern: each traced operation is a point (tick, process, file offset)
with its request size, colored by phase.  This module produces those
series from a trace + model so the benches and examples can regenerate
the figures as CSV/ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.tracer.tracefile import TraceRecord

from .model import IOModel
from .phases import Phase


@dataclass(frozen=True)
class PatternPoint:
    """One point of the 3-D global access pattern."""

    tick: int
    rank: int
    offset: int  # absolute byte offset
    request_size: int
    kind: str
    phase_id: int | None  # None if the record matched no phase


def _phase_of(rec: TraceRecord, phases: Sequence[Phase], tick_tol: int) -> int | None:
    """The matching phase whose representative tick is nearest the record's.

    A phase spans ``rep * len(ops)`` ticks from its first tick; among the
    phases whose window (padded by ``tick_tol``) contains the record and
    whose operation set matches, the closest one wins -- adjacent phases
    with identical signatures (BT-IO's writes) stay distinct.
    """
    best: tuple[float, int] | None = None
    for ph in phases:
        if rec.rank not in ph.ranks:
            continue
        ops_match = any(o.op == rec.op and o.request_size == rec.request_size
                        for o in ph.ops)
        if not ops_match:
            continue
        span = ph.rep * len(ph.ops)
        if ph.tick - tick_tol <= rec.tick <= ph.tick + span + tick_tol:
            distance = abs(rec.tick - ph.tick)
            if best is None or distance < best[0]:
                best = (distance, ph.phase_id)
    return best[1] if best else None


def global_access_pattern(records: Sequence[TraceRecord], model: IOModel | None = None,
                          tick_tol: int | None = None) -> list[PatternPoint]:
    """The (tick, process, offset) cloud of Figs. 5/7/9/10."""
    phases = model.phases if model else []
    tol = tick_tol if tick_tol is not None else (model.tick_tol if model else 16)
    points = []
    for rec in sorted(records, key=lambda r: (r.tick, r.rank)):
        points.append(PatternPoint(
            tick=rec.tick,
            rank=rec.rank,
            offset=rec.abs_offset,
            request_size=rec.request_size,
            kind=rec.kind,
            phase_id=_phase_of(rec, phases, tol) if phases else None,
        ))
    return points


def spatial_pattern(model: IOModel) -> list[dict]:
    """Per-phase spatial rows: f(initOffset), displacement, request size."""
    rows = []
    for ph in model.phases:
        for op in ph.ops:
            rows.append({
                "phase": ph.phase_id,
                "op": op.op,
                "request_size": op.request_size,
                "disp": op.disp,
                "init_offset": op.abs_offset_fn.expression(rs=op.request_size),
                "np": ph.np,
            })
    return rows


def temporal_pattern(model: IOModel) -> list[dict]:
    """Per-phase temporal rows: tick order and repetition counts."""
    return [
        {"phase": ph.phase_id, "tick": ph.tick, "rep": ph.rep,
         "ops": [o.op for o in ph.ops], "np": ph.np}
        for ph in model.phases
    ]


def to_csv(points: Sequence[PatternPoint]) -> str:
    """CSV export of the global access pattern (for external plotting)."""
    lines = ["tick,rank,offset,request_size,kind,phase"]
    for p in points:
        lines.append(f"{p.tick},{p.rank},{p.offset},{p.request_size},"
                     f"{p.kind},{p.phase_id if p.phase_id is not None else ''}")
    return "\n".join(lines) + "\n"


def ascii_plot(points: Sequence[PatternPoint], width: int = 72,
               height: int = 20) -> str:
    """Terminal rendering of offset-vs-tick (W = writes, R = reads).

    A coarse stand-in for the paper's 3-D plots: the x axis is the tick,
    the y axis the absolute file offset; each traced operation leaves a
    W/R mark.
    """
    if not points:
        return "(no I/O)"
    tmin = min(p.tick for p in points)
    tmax = max(p.tick for p in points)
    omax = max(p.offset + p.request_size for p in points)
    grid = [[" "] * width for _ in range(height)]
    for p in points:
        x = int((p.tick - tmin) / max(1, tmax - tmin) * (width - 1))
        y = int(p.offset / max(1, omax) * (height - 1))
        row = height - 1 - y
        mark = "W" if p.kind == "write" else "R"
        if grid[row][x] not in (" ", mark):
            grid[row][x] = "*"  # both kinds hit this cell
        else:
            grid[row][x] = mark
    lines = ["offset"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width + "> tick")
    return "\n".join(lines)

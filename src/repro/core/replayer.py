"""Phase-faithful replayer -- the paper's proposed future benchmark.

The paper's conclusion: "we have observed the increasing of error for
the complex phases as phase 3 of MADbench2, where the error was about
the 50%.  This is because we used ... IOR and this does not allow to
configure complex access patterns.  We are designing [a] benchmark to
replicate the I/O when there are 2 or more operations in a phase to fit
the characterization better and reduce estimation error."

:class:`PhaseReplayer` is that benchmark: it replays a phase's exact
repeating unit -- every operation in order, with its own request size,
displacement and per-rank initial offset from the model's
``f(initOffset)`` -- instead of one IOR run per operation type with
averaged bandwidths.  For single-operation phases it degenerates to the
IOR behaviour (same layout, same sizes), so it can replace IOR wholesale
in the estimation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.simmpi.context import RankContext
from repro.simmpi.engine import Engine, Platform
from repro.simmpi.fileio import IOEvent

from .phases import Phase

MB = 1024 * 1024


@dataclass
class ReplayResult:
    """Bandwidths of one phase replay."""

    phase_id: int
    bw_mb_s: float  # end-to-end phase bandwidth (all ops together)
    bw_by_kind: dict[str, float] = field(default_factory=dict)
    elapsed: float = 0.0


@dataclass(frozen=True)
class _ReplaySpec:
    """Everything a rank needs to re-enact one phase."""

    ops: tuple  # PhaseOp tuple
    rep: int
    collective: bool
    unique_file: bool
    np: int
    filename: str


def _replay_program(ctx: RankContext, spec: _ReplaySpec) -> None:
    fh = ctx.file_open(spec.filename, unique=spec.unique_file)
    ctx.barrier()
    for k in range(spec.rep):
        for op in spec.ops:
            # The model's absolute offset function gives this rank's
            # position; unique files replay rank-relative.
            if spec.unique_file:
                offset = k * max(op.disp, op.request_size)
            else:
                offset = op.abs_offset_fn(ctx.rank) + k * (
                    op.disp if op.disp else op.request_size)
            if op.kind == "write":
                if op.collective:
                    fh.write_at_all(offset, op.request_size)
                else:
                    fh.write_at(offset, op.request_size)
            else:
                if op.collective:
                    fh.read_at_all(offset, op.request_size)
                else:
                    fh.read_at(offset, op.request_size)
    fh.close()
    ctx.barrier()


def replay_phase(phase: Phase, platform: Platform,
                 min_repetitions: int = 1) -> ReplayResult:
    """Re-enact ``phase`` on a (fresh) platform; returns its bandwidths.

    ``min_repetitions`` inflates short phases so the measurement reaches
    the target's steady state (same rationale as the IOR replication's
    STEADY_STATE_MIN_BLOCK).
    """
    spec = _ReplaySpec(
        ops=phase.ops,
        rep=max(phase.rep, min_repetitions),
        collective=phase.collective,
        unique_file=phase.unique_file,
        np=phase.np,
        filename=f"replay.phase{phase.phase_id}",
    )
    events: list[IOEvent] = []
    with obs.span("replay.phase", cat="replay", phase=phase.phase_id,
                  np=phase.np, rep=spec.rep) as sp:
        engine = Engine(phase.np, platform=platform)
        engine.add_io_hook(events.append)
        run = engine.run(_replay_program, spec)
        sp.annotate(events=len(events))

    begin = min(e.time for e in events)
    end = max(e.time + e.duration for e in events)
    total = sum(e.request_size for e in events)
    span = max(end - begin, 1e-12)
    result = ReplayResult(phase_id=phase.phase_id,
                          bw_mb_s=total / MB / span, elapsed=run.elapsed)
    for kind in ("write", "read"):
        evs = [e for e in events if e.kind == kind]
        if not evs:
            continue
        kbegin = min(e.time for e in evs)
        kend = max(e.time + e.duration for e in evs)
        kbytes = sum(e.request_size for e in evs)
        result.bw_by_kind[kind] = kbytes / MB / max(kend - kbegin, 1e-12)
    return result


def estimate_phase_replayed(phase: Phase, cluster_factory,
                            min_repetitions: int = 6) -> float:
    """Time_io(CH) for a phase via the faithful replayer (eq. 2 analogue)."""
    result = replay_phase(phase, cluster_factory(),
                          min_repetitions=min_repetitions)
    return phase.weight / MB / result.bw_mb_s

"""Phase-faithful replayer -- the paper's proposed future benchmark.

The paper's conclusion: "we have observed the increasing of error for
the complex phases as phase 3 of MADbench2, where the error was about
the 50%.  This is because we used ... IOR and this does not allow to
configure complex access patterns.  We are designing [a] benchmark to
replicate the I/O when there are 2 or more operations in a phase to fit
the characterization better and reduce estimation error."

:class:`PhaseReplayer` is that benchmark: it replays a phase's exact
repeating unit -- every operation in order, with its own request size,
displacement and per-rank initial offset from the model's
``f(initOffset)`` -- instead of one IOR run per operation type with
averaged bandwidths.  For single-operation phases it degenerates to the
IOR behaviour (same layout, same sizes), so it can replace IOR wholesale
in the estimation step.

Two fast paths keep sweeps cheap:

* results are memoized by (access-pattern signature, platform
  fingerprint) -- see :mod:`repro.core.cache`;
* ``extrapolate_reps=K`` (opt-in) simulates only the first K
  repetitions of a high-``rep`` phase and closes the rest analytically
  once the per-repetition cost is stationary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.simmpi.context import CoroContext
from repro.simmpi.engine import Engine, Platform
from repro.simmpi.fileio import IOEvent

from . import cache as simcache
from .phases import Phase

MB = 1024 * 1024


@dataclass
class ReplayResult:
    """Bandwidths of one phase replay."""

    phase_id: int
    bw_mb_s: float  # end-to-end phase bandwidth (all ops together)
    bw_by_kind: dict[str, float] = field(default_factory=dict)
    elapsed: float = 0.0


@dataclass(frozen=True)
class _ReplaySpec:
    """Everything a rank needs to re-enact one phase."""

    ops: tuple  # PhaseOp tuple
    rep: int
    collective: bool
    unique_file: bool
    np: int
    filename: str


def _replay_program(ctx: CoroContext, spec: _ReplaySpec):
    fh = yield from ctx.file_open(spec.filename, unique=spec.unique_file)
    yield from ctx.barrier()
    for k in range(spec.rep):
        for op in spec.ops:
            # The model's absolute offset function gives this rank's
            # position; unique files replay rank-relative.
            if spec.unique_file:
                offset = k * max(op.disp, op.request_size)
            else:
                offset = op.abs_offset_fn(ctx.rank) + k * (
                    op.disp if op.disp else op.request_size)
            if op.kind == "write":
                if op.collective:
                    yield from fh.write_at_all(offset, op.request_size)
                else:
                    yield from fh.write_at(offset, op.request_size)
            else:
                if op.collective:
                    yield from fh.read_at_all(offset, op.request_size)
                else:
                    yield from fh.read_at(offset, op.request_size)
    yield from fh.close()
    yield from ctx.barrier()


def _rep_ends(events: list[IOEvent], spec: _ReplaySpec,
              kind: str | None = None) -> list[float]:
    """Per-repetition completion time: T_j = max end over ranks of rep j.

    Each rank executes its operations strictly in order, so a rank's
    j-th repetition is events ``[j*len(ops), (j+1)*len(ops))`` of its
    own (append-ordered) event list.
    """
    nops = len(spec.ops)
    by_rank: dict[int, list[IOEvent]] = {}
    for e in events:
        by_rank.setdefault(e.rank, []).append(e)
    nreps = min(len(evs) // nops for evs in by_rank.values())
    ends = [0.0] * nreps
    for evs in by_rank.values():
        for j in range(nreps):
            unit = evs[j * nops:(j + 1) * nops]
            if kind is not None:
                unit = [e for e in unit if e.kind == kind]
            if unit:
                ends[j] = max(ends[j], max(e.time + e.duration for e in unit))
    return ends


def _stationary_delta(ends: list[float]) -> float | None:
    """Marginal per-repetition cost, or None if it has not settled."""
    if len(ends) < 3:
        return None
    d_last = ends[-1] - ends[-2]
    d_prev = ends[-2] - ends[-3]
    if abs(d_last - d_prev) <= 1e-9 * max(abs(d_last), 1e-30):
        return d_last
    return None


def replay_phase(phase: Phase, platform: Platform,
                 min_repetitions: int = 1,
                 extrapolate_reps: int | None = None,
                 retry: "RetryPolicy | None" = None) -> ReplayResult:
    """Re-enact ``phase`` on a (fresh) platform; returns its bandwidths.

    ``min_repetitions`` inflates short phases so the measurement reaches
    the target's steady state (same rationale as the IOR replication's
    STEADY_STATE_MIN_BLOCK).

    ``extrapolate_reps=K`` (opt-in) simulates only the first K
    repetitions and, if the marginal per-repetition cost is stationary,
    extends the phase span analytically to the full repetition count.
    Phases whose cost has not settled after K repetitions fall back to
    the full simulation.

    ``retry`` (a :class:`~repro.faults.resilience.RetryPolicy`) absorbs
    transient faults injected by an installed
    :class:`~repro.faults.FaultPlan` (``mode="error"`` dropouts): the
    platform's queues are reset and the whole replay re-attempted, up to
    the policy's bound.  Fail-stop faults and data loss still propagate.
    """
    if retry is not None:
        from repro.faults.resilience import retry_call

        def _clean_platform(attempt: int, exc: BaseException) -> None:
            # A failed attempt leaves resource-queue state behind; the
            # retry must start from a quiescent platform to stay
            # deterministic.
            reset = getattr(platform, "reset", None)
            if reset is not None:
                reset()

        return retry_call(replay_phase, phase, platform,
                          policy=retry, on_retry=_clean_platform,
                          min_repetitions=min_repetitions,
                          extrapolate_reps=extrapolate_reps)

    full_rep = max(phase.rep, min_repetitions)
    spec = _ReplaySpec(
        ops=phase.ops,
        rep=full_rep,
        collective=phase.collective,
        unique_file=phase.unique_file,
        np=phase.np,
        filename=f"replay.phase{phase.phase_id}",
    )
    # The memo key is the access-pattern signature -- everything except
    # the filename, which only labels the trace -- plus the platform's
    # structural fingerprint.  BT-IO's 50 equal write phases are one key.
    memo = simcache.cache("replay")
    fp = simcache.platform_fingerprint(platform)
    key = None
    if fp is not None:
        key = (spec.ops, spec.rep, spec.collective, spec.unique_file,
               spec.np, extrapolate_reps, fp)
        hit = memo.lookup(key)
        if hit is not simcache._MISS:
            return ReplayResult(phase_id=phase.phase_id, bw_mb_s=hit.bw_mb_s,
                                bw_by_kind=dict(hit.bw_by_kind),
                                elapsed=hit.elapsed)

    sim_rep = full_rep
    extrapolating = (extrapolate_reps is not None
                     and 3 <= extrapolate_reps < full_rep
                     and len(phase.ops) > 0)
    if extrapolating:
        sim_rep = extrapolate_reps
        spec = _ReplaySpec(ops=spec.ops, rep=sim_rep,
                           collective=spec.collective,
                           unique_file=spec.unique_file, np=spec.np,
                           filename=spec.filename)

    events: list[IOEvent] = []
    with obs.span("replay.phase", cat="replay", phase=phase.phase_id,
                  np=phase.np, rep=spec.rep) as sp:
        engine = Engine(phase.np, platform=platform)
        engine.add_io_hook(events.append)
        run = engine.run(_replay_program, spec)
        sp.annotate(events=len(events))

    if not events:
        # A phase with no I/O (e.g. zero repetitions) replays to nothing;
        # report zero bandwidth instead of tripping over min()/max().
        result = ReplayResult(phase_id=phase.phase_id, bw_mb_s=0.0,
                              elapsed=run.elapsed)
        if key is not None:
            memo.store(key, ReplayResult(phase_id=0, bw_mb_s=0.0,
                                         elapsed=run.elapsed))
        return result

    if extrapolating:
        ends = _rep_ends(events, spec)
        delta = _stationary_delta(ends)
        if delta is None:
            # Not stationary after K reps: run the whole phase on a
            # clean platform (the probe run left queue state behind).
            reset = getattr(platform, "reset", None)
            if reset is not None:
                reset()
            return replay_phase(phase, platform,
                                min_repetitions=min_repetitions,
                                extrapolate_reps=None)
        extra = full_rep - sim_rep
        begin = min(e.time for e in events)
        end = ends[-1] + extra * delta
        total = sum(e.request_size for e in events) * full_rep // sim_rep
        span = max(end - begin, 1e-12)
        result = ReplayResult(phase_id=phase.phase_id,
                              bw_mb_s=total / MB / span, elapsed=run.elapsed)
        for kind in ("write", "read"):
            evs = [e for e in events if e.kind == kind]
            if not evs:
                continue
            kends = _rep_ends(events, spec, kind=kind)
            kdelta = _stationary_delta(kends)
            if kdelta is None:
                kdelta = delta
            kbegin = min(e.time for e in evs)
            kend = kends[-1] + extra * kdelta
            kbytes = sum(e.request_size for e in evs) * full_rep // sim_rep
            result.bw_by_kind[kind] = kbytes / MB / max(kend - kbegin, 1e-12)
    else:
        begin = min(e.time for e in events)
        end = max(e.time + e.duration for e in events)
        total = sum(e.request_size for e in events)
        span = max(end - begin, 1e-12)
        result = ReplayResult(phase_id=phase.phase_id,
                              bw_mb_s=total / MB / span, elapsed=run.elapsed)
        for kind in ("write", "read"):
            evs = [e for e in events if e.kind == kind]
            if not evs:
                continue
            kbegin = min(e.time for e in evs)
            kend = max(e.time + e.duration for e in evs)
            kbytes = sum(e.request_size for e in evs)
            result.bw_by_kind[kind] = kbytes / MB / max(kend - kbegin, 1e-12)

    if key is not None:
        memo.store(key, ReplayResult(phase_id=0, bw_mb_s=result.bw_mb_s,
                                     bw_by_kind=dict(result.bw_by_kind),
                                     elapsed=result.elapsed))
    return result


def estimate_phase_replayed(phase: Phase, cluster_factory,
                            min_repetitions: int = 6,
                            extrapolate_reps: int | None = None) -> float:
    """Time_io(CH) for a phase via the faithful replayer (eq. 2 analogue)."""
    result = replay_phase(phase, cluster_factory(),
                          min_repetitions=min_repetitions,
                          extrapolate_reps=extrapolate_reps)
    if result.bw_mb_s <= 0.0:
        return 0.0
    return phase.weight / MB / result.bw_mb_s

"""Process-pool sweep backend (one machine, many cores).

This is the historical ``sweep_map(parallel=True)`` path moved behind
the executor interface, with the picklability probe fixed: the old code
``pickle.dumps``-ed the *entire* job table once just to decide
pool-vs-serial and threw the bytes away.  Now the job head ``(fn,
retry)`` and each job's arguments are pickled exactly once, and those
same blobs are what the pool dispatches -- workers unpickle them in
:func:`_run_blob_job`.  Anything unpicklable still degrades to the
serial backend, so ``parallel=True`` remains always safe to pass.

TraceColumns arguments are published to shared memory first
(:mod:`repro.tracer.shm`) so the blobs carry tiny handles, not the
trace.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
from typing import Any, Mapping

from repro.faults.resilience import RetryPolicy

from .base import Executor, SerialExecutor, job_failure, run_job

__all__ = ["PoolExecutor"]


def _run_blob_job(head_blob: bytes, args_blob: bytes,
                  store_root: str | None) -> Any:
    """Worker-side body: unpickle the shared head and this job's args."""
    fn, retry = pickle.loads(head_blob)
    args = pickle.loads(args_blob)
    return run_job(fn, args, retry, store_root)


def _share_trace_args(jobs: Mapping[str, tuple]) -> tuple[dict, list]:
    """Swap TraceColumns arguments for shared-memory handles.

    Each distinct columns object is published once
    (:mod:`repro.tracer.shm`); every job referencing it gets the same
    tiny handle, so a parallel characterization sweep ships the trace
    to workers without pickling it per process.  Returns the original
    mapping untouched (and no handles) when nothing is substitutable.
    """
    from repro.tracer import shm as _shm
    from repro.tracer.columns import TraceColumns

    if not _shm.shm_available():
        return dict(jobs), []
    shared: dict[int, Any] = {}
    handles: list[Any] = []
    out: dict[str, tuple] = {}
    changed = False
    for name, args in jobs.items():
        new_args = []
        for a in args:
            if isinstance(a, TraceColumns):
                handle = shared.get(id(a))
                if handle is None:
                    handle = shared[id(a)] = _shm.share_columns(a)
                    handles.append(handle)
                new_args.append(handle)
                changed = True
            else:
                new_args.append(a)
        out[name] = tuple(new_args)
    if not changed:
        return dict(jobs), []
    return out, handles


def _release_shared(handles: list) -> None:
    if not handles:
        return
    from repro.tracer import shm as _shm

    for handle in handles:
        _shm.release(handle)


class PoolExecutor(Executor):
    """ProcessPoolExecutor fan-out with serial fallback."""

    name = "pool"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(self, fn, jobs, *, retry: RetryPolicy | None = None,
            timeout_s: float | None = None, max_workers: int | None = None):
        # Publish any TraceColumns argument to shared memory first: the
        # pickle pass then serializes the cheap handles, not the trace.
        substituted, handles = _share_trace_args(jobs)
        try:
            head_blob = pickle.dumps((fn, retry),
                                     protocol=pickle.HIGHEST_PROTOCOL)
            arg_blobs = {name: pickle.dumps(args,
                                            protocol=pickle.HIGHEST_PROTOCOL)
                         for name, args in substituted.items()}
        except Exception:
            _release_shared(handles)
            yield from SerialExecutor().run(fn, jobs, retry=retry,
                                            timeout_s=timeout_s)
            return

        from repro import store as _result_store

        active = _result_store.active()
        store_root = (str(active.root)
                      if active is not None and active.persistent else None)
        workers = (max_workers or self.max_workers
                   or min(len(jobs), os.cpu_count() or 1))
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers) as pool:
                futures = {name: pool.submit(_run_blob_job, head_blob, blob,
                                             store_root)
                           for name, blob in arg_blobs.items()}
                for name, fut in futures.items():
                    try:
                        result = fut.result(timeout=timeout_s)
                    except concurrent.futures.TimeoutError as exc:
                        fut.cancel()
                        yield name, job_failure(name, exc, timed_out=True), None
                    except Exception as exc:
                        yield name, job_failure(name, exc), None
                    else:
                        yield name, None, result
        finally:
            _release_shared(handles)

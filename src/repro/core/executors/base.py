"""Executor interface shared by every sweep backend.

An executor turns ``{name: args}`` jobs into ``(name, failure, result)``
triples, in whatever order the backend completes them --
:func:`repro.core.sweep.sweep_map` owns everything backend-independent
(checkpoints, resume, chaos hooks, error policy, final ordering), so a
backend only has to run jobs and report outcomes:

* ``failure is None``  -- the job produced ``result``;
* ``failure`` is a :class:`JobFailure` -- the job raised (or timed out,
  or exhausted its requeue budget on the cluster backend) and
  ``result`` is ``None``.

:class:`JobFailure` and :class:`SweepJobError` live here (moved from
``repro.core.sweep``, which re-exports them) so backend modules can use
them without importing the sweep module that imports *them*.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro import obs
from repro.faults.resilience import RetryPolicy, retry_call

__all__ = [
    "JobFailure", "SweepJobError", "Executor", "SerialExecutor",
    "job_failure", "run_job",
]


@dataclass
class JobFailure:
    """A job that did not produce a result (kept in the result dict)."""

    name: str
    error: str
    traceback: str = ""
    timed_out: bool = False

    def __bool__(self) -> bool:  # failures are falsy: filter with `if v`
        return False


class SweepJobError(RuntimeError):
    """A sweep job failed under ``raise_on_error=True``."""

    def __init__(self, name: str, error: str, tb: str):
        super().__init__(
            f"sweep job {name!r} failed: {error}\n"
            f"--- job traceback ---\n{tb}")
        self.job = name
        self.error = error
        self.job_traceback = tb


def job_failure(name: str, exc: BaseException, timed_out: bool = False,
                tb: str | None = None) -> JobFailure:
    """Record and build the failure for one job."""
    if obs.ACTIVE:
        obs.inc("sweep_job_failures_total", job=name)
    return JobFailure(name=name, error=repr(exc),
                      traceback=tb if tb is not None else traceback.format_exc(),
                      timed_out=timed_out)


def run_job(fn: Callable, args: tuple, retry: RetryPolicy | None,
            store_root: str | None = None) -> Any:
    """Worker-side body: one job, optionally under a retry policy.

    ``store_root`` re-attaches the parent's persistent result store in
    spawned workers (forked ones inherit it); shared-memory trace
    handles in ``args`` are materialized back into columns here.
    """
    if store_root is not None:
        from repro import store as _result_store

        if _result_store.active() is None:
            _result_store.attach(store_root)
    args = _attach_shared_args(args)
    if retry is None:
        return fn(*args)
    return retry_call(fn, *args, policy=retry)


def _attach_shared_args(args: tuple) -> tuple:
    """Swap shared-memory trace handles back for real columns."""
    from repro.tracer.shm import SharedColumns, attach_columns

    if not any(isinstance(a, SharedColumns) for a in args):
        return args
    return tuple(attach_columns(a) if isinstance(a, SharedColumns) else a
                 for a in args)


class Executor:
    """Base class for sweep backends (see the module docstring)."""

    name = "?"

    def run(self, fn: Callable, jobs: Mapping[str, tuple], *,
            retry: RetryPolicy | None = None,
            timeout_s: float | None = None,
            max_workers: int | None = None,
            ) -> Iterator[tuple[str, JobFailure | None, Any]]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, one job at a time.  ``timeout_s`` is advisory only:
    a cooperative single process cannot interrupt itself safely."""

    name = "serial"

    def run(self, fn, jobs, *, retry=None, timeout_s=None, max_workers=None):
        for name, args in jobs.items():
            try:
                result = run_job(fn, args, retry)
            except Exception as exc:
                yield name, job_failure(name, exc), None
            else:
                yield name, None, result

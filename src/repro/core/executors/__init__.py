"""Pluggable sweep execution backends.

Every configuration sweep in the repo funnels through
:func:`repro.core.sweep.sweep_map`, which delegates the actual running
of jobs to an *executor*:

=========  ==================================================================
serial     in-process, one job at a time (the always-works baseline)
pool       ``concurrent.futures.ProcessPoolExecutor`` -- one machine,
           many cores, shared-memory trace hand-off
cluster    socket master/worker -- as many machines as you have
           (see :mod:`.cluster` and :mod:`.worker`)
=========  ==================================================================

Selection precedence (:func:`resolve_executor`): an explicit
``executor=`` argument (name or :class:`~.base.Executor` instance)
beats the ``REPRO_EXECUTOR`` environment variable, which beats the
legacy ``parallel`` flag (``True`` -> pool, ``False`` -> serial).  All
three backends are conforming: same jobs in, bit-identical result
dicts out, verified by ``tests/core/test_executors.py``.
"""

from __future__ import annotations

import os

from .base import Executor, JobFailure, SerialExecutor, SweepJobError
from .cluster import ClusterExecutor
from .pool import PoolExecutor

__all__ = [
    "Executor", "SerialExecutor", "PoolExecutor", "ClusterExecutor",
    "JobFailure", "SweepJobError",
    "EXECUTORS", "EXECUTOR_ENV", "get_executor", "resolve_executor",
]

EXECUTOR_ENV = "REPRO_EXECUTOR"

EXECUTORS = {
    "serial": SerialExecutor,
    "pool": PoolExecutor,
    "cluster": ClusterExecutor,
}


def get_executor(name: str) -> Executor:
    """Instantiate a backend by name (raises on unknown names)."""
    try:
        return EXECUTORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; choose from "
            f"{sorted(EXECUTORS)}") from None


def resolve_executor(executor: str | Executor | None,
                     parallel: bool) -> Executor:
    """Apply the arg > ``REPRO_EXECUTOR`` env > ``parallel`` precedence."""
    if isinstance(executor, Executor):
        return executor
    if executor is not None:
        return get_executor(executor)
    env = os.environ.get(EXECUTOR_ENV)
    if env:
        return get_executor(env)
    return PoolExecutor() if parallel else SerialExecutor()

"""Socket sweep worker: ``python -m repro.core.executors.worker``.

A worker *listens*; masters connect to it.  That inversion is what
makes ``repro-io workers launch`` possible: workers are long-lived
(start them once per node), masters are ephemeral (one per
``sweep_map`` call), and a drained worker is just a connection away.

Per-connection protocol (see :mod:`.wire`):

1. First frame must be HELLO (JSON) -- the worker refuses protocol or
   store-schema mismatches with an ERR frame -- or DRAIN, which exits
   the process so ``repro-io workers drain`` works against an idle
   worker.
2. The HELLO's store stanza decides warm-start plumbing: ``shared``
   attaches the master's cache directory (same box / shared
   filesystem), ``writeback`` attaches an in-memory
   :class:`~repro.store.memory.CaptureStore` whose encoded writes ride
   home on every RESULT frame, ``none`` detaches.
3. Then JOB frames are answered with RESULT (payload-encoded result +
   captured store writes) or FAIL (JSON error + traceback; exceptions
   never cross the wire pickled).  A background thread heartbeats
   while jobs run so the master can tell "slow" from "dead".
4. RELEASE ends the session: the worker detaches its store and goes
   back to accepting the next master.  DRAIN exits.

Chaos hook: ``REPRO_CLUSTER_KILL_AFTER=N`` hard-exits the process
instead of sending its N-th RESULT -- the CI cluster-chaos leg uses
this to prove the master requeues and the sweep's output is
bit-identical anyway.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import threading

from repro import store as result_store
from repro.store.memory import CaptureStore

from . import wire
from .base import run_job

#: Chaos hook: hard-exit (CHAOS_EXIT_CODE) instead of sending the N-th
#: result, so the master sees a mid-sweep worker death.
KILL_ENV = "REPRO_CLUSTER_KILL_AFTER"
CHAOS_EXIT_CODE = 17

HEARTBEAT_INTERVAL_S = 0.5


class _Heartbeat:
    """Background HEARTBEAT sender sharing the connection's send lock."""

    def __init__(self, sock: socket.socket, lock: threading.Lock):
        self._sock = sock
        self._lock = lock
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    def _pump(self) -> None:
        while not self._stop.wait(HEARTBEAT_INTERVAL_S):
            try:
                with self._lock:
                    wire.send_frame(self._sock, wire.HEARTBEAT)
            except OSError:
                return  # master gone; the serve loop will notice too

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2 * HEARTBEAT_INTERVAL_S)


def _attach_store(stanza: dict) -> None:
    mode = stanza.get("mode", "none")
    if mode == "shared" and stanza.get("root"):
        result_store.attach(stanza["root"])
    elif mode == "writeback":
        result_store.attach(CaptureStore())
    else:
        result_store.detach()


def _serve_connection(conn: socket.socket, results_sent: list[int]) -> bool:
    """One master session; returns False when the worker should exit."""
    send_lock = threading.Lock()
    first = wire.recv_frame(conn)
    if first is None:
        return True
    ftype, payload = first
    if ftype == wire.DRAIN:
        return False
    if ftype != wire.HELLO:
        wire.send_json(conn, wire.ERR,
                       {"error": f"expected HELLO, got frame type {ftype}"})
        return True
    hello = json.loads(payload.decode("utf-8"))
    refusal = wire.check_hello(hello)
    if refusal is not None:
        wire.send_json(conn, wire.ERR, {"error": refusal})
        return True
    _attach_store(hello.get("store", {}))
    wire.send_json(conn, wire.WELCOME,
                   {"protocol": wire.PROTOCOL_VERSION,
                    "schema": hello["schema"], "pid": os.getpid()})

    kill_after = int(os.environ.get(KILL_ENV, "0") or "0")
    heartbeat = _Heartbeat(conn, send_lock)
    try:
        while True:
            frame = wire.recv_frame(conn)
            if frame is None:
                return True  # master vanished; back to accept()
            ftype, payload = frame
            if ftype == wire.RELEASE:
                return True
            if ftype == wire.DRAIN:
                return False
            if ftype != wire.JOB:
                continue
            name, body = wire.unpack_job(payload)
            try:
                fn, args, retry = wire.decode_payload(body)
                result = run_job(fn, args, retry)
            except Exception as exc:
                import traceback as _tb

                try:
                    with send_lock:
                        wire.send_json(conn, wire.FAIL,
                                       {"name": name, "error": repr(exc),
                                        "traceback": _tb.format_exc()})
                except OSError:
                    return True
                continue
            entries = []
            active = result_store.active()
            if isinstance(active, CaptureStore):
                entries = active.drain()
            if kill_after and results_sent[0] + 1 >= kill_after:
                os._exit(CHAOS_EXIT_CODE)
            try:
                with send_lock:
                    wire.send_frame(conn, wire.RESULT,
                                    wire.encode_payload((name, result,
                                                         entries)))
            except OSError:
                return True
            results_sent[0] += 1
    finally:
        heartbeat.stop()
        result_store.detach()


def serve(host: str, port: int) -> int:
    listener = socket.create_server((host, port))
    bound_host, bound_port = listener.getsockname()[:2]
    print(f"LISTENING {bound_host} {bound_port}", flush=True)
    results_sent = [0]
    while True:
        conn, _addr = listener.accept()
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if not _serve_connection(conn, results_sent):
                return 0
        finally:
            try:
                conn.close()
            except OSError:
                pass


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Socket sweep worker for the cluster executor.")
    parser.add_argument("--listen", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="bind address (port 0 picks a free port; "
                             "the bound address is printed as a "
                             "'LISTENING host port' line)")
    opts = parser.parse_args(argv)
    host, _, port = opts.listen.rpartition(":")
    return serve(host or "127.0.0.1", int(port))


if __name__ == "__main__":
    sys.exit(main())

"""Socket master/worker sweep backend.

The master (this module) is ephemeral -- one lives inside each
``sweep_map`` call -- and *connects out* to long-lived workers
(:mod:`.worker`) that listen on ``host:port`` endpoints.  Endpoints
come from the ``workers=`` argument, the ``REPRO_CLUSTER_WORKERS``
environment variable (comma-separated ``host:port`` list), or
``spawn=N``, which launches N localhost workers for the duration of
the sweep (the zero-config path used by ``executor="cluster"`` when
nothing else is configured).

Scheduling is a single-threaded readiness loop (:mod:`selectors`):
one outstanding job per worker, results gathered as they arrive.
Determinism does not depend on schedule: jobs are pure functions keyed
by name, so any worker count, completion order, or failure schedule
produces bit-identical result dicts (``sweep_map`` restores the jobs'
insertion order at the end).

Fault model:

* **worker death** (connection drop) or **heartbeat silence** longer
  than ``heartbeat_timeout_s``: the in-flight job is requeued to the
  remaining workers.  The requeue budget rides on PR 4's
  :class:`~repro.faults.resilience.RetryPolicy` -- ``retry.max_attempts``
  placements per job (default 3) -- after which the job reports a
  :class:`~repro.core.executors.base.JobFailure`.
* **job timeout** (``timeout_s``): the job is *not* requeued -- it
  mirrors the pool backend's semantics (a timed-out ``JobFailure``)
  and the stuck worker's connection is closed.
* **job exception**: the worker ships ``{name, error, traceback}`` as
  a JSON FAIL frame (post-retry-policy); no requeue, same as serial.
* **all workers gone**: the master finishes the remaining jobs
  serially in-process, so a sweep never dies with its cluster.

Warm starts: ``store_mode="auto"`` shares the master's attached cache
directory with spawned (same-box) workers and falls back to write-back
-- workers capture their store writes in a
:class:`~repro.store.memory.CaptureStore` and return them on RESULT
frames, which the master lands via ``ResultStore.put_encoded`` -- for
explicit endpoints, where a shared filesystem cannot be assumed.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import subprocess
import sys
import time
from collections import deque
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.faults.resilience import RetryPolicy

from . import wire
from .base import Executor, JobFailure, SerialExecutor, job_failure

__all__ = ["ClusterExecutor", "WORKERS_ENV", "parse_endpoints"]

WORKERS_ENV = "REPRO_CLUSTER_WORKERS"

_DEFAULT_SPAWN_CAP = 4


def parse_endpoints(spec: str) -> list[tuple[str, int]]:
    """``"host:port,host:port"`` -> endpoint list."""
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        out.append((host or "127.0.0.1", int(port)))
    return out


class _Worker:
    """Master-side view of one connected worker."""

    def __init__(self, sock: socket.socket, endpoint: tuple[str, int]):
        self.sock = sock
        self.endpoint = endpoint
        self.buffer = wire.FrameBuffer()
        self.last_seen = time.monotonic()
        self.job: str | None = None
        self.dispatched_at = 0.0

    @property
    def idle(self) -> bool:
        return self.job is None


class ClusterExecutor(Executor):
    """Master/worker fan-out over sockets."""

    name = "cluster"

    def __init__(self, workers: list[tuple[str, int]] | str | None = None,
                 spawn: int | None = None, store_mode: str = "auto",
                 heartbeat_timeout_s: float = 5.0,
                 connect_timeout_s: float = 10.0):
        if isinstance(workers, str):
            workers = parse_endpoints(workers)
        self.workers = workers
        self.spawn = spawn
        self.store_mode = store_mode
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connect_timeout_s = connect_timeout_s

    # -- worker acquisition ----------------------------------------------------
    def _endpoints(self, njobs: int) -> tuple[list[tuple[str, int]], bool]:
        """Resolve endpoints; second element: spawn localhost workers."""
        if self.workers:
            return list(self.workers), False
        env = os.environ.get(WORKERS_ENV)
        if env and self.spawn is None:
            return parse_endpoints(env), False
        n = self.spawn or min(njobs, os.cpu_count() or 1, _DEFAULT_SPAWN_CAP)
        return [("127.0.0.1", 0)] * max(n, 1), True

    def _spawn_workers(self, n: int) -> tuple[list, list[tuple[str, int]]]:
        env = dict(os.environ)
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_root)
        procs, endpoints = [], []
        for _ in range(n):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.core.executors.worker",
                 "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE, env=env, text=True)
            line = (proc.stdout.readline() or "").split()
            if len(line) != 3 or line[0] != "LISTENING":
                proc.kill()
                for p in procs:
                    p.kill()
                raise RuntimeError(
                    "cluster worker failed to start "
                    f"(exit {proc.poll()!r}, said {' '.join(line)!r})")
            procs.append(proc)
            endpoints.append((line[1], int(line[2])))
        return procs, endpoints

    def _store_stanza(self, spawned: bool) -> tuple[str, str | None]:
        from repro import store as result_store

        active = result_store.active()
        mode = self.store_mode
        if mode == "auto":
            if active is None:
                mode = "none"
            elif spawned and active.persistent:
                mode = "shared"
            else:
                mode = "writeback"
        if mode == "shared":
            if active is None or not active.persistent:
                mode = "none"
            else:
                return "shared", str(active.root)
        if mode == "writeback" and active is None:
            mode = "none"
        return mode, None

    def _handshake(self, endpoint: tuple[str, int], store_mode: str,
                   store_root: str | None) -> socket.socket:
        sock = socket.create_connection(endpoint,
                                        timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sent = wire.send_json(sock, wire.HELLO,
                              wire.hello_payload(store_mode, store_root))
        frame = wire.recv_frame(sock)
        if frame is None:
            raise ConnectionError(f"worker {endpoint} closed during handshake")
        ftype, payload = frame
        if ftype == wire.ERR:
            detail = json.loads(payload.decode("utf-8")).get("error", "?")
            raise ConnectionError(f"worker {endpoint} refused: {detail}")
        if ftype != wire.WELCOME:
            raise ConnectionError(
                f"worker {endpoint} sent frame type {ftype}, not WELCOME")
        if obs.ACTIVE:
            obs.inc("cluster_bytes_sent_total", amount=sent)
        sock.settimeout(None)
        return sock

    # -- the sweep -------------------------------------------------------------
    def run(self, fn, jobs: Mapping[str, tuple], *,
            retry: RetryPolicy | None = None,
            timeout_s: float | None = None, max_workers: int | None = None):
        # Encode every payload up front: one encode per job, reused for
        # requeues; anything unpicklable degrades to the serial backend
        # exactly like the pool path.
        try:
            payloads = {
                name: wire.pack_job(name,
                                    wire.encode_payload((fn, args, retry)))
                for name, args in jobs.items()}
        except Exception:
            yield from SerialExecutor().run(fn, jobs, retry=retry,
                                            timeout_s=timeout_s)
            return

        endpoints, do_spawn = self._endpoints(len(jobs))
        if max_workers:
            endpoints = endpoints[:max_workers]
        procs: list = []
        if do_spawn:
            procs, endpoints = self._spawn_workers(len(endpoints))
        budget = (retry or RetryPolicy()).max_attempts

        store_mode, store_root = self._store_stanza(do_spawn)
        sel = selectors.DefaultSelector()
        alive: dict[int, _Worker] = {}
        connect_errors: list[str] = []
        try:
            for endpoint in endpoints:
                try:
                    sock = self._handshake(endpoint, store_mode, store_root)
                except (OSError, ConnectionError) as exc:
                    connect_errors.append(f"{endpoint}: {exc}")
                    continue
                worker = _Worker(sock, endpoint)
                alive[sock.fileno()] = worker
                sel.register(sock, selectors.EVENT_READ, worker)
            if not alive and connect_errors:
                raise ConnectionError(
                    "no cluster worker reachable:\n  "
                    + "\n  ".join(connect_errors))
            if obs.ACTIVE:
                obs.set_gauge("cluster_workers", len(alive))

            pending: deque[str] = deque(jobs)
            attempts: dict[str, int] = {}
            done: set[str] = set()
            total = len(jobs)

            def dispatch(worker: _Worker):
                name = pending.popleft()
                attempts[name] = attempts.get(name, 0) + 1
                worker.job = name
                worker.dispatched_at = time.monotonic()
                try:
                    sent = wire.send_frame(worker.sock, wire.JOB,
                                           payloads[name])
                except OSError:
                    return bury(worker, "died during dispatch")
                if obs.ACTIVE:
                    obs.inc("cluster_bytes_sent_total", amount=sent)
                    obs.set_gauge("cluster_queue_depth", len(pending))
                return None

            def bury(worker: _Worker, reason: str):
                """Drop a dead/stuck worker; requeue or fail its job."""
                sel.unregister(worker.sock)
                del alive[worker.sock.fileno()]
                try:
                    worker.sock.close()
                except OSError:
                    pass
                if obs.ACTIVE:
                    obs.set_gauge("cluster_workers", len(alive))
                name = worker.job
                if name is None or name in done:
                    return None
                if attempts[name] < budget:
                    pending.appendleft(name)
                    if obs.ACTIVE:
                        obs.inc("cluster_requeues_total")
                        obs.set_gauge("cluster_queue_depth", len(pending))
                        obs.event("cluster.requeue", job=name, reason=reason)
                    return None
                done.add(name)
                return job_failure(
                    name, ConnectionError(
                        f"worker {worker.endpoint} {reason} "
                        f"(attempt {attempts[name]}/{budget})"),
                    tb=f"(no traceback: {reason})")

            while len(done) < total:
                if not alive:
                    # Cluster gone: finish what's left in-process.
                    if obs.ACTIVE and (pending or total - len(done)):
                        obs.event("cluster.serial_rescue",
                                  remaining=total - len(done))
                    leftovers = {name: jobs[name] for name in jobs
                                 if name not in done}
                    for name, failure, result in SerialExecutor().run(
                            fn, leftovers, retry=retry, timeout_s=timeout_s):
                        done.add(name)
                        yield name, failure, result
                    return
                for worker in list(alive.values()):
                    if worker.idle and pending:
                        failure = dispatch(worker)
                        if failure is not None:
                            yield failure.name, failure, None

                now = time.monotonic()
                for worker in list(alive.values()):
                    if not worker.idle and timeout_s is not None \
                            and now - worker.dispatched_at > timeout_s:
                        name = worker.job
                        worker.job = None  # not requeued: pool semantics
                        bury(worker, "stuck past timeout")
                        done.add(name)
                        yield name, job_failure(
                            name, TimeoutError(
                                f"job exceeded timeout_s={timeout_s}"),
                            timed_out=True,
                            tb="(no traceback: timed out on a worker)"), None
                    elif not worker.idle and \
                            now - worker.last_seen > self.heartbeat_timeout_s:
                        failure = bury(worker, "heartbeat timeout")
                        if failure is not None:
                            yield failure.name, failure, None

                for key, _ in sel.select(timeout=0.2):
                    worker = key.data
                    if worker.sock.fileno() not in alive:
                        continue
                    try:
                        data = worker.sock.recv(1 << 20)
                    except OSError:
                        data = b""
                    if not data:
                        failure = bury(worker, "died")
                        if failure is not None:
                            yield failure.name, failure, None
                        continue
                    worker.last_seen = time.monotonic()
                    if obs.ACTIVE:
                        obs.inc("cluster_bytes_recv_total", amount=len(data))
                    worker.buffer.feed(data)
                    for outcome in self._consume(worker, done):
                        yield outcome
        finally:
            for worker in alive.values():
                try:
                    wire.send_frame(worker.sock,
                                    wire.DRAIN if procs else wire.RELEASE)
                except OSError:
                    pass
                try:
                    worker.sock.close()
                except OSError:
                    pass
            sel.close()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()

    def _consume(self, worker: _Worker, done: set):
        """Yield outcomes for every complete frame buffered on a worker."""
        for ftype, payload in worker.buffer.frames():
            if ftype == wire.HEARTBEAT:
                continue
            if ftype == wire.RESULT:
                name, result, entries = wire.decode_payload(payload)
                self._apply_writebacks(entries)
                if worker.job == name:
                    worker.job = None
                if name in done:
                    continue  # duplicate from a presumed-dead worker
                done.add(name)
                if obs.ACTIVE:
                    obs.observe("cluster_dispatch_latency_seconds",
                                time.monotonic() - worker.dispatched_at)
                yield name, None, result
            elif ftype == wire.FAIL:
                detail = json.loads(payload.decode("utf-8"))
                name = detail["name"]
                if worker.job == name:
                    worker.job = None
                if name in done:
                    continue
                done.add(name)
                if obs.ACTIVE:
                    obs.inc("sweep_job_failures_total", job=name)
                yield name, JobFailure(name=name, error=detail["error"],
                                       traceback=detail["traceback"]), None

    @staticmethod
    def _apply_writebacks(entries) -> None:
        if not entries:
            return
        from repro import store as result_store

        active = result_store.active()
        if active is None:
            return
        for cache, digest, blob in entries:
            active.put_encoded(cache, digest, blob)

"""Length-prefixed binary wire protocol for the cluster backend.

Framing
-------
Every message is one frame::

    !IB  payload-length, frame-type      (5-byte header)
    ...  payload

Frame types (direction in parentheses; M = master, W = worker):

=========  ====  ========================================================
HELLO       M>W  JSON handshake: protocol + store schema version, store
                 mode (``shared`` root / ``writeback`` / ``none``)
WELCOME     W>M  JSON handshake ack (protocol, schema, pid)
JOB         M>W  length-prefixed job name (plain UTF-8, always
                 decodable) + payload-encoded ``(fn, args, retry)``
RESULT      W>M  payload-encoded ``(name, result, writeback_entries)``
FAIL        W>M  JSON ``{name, error, traceback}`` -- exceptions never
                 cross the wire pickled
HEARTBEAT   W>M  empty; liveness while a long job runs
RELEASE     M>W  empty; sweep over, worker re-accepts the next master
DRAIN       M>W  empty; worker exits (also honored pre-handshake)
ERR         W>M  JSON ``{error}``; handshake refused
=========  ====  ========================================================

Payload encoding
----------------
Job and result payloads are pickled with a :class:`pickle.Pickler`
whose ``persistent_id`` externalizes every :class:`TraceColumns` into
its compact binary bundle (``TraceColumns.to_bytes``, the same ``.trc``
format the tracer writes to disk).  The container is::

    !I   number of column blobs
    !Q + bytes, per blob
    ...  pickle stream (persistent ids reference blob indices)

so trace data crosses the wire as typed column blobs, not pickles --
the receiving side rebuilds columns with ``TraceColumns.from_bytes``
under whichever numpy/pure-Python backend it runs.
"""

from __future__ import annotations

import io
import json
import pickle
import socket
import struct
from typing import Any

from repro.store.keys import SCHEMA_VERSION
from repro.tracer.columns import TraceColumns

__all__ = [
    "PROTOCOL_VERSION", "HELLO", "WELCOME", "JOB", "RESULT", "FAIL",
    "HEARTBEAT", "RELEASE", "DRAIN", "ERR",
    "encode_payload", "decode_payload", "pack_job", "unpack_job",
    "pack_frame", "FrameBuffer",
    "send_frame", "send_json", "recv_frame", "hello_payload",
    "check_hello",
]

PROTOCOL_VERSION = 1

HELLO = 1
WELCOME = 2
JOB = 3
RESULT = 4
FAIL = 5
HEARTBEAT = 6
RELEASE = 7
DRAIN = 8
ERR = 9

_HEADER = struct.Struct("!IB")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")

#: Refuse frames claiming more than this many payload bytes: a corrupt
#: or hostile header must not make the receiver allocate gigabytes.
MAX_FRAME = 1 << 30


# -- payload codec -------------------------------------------------------------

class _ColumnsPickler(pickle.Pickler):
    """Externalizes TraceColumns into .trc blobs (deduped per payload)."""

    def __init__(self, buf, blobs: list[bytes]):
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._blobs = blobs
        self._seen: dict[int, int] = {}

    def persistent_id(self, obj):
        if isinstance(obj, TraceColumns):
            idx = self._seen.get(id(obj))
            if idx is None:
                idx = self._seen[id(obj)] = len(self._blobs)
                self._blobs.append(obj.to_bytes())
            return ("trc", idx)
        return None


class _ColumnsUnpickler(pickle.Unpickler):
    def __init__(self, buf, blobs: list[bytes]):
        super().__init__(buf)
        self._blobs = blobs

    def persistent_load(self, pid):
        tag, idx = pid
        if tag != "trc":
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return TraceColumns.from_bytes(self._blobs[idx])


def encode_payload(obj: Any) -> bytes:
    """Pickle ``obj`` with TraceColumns externalized as .trc blobs."""
    blobs: list[bytes] = []
    buf = io.BytesIO()
    _ColumnsPickler(buf, blobs).dump(obj)
    parts = [_U32.pack(len(blobs))]
    for blob in blobs:
        parts.append(_U64.pack(len(blob)))
        parts.append(blob)
    parts.append(buf.getvalue())
    return b"".join(parts)


def decode_payload(data: bytes) -> Any:
    (nblobs,) = _U32.unpack_from(data, 0)
    offset = _U32.size
    blobs: list[bytes] = []
    for _ in range(nblobs):
        (n,) = _U64.unpack_from(data, offset)
        offset += _U64.size
        blobs.append(data[offset:offset + n])
        offset += n
    return _ColumnsUnpickler(io.BytesIO(data[offset:]), blobs).load()


def pack_job(name: str, payload: bytes) -> bytes:
    """JOB frame body: the name rides outside the pickled payload so a
    worker can report a decode failure *by name* instead of dying."""
    raw = name.encode("utf-8")
    return _U32.pack(len(raw)) + raw + payload


def unpack_job(data: bytes) -> tuple[str, bytes]:
    (n,) = _U32.unpack_from(data, 0)
    head = _U32.size
    return data[head:head + n].decode("utf-8"), data[head + n:]


# -- framing -------------------------------------------------------------------

def pack_frame(ftype: int, payload: bytes = b"") -> bytes:
    return _HEADER.pack(len(payload), ftype) + payload


def send_frame(sock: socket.socket, ftype: int, payload: bytes = b"") -> int:
    """Send one frame; returns the bytes put on the wire."""
    msg = pack_frame(ftype, payload)
    sock.sendall(msg)
    return len(msg)


def send_json(sock: socket.socket, ftype: int, obj: Any) -> int:
    return send_frame(sock, ftype, json.dumps(obj).encode("utf-8"))


def recv_frame(sock: socket.socket) -> tuple[int, bytes] | None:
    """Blocking read of one frame; None on a clean peer close."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, ftype = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ConnectionError(f"oversized frame: {length} bytes")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        return None
    return ftype, payload


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class FrameBuffer:
    """Incremental frame decoder for the master's readiness loop.

    Feed whatever ``recv`` returned; :meth:`frames` yields every frame
    completed so far and keeps the trailing partial bytes for the next
    feed, so the master never blocks on a half-arrived frame.
    """

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def frames(self):
        while True:
            if len(self._buf) < _HEADER.size:
                return
            length, ftype = _HEADER.unpack_from(self._buf, 0)
            if length > MAX_FRAME:
                raise ConnectionError(f"oversized frame: {length} bytes")
            end = _HEADER.size + length
            if len(self._buf) < end:
                return
            payload = bytes(self._buf[_HEADER.size:end])
            del self._buf[:end]
            yield ftype, payload


# -- handshake -----------------------------------------------------------------

def hello_payload(store_mode: str, store_root: str | None) -> dict:
    return {"protocol": PROTOCOL_VERSION, "schema": SCHEMA_VERSION,
            "store": {"mode": store_mode, "root": store_root}}


def check_hello(hello: dict) -> str | None:
    """Version gate; returns a refusal message or None when compatible."""
    if hello.get("protocol") != PROTOCOL_VERSION:
        return (f"protocol mismatch: master speaks "
                f"{hello.get('protocol')!r}, worker {PROTOCOL_VERSION}")
    if hello.get("schema") != SCHEMA_VERSION:
        return (f"store schema mismatch: master {hello.get('schema')!r}, "
                f"worker {SCHEMA_VERSION} -- upgrade both sides together")
    return None

"""I/O signature classification (related work: Byna et al., SC'08).

The paper builds on Byna's classification of parallel I/O patterns to
define local access patterns ("We use their propos[al] to identify
access patterns").  This module closes that loop: it classifies each
phase of an I/O model along the taxonomy's dimensions --

* **spatial locality**: contiguous / fixed-strided / variable / random,
  from the phase's repetition displacement vs. request size;
* **request size class**: small / medium / large, against configurable
  thresholds;
* **repetition**: single / repeating;
* **temporal interleaving**: whether other phases' operations occur
  between the phase's repetitions (tick density);
* **parallelism**: independent / collective, shared / unique file.

Signatures are hashable, so workloads can be compared, clustered or
matched against a library of known patterns (the prefetching use case
of the original work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .model import IOModel
from .phases import Phase

MB = 1024 * 1024

#: Request-size class boundaries (bytes): below small -> "small", above
#: large -> "large".
SMALL_REQUEST = 64 * 1024
LARGE_REQUEST = 4 * MB


@dataclass(frozen=True)
class PhaseSignature:
    """One phase's position in the pattern taxonomy."""

    spatial: str  # contiguous | fixed-strided | variable | single
    request_class: str  # small | medium | large
    repetition: str  # single | repeating
    interleaved: bool  # other MPI events between repetitions
    parallelism: str  # independent | collective
    sharing: str  # shared | unique

    def as_tuple(self) -> tuple:
        return (self.spatial, self.request_class, self.repetition,
                self.interleaved, self.parallelism, self.sharing)


def classify_phase(phase: Phase) -> PhaseSignature:
    """Classify one phase."""
    op = phase.ops[0]
    if phase.rep == 1:
        spatial = "single"
    elif len({o.disp for o in phase.ops}) > 1:
        spatial = "variable"
    elif op.disp == op.request_size * len(phase.ops) or \
            (len(phase.ops) == 1 and op.disp == op.request_size):
        spatial = "contiguous"
    elif op.disp == 0:
        spatial = "contiguous"  # re-access of the same region
    else:
        spatial = "fixed-strided"

    rs = max(o.request_size for o in phase.ops)
    if rs < SMALL_REQUEST:
        request_class = "small"
    elif rs > LARGE_REQUEST:
        request_class = "large"
    else:
        request_class = "medium"

    # Repetitions packed into consecutive ticks are non-interleaved; a
    # burst whose ticks spread wider had other MPI events in between.
    # (Phases are built from tick-adjacent bursts, so within a phase this
    # is only true for multi-op units spanning > 1 tick per repetition.)
    interleaved = len(phase.ops) > 1

    return PhaseSignature(
        spatial=spatial,
        request_class=request_class,
        repetition="repeating" if phase.rep > 1 else "single",
        interleaved=interleaved,
        parallelism="collective" if phase.collective else "independent",
        sharing="unique" if phase.unique_file else "shared",
    )


def classify_model(model: IOModel) -> dict[int, PhaseSignature]:
    """Signatures for every phase, keyed by phase id."""
    return {ph.phase_id: classify_phase(ph) for ph in model.phases}


def signature_histogram(model: IOModel) -> dict[tuple, int]:
    """How many phases (weighted by count) share each signature."""
    hist: dict[tuple, int] = {}
    for sig in classify_model(model).values():
        key = sig.as_tuple()
        hist[key] = hist.get(key, 0) + 1
    return hist


def dominant_signature(model: IOModel) -> PhaseSignature:
    """The signature carrying the most weight (bytes) in the model."""
    best: tuple[int, PhaseSignature] | None = None
    totals: dict[PhaseSignature, int] = {}
    for ph in model.phases:
        sig = classify_phase(ph)
        totals[sig] = totals.get(sig, 0) + ph.weight
    for sig, weight in totals.items():
        if best is None or weight > best[0]:
            best = (weight, sig)
    assert best is not None
    return best[1]


def similarity(a: IOModel, b: IOModel) -> float:
    """Weighted Jaccard similarity of two models' signature histograms.

    1.0 means the workloads exercise the same pattern mix in the same
    byte proportions; 0.0 means disjoint pattern sets.  Useful for
    matching a new application against a library of modeled ones.
    """
    def weights(model: IOModel) -> dict[tuple, float]:
        out: dict[tuple, float] = {}
        total = max(1, model.total_weight)
        for ph in model.phases:
            key = classify_phase(ph).as_tuple()
            out[key] = out.get(key, 0.0) + ph.weight / total
        return out

    wa, wb = weights(a), weights(b)
    keys = set(wa) | set(wb)
    inter = sum(min(wa.get(k, 0.0), wb.get(k, 0.0)) for k in keys)
    union = sum(max(wa.get(k, 0.0), wb.get(k, 0.0)) for k in keys)
    return inter / union if union else 1.0

"""Vectorized configuration-lattice evaluation (eqs. 1-4 in batch).

``select_configuration`` normally *replays* every phase on every
candidate cluster (eq. 2's IOR replication).  That is the reference
method -- faithful, but one discrete-event simulation per unique
(phase, configuration) pair.  This module evaluates the same equations
*analytically* over an entire configuration lattice at once:

* every candidate cluster is flattened into one row of structured
  parameter arrays (:class:`LatticeParams`) -- RAID level, member
  count, stripe sizes, link rates, ION count, cache size, ...;
* ``BW_PK`` (eqs. 3/4) and the per-phase ``BW_CH``/``Time_io``
  (eqs. 1/2) are closed-form steady-state expressions of those arrays,
  evaluated as one numpy program over all configurations -- with a
  pure-Python scalar twin kept bit-identical (the same expression
  graph runs per row), mirroring the columnar-characterization
  pattern;
* the result is the familiar :class:`~repro.core.estimate.
  ConfigurationChoice` ranking plus per-config
  :class:`~repro.core.estimate.EstimateReport` views.

The analytic ``BW_CH`` mirrors the simulator's data path: a closed
queueing network of ``np`` clients cycling through client NIC ->
server NIC(s) -> local FS -> volume members, so the phase time is
``reps * max(sum-of-stage-latencies, per-op busy of the bottleneck
station)``, with the ext3/ext4 write-back cache absorbing write
backlog (``max(T_upstream, T_media - cache_s)``), NFS's per-chunk read
RPCs, PVFS2/Lustre striping and per-stripe costs, and the RAID
read-modify-write penalty.  It intentionally ignores second-order
simulation effects (background-load modulation, queue warmup), so
absolute numbers differ from replay; rankings agree on the seed
configurations (asserted in tests) but can legitimately diverge for
near-ties -- see docs/performance.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from types import SimpleNamespace
from typing import Callable, Sequence

from repro import obs
from repro.iosim.cluster import Cluster
from repro.iosim.globalfs import NFS, PVFS2, Lustre
from repro.iosim.raid import JBOD, RAID0, RAID1, RAID5, RAID6, RAID10
from repro.tracer.columns import numpy_enabled

from .phases import Phase
from .replication import replication_for_phase

MBf = 1024.0 * 1024.0

GFS_NFS, GFS_PVFS2, GFS_LUSTRE = 0, 1, 2
LEVEL_CODES = {JBOD: 0, RAID0: 1, RAID1: 2, RAID5: 3, RAID6: 4, RAID10: 5}
LVL_JBOD, LVL_RAID0, LVL_RAID1, LVL_RAID5, LVL_RAID6, LVL_RAID10 = range(6)

#: Parameter columns extracted per configuration (all float64).
FIELDS = (
    "gfs", "level", "n_ions", "stripe_cnt", "gstripe_b",
    "rpc_s", "chunk_b", "chunk_rpc_s", "meta_s", "pstripe_s", "ilf",
    "i_bw_B", "i_lat", "c_bw_B", "c_lat", "n_compute",
    "members", "vstripe_b", "d_wbw_B", "d_rbw_B", "seek_s", "over_s",
    "journal", "ra", "oplat_s", "mem_bw_B", "cache_b",
)


class LatticeUnsupportedError(ValueError):
    """A cluster cannot be flattened into lattice parameter arrays
    (heterogeneous members, unknown volume/filesystem model, ...)."""


# ---------------------------------------------------------------------------
# parameter extraction: Cluster -> one row of the lattice
# ---------------------------------------------------------------------------

def _uniform(values, what: str, name: str):
    first = values[0]
    for v in values[1:]:
        if v != first:
            raise LatticeUnsupportedError(
                f"configuration {name!r} has heterogeneous {what}; the "
                "lattice kernels need identical members (use the replay "
                "method for irregular clusters)")
    return first


def extract_row(cluster: Cluster) -> dict[str, float]:
    """Flatten one built cluster into a lattice parameter row."""
    name = cluster.name
    gfs = cluster.globalfs
    ions = gfs.ions
    _uniform([ion.fingerprint() for ion in ions], "I/O nodes", name)
    ion = ions[0]
    volume = ion.fs.volume
    level = LEVEL_CODES.get(type(volume))
    if level is None:
        raise LatticeUnsupportedError(
            f"configuration {name!r} uses unsupported volume "
            f"{type(volume).__name__}")
    _uniform([d.fingerprint() for d in volume.disks], "member disks", name)
    if volume.failed:
        raise LatticeUnsupportedError(
            f"configuration {name!r} is degraded; the analytic lattice "
            "models healthy arrays only")
    disk = volume.disks[0].spec
    fspec = ion.fs.spec
    _uniform([cn.nic.spec for cn in cluster.compute_nodes],
             "compute-node links", name)
    clink = cluster.compute_nodes[0].nic.spec
    ilink = ion.nic.spec
    row = dict(
        level=float(level),
        n_ions=float(len(ions)),
        i_bw_B=ilink.bw_mb_s * MBf, i_lat=ilink.latency_s,
        c_bw_B=clink.bw_mb_s * MBf, c_lat=clink.latency_s,
        n_compute=float(len(cluster.compute_nodes)),
        members=float(len(volume.disks)),
        vstripe_b=float((getattr(volume, "stripe_kb", 0) or 0) * 1024),
        d_wbw_B=disk.seq_write_bw * MBf, d_rbw_B=disk.seq_read_bw * MBf,
        seek_s=(disk.seek_ms + disk.rotational_ms) / 1e3,
        over_s=disk.op_overhead_ms / 1e3,
        journal=fspec.journal_write_overhead, ra=fspec.readahead_benefit,
        oplat_s=fspec.op_latency_ms / 1e3,
        mem_bw_B=fspec.memory_bw_mb_s * MBf,
        cache_b=ion.fs.cache_mb * MBf,
        rpc_s=0.0, chunk_b=1.0, chunk_rpc_s=0.0, meta_s=0.0,
        pstripe_s=0.0, ilf=0.0, gstripe_b=1.0, stripe_cnt=float(len(ions)),
    )
    if isinstance(gfs, NFS):
        row.update(gfs=float(GFS_NFS), stripe_cnt=1.0,
                   rpc_s=gfs.rpc_overhead_ms / 1e3,
                   chunk_b=float(gfs.read_chunk_kb * 1024),
                   chunk_rpc_s=gfs.read_rpc_ms / 1e3)
    elif isinstance(gfs, PVFS2):
        row.update(gfs=float(GFS_PVFS2), gstripe_b=float(gfs.stripe_bytes),
                   meta_s=gfs.meta_overhead_ms / 1e3,
                   pstripe_s=gfs.per_stripe_overhead_ms / 1e3,
                   ilf=gfs.interleave_seek_factor)
    elif isinstance(gfs, Lustre):
        row.update(gfs=float(GFS_LUSTRE), gstripe_b=float(gfs.stripe_bytes),
                   stripe_cnt=float(gfs.stripe_count),
                   meta_s=gfs.mds_overhead_ms / 1e3,
                   pstripe_s=gfs.per_stripe_overhead_ms / 1e3,
                   ilf=gfs.interleave_seek_factor)
    else:
        raise LatticeUnsupportedError(
            f"configuration {name!r} uses unsupported global filesystem "
            f"{type(gfs).__name__}")
    return row


@dataclass
class LatticeParams:
    """Structured parameter arrays over N candidate configurations."""

    names: list[str]
    cols: dict[str, "object"]  # field -> ndarray (numpy) | list (python)
    backend: str

    def __len__(self) -> int:
        return len(self.names)

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Sequence[dict],
                  backend: str | None = None) -> "LatticeParams":
        backend = backend or ("numpy" if numpy_enabled() else "python")
        cols: dict[str, object] = {}
        if backend == "numpy":
            import numpy as np
            for f in FIELDS:
                cols[f] = np.array([r[f] for r in rows], dtype=np.float64)
        else:
            for f in FIELDS:
                cols[f] = [float(r[f]) for r in rows]
        return cls(names=list(names), cols=cols, backend=backend)

    @classmethod
    def from_clusters(cls, clusters: dict[str, Cluster],
                      backend: str | None = None) -> "LatticeParams":
        rows = [extract_row(c) for c in clusters.values()]
        return cls.from_rows(list(clusters.keys()), rows, backend=backend)

    @classmethod
    def from_factories(cls, factories: dict[str, Callable[[], Cluster]],
                       backend: str | None = None) -> "LatticeParams":
        """Build each candidate once and flatten it into the lattice."""
        return cls.from_clusters(
            {name: f() for name, f in factories.items()}, backend=backend)

    def row(self, i: int) -> SimpleNamespace:
        return SimpleNamespace(
            **{f: float(self.cols[f][i]) for f in FIELDS})

    def groups(self):
        """(gfs, level) -> index array; kernel branches are uniform
        within a group, so each group evaluates as straight-line numpy."""
        import numpy as np
        keys = {}
        gfs, level = self.cols["gfs"], self.cols["level"]
        for key in {(int(g), int(l)) for g, l in zip(gfs, level)}:
            mask = (gfs == key[0]) & (level == key[1])
            keys[key] = np.flatnonzero(mask)
        return keys

    def peak_bw(self, kind: str):
        """eqs. (3)/(4) for every configuration at once (MB/s)."""
        return _evaluate(self, partial(_peak_kernel, kind=kind))


# ---------------------------------------------------------------------------
# kernels: one expression graph, two drivers (numpy rows / scalar rows)
# ---------------------------------------------------------------------------

def _evaluate(params: LatticeParams, kernel):
    """Run ``kernel(g, gfs, level, mx, mn, fl, cl, sel)`` over all rows.

    The numpy driver evaluates whole (gfs, level) groups as subarrays;
    the python driver evaluates row by row with scalar helpers.  Both
    execute the identical elementwise expression graph, so the results
    are bit-identical (the PR 3 columnar twin-backend contract).
    """
    if params.backend == "numpy":
        import numpy as np

        def sel(cond, a, b):
            return np.where(cond, a, b)

        out = np.empty(len(params), dtype=np.float64)
        for (gfs, level), idx in params.groups().items():
            g = SimpleNamespace(
                **{f: params.cols[f][idx] for f in FIELDS})
            with np.errstate(divide="ignore", invalid="ignore"):
                out[idx] = kernel(g, gfs, level, np.maximum, np.minimum,
                                  np.floor, np.ceil, sel)
        return out

    def ssel(cond, a, b):
        return a if cond else b

    def sfl(x):
        return float(math.floor(x))

    def scl(x):
        return float(math.ceil(x))

    return [kernel(params.row(i), int(params.cols["gfs"][i]),
                   int(params.cols["level"][i]), max, min, sfl, scl, ssel)
            for i in range(len(params))]


def _peak_kernel(g, gfs, level, mx, mn, fl, cl, sel, kind="write"):
    write = kind == "write"
    dbw = g.d_wbw_B if write else g.d_rbw_B
    if level == LVL_JBOD:
        vol = dbw
    elif level == LVL_RAID0:
        vol = g.members * dbw
    elif level == LVL_RAID1:
        vol = dbw if write else g.members * dbw
    elif level == LVL_RAID5:
        vol = (g.members - 1.0) * dbw
    elif level == LVL_RAID6:
        vol = (g.members - 2.0) * dbw
    else:  # RAID10
        vol = (fl(g.members / 2.0) if write else g.members) * dbw
    fsbw = vol / (1.0 + g.journal) if write else vol
    if gfs == GFS_NFS:
        agg = fsbw  # eq. (3): single I/O node
    else:
        agg = g.n_ions * fsbw  # eq. (4): sum over I/O nodes
    return agg / MBf


def _vol_write_peak(g, level, fl):
    """Volume streaming write peak in B/s (the cache drain rate)."""
    if level == LVL_JBOD:
        return g.d_wbw_B
    if level == LVL_RAID0:
        return g.members * g.d_wbw_B
    if level == LVL_RAID1:
        return g.d_wbw_B
    if level == LVL_RAID5:
        return (g.members - 1.0) * g.d_wbw_B
    if level == LVL_RAID6:
        return (g.members - 2.0) * g.d_wbw_B
    return fl(g.members / 2.0) * g.d_wbw_B  # RAID10


@dataclass(frozen=True)
class _KindCase:
    """One replication run, reduced to the kernel's phase scalars."""

    np_: float
    rs: float
    reps: float
    kind: str
    unique: bool
    collective: bool


def _bw_kernel(g, gfs, level, mx, mn, fl, cl, sel, case=None):
    """Analytic BW_CH (MB/s) of one replication run on every config.

    Steady state of the closed client -> NIC -> FS -> members network:
    ``T = reps * max(sum of per-op stage latencies, per-op busy time of
    the bottleneck shared station)``, write-back cache absorption as
    ``max(T_upstream, T_media - cache_s)``.
    """
    ph = case
    npr, rs, reps = ph.np_, ph.rs, ph.reps
    write = ph.kind == "write"
    collective = ph.collective and not ph.unique and npr > 1.0

    # -- participating servers ------------------------------------------------
    if gfs == GFS_NFS:
        eye = 1.0      # OSTs a file stripes over
        pear = 1.0     # servers the phase load spreads over
    elif gfs == GFS_PVFS2:
        eye = g.n_ions
        pear = g.n_ions
    else:  # Lustre: stripe_count OSTs per file, rotated by file id
        eye = g.stripe_cnt
        pear = mn(g.n_ions, npr * eye) if ph.unique else g.stripe_cnt
    # One op touches ``i_crit`` of the ``eye`` stripe servers (an op
    # smaller than the stripe lands whole on one), so each server sees
    # ``npr * i_crit / pear`` requests of ``share_crit`` bytes per cycle
    # -- the granularity at which seeks and per-stripe costs are paid.
    i_crit = mn(eye, mx(1.0, cl(rs / g.gstripe_b)))
    share_crit = rs / i_crit
    nstripes = mx(1.0, cl(share_crit / g.gstripe_b))
    req_rate = npr * i_crit / pear                # requests/server/cycle

    # -- per-member media request time ---------------------------------------
    jmul = (1.0 + g.journal) if write else 1.0
    v = share_crit * jmul                         # volume bytes per request
    dbw = g.d_wbw_B if write else g.d_rbw_B
    seekf = 0.0 if (npr <= 1.0 and not collective) else 1.0
    frag_extra = mx(0.0, fl(nstripes * g.ilf) - 1.0)
    fixed = g.over_s + (seekf + frag_extra) * g.seek_s

    b_m_override = None
    if level == LVL_JBOD:
        t_req = fixed + v / dbw
        spread = mn(npr, g.members) if ph.unique else 1.0
    elif level == LVL_RAID0:
        t_req = fixed + v / g.members / dbw
        spread = 1.0
    elif level == LVL_RAID1:
        # Writes hit every mirror (full v each); reads load-balance.
        t_req = fixed + (v if write else v / g.members) / dbw
        spread = 1.0
    elif level in (LVL_RAID5, LVL_RAID6):
        k = 1.0 if level == LVL_RAID5 else 2.0
        dd = g.members - k
        if write:
            # Sub-stripe writes read-modify-write: the data and parity
            # members each pay a read pass then a write pass of v.  A
            # shared file hammers one (data, parity) set; unique files
            # rotate the set with the locator, so the busiest member
            # carries ceil(np * (k+1) / members) of the np streams.
            t_full = fixed + v / dd / dbw
            t_rmw = (fixed + v / g.d_rbw_B) + (fixed + v / g.d_wbw_B)
            full = v >= g.vstripe_b * dd
            t_req = sel(full, t_full, t_rmw)
            hot = (cl(req_rate * (k + 1.0) / g.members) if ph.unique
                   else req_rate)
            b_m_override = sel(full, req_rate * t_full, hot * t_rmw)
        else:
            t_req = fixed + v / dd / dbw
        spread = 1.0
    else:  # RAID10
        pairs = fl(g.members / 2.0)
        t_req = fixed + (v / pairs if write else v / g.members) / dbw
        spread = 1.0

    if not write and npr <= 1.0 and not collective:
        t_req = t_req * g.ra                      # sequential readahead

    # -- stage latencies and per-op busy times --------------------------------
    s_cl = g.c_lat + rs / g.c_bw_B
    if gfs == GFS_NFS:
        extra = cl(rs / g.chunk_b) * g.chunk_rpc_s if not write else 0.0
        s_srv = g.i_lat + rs / g.i_bw_B + extra
        meta = g.rpc_s
    else:
        extra = 0.0
        s_srv = (g.i_lat + share_crit / g.i_bw_B
                 + nstripes * g.pstripe_s)
        meta = g.meta_s
    b_n = req_rate * s_srv                        # per-server NIC busy/cycle
    mem_t = share_crit / g.mem_bw_B
    rpn = cl(npr / g.n_compute)                   # ranks sharing a client NIC
    b_c = rpn * s_cl
    if b_m_override is not None:
        b_m = b_m_override
    else:
        b_m = req_rate * t_req / spread           # per-member busy per cycle
    cache_s = g.cache_b / _vol_write_peak(g, level, fl)

    # Per-op critical path.  The simulated path is cut-through: the
    # server NIC is acquired at client-send *begin* (+ link latency)
    # and the FS/media chain starts at server-NIC *begin*, so the
    # stages overlap -- the op latency is a nested max, not a sum.
    med = mem_t if write else t_req               # absorbed ack vs media
    if gfs == GFS_NFS:
        ss = g.c_lat + mx(rs / g.c_bw_B,
                          mx(s_srv, meta + extra + g.oplat_s + med))
    else:
        ss = g.c_lat + mx(rs / g.c_bw_B,
                          meta + mx(s_srv, g.oplat_s + med))

    total_mb = npr * reps * rs / MBf
    if not collective:
        if write:
            t_up = reps * mx(mx(ss, b_c), b_n)
            time_s = mx(t_up, reps * b_m - cache_s)
        else:
            time_s = reps * mx(mx(mx(ss, b_c), b_n), b_m)
        return total_mb / time_s

    # -- collective: two-phase I/O barriers every op --------------------------
    nodes = mn(npr, g.n_compute)
    cb = mx(1.0, mn(nodes, 2.0 * g.n_ions))       # aggregator count
    exch = g.c_lat + 2.0 * npr * rs / (nodes * g.c_bw_B)
    agg_bytes = npr * rs / cb
    s_cl_a = g.c_lat + agg_bytes / g.c_bw_B
    if gfs == GFS_NFS:
        extra_a = (cl(agg_bytes / g.chunk_b) * g.chunk_rpc_s
                   if not write else 0.0)
        b_n_c = cb * (g.i_lat + extra_a) + npr * rs / g.i_bw_B
    else:
        extra_a = 0.0
        share_a = agg_bytes / eye                 # per-server slice/aggregator
        nstripes_a = mx(1.0, cl(share_a / g.gstripe_b))
        b_n_c = cb * (g.i_lat + share_a / g.i_bw_B
                      + nstripes_a * g.pstripe_s)
    serial = (npr / cb) * g.oplat_s
    media_c = (npr / cb) * mem_t if write else b_m
    t_op = exch + s_cl_a + b_n_c + meta + extra_a + serial + media_c
    time_s = reps * t_op
    if write:
        time_s = mx(time_s, reps * b_m - cache_s)
    return total_mb / time_s


# ---------------------------------------------------------------------------
# evaluation: phases x lattice -> ConfigurationChoice + EstimateReports
# ---------------------------------------------------------------------------

def _cases_for_phase(phase: Phase) -> list[_KindCase]:
    """The exact replication runs replay would execute, as kernel cases
    (same steady-state inflation, same per-kind request sizes)."""
    repl = replication_for_phase(phase)
    return [_KindCase(np_=float(p.np), rs=float(p.transfer_size),
                      reps=float(p.block_size // p.transfer_size),
                      kind=p.kinds[0], unique=p.file_per_process,
                      collective=p.collective)
            for p in repl.runs]


class LatticeSelection:
    """Result of one lattice pass: ranking plus lazy per-config reports."""

    def __init__(self, params: LatticeParams, phases: Sequence[Phase],
                 totals_list: list[float],
                 phase_bw: list[tuple[Phase, dict[str, "object"]]]):
        self.params = params
        self.phases = list(phases)
        self._totals_list = totals_list
        self._phase_bw = phase_bw
        totals = {name: float(t)
                  for name, t in zip(params.names, totals_list)}
        best = min(totals, key=totals.get)
        from .estimate import ConfigurationChoice
        self.choice = ConfigurationChoice(best=best, total_times=totals)

    def report(self, name: str) -> "object":
        """EstimateReport view of one configuration (built on demand)."""
        from .estimate import EstimateReport, PhaseEstimate
        i = self.params.names.index(name)
        report = EstimateReport(config_name=name)
        for ph, by_kind in self._phase_bw:
            kinds = {k: float(bw[i]) for k, bw in by_kind.items()}
            report.phases.append(PhaseEstimate(
                phase_id=ph.phase_id, weight=ph.weight,
                op_label=ph.op_label,
                bw_ch_mb_s=sum(kinds.values()) / len(kinds),
                bw_ch_by_kind=kinds))
        return report

    def reports(self) -> dict[str, "object"]:
        return {name: self.report(name) for name in self.params.names}


def evaluate_lattice(phases: Sequence[Phase],
                     params: LatticeParams) -> LatticeSelection:
    """eqs. (1)/(2) for every phase on every configuration in one pass."""
    n = len(params)
    with obs.span("select.lattice", cat="select",
                  configs=n, phases=len(phases)):
        # Unique replication signatures evaluate once (estimate_model's
        # dedup rule), then fan out to every phase that shares them.
        sig_bw: dict[tuple, dict[str, object]] = {}
        phase_bw: list[tuple[Phase, dict[str, object]]] = []
        for ph in phases:
            sig = (ph.np, ph.rep, ph.unique_file, ph.collective,
                   tuple((o.op, o.request_size) for o in ph.ops))
            by_kind = sig_bw.get(sig)
            if by_kind is None:
                by_kind = {}
                for case in _cases_for_phase(ph):
                    by_kind[case.kind] = _evaluate(
                        params, partial(_bw_kernel, case=case))
                sig_bw[sig] = by_kind
            phase_bw.append((ph, by_kind))
        if obs.ACTIVE:
            obs.inc("lattice_configs_total", amount=n)
            obs.inc("lattice_phase_evals_total",
                    amount=len(sig_bw) * n)

        # Accumulate eq. (1) totals in phase order (both backends sum in
        # the same order, keeping numpy and python bit-identical).
        if params.backend == "numpy":
            import numpy as np
            totals = np.zeros(n, dtype=np.float64)
            for ph, by_kind in phase_bw:
                vals = list(by_kind.values())
                bw_ch = vals[0]
                for v in vals[1:]:
                    bw_ch = bw_ch + v
                bw_ch = bw_ch / float(len(vals))
                totals = totals + (ph.weight / MBf) / bw_ch
            totals_list = [float(t) for t in totals]
        else:
            totals_list = [0.0] * n
            for ph, by_kind in phase_bw:
                vals = list(by_kind.values())
                nv = float(len(vals))
                w = ph.weight / MBf
                for i in range(n):
                    bw_ch = vals[0][i]
                    for v in vals[1:]:
                        bw_ch = bw_ch + v[i]
                    totals_list[i] += w / (bw_ch / nv)
        return LatticeSelection(params, phases, totals_list, phase_bw)


# ---------------------------------------------------------------------------
# declarative configuration spaces
# ---------------------------------------------------------------------------

_LEVEL_BUILDERS = {
    "jbod": lambda name, disks, kb: JBOD(name, disks),
    "raid0": lambda name, disks, kb: RAID0(name, disks, stripe_kb=kb),
    "raid1": lambda name, disks, kb: RAID1(name, disks),
    "raid5": lambda name, disks, kb: RAID5(name, disks, stripe_kb=kb),
    "raid6": lambda name, disks, kb: RAID6(name, disks, stripe_kb=kb),
    "raid10": lambda name, disks, kb: RAID10(name, disks, stripe_kb=kb),
}


@dataclass(frozen=True)
class LatticePoint:
    """One point of a declarative config space (picklable factory arg)."""

    raid: str
    members: int
    stripe_kb: int
    net_mb_s: float
    ions: int
    disk_write_mb_s: float = 90.0
    disk_read_mb_s: float = 100.0
    n_compute: int = 4
    client_bw_mb_s: float = 1900.0
    cache_mb: float = 256.0

    @property
    def name(self) -> str:
        return (f"{self.raid}-m{self.members}-s{self.stripe_kb}"
                f"-net{self.net_mb_s:g}-ion{self.ions}"
                f"-d{self.disk_write_mb_s:g}")


def build_point(point: LatticePoint) -> Cluster:
    """Build the cluster a :class:`LatticePoint` describes."""
    from repro.iosim.device import Disk, DiskSpec
    from repro.iosim.localfs import EXT4, LocalFS
    from repro.iosim.network import LinkSpec
    from repro.iosim.nodes import ComputeNode, IONode

    spec = DiskSpec(seq_write_bw=point.disk_write_mb_s,
                    seq_read_bw=point.disk_read_mb_s)
    ion_link = LinkSpec(bw_mb_s=point.net_mb_s, latency_s=20e-6,
                        name=f"ion-{point.net_mb_s:g}")
    client_link = LinkSpec(bw_mb_s=point.client_bw_mb_s, latency_s=8e-6,
                           name="client")
    build_volume = _LEVEL_BUILDERS[point.raid]
    ions = []
    for i in range(point.ions):
        disks = [Disk(f"d{i}.{j}", spec) for j in range(point.members)]
        volume = build_volume(f"vol{i}", disks, point.stripe_kb)
        fs = LocalFS(f"/data{i}", volume, EXT4, cache_mb=point.cache_mb)
        ions.append(IONode.make(f"ion{i}", fs, ion_link))
    if point.ions == 1:
        gfs = NFS(ions[0])
    else:
        gfs = PVFS2(ions, stripe_kb=64)
    nodes = [ComputeNode.make(f"cn{i}", client_link)
             for i in range(point.n_compute)]
    return Cluster(name=point.name, compute_nodes=nodes, globalfs=gfs,
                   compute_net=client_link)


@dataclass
class ConfigSpace:
    """Declarative RAID x members x stripe x network x ION lattice."""

    raid_levels: tuple = ("jbod", "raid0", "raid1", "raid5")
    members: tuple = (3, 4, 5, 6)
    stripe_kb: tuple = (64, 128, 256, 512)
    net_mb_s: tuple = (800.0, 1100.0, 1500.0, 1900.0)
    ions: tuple = (1, 2, 3, 4)
    disk_mb_s: tuple = ((25.0, 30.0), (60.0, 70.0),
                        (90.0, 100.0), (140.0, 150.0))  # (write, read) tiers
    n_compute: int = 4
    client_bw_mb_s: float = 1900.0
    cache_mb: float = 256.0

    def points(self) -> list[LatticePoint]:
        pts = []
        for raid in self.raid_levels:
            for m in self.members:
                for kb in self.stripe_kb:
                    for net in self.net_mb_s:
                        for nion in self.ions:
                            for dw, dr in self.disk_mb_s:
                                pts.append(LatticePoint(
                                    raid=raid, members=m, stripe_kb=kb,
                                    net_mb_s=net, ions=nion,
                                    disk_write_mb_s=dw, disk_read_mb_s=dr,
                                    n_compute=self.n_compute,
                                    client_bw_mb_s=self.client_bw_mb_s,
                                    cache_mb=self.cache_mb))
        return pts

    def factories(self) -> dict[str, Callable[[], Cluster]]:
        """Picklable per-point factories, in lattice enumeration order."""
        return {p.name: partial(build_point, p) for p in self.points()}

    def params(self, backend: str | None = None) -> LatticeParams:
        """The lattice parameter arrays for every point."""
        pts = self.points()
        return LatticeParams.from_rows(
            [p.name for p in pts],
            [extract_row(build_point(p)) for p in pts],
            backend=backend)

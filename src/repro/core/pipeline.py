"""End-to-end methodology pipeline (paper section III).

Glues the three stages together:

1. ``characterize_app`` -- run the application once with the tracer on a
   neutral platform; extract the system-independent I/O abstract model.
2. ``estimate_on`` -- replay the model's phases with IOR on a target
   configuration: per-phase BW_CH and Time_io(CH) (eqs. 1-2).
3. ``measure_on`` -- actually run the application on the target and
   extract per-phase BW_MD / Time_io(MD) (validation only; the whole
   point of the methodology is that step 3 is *not needed* to choose a
   configuration).
4. ``evaluate`` -- join the two into the paper's evaluation rows:
   system usage (eq. 5) and estimation errors (eqs. 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.faults.resilience import RetryPolicy
from repro.simmpi.engine import IdealPlatform
from repro.tracer.hooks import TraceBundle, trace_run

from .estimate import (
    ClusterFactory,
    EstimateReport,
    MeasureReport,
    estimate_model,
    measure_phases,
    peak_bandwidth,
    relative_error,
    system_usage,
)
from .model import IOModel
from .sweep import SweepJobError, sweep_map

MB = 1024 * 1024


def characterize_app(program: Callable, nprocs: int, *args,
                     app_name: str = "app", tick_tol: int = 16,
                     platform=None,
                     method: str = "columnar") -> tuple[IOModel, TraceBundle]:
    """Stage 1: trace the application off-line and extract its I/O model.

    The platform defaults to :class:`IdealPlatform` -- the model must not
    depend on any particular I/O subsystem (its phases, weights and
    offset functions are identical whatever platform is used; only the
    measured durations differ).

    ``method`` selects the model-extraction path: ``"columnar"`` (the
    vectorized default) or ``"records"`` (the per-record reference
    implementation; identical models, kept for cross-checking).
    """
    with obs.span("pipeline.characterize", cat="pipeline", app=app_name,
                  np=nprocs) as sp:
        bundle = trace_run(program, nprocs, platform or IdealPlatform(), *args)
        model = build_model(bundle, app_name=app_name, tick_tol=tick_tol,
                            method=method)
        sp.annotate(nphases=model.nphases, events=bundle.nevents)
    return model, bundle


def build_model(bundle: TraceBundle, app_name: str = "app",
                tick_tol: int = 16, gap: int = 1,
                method: str = "columnar") -> IOModel:
    """Extract the I/O abstract model from an existing trace bundle."""
    return IOModel.from_trace(bundle, app_name=app_name, tick_tol=tick_tol,
                              gap=gap, method=method)


def estimate_on(model: IOModel, cluster_factory: ClusterFactory,
                config_name: str = "config") -> EstimateReport:
    """Stage 2: IOR replication of each phase on the target (eqs. 1-2)."""
    with obs.span("pipeline.estimate", cat="pipeline", app=model.app_name,
                  config=config_name):
        report = estimate_model(model.phases, cluster_factory,
                                config_name=config_name)
    if obs.ACTIVE:
        for p in report.phases:
            obs.set_gauge("phase_bw_ch_mb_s", p.bw_ch_mb_s,
                          config=config_name, phase=str(p.phase_id))
    return report


def measure_on(program: Callable, nprocs: int, *args,
               cluster_factory: ClusterFactory, app_name: str = "app",
               tick_tol: int = 16) -> tuple[MeasureReport, IOModel]:
    """Stage 3 (validation): run the app on the target and measure phases."""
    with obs.span("pipeline.measure", cat="pipeline", app=app_name,
                  np=nprocs):
        cluster = cluster_factory()
        bundle = trace_run(program, nprocs, cluster, *args)
        model = IOModel.from_trace(bundle, app_name=app_name, tick_tol=tick_tol)
        return measure_phases(model.phases, config_name=app_name), model


@dataclass
class EvaluationRow:
    """One phase's joined evaluation (Tables IX/X/XIII/XIV columns)."""

    phase_id: int
    op_label: str
    n_operations: int
    weight: int
    bw_ch_mb_s: float
    bw_md_mb_s: float
    time_ch: float
    time_md: float
    bw_pk_mb_s: float | None = None

    @property
    def usage_pct(self) -> float:
        """eq. (5); requires bw_pk."""
        if self.bw_pk_mb_s is None:
            raise ValueError("no BW_PK available for this row")
        return system_usage(self.bw_md_mb_s, self.bw_pk_mb_s)

    @property
    def error_rel_pct(self) -> float:
        """eq. (6) on bandwidths."""
        return relative_error(self.bw_ch_mb_s, self.bw_md_mb_s)

    @property
    def time_error_rel_pct(self) -> float:
        """Relative error expressed on times (Tables XIII/XIV)."""
        return 100.0 * abs(self.time_ch - self.time_md) / max(self.time_md, 1e-12)


@dataclass
class Evaluation:
    """Full joined evaluation of one app model on one configuration."""

    config_name: str
    rows: list[EvaluationRow] = field(default_factory=list)

    @property
    def total_time_ch(self) -> float:
        return sum(r.time_ch for r in self.rows)

    @property
    def total_time_md(self) -> float:
        return sum(r.time_md for r in self.rows)

    @property
    def total_time_error_pct(self) -> float:
        return 100.0 * abs(self.total_time_ch - self.total_time_md) / \
            max(self.total_time_md, 1e-12)


def evaluate(model: IOModel, estimate: EstimateReport, measure: MeasureReport,
             peaks: dict[str, float] | None = None) -> Evaluation:
    """Join estimation and measurement into per-phase evaluation rows.

    ``peaks`` maps operation kind ("write"/"read") to BW_PK in MB/s; for
    mixed phases the average of the kinds' peaks is used (the paper's
    Table IX lists an intermediate BW_PK for the W-R phase).
    """
    ev = Evaluation(config_name=estimate.config_name)
    measured = {m.phase_id: m for m in measure.phases}
    model_phases = {ph.phase_id: ph for ph in model.phases}
    for est in estimate.phases:
        md = measured.get(est.phase_id)
        if md is None:
            continue
        ph = model_phases[est.phase_id]
        bw_pk = None
        if peaks:
            kinds = ph.kinds
            bw_pk = sum(peaks[k] for k in kinds) / len(kinds)
        ev.rows.append(EvaluationRow(
            phase_id=est.phase_id,
            op_label=est.op_label,
            n_operations=ph.n_operations,
            weight=est.weight,
            bw_ch_mb_s=est.bw_ch_mb_s,
            bw_md_mb_s=md.bw_md_mb_s,
            time_ch=est.time_ch,
            time_md=md.time_md,
            bw_pk_mb_s=bw_pk,
        ))
    if obs.ACTIVE:
        obs.event("pipeline.evaluate", cat="pipeline",
                  config=ev.config_name, rows=len(ev.rows))
    return ev


def characterize_peaks_for(cluster_factory: ClusterFactory) -> dict[str, float]:
    """BW_PK per operation kind for a configuration (eqs. 3-4, via IOzone)."""
    return {
        "write": peak_bandwidth(cluster_factory, "write"),
        "read": peak_bandwidth(cluster_factory, "read"),
    }


def _estimate_job(model: IOModel, factory: ClusterFactory,
                  name: str) -> EstimateReport:
    """Worker-side body of one configuration's estimation."""
    return estimate_model(model.phases, factory, config_name=name)


def full_study(program: Callable, nprocs: int, *args,
               cluster_factories: dict[str, ClusterFactory],
               app_name: str = "app",
               measure_configs: Sequence[str] = (),
               tick_tol: int = 16,
               parallel: bool = False,
               max_workers: int | None = None,
               retry: RetryPolicy | None = None,
               timeout_s: float | None = None,
               raise_on_error: bool = True,
               checkpoint_dir: str | None = None,
               resume: bool = False) -> dict:
    """The complete methodology for one application.

    Characterize once; estimate on every configuration; optionally
    validate (measure) on some of them.  Returns a dict with the model,
    per-config estimates, measurements, evaluations and the selection.

    ``parallel=True`` estimates the configurations concurrently in
    worker processes (factories must be picklable, i.e. module-level;
    unpicklable sweeps fall back to the serial path).

    Resilience (see :mod:`repro.core.sweep`): ``retry`` re-runs a
    configuration's estimate on transient faults with bounded backoff;
    ``timeout_s`` bounds each parallel job; ``raise_on_error=False``
    keeps going past failed configurations (they appear as
    :class:`~repro.core.sweep.JobFailure` entries in ``estimates`` and
    are excluded from the selection); ``checkpoint_dir``/``resume``
    persist each completed estimate atomically so a killed study can be
    resumed bit-identically.
    """
    with obs.span("pipeline.full_study", cat="pipeline", app=app_name,
                  np=nprocs) as sp:
        model, bundle = characterize_app(program, nprocs, *args,
                                         app_name=app_name, tick_tol=tick_tol)
        estimates = sweep_map(
            _estimate_job,
            {name: (model, factory, name)
             for name, factory in cluster_factories.items()},
            parallel=parallel, max_workers=max_workers,
            retry=retry, timeout_s=timeout_s,
            raise_on_error=raise_on_error,
            checkpoint_dir=checkpoint_dir, resume=resume)
        if obs.ACTIVE:
            for name, report in estimates.items():
                if not report:  # JobFailure
                    continue
                for p in report.phases:
                    obs.set_gauge("phase_bw_ch_mb_s", p.bw_ch_mb_s,
                                  config=name, phase=str(p.phase_id))
        evaluations = {}
        for name in measure_configs:
            factory = cluster_factories[name]
            measure, measured_model = measure_on(
                program, nprocs, *args, cluster_factory=factory,
                app_name=app_name, tick_tol=tick_tol)
            peaks = characterize_peaks_for(factory)
            evaluations[name] = evaluate(measured_model, estimates[name],
                                         measure, peaks=peaks)
        totals = {name: est.total_time_ch
                  for name, est in estimates.items() if est}
        if not totals:
            raise SweepJobError(
                "selection", "every configuration's estimate failed",
                "\n".join(f.traceback for f in estimates.values() if not f))
        best = min(totals, key=totals.get)
        sp.annotate(best=best)
    return {
        "model": model,
        "trace": bundle,
        "estimates": estimates,
        "evaluations": evaluations,
        "selection": {"best": best, "totals": totals},
    }

"""End-to-end methodology pipeline (paper section III).

Glues the three stages together:

1. ``characterize_app`` -- run the application once with the tracer on a
   neutral platform; extract the system-independent I/O abstract model.
2. ``estimate_on`` -- replay the model's phases with IOR on a target
   configuration: per-phase BW_CH and Time_io(CH) (eqs. 1-2).
3. ``measure_on`` -- actually run the application on the target and
   extract per-phase BW_MD / Time_io(MD) (validation only; the whole
   point of the methodology is that step 3 is *not needed* to choose a
   configuration).
4. ``evaluate`` -- join the two into the paper's evaluation rows:
   system usage (eq. 5) and estimation errors (eqs. 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.faults.resilience import RetryPolicy
from repro.simmpi.engine import IdealPlatform
from repro.tracer.hooks import TraceBundle, trace_run

from . import cache as simcache
from .estimate import (
    ClusterFactory,
    EstimateReport,
    MeasureReport,
    estimate_model,
    measure_phases,
    peak_bandwidth,
    relative_error,
    system_usage,
)
from .model import IOModel
from .planner import build_replay_plan
from .sweep import SweepJobError, sweep_map

MB = 1024 * 1024


def _trace_key(stage: str, fp, program: Callable, nprocs: int, args: tuple,
               *extras) -> tuple | None:
    """Memo key for a traced run, or None when trace caching is off.

    Tracing an application is the single most expensive step of a study,
    and it is a pure function of (program, process count, arguments,
    platform).  The result is memoized in the ``"trace"`` cache **only
    while a persistent store is attached** -- an in-memory-only trace
    cache would just hide repeated work inside one process, whereas the
    warm-start story is about the *next* process.  The program enters
    the disk key through its code-object digest, so editing the
    application source invalidates its cached traces automatically.
    """
    from repro import store as _store

    if _store.active() is None:
        return None
    if fp is None:
        return None  # platform opted out of fingerprinting
    key = ("trace_run", stage, program, nprocs, tuple(args), fp) + extras
    try:
        hash(key)
    except TypeError:
        return None  # unhashable arguments opt out of memoization
    return key


def characterize_app(program: Callable, nprocs: int, *args,
                     app_name: str = "app", tick_tol: int = 16,
                     platform=None,
                     method: str = "columnar",
                     jobs: int | None = None) -> tuple[IOModel, TraceBundle]:
    """Stage 1: trace the application off-line and extract its I/O model.

    The platform defaults to :class:`IdealPlatform` -- the model must not
    depend on any particular I/O subsystem (its phases, weights and
    offset functions are identical whatever platform is used; only the
    measured durations differ).

    ``method`` selects the model-extraction path: ``"columnar"`` (the
    vectorized default) or ``"records"`` (the per-record reference
    implementation; identical models, kept for cross-checking).

    With a persistent store attached (:mod:`repro.store`) the traced
    run and extracted model are memoized, so re-characterizing the same
    application warm-starts from disk.

    ``jobs`` scopes an ingest fan-out (:func:`repro.tracer.ingest
    .ingest_jobs`) over the characterization: the in-process tracer
    itself never parses text, but any trace-file ingest the program or
    a nested load triggers inherits it.  The model is unaffected.
    """
    from repro.tracer.ingest import ingest_jobs

    with obs.span("pipeline.characterize", cat="pipeline", app=app_name,
                  np=nprocs) as sp, ingest_jobs(jobs):
        plat = platform or IdealPlatform()
        key = _trace_key("characterize", simcache.platform_fingerprint(plat),
                         program, nprocs, args, app_name, tick_tol, method)
        if key is not None:
            hit = simcache.cache("trace").lookup(key)
            if hit is not simcache._MISS:
                model, hit_nprocs, metadata, columns = hit
                bundle = TraceBundle(hit_nprocs, columns=columns,
                                     metadata=metadata)
                sp.annotate(nphases=model.nphases, events=bundle.nevents,
                            cached=True)
                return model, bundle
        bundle = trace_run(program, nprocs, plat, *args)
        model = build_model(bundle, app_name=app_name, tick_tol=tick_tol,
                            method=method)
        if key is not None:
            simcache.cache("trace").store(
                key, (model, bundle.nprocs, bundle.metadata, bundle.columns))
        sp.annotate(nphases=model.nphases, events=bundle.nevents)
    return model, bundle


def build_model(bundle: TraceBundle, app_name: str = "app",
                tick_tol: int = 16, gap: int = 1,
                method: str = "columnar") -> IOModel:
    """Extract the I/O abstract model from an existing trace bundle."""
    return IOModel.from_trace(bundle, app_name=app_name, tick_tol=tick_tol,
                              gap=gap, method=method)


def characterize_stream(directory, app_name: str = "app",
                        tick_tol: int = 16, gap: int = 1,
                        chunk_rows: int = 1 << 16,
                        jobs: int | None = None) -> IOModel:
    """Extract the model from a saved trace directory, *streaming*.

    The bundle's trace files are parsed block-wise through the ingest
    engine's bulk kernel and folded incrementally
    (:meth:`IOModel.from_stream`), so a million-event text trace
    characterizes in O(parse block + open bursts) memory while
    producing the bit-identical model to :func:`build_model` on the
    loaded bundle.  ``jobs`` > 1 fans the parse out across a process
    pool (see :mod:`repro.tracer.ingest`; trades the memory bound for
    speed), and with a persistent store attached re-runs warm-start
    from the parse cache -- the model is identical either way.
    """
    from repro.tracer.hooks import stream_bundle

    with obs.span("pipeline.characterize_stream", cat="pipeline",
                  app=app_name) as sp:
        nprocs, metadata, chunks = stream_bundle(directory,
                                                 chunk_rows=chunk_rows,
                                                 jobs=jobs)
        model = IOModel.from_stream(chunks, metadata, nprocs,
                                    app_name=app_name, tick_tol=tick_tol,
                                    gap=gap)
        sp.annotate(nphases=model.nphases)
    return model


def _characterize_bundle_job(columns, metadata, nprocs: int, app_name: str,
                             tick_tol: int, gap: int, method: str) -> IOModel:
    """Worker-side body of one bundle's model extraction."""
    bundle = TraceBundle(nprocs, columns=columns, metadata=metadata)
    return IOModel.from_trace(bundle, app_name=app_name, tick_tol=tick_tol,
                              gap=gap, method=method)


def characterize_bundles(bundles: dict[str, TraceBundle], *,
                         tick_tol: int = 16, gap: int = 1,
                         method: str = "columnar",
                         parallel: bool = False,
                         max_workers: int | None = None,
                         raise_on_error: bool = True,
                         retry: RetryPolicy | None = None,
                         timeout_s: float | None = None,
                         checkpoint_dir: str | None = None,
                         resume: bool = False,
                         executor=None) -> dict[str, IOModel]:
    """Extract models from many trace bundles in one sweep.

    With ``parallel=True`` the bundles' column arrays are published to
    POSIX shared memory (:mod:`repro.tracer.shm`) and each worker
    attaches zero-copy instead of unpickling its own copy of the trace
    -- the dominant serialization cost of a multi-trace
    characterization sweep.  Serial and unpicklable sweeps behave
    exactly like calling :func:`build_model` per bundle.  The
    resilience knobs mirror :func:`repro.core.sweep.sweep_map`.
    """
    jobs = {name: (bundle.columns, bundle.metadata, bundle.nprocs,
                   name, tick_tol, gap, method)
            for name, bundle in bundles.items()}
    return sweep_map(_characterize_bundle_job, jobs,
                     parallel=parallel, max_workers=max_workers,
                     raise_on_error=raise_on_error, retry=retry,
                     timeout_s=timeout_s, checkpoint_dir=checkpoint_dir,
                     resume=resume, executor=executor)


def estimate_on(model: IOModel, cluster_factory: ClusterFactory,
                config_name: str = "config") -> EstimateReport:
    """Stage 2: IOR replication of each phase on the target (eqs. 1-2)."""
    with obs.span("pipeline.estimate", cat="pipeline", app=model.app_name,
                  config=config_name):
        report = estimate_model(model.phases, cluster_factory,
                                config_name=config_name)
    if obs.ACTIVE:
        for p in report.phases:
            obs.set_gauge("phase_bw_ch_mb_s", p.bw_ch_mb_s,
                          config=config_name, phase=str(p.phase_id))
    return report


def measure_on(program: Callable, nprocs: int, *args,
               cluster_factory: ClusterFactory, app_name: str = "app",
               tick_tol: int = 16) -> tuple[MeasureReport, IOModel]:
    """Stage 3 (validation): run the app on the target and measure phases."""
    with obs.span("pipeline.measure", cat="pipeline", app=app_name,
                  np=nprocs):
        key = _trace_key("measure", simcache.factory_fingerprint(cluster_factory),
                         program, nprocs, args, app_name, tick_tol)
        if key is not None:
            hit = simcache.cache("trace").lookup(key)
            if hit is not simcache._MISS:
                return measure_phases(hit.phases, config_name=app_name), hit
        cluster = cluster_factory()
        bundle = trace_run(program, nprocs, cluster, *args)
        model = IOModel.from_trace(bundle, app_name=app_name, tick_tol=tick_tol)
        if key is not None:
            simcache.cache("trace").store(key, model)
        return measure_phases(model.phases, config_name=app_name), model


@dataclass
class EvaluationRow:
    """One phase's joined evaluation (Tables IX/X/XIII/XIV columns)."""

    phase_id: int
    op_label: str
    n_operations: int
    weight: int
    bw_ch_mb_s: float
    bw_md_mb_s: float
    time_ch: float
    time_md: float
    bw_pk_mb_s: float | None = None

    @property
    def usage_pct(self) -> float:
        """eq. (5); requires bw_pk."""
        if self.bw_pk_mb_s is None:
            raise ValueError("no BW_PK available for this row")
        return system_usage(self.bw_md_mb_s, self.bw_pk_mb_s)

    @property
    def error_rel_pct(self) -> float:
        """eq. (6) on bandwidths."""
        return relative_error(self.bw_ch_mb_s, self.bw_md_mb_s)

    @property
    def time_error_rel_pct(self) -> float:
        """Relative error expressed on times (Tables XIII/XIV)."""
        return 100.0 * abs(self.time_ch - self.time_md) / max(self.time_md, 1e-12)


@dataclass
class Evaluation:
    """Full joined evaluation of one app model on one configuration."""

    config_name: str
    rows: list[EvaluationRow] = field(default_factory=list)

    @property
    def total_time_ch(self) -> float:
        return sum(r.time_ch for r in self.rows)

    @property
    def total_time_md(self) -> float:
        return sum(r.time_md for r in self.rows)

    @property
    def total_time_error_pct(self) -> float:
        return 100.0 * abs(self.total_time_ch - self.total_time_md) / \
            max(self.total_time_md, 1e-12)


def evaluate(model: IOModel, estimate: EstimateReport, measure: MeasureReport,
             peaks: dict[str, float] | None = None) -> Evaluation:
    """Join estimation and measurement into per-phase evaluation rows.

    ``peaks`` maps operation kind ("write"/"read") to BW_PK in MB/s; for
    mixed phases the average of the kinds' peaks is used (the paper's
    Table IX lists an intermediate BW_PK for the W-R phase).
    """
    ev = Evaluation(config_name=estimate.config_name)
    measured = {m.phase_id: m for m in measure.phases}
    model_phases = {ph.phase_id: ph for ph in model.phases}
    for est in estimate.phases:
        md = measured.get(est.phase_id)
        if md is None:
            continue
        ph = model_phases[est.phase_id]
        bw_pk = None
        if peaks:
            kinds = ph.kinds
            bw_pk = sum(peaks[k] for k in kinds) / len(kinds)
        ev.rows.append(EvaluationRow(
            phase_id=est.phase_id,
            op_label=est.op_label,
            n_operations=ph.n_operations,
            weight=est.weight,
            bw_ch_mb_s=est.bw_ch_mb_s,
            bw_md_mb_s=md.bw_md_mb_s,
            time_ch=est.time_ch,
            time_md=md.time_md,
            bw_pk_mb_s=bw_pk,
        ))
    if obs.ACTIVE:
        obs.event("pipeline.evaluate", cat="pipeline",
                  config=ev.config_name, rows=len(ev.rows))
    return ev


def characterize_peaks_for(cluster_factory: ClusterFactory) -> dict[str, float]:
    """BW_PK per operation kind for a configuration (eqs. 3-4, via IOzone)."""
    return {
        "write": peak_bandwidth(cluster_factory, "write"),
        "read": peak_bandwidth(cluster_factory, "read"),
    }


def full_study(program: Callable, nprocs: int, *args,
               cluster_factories: dict[str, ClusterFactory],
               app_name: str = "app",
               measure_configs: Sequence[str] = (),
               tick_tol: int = 16,
               parallel: bool = False,
               max_workers: int | None = None,
               retry: RetryPolicy | None = None,
               timeout_s: float | None = None,
               raise_on_error: bool = True,
               checkpoint_dir: str | None = None,
               resume: bool = False,
               executor=None) -> dict:
    """The complete methodology for one application.

    Characterize once; estimate on every configuration; optionally
    validate (measure) on some of them.  Returns a dict with the model,
    per-config estimates, measurements, evaluations and the selection.

    Estimation goes through the replay planner
    (:mod:`repro.core.planner`): the replay requests of all
    configurations are deduplicated up front, so only unique
    (phase signature, configuration fingerprint) pairs are executed.
    ``parallel=True`` sweeps those unique replays concurrently in
    worker processes (factories must be picklable, i.e. module-level;
    unpicklable sweeps fall back to the serial path).
    ``executor="cluster"`` (or ``REPRO_EXECUTOR=cluster``) fans the
    unique replays out to socket workers instead -- see
    :mod:`repro.core.executors`; results are bit-identical whichever
    backend runs them.

    Resilience (see :mod:`repro.core.sweep`), applied per unique
    replay: ``retry`` re-runs it on transient faults with bounded
    backoff; ``timeout_s`` bounds each parallel job;
    ``raise_on_error=False`` keeps going past failures (every dependent
    configuration appears as a :class:`~repro.core.sweep.JobFailure`
    entry in ``estimates`` and is excluded from the selection);
    ``checkpoint_dir``/``resume`` persist each completed replay
    atomically so a killed study can be resumed bit-identically.
    """
    with obs.span("pipeline.full_study", cat="pipeline", app=app_name,
                  np=nprocs) as sp:
        model, bundle = characterize_app(program, nprocs, *args,
                                         app_name=app_name, tick_tol=tick_tol)
        plan = build_replay_plan(model.phases, cluster_factories)
        estimates = plan.execute(
            parallel=parallel, max_workers=max_workers,
            retry=retry, timeout_s=timeout_s,
            raise_on_error=raise_on_error,
            checkpoint_dir=checkpoint_dir, resume=resume,
            executor=executor)
        if obs.ACTIVE:
            for name, report in estimates.items():
                if not report:  # JobFailure
                    continue
                for p in report.phases:
                    obs.set_gauge("phase_bw_ch_mb_s", p.bw_ch_mb_s,
                                  config=name, phase=str(p.phase_id))
        evaluations = {}
        for name in measure_configs:
            factory = cluster_factories[name]
            measure, measured_model = measure_on(
                program, nprocs, *args, cluster_factory=factory,
                app_name=app_name, tick_tol=tick_tol)
            peaks = characterize_peaks_for(factory)
            evaluations[name] = evaluate(measured_model, estimates[name],
                                         measure, peaks=peaks)
        totals = {name: est.total_time_ch
                  for name, est in estimates.items() if est}
        if not totals:
            raise SweepJobError(
                "selection", "every configuration's estimate failed",
                "\n".join(f.traceback for f in estimates.values() if not f))
        best = min(totals, key=totals.get)
        sp.annotate(best=best)
    return {
        "model": model,
        "trace": bundle,
        "estimates": estimates,
        "evaluations": evaluations,
        "selection": {"best": best, "totals": totals},
    }

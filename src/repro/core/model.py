"""The I/O abstract model of a parallel application (paper section III-A.1).

The model has the paper's three components:

* **metadata** -- pointer kinds, collective use, access mode/type, etype
  (from the tracer);
* **spatial global pattern** -- per phase: f(initOffset), displacement,
  request size;
* **temporal global pattern** -- the phase sequence ordered by tick.

It is *independent of the I/O subsystem*: build it once from a trace
(usually on the neutral :class:`~repro.simmpi.engine.IdealPlatform`) and
evaluate it against any cluster.  Serializable to JSON so the off-line
characterization can be shipped to target systems, as the methodology
prescribes.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.tracer.hooks import TraceBundle
from repro.tracer.metadata import AppMetadata

from .lap import LAPEntry, extract_laps, extract_laps_columns
from .offsetfn import OffsetFunction
from .phases import (
    DEFAULT_TICK_TOL,
    Phase,
    PhaseOp,
    file_groups_from_metadata,
    identify_phases,
)


@dataclass
class IOModel:
    """I/O abstract model: metadata + ordered I/O phases."""

    app_name: str
    np: int
    metadata: AppMetadata
    phases: list[Phase] = field(default_factory=list)
    tick_tol: int = DEFAULT_TICK_TOL

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_trace(cls, bundle: TraceBundle, app_name: str = "app",
                   tick_tol: int = DEFAULT_TICK_TOL, gap: int = 1,
                   method: str = "columnar") -> "IOModel":
        """Characterization: trace -> LAPs -> phases -> model.

        ``method`` picks the LAP extraction path: ``"columnar"`` (the
        vectorized default over ``bundle.columns``) or ``"records"``
        (the per-record reference implementation).  Both produce
        identical models -- asserted per seed app by
        ``tests/core/test_columnar_equivalence.py``.
        """
        if method == "columnar":
            return cls.from_columns(
                bundle.columns, bundle.metadata, bundle.nprocs,
                app_name=app_name, tick_tol=tick_tol, gap=gap)
        if method != "records":
            raise ValueError(f"unknown characterization method {method!r}")
        with obs.span("characterize.model", cat="pipeline", method=method):
            t0 = _time.perf_counter()
            with obs.span("characterize.laps", cat="pipeline"):
                entries = extract_laps(bundle.records, gap=gap)
            model = cls._from_entries(entries, bundle.metadata, bundle.nprocs,
                                      app_name, tick_tol)
        if obs.ACTIVE:
            _observe_characterization(method, len(bundle.records),
                                      len(entries),
                                      _time.perf_counter() - t0)
        return model

    @classmethod
    def from_columns(cls, columns, metadata: AppMetadata, nprocs: int,
                     app_name: str = "app", tick_tol: int = DEFAULT_TICK_TOL,
                     gap: int = 1) -> "IOModel":
        """Characterization over a ``TraceColumns`` (no record objects).

        When a persistent store is attached (:mod:`repro.store`) the
        extracted model is memoized in the ``"characterize"`` cache
        under the trace's content digest, so re-characterizing the same
        trace -- across processes -- warm-starts from disk.  The
        ``"records"`` path never consults the cache: it stays the cold
        reference implementation.
        """
        from repro import store as _store

        from . import cache as simcache

        key = None
        if _store.active() is not None:
            # metadata enters as canonical JSON (dicts are unhashable)
            meta = json.dumps(metadata.to_dict(), sort_keys=True) \
                if metadata is not None else None
            key = ("from_columns", columns.content_digest(), meta,
                   nprocs, app_name, tick_tol, gap)
            hit = simcache.cache("characterize").lookup(key)
            if hit is not simcache._MISS:
                return hit
        with obs.span("characterize.model", cat="pipeline",
                      method="columnar"):
            t0 = _time.perf_counter()
            with obs.span("characterize.laps", cat="pipeline"):
                entries = extract_laps_columns(columns, gap=gap)
            model = cls._from_entries(entries, metadata, nprocs, app_name,
                                      tick_tol)
        if obs.ACTIVE:
            _observe_characterization("columnar", len(columns), len(entries),
                                      _time.perf_counter() - t0)
        if key is not None:
            simcache.cache("characterize").store(key, model)
        return model

    @classmethod
    def from_stream(cls, chunks, metadata: AppMetadata, nprocs: int,
                    app_name: str = "app", tick_tol: int = DEFAULT_TICK_TOL,
                    gap: int = 1) -> "IOModel":
        """Characterization over *streamed* trace chunks.

        ``chunks`` is an iterable of ``TraceColumns`` pieces (e.g. from
        :func:`repro.tracer.columns.iter_trace_column_chunks` or
        :func:`repro.tracer.hooks.stream_bundle`) whose concatenation is
        the full trace.  LAPs fold incrementally
        (:class:`~repro.core.lap.LAPFolder`), so memory stays
        O(phases + open bursts) instead of O(events): million-event
        traces characterize without ever materializing full columns.
        The result is bit-identical to :meth:`from_columns` /
        :meth:`from_trace` on the materialized trace.

        The ``"characterize"`` store cache is shared with
        :meth:`from_columns` -- the folder's running digest equals the
        materialized trace's content digest, so either path warm-starts
        the other.  (The lookup necessarily happens *after* the stream
        is consumed; a hit still skips phase identification.)
        """
        from repro import store as _store

        from . import cache as simcache
        from .lap import LAPFolder

        with obs.span("characterize.model", cat="pipeline",
                      method="stream"):
            t0 = _time.perf_counter()
            # the digest is only ever consulted for the store cache key;
            # with no store attached, skip hashing the stream entirely
            want_key = _store.active() is not None
            folder = LAPFolder(gap=gap, digest=want_key)
            with obs.span("characterize.laps", cat="pipeline"):
                for chunk in chunks:
                    folder.push(chunk)
                entries = folder.finish()
            key = None
            if want_key and _store.active() is not None:
                meta = json.dumps(metadata.to_dict(), sort_keys=True) \
                    if metadata is not None else None
                key = ("from_columns", folder.content_digest(), meta,
                       nprocs, app_name, tick_tol, gap)
                hit = simcache.cache("characterize").lookup(key)
                if hit is not simcache._MISS:
                    return hit
            model = cls._from_entries(entries, metadata, nprocs, app_name,
                                      tick_tol)
        if obs.ACTIVE:
            _observe_characterization("stream", folder.nrows, len(entries),
                                      _time.perf_counter() - t0)
            obs.inc("characterize_stream_peak_open_rows",
                    folder.peak_open_rows)
        if key is not None:
            simcache.cache("characterize").store(key, model)
        return model

    @classmethod
    def _from_entries(cls, entries: list[LAPEntry], metadata: AppMetadata,
                      nprocs: int, app_name: str, tick_tol: int) -> "IOModel":
        if metadata is None:
            # Quarantine-salvaged bundle whose metadata.json was lost:
            # model without file grouping rather than no model at all.
            metadata = AppMetadata()
        groups = file_groups_from_metadata(metadata)
        with obs.span("characterize.phases", cat="pipeline"):
            phases = identify_phases(entries, file_groups=groups,
                                     tick_tol=tick_tol)
        return cls(app_name=app_name, np=nprocs, metadata=metadata,
                   phases=phases, tick_tol=tick_tol)

    # -- aggregate views ---------------------------------------------------------
    @property
    def nphases(self) -> int:
        return len(self.phases)

    @property
    def total_weight(self) -> int:
        """Total bytes the model moves (sum of phase weights)."""
        return sum(ph.weight for ph in self.phases)

    def weight_by_kind(self) -> dict[str, int]:
        out = {"write": 0, "read": 0}
        for ph in self.phases:
            for op in ph.ops:
                out[op.kind] += ph.np * ph.rep * op.request_size
        return out

    def phases_for(self, file_group: str) -> list[Phase]:
        return [ph for ph in self.phases if ph.file_group == file_group]

    @property
    def file_groups(self) -> list[str]:
        seen: list[str] = []
        for ph in self.phases:
            if ph.file_group not in seen:
                seen.append(ph.file_group)
        return seen

    # -- serialization --------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "app_name": self.app_name,
            "np": self.np,
            "tick_tol": self.tick_tol,
            "metadata": self.metadata.to_dict(),
            "phases": [_phase_to_dict(ph) for ph in self.phases],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IOModel":
        return cls(
            app_name=data["app_name"],
            np=data["np"],
            tick_tol=data.get("tick_tol", DEFAULT_TICK_TOL),
            metadata=AppMetadata.from_dict(data["metadata"]),
            phases=[_phase_from_dict(d) for d in data["phases"]],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "IOModel":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        from repro.ioutil import atomic_write_text
        atomic_write_text(Path(path), self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "IOModel":
        return cls.from_json(Path(path).read_text())

    # -- reporting ---------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line digest: metadata statements plus the phase table."""
        lines = [f"I/O model of {self.app_name} (np={self.np}, "
                 f"{self.nphases} phases, {self.total_weight / 2**20:.0f} MB)"]
        for f in self.metadata.files:
            lines.append(f"  file {f.filename}:")
            for s in f.statements():
                lines.append(f"    - {s}")
        for ph in self.phases:
            rs = ph.request_size
            fn = ph.ops[0].abs_offset_fn.expression(rs=rs)
            lines.append(
                f"  phase {ph.phase_id}: {ph.np} {ph.op_label} rep={ph.rep} "
                f"rs={rs} weight={ph.weight / 2**20:.0f}MB initOffset={fn}"
            )
        return "\n".join(lines)


def _observe_characterization(method: str, nrows: int, nentries: int,
                              elapsed: float) -> None:
    obs.inc("characterize_rows_total", nrows, method=method)
    obs.inc("characterize_lap_entries_total", nentries, method=method)
    obs.set_gauge("characterize_rows_per_s",
                  nrows / elapsed if elapsed > 0 else 0.0, method=method)


def models_equivalent(a: "IOModel", b: "IOModel") -> bool:
    """True when two models describe the same application I/O behaviour.

    This is the paper's system-independence check (Figs. 9-10: "we had
    obtained the same I/O model in the four configurations"): phase
    structure, weights, repetition counts, operations, request sizes and
    offset functions must agree; measured durations and tick values (the
    only platform-dependent parts) are ignored.
    """
    if a.np != b.np or a.nphases != b.nphases:
        return False
    for pa, pb in zip(a.phases, b.phases):
        if (pa.file_group != pb.file_group or pa.rep != pb.rep
                or pa.ranks != pb.ranks or pa.unique_file != pb.unique_file
                or len(pa.ops) != len(pb.ops)):
            return False
        for oa, ob in zip(pa.ops, pb.ops):
            if (oa.op != ob.op or oa.request_size != ob.request_size
                    or oa.disp != ob.disp):
                return False
            probe_ranks = list(pa.ranks)[:3] + [max(pa.ranks)]
            for r in probe_ranks:
                if oa.abs_offset_fn(r) != ob.abs_offset_fn(r):
                    return False
    return True


def _offsetfn_to_dict(fn: OffsetFunction) -> dict:
    return {
        "slope": [fn.slope.numerator, fn.slope.denominator] if fn.slope is not None else None,
        "intercept": [fn.intercept.numerator, fn.intercept.denominator]
        if fn.intercept is not None else None,
        "table": list(map(list, fn.table)),
    }


def _offsetfn_from_dict(d: dict) -> OffsetFunction:
    slope = Fraction(*d["slope"]) if d["slope"] is not None else None
    intercept = Fraction(*d["intercept"]) if d["intercept"] is not None else None
    return OffsetFunction(slope=slope, intercept=intercept,
                          table=tuple(tuple(p) for p in d["table"]))


def _phase_to_dict(ph: Phase) -> dict:
    return {
        "phase_id": ph.phase_id,
        "file_group": ph.file_group,
        "rep": ph.rep,
        "ranks": list(ph.ranks),
        "tick": ph.tick,
        "first_time": ph.first_time,
        "duration": ph.duration,
        "unique_file": ph.unique_file,
        "file_ids": list(ph.file_ids),
        "ops": [
            {
                "op": o.op,
                "kind": o.kind,
                "request_size": o.request_size,
                "disp": o.disp,
                "offset_fn": _offsetfn_to_dict(o.offset_fn),
                "abs_offset_fn": _offsetfn_to_dict(o.abs_offset_fn),
            }
            for o in ph.ops
        ],
    }


def _phase_from_dict(d: dict) -> Phase:
    ops = tuple(
        PhaseOp(
            op=o["op"],
            kind=o["kind"],
            request_size=o["request_size"],
            disp=o["disp"],
            offset_fn=_offsetfn_from_dict(o["offset_fn"]),
            abs_offset_fn=_offsetfn_from_dict(o["abs_offset_fn"]),
        )
        for o in d["ops"]
    )
    return Phase(
        phase_id=d["phase_id"],
        file_group=d["file_group"],
        rep=d["rep"],
        ops=ops,
        ranks=tuple(d["ranks"]),
        tick=d["tick"],
        first_time=d["first_time"],
        duration=d["duration"],
        unique_file=d["unique_file"],
        file_ids=tuple(d["file_ids"]),
    )

"""Cross-configuration replay planner (the O(unique replays) sweep).

``full_study`` / ``select_configuration`` estimate one model against N
candidate configurations.  Done naively that is O(configs x phases)
phase replays, but most of the work is duplicated twice over:

* **within a configuration** -- BT-IO's 50 write phases share one
  replication signature (``estimate_model`` already dedupes these);
* **across configurations** -- two candidates that are *structurally*
  identical (same fingerprint: configuration B's triple-server NFS vs
  a renamed clone; a degraded variant sweep where only one element
  changed) replay every phase to bit-identical results.

The planner lifts both dedups above the sweep: it collects every
(phase-signature, configuration-fingerprint) replay request up front,
keeps one :class:`ReplayJob` per unique pair, executes only those --
optionally in parallel via :func:`~repro.core.sweep.sweep_map`, each
warm-started from the persistent store (:mod:`repro.store`) because the
IOR runs inside are memoized -- and fans the results back out into one
:class:`~repro.core.estimate.EstimateReport` per configuration, ordered
exactly as ``estimate_model`` would have produced it.

Configurations whose factory has no fingerprint (ad-hoc test doubles)
still participate: they get private jobs keyed by configuration name,
so only the cross-config dedup is lost for them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro import obs

from . import cache as simcache
from .estimate import (
    ClusterFactory,
    EstimateReport,
    PhaseEstimate,
    estimate_phase,
)
from .phases import Phase
from .sweep import JobFailure, sweep_map


def phase_signature(phase: Phase) -> tuple:
    """What must match for two phases to share one replication run.

    Identical to the in-config dedup key of
    :func:`~repro.core.estimate.estimate_model`: process count,
    repetition count, unique/collective flags and the (op, request
    size) unit -- everything the IOR replication is derived from.
    """
    return (phase.np, phase.rep, phase.unique_file, phase.collective,
            tuple((o.op, o.request_size) for o in phase.ops))


def _job_name(config_name: str, sig: tuple, fp: Hashable | None) -> str:
    """Deterministic, filesystem-safe job id (stable across processes,
    usable as a ``sweep_map`` checkpoint name)."""
    scope = repr(fp) if fp is not None else f"config:{config_name}"
    digest = hashlib.sha1(f"{scope}|{sig!r}".encode()).hexdigest()[:12]
    return f"replay-{digest}"


@dataclass
class ReplayJob:
    """One unique phase replication: executed once, fanned out many times."""

    name: str
    phase: Phase  # representative phase carrying the signature
    factory: ClusterFactory
    #: (config_name, phase index) slots this job's result feeds.
    consumers: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ReplayPlan:
    """The batched execution plan for one model over many configurations."""

    phases: tuple[Phase, ...]
    config_names: tuple[str, ...]
    jobs: dict[str, ReplayJob]
    requests: int  # total (config, phase) replay requests collected

    @property
    def unique(self) -> int:
        return len(self.jobs)

    def execute(self, parallel: bool = False,
                max_workers: int | None = None, *,
                runner: Callable[[Phase, ClusterFactory], PhaseEstimate]
                | None = None,
                raise_on_error: bool = True,
                retry=None,
                timeout_s: float | None = None,
                checkpoint_dir=None,
                resume: bool = False,
                executor=None) -> dict[str, EstimateReport | JobFailure]:
        """Run the unique jobs and fan results back out per configuration.

        Returns ``{config_name: EstimateReport}`` bit-identical to
        calling ``estimate_model`` per configuration.  With
        ``raise_on_error=False`` a failed job fails every configuration
        that depends on it (a falsy :class:`JobFailure` in the dict),
        and the remaining configurations survive.  The resilience knobs
        are per unique job, not per configuration.
        """
        if obs.ACTIVE:
            obs.inc("replay_plan_requests_total", amount=self.requests)
            obs.inc("replay_plan_unique_total", amount=self.unique)
        fn = runner or _run_replay_job
        results = sweep_map(
            fn, {name: (job.phase, job.factory)
                 for name, job in self.jobs.items()},
            parallel=parallel, max_workers=max_workers,
            raise_on_error=raise_on_error, retry=retry, timeout_s=timeout_s,
            checkpoint_dir=checkpoint_dir, resume=resume, executor=executor)
        return self.fan_out(results)

    def fan_out(self, results: dict[str, Any]
                ) -> dict[str, EstimateReport | JobFailure]:
        """Scatter per-job estimates into per-configuration reports."""
        per_config: dict[str, list[PhaseEstimate | None]] = {
            name: [None] * len(self.phases) for name in self.config_names}
        failed: dict[str, JobFailure] = {}
        for name, job in self.jobs.items():
            result = results[name]
            for config_name, idx in job.consumers:
                if isinstance(result, JobFailure):
                    failed.setdefault(
                        config_name,
                        JobFailure(name=config_name, error=result.error,
                                   traceback=result.traceback,
                                   timed_out=result.timed_out))
                    continue
                ph = self.phases[idx]
                per_config[config_name][idx] = PhaseEstimate(
                    phase_id=ph.phase_id,
                    weight=ph.weight,
                    op_label=ph.op_label,
                    bw_ch_mb_s=result.bw_ch_mb_s,
                    bw_ch_by_kind=dict(result.bw_ch_by_kind),
                )
        out: dict[str, EstimateReport | JobFailure] = {}
        for config_name in self.config_names:
            if config_name in failed:
                out[config_name] = failed[config_name]
                continue
            out[config_name] = EstimateReport(
                config_name=config_name,
                phases=list(per_config[config_name]))
        return out


def _run_replay_job(phase: Phase, factory: ClusterFactory) -> PhaseEstimate:
    """Worker-side body of one unique replay (module-level: picklable)."""
    return estimate_phase(phase, factory)


def build_replay_plan(phases: Sequence[Phase],
                      factories: dict[str, ClusterFactory]) -> ReplayPlan:
    """Collect and dedupe every (phase, configuration) replay request.

    Dedup key: ``(phase_signature, factory fingerprint)`` -- one job per
    unique pair, shared across configurations whose clusters the
    simulation cannot distinguish.  Fingerprint-less factories dedupe
    within their own configuration only.
    """
    phases = tuple(phases)
    jobs: dict[str, ReplayJob] = {}
    requests = 0
    for config_name, factory in factories.items():
        fp = simcache.factory_fingerprint(factory)
        for idx, ph in enumerate(phases):
            requests += 1
            name = _job_name(config_name, phase_signature(ph), fp)
            job = jobs.get(name)
            if job is None:
                job = jobs[name] = ReplayJob(name=name, phase=ph,
                                             factory=factory)
            job.consumers.append((config_name, idx))
    return ReplayPlan(phases=phases, config_names=tuple(factories),
                      jobs=jobs, requests=requests)

"""Command-line interface: ``repro-io``.

Subcommands mirror the methodology's stages::

    repro-io trace     --app madbench2 --np 16 --out traces/mb2
    repro-io model     --traces traces/mb2 --out mb2.model.json
    repro-io estimate  --model mb2.model.json --config configuration-A
    repro-io usage     --app madbench2 --np 16 --config configuration-A
    repro-io select    --model mb2.model.json --configs configuration-C,finisterrae
    repro-io degraded  --model mb2.model.json --configs configuration-C,finisterrae
    repro-io replay    --model mb2.model.json --config finisterrae
    repro-io signatures --model mb2.model.json
    repro-io profile   --app madbench2 --np 16 --config configuration-A --out prof/
    repro-io cache     stats|clear|warm [--dir .repro-cache]
    repro-io workers   launch|drain [--count 4] [--port-base 7700]
    repro-io serve     --listen 127.0.0.1:7600 --journal svc/
    repro-io submit    --app madbench2 --np 16 --configs configuration-A,... --wait
    repro-io status    [--batch b000001] [--probe health|ready] [--drain]
    repro-io configs

Applications: madbench2, btio-A/B/C/D, synthetic, ior, roms.

``trace``, ``usage`` and ``replay`` accept ``--metrics`` to collect and
print the observability registry; ``profile`` runs the whole usage
pipeline with full instrumentation and writes JSON-lines, Chrome
trace_event and Prometheus artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import __version__, obs
from repro.clusters import ALL_CONFIGURATIONS
from repro.core.estimate import select_configuration
from repro.core.model import IOModel
from repro.core.pipeline import (
    characterize_app,
    characterize_peaks_for,
    estimate_on,
    evaluate,
    measure_on,
)
from repro.core.signatures import classify_model
from repro.core.synthesis import replay_model
from repro.report.tables import configuration_table, phases_table, usage_table
from repro.tracer.columns import numpy_enabled
from repro.tracer.hooks import TraceBundle


def _app_for(name: str, np: int):
    """Resolve an app name to (program, params).

    ``np`` always sets the simulated rank count (the engine runs the
    program on ``np`` ranks); additionally it is threaded into any
    params dataclass that declares an ``np`` field (IOR), so the two
    never disagree.  Process-count constraints (MADbench2 and BT-IO
    need a square count) are validated here, turning what used to be a
    mid-run engine failure into an immediate, readable error.

    The resolution rules live in :func:`repro.service.spec.resolve_app`
    (shared with the study daemon); the CLI converts its
    :class:`~repro.service.spec.BadRequest` into a ``SystemExit``.
    """
    from repro.service.spec import BadRequest, resolve_app

    try:
        return resolve_app(name, np)
    except BadRequest as exc:
        raise SystemExit(str(exc)) from None


def _factory_for(name: str):
    from repro.service.spec import BadRequest, resolve_factories

    try:
        return resolve_factories([name])[name]
    except BadRequest as exc:
        raise SystemExit(str(exc)) from None


def _jobs_type(value: str) -> int:
    """argparse type for ``--jobs``: an integer >= 1, clear error."""
    from repro.tracer.ingest import parse_jobs

    try:
        return parse_jobs(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _resolve_cli_jobs(args: argparse.Namespace) -> int:
    """Effective ingest fan-out for a CLI command.

    Precedence: ``--jobs`` flag, then a validated ``REPRO_INGEST_JOBS``
    environment variable, then the cpu-count default (capped) -- the
    CLI parallelizes by default; library calls stay serial unless
    asked.
    """
    import os

    from repro.tracer.ingest import ENV_JOBS, default_jobs, parse_jobs

    if getattr(args, "jobs", None) is not None:
        return args.jobs
    env = os.environ.get(ENV_JOBS)
    if env is not None and env.strip():
        try:
            return parse_jobs(env, what=ENV_JOBS)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    return default_jobs()


def cmd_trace(args: argparse.Namespace) -> int:
    program, params = _app_for(args.app, args.np)
    model, bundle = characterize_app(program, args.np, params, app_name=args.app)
    out = Path(args.out)
    bundle.save(out, binary=args.binary)
    model.save(out / "model.json")
    print(f"traced {args.app} on {args.np} procs: {bundle.nevents} I/O events")
    if args.binary:
        layout = "columns.npz" if numpy_enabled() else "columns.trc"
    else:
        layout = "trace.<rank>"
    print(f"wrote {out}/{layout}, metadata.json, model.json")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    jobs = _resolve_cli_jobs(args)
    if args.stream:
        if args.quarantine:
            raise SystemExit("--stream cannot salvage corrupt traces; "
                             "drop --quarantine or use the batch loader")
        if args.method != "columnar":
            raise SystemExit("--stream has a single (incremental) "
                             "extraction path; drop --method")
        from repro.core.pipeline import characterize_stream
        model = characterize_stream(args.traces, app_name=args.name,
                                    jobs=jobs)
        if args.out:
            model.save(args.out)
        print(model.describe())
        print()
        print(phases_table(model))
        return 0
    quarantine = None
    if args.quarantine:
        from repro.tracer.quarantine import QuarantineReport
        quarantine = QuarantineReport()
    bundle = TraceBundle.load(args.traces, quarantine=quarantine, jobs=jobs)
    if quarantine:
        print(quarantine.summary())
        print()
    if bundle.nevents == 0:
        raise SystemExit(f"no salvageable I/O events in {args.traces}")
    model = IOModel.from_trace(bundle, app_name=args.name, method=args.method)
    if args.out:
        model.save(args.out)
    print(model.describe())
    print()
    print(phases_table(model))
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    model = IOModel.load(args.model)
    factory = _factory_for(args.config)
    report = estimate_on(model, factory, config_name=args.config)
    print(f"I/O time estimation of {model.app_name} on {args.config} (eqs. 1-2):")
    for p in report.phases:
        print(f"  phase {p.phase_id}: BW_CH={p.bw_ch_mb_s:.1f} MB/s  "
              f"Time_io(CH)={p.time_ch:.2f} s")
    print(f"  total Time_io(CH) = {report.total_time_ch:.2f} s")
    return 0


def cmd_usage(args: argparse.Namespace) -> int:
    program, params = _app_for(args.app, args.np)
    factory = _factory_for(args.config)
    model, _ = characterize_app(program, args.np, params, app_name=args.app)
    est = estimate_on(model, factory, config_name=args.config)
    measure, mmodel = measure_on(program, args.np, params,
                                 cluster_factory=factory, app_name=args.app)
    peaks = characterize_peaks_for(factory)
    ev = evaluate(mmodel, est, measure, peaks=peaks)
    print(usage_table(ev))
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    model = IOModel.load(args.model)
    factories = {name: _factory_for(name) for name in args.configs.split(",")}
    executor = args.executor
    if executor == "cluster" and args.workers:
        from repro.core.executors import ClusterExecutor

        executor = ClusterExecutor(workers=args.workers)
    choice = select_configuration(model.phases, factories,
                                  checkpoint_dir=args.checkpoint_dir,
                                  resume=args.resume,
                                  lattice=args.lattice,
                                  executor=executor)
    print(f"estimated total I/O time of {model.app_name} (eq. 1):")
    for name, t in choice.ranking():
        marker = "  <- selected" if name == choice.best else ""
        print(f"  {name}: {t:.2f} s{marker}")
    return 0


def cmd_degraded(args: argparse.Namespace) -> int:
    """Worst-case selection: rank configurations with disks failed."""
    from repro.faults import degraded as deg

    model = IOModel.load(args.model)
    factories = {name: _factory_for(name) for name in args.configs.split(",")}
    choice = deg.worst_case_selection(model.phases, factories,
                                      rebuild=args.rebuild)
    print(f"degraded-mode study of {model.app_name} "
          f"(one dead disk per I/O node{', rebuild running' if args.rebuild else ''}):")
    for name, nominal, worst in choice.ranking():
        report = choice.reports[name]
        marker = "  <- selected (worst-case)" if name == choice.best else ""
        if name == choice.best_nominal:
            marker += "  <- nominal best"
        worst_s = "DATA LOSS" if worst == float("inf") else f"{worst:.2f} s"
        print(f"  {name}: nominal {nominal:.2f} s, worst-case {worst_s}{marker}")
        for outcome in report.outcomes[1:]:
            if outcome.lost_data:
                print(f"      {outcome.scenario}: DATA LOSS -- {outcome.detail}")
            else:
                print(f"      {outcome.scenario}: {outcome.total_time_ch:.2f} s")
    if choice.best != choice.best_nominal:
        print(f"  note: the nominal ranking would have chosen "
              f"{choice.best_nominal!r}; one disk failure flips the choice "
              f"to {choice.best!r}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    model = IOModel.load(args.model)
    factory = _factory_for(args.config)
    replayed, bundle = replay_model(model, platform=factory())
    print(f"replayed {model.app_name} (synthesized, np={model.np}) "
          f"on {args.config}: {len(bundle.records)} I/O events")
    for ph in replayed.phases:
        bw = ph.weight / (1024 * 1024) / max(ph.duration, 1e-12)
        print(f"  phase {ph.phase_id}: {ph.np} {ph.op_label} rep={ph.rep} "
              f"-> {ph.duration:.3f} s ({bw:.1f} MB/s)")
    total = sum(ph.duration for ph in replayed.phases)
    print(f"  total replayed I/O time = {total:.2f} s")
    return 0


def cmd_signatures(args: argparse.Namespace) -> int:
    model = IOModel.load(args.model)
    sigs = classify_model(model)
    print(f"I/O signatures of {model.app_name} (Byna-style taxonomy):")
    for ph in model.phases:
        sig = sigs[ph.phase_id]
        print(f"  phase {ph.phase_id}: {sig.spatial}, {sig.request_class} "
              f"requests, {sig.repetition}, {sig.parallelism}, "
              f"{sig.sharing} file")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Fully-instrumented usage pipeline + the three export artifacts."""
    from repro.obs.profile import ProfileSession

    program, params = _app_for(args.app, args.np)
    factory = _factory_for(args.config)
    jobs = _resolve_cli_jobs(args)
    with ProfileSession() as prof:
        model, _ = characterize_app(program, args.np, params,
                                    app_name=args.app, jobs=jobs)
        est = estimate_on(model, factory, config_name=args.config)
        measure, mmodel = measure_on(program, args.np, params,
                                     cluster_factory=factory,
                                     app_name=args.app)
        peaks = characterize_peaks_for(factory)
        ev = evaluate(mmodel, est, measure, peaks=peaks)
    paths = prof.write(args.out)
    print(usage_table(ev))
    print()
    print(prof.summary())
    print()
    print(f"profiled {args.app} (np={args.np}) on {args.config}; wrote:")
    for kind, path in paths.items():
        print(f"  {path}  ({kind})")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect, clear or pre-populate the persistent result store."""
    from repro import store

    root = Path(args.dir) if args.dir else store.default_root()
    rs = store.ResultStore(root)

    if args.action == "stats":
        stats = rs.stats()
        if not stats:
            print(f"result store {root}: empty")
            return 0
        print(f"result store {root} (schema v{rs.schema}):")
        total_entries = total_bytes = 0
        for cache, st in stats.items():
            print(f"  {cache:<14} {st['entries']:>6} entries  "
                  f"{st['bytes'] / 1024:>10.1f} KiB")
            total_entries += st["entries"]
            total_bytes += st["bytes"]
        print(f"  {'total':<14} {total_entries:>6} entries  "
              f"{total_bytes / 1024:>10.1f} KiB")
        return 0

    if args.action == "clear":
        removed = rs.clear(args.cache)
        what = f"cache {args.cache!r}" if args.cache else "all caches"
        print(f"removed {removed} entries ({what}) from {root}")
        return 0

    # warm: run a study against the store so the next run starts hot
    from repro.core.pipeline import full_study

    store.attach(root)
    try:
        program, params = _app_for(args.app, args.np)
        factories = {name: _factory_for(name)
                     for name in args.configs.split(",")}
        full_study(program, args.np, params, cluster_factories=factories,
                   app_name=args.app)
    finally:
        store.detach()
    stats = rs.stats()
    total = sum(st["entries"] for st in stats.values())
    print(f"warmed {root} with {args.app} (np={args.np}) on "
          f"{len(factories)} configurations: {total} entries in "
          f"{len(stats)} caches")
    return 0


def cmd_workers(args: argparse.Namespace) -> int:
    """Launch or drain socket sweep workers (the cluster executor)."""
    import os
    import socket
    import subprocess

    from repro.core.executors import cluster as cluster_mod
    from repro.core.executors import wire

    if args.action == "drain":
        spec = args.workers or os.environ.get(cluster_mod.WORKERS_ENV, "")
        endpoints = cluster_mod.parse_endpoints(spec)
        if not endpoints:
            print("no workers to drain: pass --workers host:port,... or "
                  f"set {cluster_mod.WORKERS_ENV}", file=sys.stderr)
            return 2
        failed = 0
        for host, port in endpoints:
            try:
                with socket.create_connection((host, port), timeout=5) as s:
                    wire.send_frame(s, wire.DRAIN)
                print(f"drained {host}:{port}")
            except ConnectionRefusedError:
                # Idempotence: nothing listening means the worker is
                # already gone -- a second drain of the same fleet is a
                # success, not an error.
                print(f"{host}:{port} already drained (nothing listening)")
            except OSError as exc:
                print(f"could not drain {host}:{port}: {exc}",
                      file=sys.stderr)
                failed += 1
        return 1 if failed else 0

    # launch: spawn worker processes in the foreground and babysit them.
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1])
    env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src_root)
    procs: list[subprocess.Popen] = []
    endpoints = []
    for i in range(args.count):
        port = args.port_base + i if args.port_base else 0
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.executors.worker",
             "--listen", f"{args.bind}:{port}"],
            stdout=subprocess.PIPE, env=env, text=True)
        line = (proc.stdout.readline() or "").split()
        if len(line) != 3 or line[0] != "LISTENING":
            for p in procs:
                p.terminate()
            print(f"worker {i} failed to start (exit {proc.poll()!r})",
                  file=sys.stderr)
            return 1
        procs.append(proc)
        endpoints.append(f"{line[1]}:{line[2]}")
        print(f"worker pid={proc.pid} listening on {line[1]}:{line[2]}",
              flush=True)
    print(f"export {cluster_mod.WORKERS_ENV}={','.join(endpoints)}",
          flush=True)
    try:
        for proc in procs:
            proc.wait()
    except KeyboardInterrupt:
        for proc in procs:
            proc.terminate()
    return 0


def _parse_hostport(spec: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    try:
        return host or default_host, int(port)
    except ValueError:
        raise SystemExit(f"expected HOST:PORT, got {spec!r}") from None


def _service_client(args: argparse.Namespace):
    from repro.service.protocol import ServiceClient

    host, port = _parse_hostport(args.server)
    return ServiceClient(host, port, timeout_s=args.timeout)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the study service daemon until drained (SIGTERM or drain op)."""
    from repro.service import ServiceConfig, serve_forever

    from repro.tracer.ingest import ingest_jobs

    host, port = _parse_hostport(args.listen)
    config = ServiceConfig(
        journal_dir=args.journal, host=host, port=port,
        workers=args.workers, queue_cap=args.queue_cap,
        executor=args.executor, cache_dir=args.cache_dir,
        retry_after_s=args.retry_after, metrics=args.metrics)
    # Daemon-wide ingest default; per-request ``jobs`` QoS fields nest
    # inside (the runner re-enters ingest_jobs with the spec's value).
    with ingest_jobs(_resolve_cli_jobs(args)):
        return serve_forever(config)


def _print_batch_rows(rows: list[dict]) -> None:
    for r in rows:
        line = f"  {r['id'][:12]} {r['kind']:<12} {r['app']:<10} {r['state']}"
        if "output_digest" in r:
            line += f"  digest={r['output_digest'][:12]}"
        result = r.get("result")
        if result and "best" in result:
            line += f"  best={result['best']}"
        if "error" in r:
            line += f"  error={r['error']}"
        print(line)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a batch of study requests to a running daemon."""
    import json

    client = _service_client(args)
    if args.batch_file:
        specs = json.loads(Path(args.batch_file).read_text())
        if isinstance(specs, dict):
            specs = specs.get("requests", [specs])
    else:
        if not args.app:
            raise SystemExit("submit needs --app (or --batch-file)")
        spec: dict = {"kind": args.kind, "app": args.app, "np": args.np}
        if args.configs:
            spec["configs"] = args.configs.split(",")
        if args.deadline is not None:
            spec["deadline_s"] = args.deadline
        if args.jobs is not None:
            spec["jobs"] = args.jobs
        specs = [spec]

    resp = client.submit_batch(specs)
    if not resp.get("ok"):
        if resp.get("error") == "busy":
            print(f"BUSY: queue {resp['queue_depth']}/{resp['queue_cap']} "
                  f"full; retry after {resp['retry_after_s']}s",
                  file=sys.stderr)
            return 75  # EX_TEMPFAIL: deterministic backpressure
        print(f"submit refused: {resp.get('error')}: "
              f"{resp.get('detail', '')}", file=sys.stderr)
        return 1
    print(f"batch {resp['batch']}: {len(resp['requests'])} request(s), "
          f"{resp['deduped']} deduped, queue depth {resp['queue_depth']}")
    _print_batch_rows(resp["requests"])
    if not args.wait:
        return 0
    client.wait(resp["batch"], timeout_s=args.timeout)
    res = client.results(resp["batch"])
    if not res.get("ok"):
        print(f"results unavailable: {res.get('error')}", file=sys.stderr)
        return 1
    print(f"batch {resp['batch']} "
          f"{'complete' if res['complete'] else 'still running'}:")
    _print_batch_rows(res["requests"])
    failed = any(r["state"] == "failed" for r in res["requests"])
    return 1 if failed or not res["complete"] else 0


def cmd_status(args: argparse.Namespace) -> int:
    """Probe or inspect a running daemon (health/ready/batch/server)."""
    client = _service_client(args)
    if args.drain:
        resp = client.drain()
        print(f"draining ({resp.get('pending', '?')} request(s) pending)")
        return 0 if resp.get("ok") else 1
    if args.probe:
        try:
            resp = client.health() if args.probe == "health" else client.ready()
        except OSError as exc:
            print(f"{args.probe}: unreachable ({exc})", file=sys.stderr)
            return 1
        ok = bool(resp.get("ok"))
        print(f"{args.probe}: {'ok' if ok else resp.get('error', 'not ok')}")
        return 0 if ok else 1
    if args.batch:
        resp = client.status(args.batch)
        if not resp.get("ok"):
            print(f"status failed: {resp.get('error')}", file=sys.stderr)
            return 1
        print(f"batch {args.batch} "
              f"{'complete' if resp['complete'] else 'in progress'}:")
        _print_batch_rows(resp["requests"])
        return 0
    resp = client.status()
    if not resp.get("ok"):
        print(f"status failed: {resp.get('error')}", file=sys.stderr)
        return 1
    breaker = resp["breaker"]
    print(f"study service on {args.server}: {resp['status']} "
          f"(pid {resp['pid']}, up {resp['uptime_s']:.1f}s)")
    print(f"  queue {resp['queue_depth']}/{resp['queue_cap']} "
          f"({resp['running']} running on {resp['workers']} workers)")
    print(f"  {resp['batches']} batches, {resp['completed_total']} completed, "
          f"{resp['busy_total']} BUSY rejections, "
          f"{resp['recovered']} recovered")
    print(f"  requests by state: {resp['requests'] or '{}'}")
    print(f"  executor tier: {breaker['current']} "
          f"(ladder {'->'.join(breaker['tiers'])}, "
          f"{breaker['trips']} breaker trips"
          + (f", open: {','.join(breaker['open'])}" if breaker["open"] else "")
          + ")")
    return 0


def cmd_configs(args: argparse.Namespace) -> int:
    descs = [f().description for f in ALL_CONFIGURATIONS.values()]
    print(configuration_table(descs, title="Available I/O configurations "
                                            "(paper Tables VI/VII)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-io",
        description="I/O-phase modeling methodology (Mendez et al., CLUSTER 2012)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="trace an application, extract its model")
    p.add_argument("--app", required=True)
    p.add_argument("--np", type=int, default=16)
    p.add_argument("--out", required=True)
    p.add_argument("--metrics", action="store_true",
                   help="collect and print the observability metrics")
    p.add_argument("--binary", action="store_true",
                   help="save the trace as one compact columnar file "
                        "(columns.npz / columns.trc) instead of per-rank "
                        "Fig. 2 text files")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("model", help="rebuild/print a model from saved traces")
    p.add_argument("--traces", required=True)
    p.add_argument("--name", default="app")
    p.add_argument("--out")
    p.add_argument("--method", choices=("columnar", "records"),
                   default="columnar",
                   help="model-extraction path: vectorized columnar "
                        "(default) or the per-record reference")
    p.add_argument("--quarantine", action="store_true",
                   help="salvage a partial model from corrupt/truncated "
                        "traces and print a per-rank report of what was "
                        "dropped")
    p.add_argument("--jobs", type=_jobs_type, metavar="N",
                   help="parallel ingest fan-out: shard the trace files "
                        "across N worker processes (>= 1; default: "
                        "$REPRO_INGEST_JOBS or the cpu count, capped at 8)")
    p.add_argument("--stream", action="store_true",
                   help="fold the trace incrementally (O(open-bursts) "
                        "memory) instead of loading it whole; the model "
                        "is bit-identical")
    p.set_defaults(func=cmd_model)

    p = sub.add_parser("estimate", help="estimate I/O time on a configuration")
    p.add_argument("--model", required=True)
    p.add_argument("--config", required=True)
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("usage", help="system-usage study (Tables IX/X)")
    p.add_argument("--app", required=True)
    p.add_argument("--np", type=int, default=16)
    p.add_argument("--config", required=True)
    p.add_argument("--metrics", action="store_true",
                   help="collect and print the observability metrics")
    p.set_defaults(func=cmd_usage)

    p = sub.add_parser("select", help="choose the configuration with least I/O time")
    p.add_argument("--model", required=True)
    p.add_argument("--configs", required=True,
                   help="comma-separated configuration names")
    p.add_argument("--checkpoint-dir",
                   help="persist each configuration's estimate here "
                        "(atomic write-then-rename)")
    p.add_argument("--resume", action="store_true",
                   help="skip configurations already checkpointed in "
                        "--checkpoint-dir")
    p.add_argument("--lattice", action="store_true",
                   help="evaluate all configurations analytically in one "
                        "vectorized pass (eqs. 1-4 as array kernels) "
                        "instead of per-config IOR replays")
    p.add_argument("--executor", choices=("serial", "pool", "cluster"),
                   help="sweep backend for the unique replays "
                        "(default: serial, or $REPRO_EXECUTOR)")
    p.add_argument("--workers",
                   help="cluster worker endpoints host:port,host:port "
                        "(with --executor cluster; default "
                        "$REPRO_CLUSTER_WORKERS or spawned localhost "
                        "workers)")
    p.set_defaults(func=cmd_select)

    p = sub.add_parser(
        "degraded",
        help="worst-case selection with failed disks (degraded RAID/JBOD)")
    p.add_argument("--model", required=True)
    p.add_argument("--configs", required=True,
                   help="comma-separated configuration names")
    p.add_argument("--rebuild", action="store_true",
                   help="also run a RAID rebuild on the degraded volumes "
                        "(rebuild traffic competes with foreground I/O)")
    p.set_defaults(func=cmd_degraded)

    p = sub.add_parser("replay", help="synthesize and measure a model's replay")
    p.add_argument("--model", required=True)
    p.add_argument("--config", required=True)
    p.add_argument("--metrics", action="store_true",
                   help="collect and print the observability metrics")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("signatures", help="classify a model's access patterns")
    p.add_argument("--model", required=True)
    p.set_defaults(func=cmd_signatures)

    p = sub.add_parser(
        "profile",
        help="instrumented usage pipeline + span/metrics/trace artifacts")
    p.add_argument("--app", required=True)
    p.add_argument("--np", type=int, default=16)
    p.add_argument("--config", required=True)
    p.add_argument("--out", required=True,
                   help="directory for events.jsonl, trace.chrome.json, "
                        "metrics.prom")
    p.add_argument("--jobs", type=_jobs_type, metavar="N",
                   help="parallel trace-ingest fan-out (>= 1; default: "
                        "$REPRO_INGEST_JOBS or the cpu count, capped at 8)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "cache",
        help="inspect, clear or pre-populate the persistent result store")
    p.add_argument("action", choices=("stats", "clear", "warm"))
    p.add_argument("--dir",
                   help="store directory (default: $REPRO_CACHE_DIR or "
                        ".repro-cache)")
    p.add_argument("--cache",
                   help="(clear) only this named cache, e.g. ior or trace")
    p.add_argument("--app", default="madbench2",
                   help="(warm) application whose study populates the store")
    p.add_argument("--np", type=int, default=16)
    p.add_argument("--configs", default="configuration-A,configuration-B",
                   help="(warm) comma-separated configuration names")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "workers",
        help="launch or drain socket sweep workers (cluster executor)")
    p.add_argument("action", choices=("launch", "drain"))
    p.add_argument("--count", type=int, default=2,
                   help="how many workers to launch (default 2)")
    p.add_argument("--bind", default="127.0.0.1",
                   help="address workers listen on (default 127.0.0.1)")
    p.add_argument("--port-base", type=int, default=0,
                   help="first port; worker i listens on port-base+i "
                        "(default: OS-assigned free ports)")
    p.add_argument("--workers",
                   help="endpoints to drain, host:port,host:port "
                        "(default $REPRO_CLUSTER_WORKERS)")
    p.set_defaults(func=cmd_workers)

    p = sub.add_parser(
        "serve",
        help="run the resilient study service daemon (crash-safe journal, "
             "admission control, graceful drain)")
    p.add_argument("--listen", default="127.0.0.1:7600", metavar="HOST:PORT",
                   help="bind address (port 0 picks a free port; the bound "
                        "address is printed as a 'LISTENING host port' line)")
    p.add_argument("--journal", default=".repro-service",
                   help="journal directory: write-ahead log, result files "
                        "and replay checkpoints live here; restart with the "
                        "same directory to recover in-flight batches")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (default 2)")
    p.add_argument("--queue-cap", type=int, default=16,
                   help="admission cap on queued+running requests; beyond "
                        "it submissions get BUSY (default 16)")
    p.add_argument("--executor", choices=("serial", "pool", "cluster"),
                   help="starting executor tier; the circuit breaker "
                        "degrades cluster -> pool -> serial on "
                        "infrastructure failures")
    p.add_argument("--cache-dir",
                   help="attach this persistent result store "
                        "(default: $REPRO_CACHE_DIR behaviour)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="advisory backoff carried on BUSY responses "
                        "(default 1.0s)")
    p.add_argument("--metrics", action="store_true",
                   help="enable repro.obs so the 'metrics' op serves "
                        "Prometheus text (service_* counters, queue gauge)")
    p.add_argument("--jobs", type=_jobs_type, metavar="N",
                   help="daemon-wide trace-ingest fan-out; per-request "
                        "'jobs' QoS fields override it (>= 1; default: "
                        "$REPRO_INGEST_JOBS or the cpu count, capped at 8)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a batch of study requests to a daemon")
    p.add_argument("--server", default="127.0.0.1:7600", metavar="HOST:PORT")
    p.add_argument("--app", help="application to study")
    p.add_argument("--np", type=int, default=16)
    p.add_argument("--kind", choices=("select", "characterize", "full_study"),
                   default="select")
    p.add_argument("--configs",
                   help="comma-separated configuration names "
                        "(select/full_study)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   help="per-request deadline, propagated into the study's "
                        "RetryPolicy timeout")
    p.add_argument("--jobs", type=_jobs_type, metavar="N",
                   help="per-request trace-ingest fan-out QoS field "
                        "(outside the spec digest, like --deadline)")
    p.add_argument("--batch-file",
                   help="JSON file with a list of request specs (or "
                        "{\"requests\": [...]}) instead of --app/--configs")
    p.add_argument("--wait", action="store_true",
                   help="block until the batch settles and print results")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="client-side wait timeout (default 300s)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status",
                       help="inspect a daemon: server stats, batch states, "
                            "health/readiness probes")
    p.add_argument("--server", default="127.0.0.1:7600", metavar="HOST:PORT")
    p.add_argument("--batch", help="show this batch instead of server stats")
    p.add_argument("--probe", choices=("health", "ready"),
                   help="liveness/readiness probe: exit 0 when ok "
                        "(for supervisors and container orchestrators)")
    p.add_argument("--drain", action="store_true",
                   help="ask the daemon to drain gracefully (idempotent): "
                        "finish accepted work, refuse new submissions, exit")
    p.add_argument("--timeout", type=float, default=30.0)
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("configs", help="list the modeled I/O configurations")
    p.set_defaults(func=cmd_configs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "metrics", False):
        from repro.obs.export import render_prometheus

        obs.enable()
        try:
            rc = args.func(args)
            if rc == 0:
                print()
                print("Collected metrics (Prometheus text format):")
                print(render_prometheus(obs.registry()), end="")
            return rc
        finally:
            obs.disable()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Bounded retry-with-backoff around transient faults.

The pipeline's unit of work (one phase replay, one configuration
estimate) is a pure function of its inputs, so retrying after a
:class:`~repro.faults.plan.TransientFault` is always safe.  The policy
is deliberately small: bounded attempts, deterministic exponential
backoff (no jitter -- reproducibility is a feature here, and the
"sleep" is wall-clock while the fault windows are virtual-time, so the
backoff only paces the retry loop), and an explicit tuple of retryable
exception types.  Everything else -- fail-stop, data loss, programming
errors -- propagates immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .plan import TransientFault


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to back off, what to retry on."""

    max_attempts: int = 3
    backoff_s: float = 0.01
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    retry_on: tuple = (TransientFault,)
    #: Per-job wall-clock timeout (enforced by parallel sweeps; the
    #: serial path treats it as advisory -- see docs/robustness.md).
    timeout_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.max_backoff_s,
                   self.backoff_s * self.backoff_factor ** (attempt - 1))


#: Retry nothing; fail fast.  Useful as an explicit "no resilience" arg.
NO_RETRY = RetryPolicy(max_attempts=1)


def retry_call(fn: Callable, *args, policy: RetryPolicy | None = None,
               on_retry: Callable[[int, BaseException], None] | None = None,
               sleep: Callable[[float], None] = time.sleep,
               **kwargs) -> Any:
    """Call ``fn`` under ``policy``; retry on its retryable exceptions.

    ``on_retry(attempt, exc)`` fires before each backoff (attempt is the
    1-based number of the attempt that just failed).  Retries are
    counted in the ``retries_total`` obs metric; the terminal failure of
    an exhausted policy re-raises the last exception unchanged.
    """
    from repro import obs

    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if obs.ACTIVE:
                obs.inc("retries_total", kind=type(exc).__name__)
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)


@dataclass
class RetryStats:
    """Optional collector: pass ``stats.note`` as ``on_retry``."""

    retries: int = 0
    last_error: str = ""
    errors: list = field(default_factory=list)

    def note(self, attempt: int, exc: BaseException) -> None:
        self.retries += 1
        self.last_error = repr(exc)
        self.errors.append((attempt, repr(exc)))

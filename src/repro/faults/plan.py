"""Deterministic fault plans for the simulated I/O stack.

A :class:`FaultPlan` is a *schedule* of component faults expressed in
virtual time: which disk dies when (fail-stop), which disk degrades to a
fraction of its rate (fail-slow), which I/O node drops off the fabric
for a window and reconnects, which link browns out (reduced bandwidth,
added latency).  Injection points inside :mod:`repro.iosim`
(``Disk.transfer``, the ``Volume`` routing logic, ``Link.cost``/
``Link.send``) consult the globally installed plan through the
``repro.faults`` switchboard -- the same guard-first pattern as
``repro.obs``, so a run without an installed plan pays a single
``if not ACTIVE`` branch per site.

Determinism is the design contract: a plan is a pure function of
(target name, virtual time).  Two simulations of the same program under
the same plan produce identical completion times *and* identical fault
event streams (``plan.events``); :func:`FaultPlan.generate` derives a
schedule from a seed via ``random.Random`` so whole chaos campaigns are
replayable from one integer.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

__all__ = [
    "FaultError", "DiskFailure", "DataLossError", "TransientFault",
    "FaultSpec", "FaultEvent", "FaultPlan",
    "FAIL_STOP", "FAIL_SLOW", "DROPOUT", "BROWNOUT",
]


class FaultError(RuntimeError):
    """Base class of every injected-fault error."""


class DiskFailure(FaultError):
    """A fail-stop disk was addressed directly (no redundancy left)."""

    def __init__(self, device: str, since: float):
        super().__init__(f"disk {device!r} failed at t={since:.3f}s "
                         "(fail-stop)")
        self.device = device
        self.since = since


class DataLossError(FaultError):
    """The addressed data is gone: too many members of a volume failed.

    JBOD loses the files living on the dead disk outright; RAID 0 loses
    everything; RAID 1/5 only after losing more members than the level
    tolerates.
    """

    def __init__(self, volume: str, detail: str):
        super().__init__(f"data loss on volume {volume!r}: {detail}")
        self.volume = volume
        self.detail = detail


class TransientFault(FaultError):
    """A retryable fault: the component comes back after ``retry_at``."""

    def __init__(self, target: str, retry_at: float):
        super().__init__(f"{target!r} unavailable, reconnects at "
                         f"t={retry_at:.3f}s")
        self.target = target
        self.retry_at = retry_at


#: Fault kinds a :class:`FaultSpec` can carry.
FAIL_STOP = "fail_stop"
FAIL_SLOW = "fail_slow"
DROPOUT = "dropout"
BROWNOUT = "brownout"

_KINDS = (FAIL_STOP, FAIL_SLOW, DROPOUT, BROWNOUT)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault on one component.

    ``target`` names the component (a ``Disk.name``, an ``IONode`` name,
    a ``Link`` name; links also match on their owner's name, i.e. a
    dropout targeting ``"nasd0"`` covers ``"nasd0.nic"``).  The fault is
    live on ``start <= t < end``; fail-stop faults default to a
    permanent ``end`` of +inf.

    * ``fail_stop``  -- the disk is dead; redundancy routes around it.
    * ``fail_slow``  -- transfers cost ``slow_factor`` x (> 1).
    * ``dropout``    -- requests arriving in the window stall until
      ``end`` (``mode="defer"``, the reconnect model) or raise
      :class:`TransientFault` (``mode="error"``, the retryable-RPC
      model).
    * ``brownout``   -- link bandwidth is multiplied by ``bw_factor``
      (< 1) and ``extra_latency_s`` is added per message.
    """

    kind: str
    target: str
    start: float = 0.0
    end: float = math.inf
    slow_factor: float = 1.0
    bw_factor: float = 1.0
    extra_latency_s: float = 0.0
    mode: str = "defer"  # dropout only: "defer" | "error"

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {_KINDS}")
        if self.end <= self.start:
            raise ValueError(f"fault window must be non-empty, got "
                             f"[{self.start}, {self.end})")
        if self.kind == FAIL_SLOW and self.slow_factor <= 1.0:
            raise ValueError("fail_slow needs slow_factor > 1")
        if self.kind == BROWNOUT and not (0.0 < self.bw_factor <= 1.0):
            raise ValueError("brownout needs 0 < bw_factor <= 1")
        if self.mode not in ("defer", "error"):
            raise ValueError(f"unknown dropout mode {self.mode!r}")

    def live_at(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultEvent:
    """One observed application of a fault (deterministic per run)."""

    kind: str
    target: str
    t: float
    detail: str = ""


class FaultPlan:
    """A deterministic schedule of faults plus its observed-event log."""

    def __init__(self, faults: list[FaultSpec] | tuple[FaultSpec, ...] = (),
                 seed: int | None = None):
        self.seed = seed
        self.faults = list(faults)
        self.events: list[FaultEvent] = []
        self._by_kind: dict[str, dict[str, list[FaultSpec]]] = {
            k: {} for k in _KINDS}
        for spec in self.faults:
            self._by_kind[spec.kind].setdefault(spec.target, []).append(spec)
        for kind in self._by_kind.values():
            for specs in kind.values():
                specs.sort(key=lambda s: s.start)
        self._recorded: set[tuple] = set()

    # -- construction ---------------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.faults.append(spec)
        self._by_kind[spec.kind].setdefault(spec.target, []).append(spec)
        self._by_kind[spec.kind][spec.target].sort(key=lambda s: s.start)
        return self

    @classmethod
    def generate(cls, seed: int, *, disks: list[str] = (),
                 ions: list[str] = (), links: list[str] = (),
                 horizon_s: float = 600.0,
                 p_fail_stop: float = 0.2, p_fail_slow: float = 0.3,
                 p_dropout: float = 0.3, p_brownout: float = 0.3,
                 dropout_s: float = 2.0, dropout_mode: str = "defer",
                 max_fail_stop: int = 1) -> "FaultPlan":
        """Derive a replayable fault schedule from one integer seed.

        Each named disk independently draws a fail-stop death
        (``p_fail_stop``, at most ``max_fail_stop`` deaths total, so a
        redundant volume stays reconstructible) and a fail-slow window;
        each I/O node draws a transient dropout-with-reconnect; each
        link draws a brownout window.  The same seed and component
        inventory always produces the identical plan.
        """
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        deaths = 0
        for name in disks:
            if deaths < max_fail_stop and rng.random() < p_fail_stop:
                deaths += 1
                specs.append(FaultSpec(FAIL_STOP, name,
                                       start=rng.uniform(0, horizon_s / 2)))
            if rng.random() < p_fail_slow:
                start = rng.uniform(0, horizon_s / 2)
                specs.append(FaultSpec(
                    FAIL_SLOW, name, start=start,
                    end=start + rng.uniform(1.0, horizon_s / 4),
                    slow_factor=rng.uniform(1.5, 6.0)))
        for name in ions:
            if rng.random() < p_dropout:
                start = rng.uniform(0, horizon_s / 2)
                specs.append(FaultSpec(DROPOUT, name, start=start,
                                       end=start + dropout_s,
                                       mode=dropout_mode))
        for name in links:
            if rng.random() < p_brownout:
                start = rng.uniform(0, horizon_s / 2)
                specs.append(FaultSpec(
                    BROWNOUT, name, start=start,
                    end=start + rng.uniform(1.0, horizon_s / 4),
                    bw_factor=rng.uniform(0.2, 0.8),
                    extra_latency_s=rng.uniform(0.0, 2e-3)))
        return cls(specs, seed=seed)

    # -- queries (the iosim injection points) ---------------------------------
    def _live(self, kind: str, target, t: float) -> FaultSpec | None:
        table = self._by_kind[kind]
        names = (target,) if isinstance(target, str) else target
        for name in names:
            for spec in table.get(name, ()):
                if spec.live_at(t):
                    return spec
                if spec.start > t:
                    break
        return None

    def disk_failed_since(self, name: str, t: float) -> float | None:
        """Earliest fail-stop start covering ``t``, or None if alive."""
        spec = self._live(FAIL_STOP, name, t)
        return spec.start if spec is not None else None

    def slow_factor(self, name: str, t: float) -> float:
        """Fail-slow cost multiplier at ``t`` (1.0 when healthy)."""
        spec = self._live(FAIL_SLOW, name, t)
        if spec is None:
            return 1.0
        self.record(FAIL_SLOW, name, spec.start,
                    f"x{spec.slow_factor:.2f} until {spec.end:.3f}")
        return spec.slow_factor

    def dropout(self, target, t: float) -> FaultSpec | None:
        """The dropout window covering ``t``, if any.

        ``target`` may be a single name or a tuple of aliases (a link
        consults both its own name and its owner node's name).
        """
        return self._live(DROPOUT, target, t)

    def link_state(self, target, t: float) -> tuple[float, float]:
        """(bandwidth factor, extra latency) for a link at ``t``."""
        spec = self._live(BROWNOUT, target, t)
        if spec is None:
            return 1.0, 0.0
        name = target if isinstance(target, str) else target[0]
        self.record(BROWNOUT, name, spec.start,
                    f"bw x{spec.bw_factor:.2f} +{spec.extra_latency_s * 1e3:.2f}ms "
                    f"until {spec.end:.3f}")
        return spec.bw_factor, spec.extra_latency_s

    def failed_members(self, disks, t: float) -> set[int]:
        """Indices of ``disks`` whose fail-stop window covers ``t``."""
        out = set()
        for i, d in enumerate(disks):
            since = self.disk_failed_since(d.name, t)
            if since is not None:
                out.add(i)
                self.record(FAIL_STOP, d.name, since, "member down")
        return out

    # -- event log ------------------------------------------------------------
    def record(self, kind: str, target: str, t: float, detail: str = "") -> None:
        """Log one fault application (once per (kind, target, window))."""
        key = (kind, target, t)
        if key in self._recorded:
            return
        self._recorded.add(key)
        self.events.append(FaultEvent(kind=kind, target=target, t=t,
                                      detail=detail))
        from repro import obs
        if obs.ACTIVE:
            obs.inc("fault_injections_total", kind=kind, target=target)
            obs.event("fault.injected", cat="faults", kind=kind,
                      target=target, t=t, detail=detail)

    def clear_events(self) -> None:
        """Reset the observed-event log (e.g. between repeated runs)."""
        self.events.clear()
        self._recorded.clear()

    def event_stream(self) -> list[tuple]:
        """The event log as comparable tuples (determinism checks)."""
        return [(e.kind, e.target, e.t, e.detail) for e in self.events]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FaultPlan({len(self.faults)} faults, seed={self.seed}, "
                f"{len(self.events)} events)")

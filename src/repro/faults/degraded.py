"""Degraded-mode what-if studies: estimate Time_io with disks dead.

The paper's selection step (Table XII) ranks configurations by nominal
estimated I/O time.  A configuration that wins while healthy can be a
terrible choice operationally: configuration C's single NFS RAID 5
drops to reconstruct-read bandwidth with one dead SAS disk, while a
JBOD loses files outright.  This module reruns the estimation with
member disks failed -- eqs. 1-4 on the *degraded* platform -- and ranks
configurations by their worst-case Time_io as well as the nominal one.

Import as a submodule (``from repro.faults import degraded``): it
depends on :mod:`repro.iosim`, which itself consults the base
:mod:`repro.faults` package, so re-exporting it from the package
``__init__`` would create an import cycle.

The machinery is deliberately factory-shaped: a
:class:`DegradedScenario` turns any healthy ``ClusterFactory`` into a
degraded one (``degrade(factory, scenario)``), so everything that takes
a factory -- ``estimate_model``, ``peak_bandwidth``,
``select_configuration``, sweeps -- works on degraded platforms
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.faults.plan import DataLossError

MB = 1024 * 1024


@dataclass(frozen=True)
class DegradedScenario:
    """Which disks are dead, per I/O node, and whether a rebuild runs.

    ``failed`` maps I/O-node index (position in ``globalfs.ions``) to
    the member-disk indices to fail in that node's volume.
    ``rebuild=True`` additionally starts a RAID rebuild on each
    affected parity volume (rebuild traffic competes with foreground
    I/O and shaves the degraded peak -- see
    :class:`repro.iosim.raid._ParityVolume`).
    """

    name: str
    failed: tuple[tuple[int, tuple[int, ...]], ...]  # ((ion, (disk, ...)), ...)
    rebuild: bool = False

    @classmethod
    def make(cls, name: str, failed: dict[int, tuple[int, ...]],
             rebuild: bool = False) -> "DegradedScenario":
        frozen = tuple(sorted((ion, tuple(disks))
                              for ion, disks in failed.items()))
        return cls(name=name, failed=frozen, rebuild=rebuild)

    @property
    def n_failed(self) -> int:
        return sum(len(disks) for _, disks in self.failed)


#: The healthy baseline, for symmetric reporting.
NOMINAL = DegradedScenario(name="nominal", failed=())


def degrade(cluster_factory, scenario: DegradedScenario):
    """A ``ClusterFactory`` building the degraded version of a cluster.

    The scenario is applied to every fresh build, so repeated calls
    (IOR replications, IOzone probes) all see the same dead disks --
    and the degraded volume's ``fingerprint()`` keys memoized replays
    separately from the healthy platform's.
    """
    def build():
        cluster = cluster_factory()
        ions = cluster.globalfs.ions
        for ion_idx, disks in scenario.failed:
            if not 0 <= ion_idx < len(ions):
                raise IndexError(
                    f"scenario {scenario.name!r} fails I/O node {ion_idx} "
                    f"but the cluster has {len(ions)}")
            volume = ions[ion_idx].fs.volume
            for disk_idx in disks:
                volume.fail_disk(disk_idx)
            if scenario.rebuild and hasattr(volume, "start_rebuild"):
                volume.start_rebuild()
        return cluster

    return build


def single_disk_scenarios(cluster_factory,
                          rebuild: bool = False) -> list[DegradedScenario]:
    """One scenario per I/O node: its volume's first member dead.

    This is the canonical operational question -- "what does one disk
    failure cost me?" -- asked of every storage server in turn.
    """
    cluster = cluster_factory()
    out = []
    for i, ion in enumerate(cluster.globalfs.ions):
        if not ion.fs.volume.disks:
            continue
        suffix = "+rebuild" if rebuild else ""
        out.append(DegradedScenario.make(
            name=f"{ion.name}:disk0{suffix}", failed={i: (0,)},
            rebuild=rebuild))
    return out


@dataclass
class ScenarioOutcome:
    """Time_io of one configuration under one scenario."""

    scenario: str
    total_time_ch: float  # inf when data was lost
    lost_data: bool = False
    detail: str = ""

    @property
    def survives(self) -> bool:
        return not self.lost_data


@dataclass
class DegradedReport:
    """Nominal + per-scenario Time_io of one configuration."""

    config_name: str
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def nominal(self) -> ScenarioOutcome:
        return self.outcomes[0]

    @property
    def worst(self) -> ScenarioOutcome:
        return max(self.outcomes, key=lambda o: o.total_time_ch)


@dataclass
class WorstCaseChoice:
    """Selection by worst-case Time_io (nominal kept for comparison)."""

    best: str
    best_nominal: str
    reports: dict[str, DegradedReport]

    def ranking(self) -> list[tuple[str, float, float]]:
        """(config, nominal, worst) sorted by worst-case time."""
        rows = [(name, r.nominal.total_time_ch, r.worst.total_time_ch)
                for name, r in self.reports.items()]
        return sorted(rows, key=lambda row: row[2])


def estimate_degraded(phases, cluster_factory, scenario: DegradedScenario,
                      config_name: str = "config") -> ScenarioOutcome:
    """Estimate Time_io (eq. 1) on the degraded platform.

    Data loss (a JBOD/RAID-0 member gone, tolerance exceeded) is not an
    error here -- it is the *answer*: the outcome carries
    ``lost_data=True`` and an infinite time, so worst-case rankings
    push the configuration to the bottom without aborting the study.
    """
    from repro.core.estimate import estimate_model

    factory = degrade(cluster_factory, scenario)
    try:
        report = estimate_model(phases, factory, config_name=config_name)
        outcome = ScenarioOutcome(scenario=scenario.name,
                                  total_time_ch=report.total_time_ch)
    except DataLossError as exc:
        outcome = ScenarioOutcome(scenario=scenario.name,
                                  total_time_ch=float("inf"),
                                  lost_data=True, detail=str(exc))
    if obs.ACTIVE:
        obs.inc("degraded_estimates_total", config=config_name,
                outcome="lost_data" if outcome.lost_data else "ok")
    return outcome


def worst_case_selection(phases, factories: dict,
                         scenarios: dict | None = None,
                         rebuild: bool = False) -> WorstCaseChoice:
    """Rank configurations by worst-case degraded Time_io.

    ``scenarios`` maps configuration name to a scenario list; by default
    every configuration gets its :func:`single_disk_scenarios`.  Every
    report starts with the :data:`NOMINAL` outcome, so the choice also
    reports the healthy ranking (``best_nominal``) next to the
    worst-case one (``best``) -- the interesting studies are the ones
    where they differ.
    """
    reports: dict[str, DegradedReport] = {}
    for name, factory in factories.items():
        scens = (scenarios or {}).get(name)
        if scens is None:
            scens = single_disk_scenarios(factory, rebuild=rebuild)
        report = DegradedReport(config_name=name)
        for scenario in (NOMINAL, *scens):
            report.outcomes.append(
                estimate_degraded(phases, factory, scenario,
                                  config_name=name))
        reports[name] = report
    best = min(reports, key=lambda n: reports[n].worst.total_time_ch)
    best_nominal = min(reports,
                       key=lambda n: reports[n].nominal.total_time_ch)
    return WorstCaseChoice(best=best, best_nominal=best_nominal,
                           reports=reports)

"""repro.faults -- fault injection and graceful degradation.

Three cooperating pieces:

* :mod:`repro.faults.plan` -- deterministic, seedable
  :class:`~repro.faults.plan.FaultPlan` schedules (fail-stop disk death,
  fail-slow degradation, I/O-node dropout with reconnect, network
  brownouts) consulted by injection points inside :mod:`repro.iosim`;
* :mod:`repro.faults.resilience` -- bounded retry-with-backoff policies
  the pipeline wraps around transient faults;
* :mod:`repro.faults.degraded` -- static degraded-mode configuration
  studies (RAID-1 on the surviving mirror, RAID-5 degraded/rebuilding,
  JBOD data loss) and worst-case configuration selection.  Imported as
  a submodule (``from repro.faults import degraded``) because it depends
  on :mod:`repro.iosim`, which itself imports this package.

Activation mirrors :mod:`repro.obs`: injection sites guard with
``if faults.ACTIVE`` and the installed plan is process-global::

    plan = FaultPlan.generate(seed=7, disks=["sas0", "sas1"])
    with faults.injected(plan):
        result = replay_phase(phase, cluster)
    print(plan.events)          # deterministic fault event stream
"""

from __future__ import annotations

from contextlib import contextmanager

from .plan import (
    BROWNOUT,
    DROPOUT,
    FAIL_SLOW,
    FAIL_STOP,
    DataLossError,
    DiskFailure,
    FaultError,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    TransientFault,
)
from .resilience import RetryPolicy, retry_call

__all__ = [
    "ACTIVE", "install", "uninstall", "plan", "injected",
    "FaultPlan", "FaultSpec", "FaultEvent",
    "FaultError", "DiskFailure", "DataLossError", "TransientFault",
    "RetryPolicy", "retry_call",
    "FAIL_STOP", "FAIL_SLOW", "DROPOUT", "BROWNOUT",
]

#: Guard-first flag, tested by every injection point before any work.
ACTIVE: bool = False

_plan: FaultPlan | None = None


def install(fault_plan: FaultPlan) -> FaultPlan:
    """Install ``fault_plan`` as the process-global active plan."""
    global ACTIVE, _plan
    _plan = fault_plan
    ACTIVE = True
    return fault_plan


def uninstall() -> None:
    """Remove the active plan; injection reverts to zero-cost no-ops."""
    global ACTIVE, _plan
    ACTIVE = False
    _plan = None


def plan() -> FaultPlan | None:
    """The currently installed plan (None when injection is off)."""
    return _plan


@contextmanager
def injected(fault_plan: FaultPlan):
    """Scope fault injection to a ``with`` block (restores the previous
    plan on exit, so chaos tests can nest)."""
    previous = _plan
    install(fault_plan)
    try:
        yield fault_plan
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)

"""The write-ahead journal: durable appends, torn-tail-proof replay."""

from __future__ import annotations

import threading

from repro.service.journal import Journal, canonical_json


def test_append_replay_round_trip(tmp_path):
    j = Journal(tmp_path)
    records = [{"rec": "submit", "batch": f"b{i:06d}", "digests": [str(i)]}
               for i in range(5)]
    for rec in records:
        j.append(rec)
    j.close()
    assert Journal(tmp_path).records() == records  # order preserved


def test_replay_of_missing_journal_is_empty(tmp_path):
    assert Journal(tmp_path / "nothing-here").records() == []


def test_torn_tail_is_dropped(tmp_path):
    """A crash can only tear the final line; everything before survives."""
    j = Journal(tmp_path)
    j.append({"rec": "submit", "batch": "b000001"})
    j.append({"rec": "done", "id": "abc"})
    j.close()
    with open(j.path, "a", encoding="utf-8") as fh:
        fh.write('deadbeef {"rec":"done","id":"to')  # no newline: torn
    assert Journal(tmp_path).records() == [
        {"rec": "submit", "batch": "b000001"},
        {"rec": "done", "id": "abc"},
    ]


def test_corrupt_crc_stops_replay(tmp_path):
    j = Journal(tmp_path)
    j.append({"rec": "submit", "batch": "b000001"})
    j.append({"rec": "done", "id": "abc"})
    j.append({"rec": "done", "id": "def"})
    j.close()
    lines = j.path.read_text().splitlines(keepends=True)
    lines[1] = "00000000 " + lines[1].split(" ", 1)[1]  # wrong checksum
    j.path.write_text("".join(lines))
    # Replay must not trust anything at or after the corrupt line.
    assert Journal(tmp_path).records() == [
        {"rec": "submit", "batch": "b000001"}]


def test_non_json_body_stops_replay(tmp_path):
    j = Journal(tmp_path)
    j.append({"rec": "submit"})
    j.close()
    with open(j.path, "a", encoding="utf-8") as fh:
        import zlib
        body = "not json at all"
        crc = format(zlib.crc32(body.encode()) & 0xFFFFFFFF, "08x")
        fh.write(f"{crc} {body}\n")
    assert Journal(tmp_path).records() == [{"rec": "submit"}]


def test_concurrent_appends_all_land(tmp_path):
    """Worker threads and the submit handler share one journal."""
    j = Journal(tmp_path)

    def write(writer: int) -> None:
        for i in range(50):
            j.append({"rec": "done", "writer": writer, "i": i}, sync=False)

    threads = [threading.Thread(target=write, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    j.close()
    records = Journal(tmp_path).records()
    assert len(records) == 6 * 50
    for w in range(6):  # per-writer order is preserved even interleaved
        mine = [r["i"] for r in records if r["writer"] == w]
        assert mine == list(range(50))


def test_canonical_json_is_stable():
    a = canonical_json({"b": 1, "a": [1, 2], "c": {"y": 0, "x": 1}})
    b = canonical_json({"c": {"x": 1, "y": 0}, "a": [1, 2], "b": 1})
    assert a == b == '{"a":[1,2],"b":1,"c":{"x":1,"y":0}}'

"""In-process daemon tests: the full API surface over real sockets.

Each test builds a :class:`StudyService` on an ephemeral port with its
journal in ``tmp_path`` and talks to it through the real client, so
the wire framing, admission control and worker pool are all exercised;
only the kill -9 legs live elsewhere (``tests/chaos``) because they
need a process to kill.
"""

from __future__ import annotations

import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient, ServiceConfig, StudyService

CHARACTERIZE = {"kind": "characterize", "app": "synthetic", "np": 4}
SELECT_A = {"kind": "select", "app": "synthetic", "np": 4,
            "configs": "configuration-A"}
SELECT_B = {"kind": "select", "app": "synthetic", "np": 4,
            "configs": "configuration-B"}


@pytest.fixture
def service(tmp_path):
    """Factory: start a daemon with overrides; stopped on teardown."""
    started: list[StudyService] = []

    def start(**overrides) -> tuple[StudyService, ServiceClient]:
        overrides.setdefault("journal_dir", tmp_path / "svc")
        daemon = StudyService(ServiceConfig(**overrides))
        host, port = daemon.start()
        started.append(daemon)
        return daemon, ServiceClient(host, port, timeout_s=30)

    yield start
    for daemon in started:
        daemon.stop()


def test_submit_wait_results(service):
    _daemon, client = service()
    assert client.health()["ok"]
    assert client.ready()["ok"]

    sub = client.submit_batch([CHARACTERIZE, SELECT_A])
    assert sub["ok"] and sub["batch"] == "b000001"
    assert sub["deduped"] == 0 and len(sub["requests"]) == 2

    done = client.wait(sub["batch"], timeout_s=60)
    assert done["complete"]
    res = client.results(sub["batch"])
    states = {r["kind"]: r for r in res["requests"]}
    assert states["characterize"]["state"] == "done"
    assert states["select"]["result"]["best"]
    assert all(len(r["output_digest"]) == 64 for r in res["requests"])


def test_duplicate_specs_share_one_request(service):
    _daemon, client = service()
    first = client.submit_batch([SELECT_A])
    client.wait(first["batch"], timeout_s=60)

    again = client.submit_batch([SELECT_A, SELECT_A, SELECT_B])
    assert again["deduped"] == 2  # known request + in-batch duplicate
    rows = again["requests"]
    assert rows[0]["id"] == rows[1]["id"]
    assert rows[0]["state"] == "done"  # answered without re-running
    client.wait(again["batch"], timeout_s=60)
    res = client.results(again["batch"])
    assert res["complete"]
    # The duplicate rows carry the *same* digest as the original run.
    d0 = client.results(first["batch"])["requests"][0]["output_digest"]
    assert res["requests"][0]["output_digest"] == d0


def test_bad_specs_are_refused_not_journaled(service):
    daemon, client = service()
    for bad in ({"app": "nonesuch", "configs": "configuration-A"},
                {"app": "synthetic"},  # select without configs
                {"app": "madbench2", "np": 10,
                 "configs": "configuration-A"}):
        resp = client.submit_batch([bad])
        assert resp["ok"] is False and resp["error"] == "bad_request"
    assert client.submit_batch([])["error"] == "bad_request"
    assert daemon.journal.records() == []  # nothing was admitted


def test_unknown_op_and_unknown_batch(service):
    _daemon, client = service()
    assert client.call("frobnicate")["error"] == "bad_request"
    assert client.call("_op_status")["error"] == "bad_request"
    assert client.status("b999999")["error"] == "not_found"
    assert client.results("b999999")["error"] == "not_found"
    assert client.wait("b999999")["error"] == "not_found"


def test_overload_gets_deterministic_busy(service):
    _daemon, client = service(workers=1, queue_cap=1, slow_s=0.5,
                              retry_after_s=2.5)
    first = client.submit_batch([SELECT_A])
    assert first["ok"]

    for _ in range(3):  # refusals are stable, not flaky
        busy = client.submit_batch([SELECT_B])
        assert busy == {"ok": False, "error": "busy", "retry_after_s": 2.5,
                        "queue_depth": 1, "queue_cap": 1}

    client.wait(first["batch"], timeout_s=60)
    retried = client.submit_batch([SELECT_B])  # capacity is back
    assert retried["ok"]
    client.wait(retried["batch"], timeout_s=60)
    assert client.status()["busy_total"] == 3


def test_batch_larger_than_capacity_is_bad_request(service):
    _daemon, client = service(queue_cap=1)
    resp = client.submit_batch([SELECT_A, SELECT_B])
    assert resp["error"] == "bad_request"
    assert "capacity" in resp["detail"]


def test_dedup_hits_need_no_queue_slots(service):
    """Resubmitting only known specs is admitted even at capacity."""
    _daemon, client = service(workers=1, queue_cap=2)
    first = client.submit_batch([SELECT_A, CHARACTERIZE])
    client.wait(first["batch"], timeout_s=60)
    resp = client.submit_batch([SELECT_A, CHARACTERIZE])
    assert resp["ok"] and resp["deduped"] == 2


def test_drain_is_graceful_and_idempotent(service):
    # slow_s keeps the accepted job in flight while drain, the second
    # drain, the refused submit and the probes all go through.
    daemon, client = service(workers=1, slow_s=1.0)
    sub = client.submit_batch([SELECT_A])
    first = client.drain()
    assert first["ok"] and first["status"] == "draining"
    second = client.drain()  # idempotent: same answer, no error
    assert second["ok"] and second["status"] == "draining"

    refused = client.submit_batch([SELECT_B])
    assert refused["error"] == "draining"
    assert client.ready()["error"] == "draining"

    assert daemon.wait_drained(timeout_s=60)
    # Accepted work finished despite the drain (the listener is gone by
    # now, so ask the object, not the socket).
    digest = sub["requests"][0]["id"]
    assert daemon._requests[digest].state == "done"


def test_restart_adopts_results_bit_identically(service, tmp_path):
    first, client = service(journal_dir=tmp_path / "svc")
    sub = client.submit_batch([CHARACTERIZE, SELECT_A])
    client.wait(sub["batch"], timeout_s=60)
    reference = {r["id"]: r["output_digest"]
                 for r in client.results(sub["batch"])["requests"]}
    first.stop()

    second, client2 = service(journal_dir=tmp_path / "svc")
    stats = client2.status()
    assert stats["recovered"] == 0  # everything was done: nothing re-runs
    assert stats["completed_total"] == 2
    res = client2.results(sub["batch"])
    assert res["complete"]
    assert {r["id"]: r["output_digest"]
            for r in res["requests"]} == reference


def test_failed_request_is_requeued_on_resubmission(service, monkeypatch):
    import repro.service.daemon as daemon_mod

    real = daemon_mod.run_request
    monkeypatch.setattr(daemon_mod, "run_request",
                        lambda *a, **k: (_ for _ in ()).throw(
                            ValueError("transient modelling bug")))
    _daemon, client = service()
    sub = client.submit_batch([SELECT_A])
    res = client.wait(sub["batch"], timeout_s=30)
    assert res["requests"][0]["state"] == "failed"
    assert "modelling bug" in res["requests"][0]["error"]

    monkeypatch.setattr(daemon_mod, "run_request", real)
    again = client.submit_batch([SELECT_A])
    assert again["deduped"] == 0  # a failed request earns a fresh run
    res = client.wait(again["batch"], timeout_s=60)
    assert res["requests"][0]["state"] == "done"


def test_deadline_is_accepted_and_ignored_by_dedup(service):
    _daemon, client = service()
    a = client.submit_batch([dict(SELECT_A, deadline_s=120)])
    client.wait(a["batch"], timeout_s=60)
    b = client.submit_batch([dict(SELECT_A, deadline_s=5)])
    assert b["deduped"] == 1
    assert b["requests"][0]["id"] == a["requests"][0]["id"]


def test_journal_dir_is_exclusive_to_one_live_daemon(service, tmp_path):
    _daemon, _client = service(journal_dir=tmp_path / "svc")
    # Forge the lockfile to a live *foreign* pid: a second daemon must
    # refuse the journal.  (Same-pid re-entry is allowed -- that is the
    # in-process restart path tested above.)
    other = subprocess.Popen([sys.executable, "-c",
                              "import time; time.sleep(30)"])
    try:
        (tmp_path / "svc" / "daemon.pid").write_text(str(other.pid))
        with pytest.raises(RuntimeError, match="live daemon"):
            StudyService(ServiceConfig(journal_dir=tmp_path / "svc")).start()
    finally:
        other.kill()
        other.wait()

    # A stale pid (process long gone) is reclaimed instead.
    (tmp_path / "svc" / "daemon.pid").write_text(str(other.pid))
    reclaimed = StudyService(ServiceConfig(journal_dir=tmp_path / "svc"))
    host, port = reclaimed.start()
    try:
        assert ServiceClient(host, port).health()["ok"]
    finally:
        reclaimed.stop()


def test_status_reports_the_breaker_ladder(service):
    _daemon, client = service(executor=None)
    stats = client.status()
    assert stats["breaker"]["tiers"] == ["serial"]
    assert stats["breaker"]["current"] == "serial"
    assert stats["queue_cap"] == 16 and stats["workers"] == 2


def test_metrics_op(service, tmp_path):
    _daemon, client = service(journal_dir=tmp_path / "plain")
    assert client.metrics()["error"] == "metrics_disabled"

"""Circuit breaker: trip, skip, probe, recover -- with a fake clock."""

from __future__ import annotations

import pytest

from repro.service.breaker import INFRA_ERRORS, CircuitBreaker, ladder_for


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def make(tiers=("cluster", "pool", "serial"), threshold=2, cooldown=30.0):
    clock = FakeClock()
    return CircuitBreaker(tiers, threshold=threshold, cooldown_s=cooldown,
                          clock=clock), clock


def test_ladder_for():
    assert ladder_for(None) == ("serial",)
    assert ladder_for("serial") == ("serial",)
    assert ladder_for("pool") == ("pool", "serial")
    assert ladder_for("cluster") == ("cluster", "pool", "serial")
    with pytest.raises(ValueError, match="hovercraft"):
        ladder_for("hovercraft")


def test_empty_ladder_is_rejected():
    with pytest.raises(ValueError):
        CircuitBreaker(())


def test_trips_only_at_threshold():
    breaker, _ = make(threshold=3)
    assert breaker.record_failure("cluster") is False
    assert breaker.record_failure("cluster") is False
    assert breaker.plan()[0] == "cluster"  # still closed below threshold
    assert breaker.record_failure("cluster") is True
    assert breaker.plan() == ["pool", "serial"]


def test_success_resets_the_failure_count():
    breaker, _ = make(threshold=2)
    breaker.record_failure("cluster")
    breaker.record_success("cluster")
    assert breaker.record_failure("cluster") is False  # count started over
    assert breaker.plan()[0] == "cluster"


def test_half_open_after_cooldown_then_close_or_reopen():
    breaker, clock = make(threshold=1, cooldown=30.0)
    breaker.record_failure("cluster")
    assert breaker.plan() == ["pool", "serial"]

    clock.advance(29.9)
    assert breaker.plan() == ["pool", "serial"]  # still cooling down
    clock.advance(0.2)
    assert breaker.plan()[0] == "cluster"  # half-open: one probe allowed

    # The probe fails: re-opened for another full cooldown.
    breaker.record_failure("cluster")
    assert breaker.plan() == ["pool", "serial"]
    clock.advance(30.1)
    assert breaker.plan()[0] == "cluster"

    # The probe succeeds this time: fully closed again.
    breaker.record_success("cluster")
    assert breaker.plan() == ["cluster", "pool", "serial"]


def test_last_tier_is_always_available():
    """Even with every circuit open a request gets a plan."""
    breaker, _ = make(threshold=1)
    for tier in ("cluster", "pool", "serial"):
        breaker.record_failure(tier)
    assert breaker.plan() == ["serial"]


def test_state_snapshot():
    breaker, _ = make(threshold=1)
    breaker.record_failure("cluster")
    state = breaker.state()
    assert state["current"] == "pool"
    assert state["open"] == ["cluster"]
    assert state["failures"]["cluster"] == 1
    assert state["trips"] == 1


def test_reopening_an_open_circuit_is_one_trip():
    breaker, _ = make(threshold=1)
    assert breaker.record_failure("cluster") is True
    assert breaker.record_failure("cluster") is True  # still open
    assert breaker.state()["trips"] == 1


def test_infra_errors_cover_the_backends():
    """The classification the daemon relies on: pool/cluster plumbing
    failures are INFRA, a job's own SweepJobError is caught separately
    *before* this tuple (it subclasses RuntimeError)."""
    from repro.core.executors.base import SweepJobError

    assert issubclass(ConnectionRefusedError, INFRA_ERRORS)
    assert issubclass(BrokenPipeError, INFRA_ERRORS)
    assert issubclass(SweepJobError, RuntimeError)

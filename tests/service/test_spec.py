"""Spec validation, normalization and content addressing."""

from __future__ import annotations

import pytest

from repro.service.spec import BadRequest, normalize, spec_digest


def test_normalize_fills_defaults():
    spec = normalize({"app": "synthetic", "configs": "configuration-A"})
    assert spec == {"kind": "select", "app": "synthetic", "np": 16,
                    "configs": ["configuration-A"], "lattice": False}


def test_normalize_splits_comma_configs():
    spec = normalize({"kind": "full_study", "app": "synthetic", "np": 4,
                      "configs": "configuration-A,configuration-B"})
    assert spec["configs"] == ["configuration-A", "configuration-B"]


def test_characterize_needs_no_configs():
    spec = normalize({"kind": "characterize", "app": "synthetic", "np": 4})
    assert "configs" not in spec and "lattice" not in spec


@pytest.mark.parametrize("raw, match", [
    ("not a dict", "must be an object"),
    ({"kind": "bake", "app": "synthetic"}, "unknown request kind"),
    ({"kind": "select"}, "needs an 'app'"),
    ({"app": "nonesuch", "configs": "configuration-A"}, "unknown app"),
    ({"app": "synthetic", "np": "four", "configs": "configuration-A"},
     "np must be an integer"),
    ({"app": "synthetic", "np": True, "configs": "configuration-A"},
     "np must be an integer"),
    ({"app": "synthetic", "np": -2, "configs": "configuration-A"},
     "positive"),
    ({"app": "madbench2", "np": 10, "configs": "configuration-A"},
     "square"),
    ({"app": "synthetic"}, "'configs' list"),
    ({"app": "synthetic", "configs": "atlantis-9"},
     "unknown configuration"),
    ({"app": "synthetic", "configs": "configuration-A",
      "deadline_s": 0}, "deadline_s must be positive"),
    ({"app": "synthetic", "configs": "configuration-A",
      "deadline_s": "soon"}, "deadline_s must be a number"),
])
def test_bad_specs_are_rejected(raw, match):
    with pytest.raises(BadRequest, match=match):
        normalize(raw)


def test_digest_is_stable_across_field_order():
    a = normalize({"app": "synthetic", "np": 4, "configs": "configuration-A"})
    b = normalize({"configs": ["configuration-A"], "np": 4,
                   "app": "synthetic", "kind": "select"})
    assert spec_digest(a) == spec_digest(b)


def test_deadline_is_outside_the_digest():
    """QoS must not defeat dedup: same study, tighter deadline, one run."""
    base = {"app": "synthetic", "np": 4, "configs": "configuration-A"}
    relaxed = normalize(dict(base, deadline_s=600))
    urgent = normalize(dict(base, deadline_s=5))
    assert spec_digest(relaxed) == spec_digest(urgent) == \
        spec_digest(normalize(base))


def test_result_determining_fields_change_the_digest():
    base = normalize({"app": "synthetic", "np": 4,
                      "configs": "configuration-A"})
    for variant in (
        {"app": "synthetic", "np": 9, "configs": "configuration-A"},
        {"app": "ior", "np": 4, "configs": "configuration-A"},
        {"app": "synthetic", "np": 4, "configs": "configuration-B"},
        {"app": "synthetic", "np": 4, "configs": "configuration-A",
         "lattice": True},
        {"kind": "full_study", "app": "synthetic", "np": 4,
         "configs": "configuration-A"},
    ):
        assert spec_digest(normalize(variant)) != spec_digest(base)

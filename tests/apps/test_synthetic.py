"""The Figs. 2-5 example: exact paper numbers."""

from __future__ import annotations

import pytest

from repro.apps.synthetic import (
    BLOCK_ETYPES,
    ETYPE_BYTES,
    REQUEST_SIZE,
    SyntheticParams,
    synthetic_program,
)
from repro.core.lap import extract_laps
from repro.core.model import IOModel
from repro.tracer import trace_run


@pytest.fixture(scope="module")
def bundle():
    return trace_run(synthetic_program, 4, None, SyntheticParams())


@pytest.fixture(scope="module")
def model(bundle):
    return IOModel.from_trace(bundle, app_name="synthetic")


class TestFigure2:
    def test_trace_numbers(self, bundle):
        """Offsets step by 265302 etypes; request size 10612080 bytes."""
        recs = bundle.by_rank(0)
        writes = [r for r in recs if r.kind == "write"][:4]
        assert [w.offset for w in writes] == [0, 265302, 530604, 795906]
        assert all(w.request_size == 10612080 for w in writes)
        assert all(w.op == "MPI_File_write_at_all" for w in writes)

    def test_tick_gap_between_writes(self, bundle):
        writes = [r for r in bundle.by_rank(0) if r.kind == "write"]
        gaps = {b.tick - a.tick for a, b in zip(writes, writes[1:])}
        assert gaps == {SyntheticParams().comm_events_per_step + 1}

    def test_constants_consistent(self):
        assert BLOCK_ETYPES * ETYPE_BYTES == REQUEST_SIZE


class TestFigure3:
    def test_lap_compression(self, bundle):
        entries = extract_laps(bundle.records)
        reads = [e for e in entries if e.ops[0].kind == "read"]
        # One 40-rep read LAP per rank (the back-to-back reads).
        assert len(reads) == 4
        assert all(e.rep == 40 for e in reads)
        assert all(e.ops[0].disp == BLOCK_ETYPES for e in reads)


class TestFigures4And5:
    def test_41_phases(self, model):
        assert model.nphases == 41

    def test_write_phase_weight_40mb(self, model):
        """The paper: "This phase has weight = 40MB"."""
        assert model.phases[0].weight == 4 * REQUEST_SIZE
        assert model.phases[0].weight == pytest.approx(40 * 2**20, rel=0.02)

    def test_strided_spatial_pattern(self, model):
        """Phase ph starts at idP*rs + np*(ph-1)*rs in absolute bytes."""
        for ph_num in (1, 2, 3):
            fn = model.phases[ph_num - 1].ops[0].abs_offset_fn
            assert fn.slope == REQUEST_SIZE
            assert fn.intercept == 4 * (ph_num - 1) * REQUEST_SIZE

    def test_read_phase_vertical_line(self, model):
        last = model.phases[-1]
        assert last.op_label == "R" and last.rep == 40
        assert last.weight == 4 * 40 * REQUEST_SIZE

    def test_metadata(self, model):
        (f,) = model.metadata.files
        assert f.access_mode == "strided"
        assert f.etype_size == 40
        assert f.access_type == "shared"

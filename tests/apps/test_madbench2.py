"""MADbench2: Table VIII shape, parameters, metadata."""

from __future__ import annotations

import pytest

from repro.apps.madbench2 import (
    MADbench2Params,
    TABLE_VIII_SHAPE,
    madbench2_program,
)
from repro.core.model import IOModel
from repro.simmpi.errors import MPIUsageError
from repro.tracer import trace_run

MB = 1024 * 1024


@pytest.fixture(scope="module")
def model() -> IOModel:
    bundle = trace_run(madbench2_program, 16, None, MADbench2Params())
    return IOModel.from_trace(bundle, app_name="madbench2")


class TestParameters:
    def test_paper_request_size(self):
        """16 procs, 8KPIX -> 32 MB per-process slice."""
        assert MADbench2Params(kpix=8).request_size(16) == 32 * MB

    def test_square_process_count_required(self):
        with pytest.raises(MPIUsageError):
            trace_run(madbench2_program, 6, None, MADbench2Params())

    def test_indivisible_matrix_rejected(self):
        with pytest.raises(MPIUsageError):
            MADbench2Params(kpix=1).request_size(7**2)


class TestTableVIII(object):
    def test_five_phases(self, model):
        assert model.nphases == 5

    def test_phase_shapes(self, model):
        np_, rs = 16, 32 * MB
        for ph, (label, kinds, rep, weight_units) in zip(
                model.phases, TABLE_VIII_SHAPE):
            assert ph.kinds == tuple(sorted(kinds))
            assert ph.rep == rep
            # weight = np * rep * rs per unit operation; the shape table
            # records it in units of np * rs.
            assert ph.weight == np_ * rep * rs * len(kinds)
            assert ph.weight == weight_units * np_ * rs

    def test_weights_gb(self, model):
        gb = 1024 * MB
        assert [ph.weight // gb for ph in model.phases] == [4, 1, 6, 1, 4]

    def test_init_offsets(self, model):
        rs = 32 * MB
        # Phases 1, 2, 3(write), 5 start at idP * 8 * rs.
        for idx in (0, 1, 4):
            fn = model.phases[idx].ops[0].abs_offset_fn
            assert fn.slope == 8 * rs and fn.intercept == 0
        # Phase 3's read op runs 2 bins ahead.
        wr = model.phases[2]
        read_op = next(o for o in wr.ops if o.kind == "read")
        assert read_op.abs_offset_fn.intercept == 2 * rs
        # Phase 4 writes the last two bins (bins 6..7).
        fn4 = model.phases[3].ops[0].abs_offset_fn
        assert fn4.intercept == 6 * rs

    def test_phase3_is_mixed(self, model):
        assert model.phases[2].op_label == "W-R"
        assert len(model.phases[2].ops) == 2

    def test_metadata_bullets(self, model):
        (f,) = model.metadata.files
        text = " ".join(f.statements())
        assert "Individual file pointers" in text
        assert "Non-collective" in text
        assert "Sequential access mode" in text
        assert "Shared access type" in text


class TestScaling:
    def test_4_processes(self):
        bundle = trace_run(madbench2_program, 4, None, MADbench2Params(kpix=4))
        model = IOModel.from_trace(bundle)
        assert model.nphases == 5
        assert all(ph.np == 4 for ph in model.phases)

    def test_total_volume(self, model):
        # S writes nbin matrices, W reads and writes each, C reads each:
        # 4 full passes over nbin matrices of npix^2 doubles.
        matrix = 8192 * 8192 * 8
        nbin = 8
        assert model.total_weight == 4 * nbin * matrix


class TestMultiGang:
    def test_multi_gang_same_phases(self):
        """Gang redistribution changes synchronization, not the I/O model."""
        single = IOModel.from_trace(
            trace_run(madbench2_program, 16, None, MADbench2Params(ngang=1)))
        multi = IOModel.from_trace(
            trace_run(madbench2_program, 16, None, MADbench2Params(ngang=4)))
        assert multi.nphases == single.nphases == 5
        assert [p.weight for p in multi.phases] == \
            [p.weight for p in single.phases]

    def test_ngang_must_divide_np(self):
        with pytest.raises(MPIUsageError):
            trace_run(madbench2_program, 16, None, MADbench2Params(ngang=3))

"""IOR reimplementation: layout, options, bandwidth reporting."""

from __future__ import annotations

import pytest

from repro.apps.ior import IORParams, ior_program, run_ior
from repro.simmpi import Engine, IdealPlatform, MPIUsageError

from tests.conftest import make_nfs_cluster

MB = 1024 * 1024


def traced_events(params):
    events = []
    engine = Engine(params.np, platform=IdealPlatform())
    engine.add_io_hook(events.append)
    engine.run(ior_program, params)
    return events, engine


class TestValidation:
    def test_block_must_be_multiple_of_transfer(self):
        with pytest.raises(MPIUsageError):
            IORParams(block_size=10, transfer_size=3)

    def test_positive_np(self):
        with pytest.raises(MPIUsageError):
            IORParams(np=0)

    def test_unknown_kind(self):
        with pytest.raises(MPIUsageError):
            IORParams(kinds=("append",))


class TestLayout:
    def test_shared_file_segment_major_interleave(self):
        params = IORParams(np=2, block_size=4 * MB, transfer_size=2 * MB,
                           segments=2, kinds=("write",))
        events, engine = traced_events(params)
        # process p, segment s block at (s*np + p) * b
        offsets = sorted(e.abs_offset for e in events)
        expected = sorted((s * 2 + p) * 4 * MB + i * 2 * MB
                          for p in range(2) for s in range(2) for i in range(2))
        assert offsets == expected
        assert len(engine.files) == 1

    def test_file_per_process(self):
        params = IORParams(np=3, block_size=MB, transfer_size=MB,
                           file_per_process=True, kinds=("write",))
        _, engine = traced_events(params)
        assert len(engine.files) == 3
        assert all(f.unique for f in engine.files.values())

    def test_collective_flag_uses_all_ops(self):
        params = IORParams(np=2, block_size=MB, transfer_size=MB,
                           collective=True, kinds=("write", "read"))
        events, _ = traced_events(params)
        assert all(e.collective for e in events)
        assert {e.op for e in events} == {
            "MPI_File_write_at_all", "MPI_File_read_at_all"}

    def test_random_offsets_permute_within_block(self):
        params = IORParams(np=1, block_size=8 * MB, transfer_size=MB,
                           random_offsets=True, kinds=("write",))
        events, _ = traced_events(params)
        offsets = [e.abs_offset for e in events]
        assert sorted(offsets) == [i * MB for i in range(8)]
        assert offsets != sorted(offsets)  # actually shuffled

    def test_random_offsets_deterministic(self):
        params = IORParams(np=2, block_size=4 * MB, transfer_size=MB,
                           random_offsets=True, kinds=("write",))
        e1, _ = traced_events(params)
        e2, _ = traced_events(params)
        assert [x.abs_offset for x in e1] == [x.abs_offset for x in e2]


class TestResults:
    def test_bandwidths_reported_per_kind(self):
        params = IORParams(np=2, block_size=8 * MB, transfer_size=4 * MB)
        result = run_ior(make_nfs_cluster(), params)
        assert set(result.bw_mb_s) == {"write", "read"}
        assert result.bw("write") > 0 and result.bw("read") > 0
        assert result.elapsed > 0

    def test_write_only(self):
        params = IORParams(np=2, block_size=MB, transfer_size=MB,
                           kinds=("write",))
        result = run_ior(make_nfs_cluster(), params)
        assert "read" not in result.bw_mb_s

    def test_total_bytes_accounting(self):
        params = IORParams(np=4, block_size=2 * MB, transfer_size=MB,
                           segments=3)
        assert params.total_bytes_per_kind == 4 * 3 * 2 * MB
        assert params.transfers_per_segment == 2

    def test_command_line(self):
        params = IORParams(np=2, block_size=2 * MB, transfer_size=MB,
                           file_per_process=True, random_offsets=True)
        cmd = params.command_line()
        assert "-F" in cmd and "-z" in cmd and "-a MPIIO" in cmd

"""IOzone device-level characterization."""

from __future__ import annotations

import pytest

from repro.apps.iozone import IOzoneParams, characterize_peaks, run_iozone
from repro.iosim import EXT4, JBOD, Disk, DiskSpec, IONode, LocalFS


def make_ion(write_bw=100.0, read_bw=110.0, ram_gb=0.25) -> IONode:
    disk = Disk("d", DiskSpec(seq_write_bw=write_bw, seq_read_bw=read_bw))
    fs = LocalFS("fs", JBOD("j", [disk]), EXT4, cache_mb=64.0)
    return IONode.make("ion", fs, ram_gb=ram_gb)


SMALL = IOzoneParams(file_size_mb=64, request_sizes_kb=(256, 1024),
                     max_ops_per_cell=256)


class TestGrid:
    def test_covers_all_cells(self):
        res = run_iozone(make_ion(), SMALL)
        assert len(res.grid) == 3 * 2 * 2  # patterns x kinds x sizes
        assert all(v > 0 for v in res.grid.values())

    def test_default_file_size_is_2x_ram(self):
        params = IOzoneParams()
        assert params.resolved_file_size_mb(make_ion(ram_gb=1.0)) == 2048

    def test_sequential_fastest_random_slowest(self):
        res = run_iozone(make_ion(), SMALL)
        for kind in ("write", "read"):
            seq = res.bw("sequential", kind, 1024)
            rnd = res.bw("random", kind, 1024)
            assert seq >= rnd

    def test_larger_requests_not_slower(self):
        res = run_iozone(make_ion(), SMALL)
        assert res.bw("sequential", "write", 1024) >= \
            res.bw("sequential", "write", 256) * 0.95


class TestPeaks:
    def test_peak_below_media_rate(self):
        res = run_iozone(make_ion(write_bw=100.0), SMALL)
        peak = res.peak_bw("write")
        assert 50.0 < peak <= 100.0  # journal + latency keep it below media

    def test_peak_reflects_disk_speed(self):
        slow = run_iozone(make_ion(write_bw=50.0), SMALL).peak_bw("write")
        fast = run_iozone(make_ion(write_bw=150.0), SMALL).peak_bw("write")
        assert fast > slow * 2

    def test_unknown_kind_rejected(self):
        res = run_iozone(make_ion(), SMALL)
        with pytest.raises(ValueError):
            res.peak_bw("append")

    def test_characterize_peaks_shape(self):
        ions = [make_ion(), make_ion()]
        ions[1].name = "ion2"
        peaks = characterize_peaks(ions, SMALL)
        assert set(peaks) == {"ion", "ion2"}
        assert set(peaks["ion"]) == {"write", "read"}

    def test_cache_restored_after_run(self):
        ion = make_ion()
        before = ion.fs.cache_mb
        run_iozone(ion, SMALL)
        assert ion.fs.cache_mb == before

    def test_rows_sorted(self):
        res = run_iozone(make_ion(), SMALL)
        rows = res.rows()
        assert rows == sorted(rows)

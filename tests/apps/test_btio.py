"""NAS BT-IO: classes, phase counts, offset formulas, metadata."""

from __future__ import annotations

import pytest

from repro.apps.btio import (
    BTIOParams,
    CLASSES,
    btio_program,
    expected_phase_count,
    validate_np,
)
from repro.core.model import IOModel
from repro.simmpi.errors import MPIUsageError
from repro.tracer import trace_run


@pytest.fixture(scope="module")
def model_a4() -> IOModel:
    """Class A on 4 procs: small and fast, same structure as C/D."""
    bundle = trace_run(btio_program, 4, None,
                       BTIOParams(cls="A", comm_events_per_step=4))
    return IOModel.from_trace(bundle, app_name="btio-A")


class TestParameters:
    def test_classes(self):
        assert set(CLASSES) == {"A", "B", "C", "D"}
        assert BTIOParams(cls="C").ndumps == 40
        assert BTIOParams(cls="D").ndumps == 50

    def test_unknown_class_rejected(self):
        with pytest.raises(MPIUsageError):
            BTIOParams(cls="Z")

    def test_unknown_subtype_rejected(self):
        with pytest.raises(MPIUsageError):
            BTIOParams(subtype="epio")

    def test_square_np_required(self):
        assert validate_np(16) == 4
        with pytest.raises(MPIUsageError):
            validate_np(10)

    def test_paper_request_size(self):
        """Class C on 16 procs: ~10 MB per process per dump."""
        rs = BTIOParams(cls="C").request_size(16)
        assert 10_000_000 < rs < 11_000_000
        assert rs % 40 == 0  # whole mesh points

    def test_expected_phase_count(self):
        assert expected_phase_count(BTIOParams(cls="C")) == 41
        assert expected_phase_count(BTIOParams(cls="D")) == 51


class TestModel:
    def test_phase_count(self, model_a4):
        assert model_a4.nphases == 41

    def test_write_phases_then_read_phase(self, model_a4):
        labels = [ph.op_label for ph in model_a4.phases]
        assert labels[:40] == ["W"] * 40
        assert labels[40] == "R"
        assert model_a4.phases[40].rep == 40

    def test_table_xi_offset_formula(self, model_a4):
        """initOffset = rs*idP + rs*(ph-1)*np (absolute bytes)."""
        rs = BTIOParams(cls="A").request_size(4)
        for ph_num in (1, 2, 40):
            ph = model_a4.phases[ph_num - 1]
            fn = ph.ops[0].abs_offset_fn
            assert fn.slope == rs
            assert fn.intercept == rs * (ph_num - 1) * 4

    def test_read_phase_starts_at_first_dump(self, model_a4):
        fn = model_a4.phases[40].ops[0].abs_offset_fn
        assert fn.intercept == 0
        rs = BTIOParams(cls="A").request_size(4)
        assert fn.slope == rs

    def test_weights_uniform_across_write_phases(self, model_a4):
        weights = {ph.weight for ph in model_a4.phases[:40]}
        assert len(weights) == 1
        rs = BTIOParams(cls="A").request_size(4)
        assert weights == {4 * rs}

    def test_metadata_bullets(self, model_a4):
        (f,) = model_a4.metadata.files
        text = " ".join(f.statements())
        assert "Explicit offset" in text
        assert "Collective operations" in text
        assert "Strided access mode" in text
        assert "etype of 40" in text

    def test_collective_flag(self, model_a4):
        assert all(ph.collective for ph in model_a4.phases)


class TestSubtypes:
    def test_simple_subtype_noncollective(self):
        bundle = trace_run(btio_program, 4, None,
                           BTIOParams(cls="A", subtype="simple",
                                      comm_events_per_step=2))
        model = IOModel.from_trace(bundle)
        assert not any(ph.collective for ph in model.phases)

    def test_same_model_on_different_np(self):
        """The paper: same model shape for 36/64/121 procs, only weights change."""
        models = {}
        for np_ in (4, 9):
            bundle = trace_run(btio_program, np_, None,
                               BTIOParams(cls="A", comm_events_per_step=2))
            models[np_] = IOModel.from_trace(bundle)
        assert models[4].nphases == models[9].nphases == 41
        rs4 = BTIOParams(cls="A").request_size(4)
        rs9 = BTIOParams(cls="A").request_size(9)
        assert models[4].phases[0].weight == 4 * rs4
        assert models[9].phases[0].weight == 9 * rs9

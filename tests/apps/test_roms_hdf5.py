"""hdf5lite and the ROMS-style multi-file workload (paper future work)."""

from __future__ import annotations

import pytest

from repro.apps.roms import HISTORY_FIELDS, ROMSParams, roms_program
from repro.core.model import IOModel
from repro.hdf5lite import H5File
from repro.simmpi import Engine, IdealPlatform, MPIUsageError
from repro.tracer import Tracer, trace_run


def run_traced(program, nprocs=4, *args):
    events = []
    engine = Engine(nprocs, platform=IdealPlatform())
    engine.add_io_hook(events.append)
    engine.run(program, *args)
    return events, engine


class TestH5File:
    def test_superblock_written_once(self):
        def program(ctx):
            f = H5File(ctx, "t.h5")
            f.close()

        events, _ = run_traced(program, 4)
        supers = [e for e in events if e.offset == 0 and e.request_size == 96]
        assert len(supers) == 1 and supers[0].rank == 0

    def test_dataset_slabs_cover_extent_disjointly(self):
        def program(ctx):
            with H5File(ctx, "t.h5") as f:
                ds = f.create_dataset("x", nbytes=8 * 1000, element_size=8)
                ds.write_slab()

        events, engine = run_traced(program, 4)
        slabs = [(e.abs_offset, e.request_size) for e in events
                 if e.collective]
        slabs.sort()
        assert sum(ln for _, ln in slabs) == 8000
        for (o1, l1), (o2, l2) in zip(slabs, slabs[1:]):
            assert o1 + l1 == o2  # contiguous, disjoint decomposition

    def test_uneven_slab_split_whole_elements(self):
        def program(ctx):
            with H5File(ctx, "t.h5") as f:
                ds = f.create_dataset("x", nbytes=8 * 10, element_size=8)
                assert sum(ds.slab(r, 3)[1] for r in range(3)) == 80
                assert all(ds.slab(r, 3)[1] % 8 == 0 for r in range(3))
                ds.write_slab()

        run_traced(program, 3)

    def test_duplicate_dataset_rejected(self):
        def program(ctx):
            with H5File(ctx, "t.h5") as f:
                f.create_dataset("x", 80)
                f.create_dataset("x", 80)

        with pytest.raises(MPIUsageError):
            run_traced(program, 2)

    def test_partial_element_rejected(self):
        def program(ctx):
            with H5File(ctx, "t.h5") as f:
                f.create_dataset("x", nbytes=81, element_size=8)

        with pytest.raises(MPIUsageError):
            run_traced(program, 2)

    def test_attributes_are_small_rank0_writes(self):
        def program(ctx):
            with H5File(ctx, "t.h5") as f:
                f.attrs["time"] = 1
                f.attrs["time"] = 2  # overwrite reuses the slot

        events, _ = run_traced(program, 4)
        attr_writes = [e for e in events if e.request_size == 64]
        assert len(attr_writes) == 2
        assert all(e.rank == 0 for e in attr_writes)
        assert attr_writes[0].offset == attr_writes[1].offset

    def test_read_slab(self):
        def program(ctx):
            with H5File(ctx, "t.h5", mode="rw") as f:
                ds = f.create_dataset("x", 8 * 512)
                ds.write_slab()
                ds.read_slab()

        events, _ = run_traced(program, 2)
        assert any(e.kind == "read" for e in events)

    def test_getitem(self):
        def program(ctx):
            with H5File(ctx, "t.h5") as f:
                f.create_dataset("zeta", 80)
                assert f["zeta"].nbytes == 80
                with pytest.raises(KeyError):
                    f["nope"]

        run_traced(program, 2)


class TestROMS:
    @pytest.fixture(scope="class")
    def model(self):
        bundle = trace_run(roms_program, 8, None, ROMSParams())
        return IOModel.from_trace(bundle, app_name="roms-upwelling")

    def test_one_file_group_per_output_file(self, model):
        params = ROMSParams()
        expected = [f"his_{i:04d}.nc" for i in
                    range(1, params.n_history_files + 1)] + ["rst.nc"]
        assert model.file_groups == expected

    def test_model_applicable_per_file(self, model):
        """The paper's observation: each file has its own phase model."""
        for group in model.file_groups:
            phases = model.phases_for(group)
            assert phases, group
            # Data phases exist in each file (large collective writes).
            assert any(ph.collective and ph.request_size > 1024
                       for ph in phases), group

    def test_history_files_have_identical_models(self, model):
        his = [model.phases_for(f"his_{i:04d}.nc") for i in (1, 2, 3)]
        shapes = [
            [(ph.op_label, ph.rep, ph.request_size, ph.np) for ph in group]
            for group in his
        ]
        assert shapes[0] == shapes[1] == shapes[2]

    def test_total_volume(self, model):
        params = ROMSParams()
        his_bytes = params.n_history_files * params.history_bytes()
        rst_bytes = 2 * sum(params.field_bytes(3)
                            for _, d in HISTORY_FIELDS if d == 3)
        metadata = model.total_weight - his_bytes - rst_bytes
        # Everything beyond the field data is HDF5 metadata: small but
        # nonzero (superblocks, object headers, attributes).
        assert 0 < metadata < 0.05 * (his_bytes + rst_bytes)

    def test_rank0_metadata_phases_observed(self, model):
        """HDF5 metadata surfaces as rank-0-only small phases."""
        meta_phases = [ph for ph in model.phases
                       if ph.np == 1 and ph.ranks == (0,)]
        assert meta_phases
        assert all(not ph.collective or len(ph.ops) > 1
                   for ph in meta_phases)

"""Columnar trace storage: backends, formats, round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracer.columns import (
    MAGIC,
    TraceColumns,
    numpy_enabled,
    read_trace_columns,
)
from repro.tracer.tracefile import (
    ABS_OFFSET_UNKNOWN,
    HEADER,
    TraceRecord,
    read_trace_file,
    write_trace_file,
)

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

BACKENDS = pytest.mark.parametrize(
    "backend",
    [pytest.param("numpy", marks=pytest.mark.skipif(
        not HAVE_NUMPY, reason="numpy not installed")),
     "python"])


def sample_records(n: int = 12) -> list[TraceRecord]:
    ops = ["MPI_File_write_at_all", "MPI_File_read_at", "MPI_File_write"]
    return [
        TraceRecord(rank=i % 3, file_id=i % 2, op=ops[i % 3],
                    offset=i * 64, tick=i + 1, request_size=4096 * (1 + i % 4),
                    time=0.25 * i, duration=0.001 * i,
                    abs_offset=i * 64 * 8)
        for i in range(n)
    ]


class TestRoundTrips:
    @BACKENDS
    def test_records_round_trip(self, backend):
        records = sample_records()
        cols = TraceColumns.from_records(records, backend=backend)
        assert len(cols) == len(records)
        assert cols.to_records() == records

    @BACKENDS
    def test_record_at_index(self, backend):
        records = sample_records()
        cols = TraceColumns.from_records(records, backend=backend)
        assert cols.record(5) == records[5]

    @BACKENDS
    def test_aggregates_match_record_view(self, backend):
        records = sample_records()
        cols = TraceColumns.from_records(records, backend=backend)
        assert cols.total_bytes == sum(r.request_size for r in records)
        assert cols.nfiles == len({r.file_id for r in records})

    @BACKENDS
    def test_text_parse_matches_read_trace_file(self, backend, tmp_path):
        path = tmp_path / "trace.0"
        write_trace_file(path, sample_records())
        cols = read_trace_columns(path, backend=backend)
        assert cols.to_records() == read_trace_file(path)

    @BACKENDS
    def test_packed_trc_round_trip(self, backend, tmp_path):
        cols = TraceColumns.from_records(sample_records(), backend=backend)
        path = cols.save(tmp_path / "t.trc")
        assert path.read_bytes().startswith(MAGIC)
        back = TraceColumns.load(path, backend=backend)
        assert back.op_table == cols.op_table
        assert back.column_lists() == cols.column_lists()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_npz_round_trip(self, tmp_path):
        cols = TraceColumns.from_records(sample_records(), backend="numpy")
        path = cols.save(tmp_path / "t.npz")
        back = TraceColumns.load(path)
        assert back.op_table == cols.op_table
        assert back.column_lists() == cols.column_lists()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    @pytest.mark.parametrize("suffix", [".trc", ".npz"])
    @pytest.mark.parametrize("writer,reader", [("numpy", "python"),
                                               ("python", "numpy")])
    def test_cross_backend_load(self, tmp_path, suffix, writer, reader):
        if suffix == ".npz" and writer == "python":
            pytest.skip(".npz is written through numpy only")
        cols = TraceColumns.from_records(sample_records(), backend=writer)
        path = cols.save(tmp_path / f"t{suffix}")
        back = TraceColumns.load(path, backend=reader)
        assert back.backend == reader
        assert back.column_lists() == cols.column_lists()

    @given(st.lists(st.tuples(
        st.integers(0, 7), st.integers(0, 3),
        st.sampled_from(["MPI_File_write_at", "MPI_File_read_at_all"]),
        st.integers(0, 10**9), st.integers(0, 10**6), st.integers(1, 10**8),
        st.floats(0, 1e6, allow_nan=False), st.floats(0, 10, allow_nan=False),
    ), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_packed_trc_property(self, tmp_path_factory, rows):
        records = [TraceRecord(r, f, op, off, tick, rs, t, d, off * 2)
                   for r, f, op, off, tick, rs, t, d in rows]
        cols = TraceColumns.from_records(records, backend="python")
        path = tmp_path_factory.mktemp("trc") / "t.trc"
        cols.save(path)
        assert TraceColumns.load(path, backend="python").to_records() == records


class TestParsing:
    def test_header_skipped_only_on_exact_match(self, tmp_path):
        path = tmp_path / "t"
        path.write_text("IdP-like 1 MPI_File_read_at 0 1 8 0.0 0.0 0\n")
        with pytest.raises(ValueError, match=rf"{path}:1: "):
            read_trace_columns(path)

    @BACKENDS
    def test_malformed_row_error_names_path_and_line(self, backend, tmp_path):
        path = tmp_path / "t"
        lines = [HEADER] + [r.to_line() for r in sample_records(4)]
        lines.insert(3, "0 1 MPI_File_read_at nonsense 1 8 0.0 0.0 0")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=rf"{path}:4: malformed"):
            read_trace_columns(path, backend=backend)

    @BACKENDS
    def test_legacy_rows_resolve_through_etype(self, backend, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n"
                        "0 1 MPI_File_read_at 5 10 100 1.5 0.25\n"
                        "0 2 MPI_File_read_at 7 11 100 1.6 0.25\n")
        cols = read_trace_columns(path, etype_size={1: 16}, backend=backend)
        a, b = cols.to_records()
        assert a.abs_offset == 5 * 16
        assert b.abs_offset == ABS_OFFSET_UNKNOWN

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_bytes(b"not a trace at all")
        with pytest.raises(ValueError, match="bad magic"):
            TraceColumns.load(path)

    def test_truncated_file_rejected(self, tmp_path):
        cols = TraceColumns.from_records(sample_records(), backend="python")
        path = cols.save(tmp_path / "t.trc")
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            TraceColumns.load(path, backend="python")


class TestReordering:
    @BACKENDS
    def test_sorted_canonical_matches_record_sort(self, backend):
        records = sample_records(20)[::-1]
        cols = TraceColumns.from_records(records, backend=backend)
        expected = sorted(records, key=lambda r: (r.rank, r.time, r.tick))
        assert cols.sorted_canonical().to_records() == expected

    @BACKENDS
    def test_concat_remaps_op_codes(self, backend):
        a = TraceColumns.from_records(
            [TraceRecord(0, 0, "MPI_File_write_at", 0, 1, 8, 0.0, 0.0, 0)],
            backend=backend)
        b = TraceColumns.from_records(
            [TraceRecord(1, 0, "MPI_File_read_at", 0, 1, 8, 0.1, 0.0, 0),
             TraceRecord(1, 0, "MPI_File_write_at", 8, 2, 8, 0.2, 0.0, 8)],
            backend=backend)
        both = TraceColumns.concat([a, b])
        assert [r.op for r in both.to_records()] == \
            ["MPI_File_write_at", "MPI_File_read_at", "MPI_File_write_at"]

    def test_empty_concat(self):
        assert len(TraceColumns.concat([])) == 0


class TestConcatTakeEdges:
    """Shard-gather edge cases the parallel ingest engine leans on."""

    def test_concat_with_empty_parts_interleaved(self):
        full = TraceColumns.from_records(sample_records(9))
        empty = TraceColumns.from_records([])
        out = TraceColumns.concat([empty, full.take(range(0, 4)), empty,
                                   full.take(range(4, 9)), empty])
        assert out.to_records() == full.to_records()
        assert out.content_digest() == full.content_digest()

    def test_concat_all_empty_parts(self):
        empty = TraceColumns.from_records([])
        out = TraceColumns.concat([empty, empty])
        assert len(out) == 0
        assert out.content_digest() == empty.content_digest()

    def test_concat_single_row_shards(self):
        records = sample_records(7)
        full = TraceColumns.from_records(records)
        shards = [TraceColumns.from_records([r]) for r in records]
        out = TraceColumns.concat(shards)
        assert out.to_records() == records
        assert out.content_digest() == full.content_digest()
        assert out.op_table == full.op_table

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_concat_mixed_backends_matches_pure(self):
        records = sample_records(12)
        a = TraceColumns.from_records(records[:5], backend="numpy")
        b = TraceColumns.from_records(records[5:], backend="python")
        full = TraceColumns.from_records(records)
        for backend in ("numpy", "python"):
            out = TraceColumns.concat([a, b], backend=backend)
            assert out.backend == backend
            assert out.to_records() == records
            assert out.content_digest() == full.content_digest()

    @BACKENDS
    def test_take_then_concat_round_trips_on_boundaries(self, backend):
        # shard cuts landing exactly on record boundaries: re-gathering
        # contiguous windows must reproduce the original bit for bit
        records = sample_records(10)
        cols = TraceColumns.from_records(records, backend=backend)
        for cut in (0, 1, 5, 9, 10):
            parts = [cols.take(range(0, cut)), cols.take(range(cut, 10))]
            out = TraceColumns.concat(parts, backend=backend)
            assert out.to_records() == records
            assert out.content_digest() == cols.content_digest()

    @BACKENDS
    def test_take_range_matches_take_list(self, backend):
        cols = TraceColumns.from_records(sample_records(10), backend=backend)
        view = cols.take(range(3, 8))
        copy = cols.take(list(range(3, 8)))
        assert view.to_records() == copy.to_records()
        assert view.content_digest() == copy.content_digest()

    @BACKENDS
    def test_take_empty_range(self, backend):
        cols = TraceColumns.from_records(sample_records(5), backend=backend)
        assert len(cols.take(range(2, 2))) == 0

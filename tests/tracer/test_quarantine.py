"""Quarantine-mode ingest: salvage well-formed records, report the rest."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracer.columns import TraceColumns, read_trace_columns
from repro.tracer.hooks import TraceBundle
from repro.tracer.metadata import AppMetadata
from repro.tracer.quarantine import (
    RANK_UNKNOWN,
    QuarantineReport,
    guess_rank,
)
from repro.tracer.tracefile import (
    HEADER,
    TraceRecord,
    read_trace_file,
    write_trace_file,
)


def rec(rank=0, tick=1, op="mpi_file_write_at", off=0):
    # time uses quarter-second steps: exact in binary AND in the %.6f
    # text format, so records survive a write/parse round trip bit-equal.
    return TraceRecord(rank=rank, file_id=1, op=op, offset=off, tick=tick,
                       request_size=4096, time=tick / 4,
                       duration=0.015625, abs_offset=off)


GARBAGE_LINES = [
    "GARBAGE",
    "0 1 mpi_file_write_at zz 3 10 0.3 0.03 0",  # non-numeric field
    "1 2 3",  # too few fields
    "\x00\x01binary junk here with spaces x y z",
]


# -- text salvage --------------------------------------------------------------

def _write_interleaved(path, records, garbage):
    lines = [HEADER]
    for i, r in enumerate(records):
        lines.append(r.to_line())
        if i < len(garbage):
            lines.append(garbage[i])
    path.write_text("\n".join(lines) + "\n")


def test_read_trace_file_salvages_around_garbage(tmp_path):
    p = tmp_path / "trace.0"
    records = [rec(tick=i) for i in range(5)]
    _write_interleaved(p, records, GARBAGE_LINES)
    q = QuarantineReport()
    got = read_trace_file(p, quarantine=q)
    assert got == records
    assert len(q) == len(GARBAGE_LINES)
    assert all(e.source == str(p) for e in q.entries)


def test_read_trace_file_without_quarantine_still_raises(tmp_path):
    p = tmp_path / "trace.0"
    _write_interleaved(p, [rec()], ["junk line"])
    with pytest.raises(ValueError, match="trace.0:3"):
        read_trace_file(p)


def test_read_trace_columns_salvages_and_keeps_alignment(tmp_path):
    p = tmp_path / "trace.0"
    records = [rec(tick=i, off=i * 100) for i in range(6)]
    _write_interleaved(p, records, GARBAGE_LINES)
    q = QuarantineReport()
    cols = read_trace_columns(p, quarantine=q)
    assert cols.to_records() == records  # no skew from skipped rows
    assert len(q) == len(GARBAGE_LINES)


def test_quarantine_attributes_rank_when_parseable(tmp_path):
    p = tmp_path / "trace.0"
    p.write_text(HEADER + "\n" + "7 not a valid row\n")
    q = QuarantineReport()
    read_trace_file(p, quarantine=q)
    assert q.entries[0].rank == 7
    assert guess_rank("junk") == RANK_UNKNOWN


def test_strict_report_raises_like_no_quarantine(tmp_path):
    p = tmp_path / "trace.0"
    _write_interleaved(p, [rec()], ["junk"])
    q = QuarantineReport(strict=True)
    with pytest.raises(ValueError):
        read_trace_file(p, quarantine=q)


def test_report_summary_and_by_rank(tmp_path):
    q = QuarantineReport()
    q.note("f", 0, 1, "bad", "x")
    q.note("f", 0, 2, "bad", "y")
    q.note("f", RANK_UNKNOWN, 3, "bad", "z")
    assert len(q.by_rank()[0]) == 2
    s = q.summary(max_lines=1)
    assert "3 dropped" in s and "rank 0: 2" in s and "2 more" in s
    assert "clean" in QuarantineReport().summary()


# -- bundle salvage ------------------------------------------------------------

def _bundle_dir(tmp_path, nprocs=2):
    d = tmp_path / "bundle"
    d.mkdir()
    payload = {"nprocs": nprocs, "metadata": AppMetadata().to_dict()}
    (d / "metadata.json").write_text(json.dumps(payload))
    for rank in range(nprocs):
        write_trace_file(d / f"trace.{rank}",
                         [rec(rank=rank, tick=i) for i in range(3)])
    return d


def test_bundle_load_salvages_missing_rank_file(tmp_path):
    d = _bundle_dir(tmp_path)
    (d / "trace.1").unlink()
    q = QuarantineReport()
    bundle = TraceBundle.load(d, quarantine=q)
    assert bundle.nevents == 3  # rank 0 survived
    assert any(e.rank == 1 and "missing" in e.reason for e in q.entries)


def test_bundle_load_truncated_trc_falls_back_to_text(tmp_path):
    d = _bundle_dir(tmp_path)
    cols = TraceColumns.from_records([rec(rank=0, tick=i) for i in range(3)])
    full = d / "columns.trc"
    cols.save(full)
    full.write_bytes(full.read_bytes()[:-24])  # lose the tail blob
    q = QuarantineReport()
    bundle = TraceBundle.load(d, quarantine=q)
    # the corrupt binary is quarantined whole; text traces supply the data
    assert any("corrupt binary" in e.reason for e in q.entries)
    assert bundle.nevents == 6


def test_bundle_load_corrupt_metadata_infers_ranks(tmp_path):
    d = _bundle_dir(tmp_path)
    (d / "metadata.json").write_text("{truncated")
    q = QuarantineReport()
    bundle = TraceBundle.load(d, quarantine=q)
    assert bundle.nprocs == 2
    assert bundle.nevents == 6
    assert bundle.metadata is None
    assert any("unreadable metadata" in e.reason for e in q.entries)


def test_bundle_load_strictly_raises_without_quarantine(tmp_path):
    d = _bundle_dir(tmp_path)
    (d / "metadata.json").write_text("{truncated")
    with pytest.raises(ValueError):
        TraceBundle.load(d)


def test_garbage_npz_quarantined(tmp_path):
    pytest.importorskip("numpy")
    from repro.tracer.columns import numpy_enabled
    if not numpy_enabled():
        pytest.skip("numpy backend disabled")
    d = _bundle_dir(tmp_path)
    (d / "columns.npz").write_bytes(b"PK\x03\x04 not actually an npz")
    q = QuarantineReport()
    bundle = TraceBundle.load(d, quarantine=q)
    assert any("corrupt binary" in e.reason for e in q.entries)
    assert bundle.nevents == 6


# -- property: quarantine recovers every well-formed record --------------------

records_strategy = st.lists(
    st.builds(
        rec,
        rank=st.integers(min_value=0, max_value=7),
        tick=st.integers(min_value=0, max_value=1000),
        off=st.integers(min_value=0, max_value=1 << 40),
        op=st.sampled_from(["mpi_file_write_at", "mpi_file_read_at",
                            "mpi_file_write_at_all"]),
    ),
    max_size=30,
)

garbage_strategy = st.lists(
    # Surrogates (category Cs) cannot be UTF-8-encoded, so they can
    # never appear in a trace file in the first place.
    st.text(alphabet=st.characters(blacklist_characters="\n\r",
                                   blacklist_categories=("Cs",)),
            min_size=1, max_size=40).filter(lambda s: s.strip()),
    max_size=10,
)


@settings(max_examples=60, deadline=None)
@given(records=records_strategy, garbage=garbage_strategy,
       seed=st.randoms(use_true_random=False))
def test_roundtrip_salvages_every_well_formed_record(tmp_path_factory,
                                                     records, garbage, seed):
    """Interleave valid rows with arbitrary garbage anywhere in the file:
    quarantine ingest must recover exactly the valid rows, in order."""
    tmp = tmp_path_factory.mktemp("q")
    p = tmp / "trace.0"
    lines = [r.to_line() for r in records]
    for g in garbage:
        lines.insert(seed.randrange(len(lines) + 1), g)
    p.write_text(HEADER + "\n" + "\n".join(lines) + "\n")

    q = QuarantineReport()
    got = read_trace_file(p, quarantine=q)
    # Garbage that happens to parse as a valid row is salvage, not loss:
    # every original record must be present as a subsequence, in order.
    it = iter(got)
    assert all(r in it for r in records)
    # and nothing was silently dropped: salvaged + quarantined = lines
    assert len(got) + len(q) == len(lines)

    # the columnar reader agrees with the record reader
    q2 = QuarantineReport()
    cols = read_trace_columns(p, quarantine=q2)
    assert cols.to_records() == got
    assert len(q2) == len(q)

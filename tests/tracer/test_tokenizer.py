"""The chunk tokenizer's fast path vs the exact row-wise parser.

``_parse_chunk_flat`` commits a batch only after proving every line is
a clean single-space-separated 9-field row; anything else must fall
back to ``_parse_chunk_rows`` with *identical* output.  These tests pin
that contract on the inputs that historically break batch tokenizers:
whitespace runs, tabs, unicode spaces, line-edge spaces, blank lines,
legacy 8-field rows and malformed values.
"""

from __future__ import annotations

import pytest

from repro.tracer.columns import (
    TraceColumns,
    _parse_chunk,
    _parse_chunk_flat,
    read_trace_columns,
)
from repro.tracer.quarantine import QuarantineReport
from repro.tracer.tracefile import ABS_OFFSET_UNKNOWN, HEADER

CLEAN = [
    "0 1 MPI_File_write_at 0 1 4096 0.10 0.01 0\n",
    "1 1 MPI_File_read_at 64 2 8192 0.20 0.02 512\n",
    "0 2 MPI_File_write_at_all 128 3 4096 0.30 0.03 1024\n",
]


def fresh():
    return TraceColumns._empty_lists(), [], {}


def parse_rowwise(lines, etype_size=None, quarantine=None):
    """The exact parser's answer, bypassing the fast path entirely."""
    cols, op_table, op_index = fresh()
    pending = [(i + 1, raw.strip()) for i, raw in enumerate(lines)
               if raw.strip()]
    rows = [line.split() for _, line in pending]
    from repro.tracer.columns import _parse_chunk_rows
    _parse_chunk_rows(pending, rows, "<mem>", cols, op_table, op_index,
                      etype_size, quarantine)
    return cols, op_table


def parse_full(lines, etype_size=None, quarantine=None):
    """What read_trace_columns would produce for this chunk."""
    cols, op_table, op_index = fresh()
    _parse_chunk(lines, 1, "<mem>", cols, op_table, op_index,
                 etype_size, quarantine)
    return cols, op_table


class TestFastPathCommits:
    def test_clean_batch_taken_by_flat_path(self):
        cols, op_table, op_index = fresh()
        assert _parse_chunk_flat(CLEAN, cols, op_table, op_index)
        assert cols["rank"] == [0, 1, 0]
        assert cols["request_size"] == [4096, 8192, 4096]
        assert cols["abs_offset"] == [0, 512, 1024]
        assert op_table == ["MPI_File_write_at", "MPI_File_read_at",
                            "MPI_File_write_at_all"]

    def test_flat_path_matches_rowwise_exactly(self):
        flat_cols, flat_ops = parse_full(CLEAN)
        row_cols, row_ops = parse_rowwise(CLEAN)
        assert flat_cols == row_cols
        assert flat_ops == row_ops

    def test_empty_batch_is_a_noop_commit(self):
        cols, op_table, op_index = fresh()
        assert _parse_chunk_flat([], cols, op_table, op_index)
        assert not cols["rank"] and not op_table

    def test_op_codes_interned_across_batches(self):
        cols, op_table, op_index = fresh()
        assert _parse_chunk_flat(CLEAN, cols, op_table, op_index)
        assert _parse_chunk_flat(CLEAN, cols, op_table, op_index)
        assert op_table == ["MPI_File_write_at", "MPI_File_read_at",
                            "MPI_File_write_at_all"]  # no duplicates
        assert cols["op_code"] == [0, 1, 2, 0, 1, 2]


DISQUALIFIERS = {
    "double-space": "0 1 MPI_File_write_at 0 1  4096 0.10 0.01 0\n",
    "tab-separator": "0 1\tMPI_File_write_at 0 1 4096 0.10 0.01 0\n",
    "unicode-nbsp": "0\u00a01 MPI_File_write_at 0 1 4096 0.10 0.01 0\n",
    "carriage-return": "0 1 MPI_File_write_at 0 1 4096 0.10 0.01 0\r\n",
    "leading-space": " 0 1 MPI_File_write_at 0 1 4096 0.10 0.01 0\n",
    "trailing-space": "0 1 MPI_File_write_at 0 1 4096 0.10 0.01 0 \n",
    "blank-line": "\n",
    "legacy-8-field": "0 1 MPI_File_write_at 0 1 4096 0.10 0.01\n",
    "ten-fields": "0 1 MPI_File_write_at 0 1 4096 0.10 0.01 0 9\n",
    "bad-int": "0 1 MPI_File_write_at zero 1 4096 0.10 0.01 0\n",
    "bad-float": "0 1 MPI_File_write_at 0 1 4096 ten 0.01 0\n",
}


class TestFastPathRefuses:
    @pytest.mark.parametrize("label", sorted(DISQUALIFIERS))
    def test_odd_line_disqualifies_batch_untouched(self, label):
        lines = [CLEAN[0], DISQUALIFIERS[label], CLEAN[1]]
        cols, op_table, op_index = fresh()
        assert not _parse_chunk_flat(lines, cols, op_table, op_index)
        # the refusal must leave no partial commit behind
        assert not any(cols.values())
        assert not op_table and not op_index

    @pytest.mark.parametrize("label", ["double-space", "tab-separator",
                                       "unicode-nbsp", "carriage-return",
                                       "leading-space", "trailing-space"])
    def test_whitespace_variants_parse_identically(self, label):
        """Sloppy-but-parseable whitespace: fallback output == row-wise
        output == the clean row's values (str.split semantics)."""
        lines = [DISQUALIFIERS[label], CLEAN[1]]
        got_cols, got_ops = parse_full(lines)
        ref_cols, ref_ops = parse_full([CLEAN[0], CLEAN[1]])
        assert got_cols == ref_cols
        assert got_ops == ref_ops

    def test_blank_lines_skipped_in_fallback(self):
        lines = [CLEAN[0], "\n", "   \n", CLEAN[1]]
        got_cols, _ = parse_full(lines)
        ref_cols, _ = parse_full([CLEAN[0], CLEAN[1]])
        assert got_cols == ref_cols


class TestMixedAndLegacyRows:
    def test_mixed_8_and_9_field_rows(self):
        lines = [CLEAN[0], DISQUALIFIERS["legacy-8-field"], CLEAN[2]]
        cols, _ = parse_full(lines, etype_size=512)
        assert cols["abs_offset"] == [0, 0 * 512, 1024]
        cols, _ = parse_full(lines, etype_size=None)
        assert cols["abs_offset"][1] == ABS_OFFSET_UNKNOWN

    def test_legacy_rows_resolve_per_file_etype(self):
        lines = ["0 1 MPI_File_read_at 5 10 100 1.5 0.25\n",
                 "0 2 MPI_File_read_at 7 11 100 1.6 0.25\n"]
        cols, _ = parse_full(lines, etype_size={1: 16})
        assert cols["abs_offset"] == [5 * 16, ABS_OFFSET_UNKNOWN]


class TestErrorsAndQuarantine:
    def test_malformed_value_error_names_exact_line(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + CLEAN[0] + CLEAN[1]
                        + DISQUALIFIERS["bad-int"] + CLEAN[2])
        with pytest.raises(ValueError, match=rf"{path}:4: malformed"):
            read_trace_columns(path)

    def test_field_count_error_names_exact_line(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + CLEAN[0]
                        + DISQUALIFIERS["ten-fields"] + CLEAN[1])
        with pytest.raises(ValueError, match=rf"{path}:3: .*10 fields"):
            read_trace_columns(path)

    def test_quarantine_salvages_around_bad_rows(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + CLEAN[0]
                        + DISQUALIFIERS["bad-float"]
                        + DISQUALIFIERS["ten-fields"] + CLEAN[1] + CLEAN[2])
        report = QuarantineReport()
        cols = read_trace_columns(path, quarantine=report)
        assert len(cols) == 3  # every well-formed row salvaged
        assert list(cols.request_size) == [4096, 8192, 4096]
        assert len(report.entries) == 2
        assert sorted(e.lineno for e in report.entries) == [3, 4]

    def test_strict_quarantine_raises_like_no_quarantine(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + DISQUALIFIERS["bad-int"])
        with pytest.raises(ValueError, match=rf"{path}:2: malformed"):
            read_trace_columns(path, quarantine=QuarantineReport(strict=True))

    def test_alignment_preserved_when_late_field_is_bad(self):
        """A row failing on field 8 must not leave fields 1-7 appended."""
        lines = [CLEAN[0],
                 "3 1 MPI_File_read_at 0 1 4096 0.10 0.01 nope\n",
                 CLEAN[1]]
        report = QuarantineReport()
        cols, _ = parse_full(lines, quarantine=report)
        lengths = {name: len(col) for name, col in cols.items()}
        assert set(lengths.values()) == {2}
        assert cols["rank"] == [0, 1]  # the bad row's rank=3 never landed
        assert len(report.entries) == 1


class TestEndToEndParity:
    def test_file_with_every_edge_case_matches_rowwise(self, tmp_path):
        """One file mixing all edge cases: the chunked reader (which may
        take the fast path per chunk) equals a pure row-wise parse."""
        lines = ([CLEAN[0]] + [DISQUALIFIERS["double-space"]]
                 + CLEAN + [DISQUALIFIERS["legacy-8-field"], "\n"]
                 + [DISQUALIFIERS["trailing-space"]] + CLEAN)
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + "".join(lines))
        got = read_trace_columns(path, etype_size=512, backend="python")
        ref_cols, ref_ops = parse_rowwise(lines, etype_size=512)
        assert got.column_lists() == ref_cols
        assert list(got.op_table) == ref_ops

    def test_tiny_chunks_match_one_big_chunk(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + "".join(CLEAN * 7))
        small = read_trace_columns(path, chunk_lines=2, backend="python")
        big = read_trace_columns(path, backend="python")
        assert small.column_lists() == big.column_lists()
        assert list(small.op_table) == list(big.op_table)

"""Metadata summaries: paper-style statements, serialization."""

from __future__ import annotations

from repro.simmpi.fileio import SimFile
from repro.tracer.metadata import AppMetadata, FileMetadataSummary, summarize_file


def make_summary(**kw) -> FileMetadataSummary:
    defaults = dict(filename="f", file_id=0, pointer_kinds=("individual",),
                    collective=False, noncollective=True,
                    access_mode="sequential", access_type="shared",
                    etype_size=1, size_bytes=0, openers=4)
    defaults.update(kw)
    return FileMetadataSummary(**defaults)


class TestStatements:
    def test_madbench_style(self):
        """The paper's MADbench2 bullets."""
        s = make_summary()
        text = " / ".join(s.statements())
        assert "Individual file pointers" in text
        assert "Non-collective I/O operations" in text
        assert "Sequential access mode" in text
        assert "Shared access type" in text
        assert "set_view" not in text

    def test_btio_style(self):
        """The paper's BT-IO bullets, including the etype mention."""
        s = make_summary(pointer_kinds=("explicit",), collective=True,
                         noncollective=False, access_mode="strided",
                         etype_size=40)
        text = " / ".join(s.statements())
        assert "Explicit offset" in text
        assert "Collective operations" in text
        assert "Strided access mode" in text
        assert "MPI_File_set_view with etype of 40" in text

    def test_mixed_collective(self):
        s = make_summary(collective=True, noncollective=True)
        assert any("Collective and non-collective" in line
                   for line in s.statements())


class TestSummarizeFile:
    def test_flags_reflected(self):
        f = SimFile(3, "out.dat", unique=False)
        f.meta.used_explicit_offset = True
        f.meta.used_collective = True
        f.size = 4096
        f.openers.update({0, 1})
        s = summarize_file(f)
        assert s.file_id == 3 and s.filename == "out.dat"
        assert s.pointer_kinds == ("explicit",)
        assert s.collective and not s.noncollective
        assert s.size_bytes == 4096 and s.openers == 2

    def test_unique_file(self):
        f = SimFile(0, "out.dat.2", unique=True)
        assert summarize_file(f).access_type == "unique"


class TestSerialization:
    def test_dict_roundtrip(self):
        meta = AppMetadata(files=[make_summary(), make_summary(
            filename="g", file_id=1, pointer_kinds=("explicit", "shared"))])
        back = AppMetadata.from_dict(meta.to_dict())
        assert back.files == meta.files

    def test_by_file_id(self):
        meta = AppMetadata(files=[make_summary(file_id=7)])
        assert meta.by_file_id(7).filename == "f"
        import pytest
        with pytest.raises(KeyError):
            meta.by_file_id(0)

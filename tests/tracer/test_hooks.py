"""Tracer: event capture, bundle save/load, metadata aggregation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.simmpi import Engine, IdealPlatform
from repro.simmpi.fileio import IOEvent
from repro.tracer import TraceBundle, Tracer, trace_run


def simple_app(ctx):
    fh = ctx.file_open("data")
    fh.write_at_all(ctx.rank * 1024, 1024)
    fh.seek(ctx.rank * 10)
    fh.read(100)
    fh.close()
    ctx.barrier()


class TestTracer:
    def test_trace_run_captures_all_ops(self):
        bundle = trace_run(simple_app, 4)
        assert bundle.nprocs == 4
        assert len(bundle.records) == 8  # 1 write + 1 read per rank
        assert bundle.nfiles == 1
        assert bundle.total_bytes == 4 * (1024 + 100)

    def test_by_rank_ordering(self):
        bundle = trace_run(simple_app, 2)
        for rank in (0, 1):
            recs = bundle.by_rank(rank)
            assert [r.kind for r in recs] == ["write", "read"]
            assert all(r.rank == rank for r in recs)

    def test_manual_attach(self):
        tracer = Tracer()
        engine = Engine(2, platform=IdealPlatform())
        tracer.attach(engine)
        engine.run(simple_app)
        bundle = tracer.finish(engine)
        assert len(bundle.records) == 4

    def test_metadata_captured(self):
        bundle = trace_run(simple_app, 2)
        (f,) = bundle.metadata.files
        assert f.access_type == "shared"
        assert f.collective and f.noncollective
        assert "explicit" in f.pointer_kinds
        assert "individual" in f.pointer_kinds


class TestBundlePersistence:
    def test_save_and_load(self, tmp_path):
        bundle = trace_run(simple_app, 3)
        bundle.save(tmp_path / "t")
        assert (tmp_path / "t" / "trace.0").exists()
        assert (tmp_path / "t" / "metadata.json").exists()
        back = TraceBundle.load(tmp_path / "t")
        assert back.nprocs == 3
        assert len(back.records) == len(bundle.records)
        assert back.metadata.files[0].filename == \
            bundle.metadata.files[0].filename

    def test_roundtrip_preserves_per_rank_ordering(self, tmp_path):
        bundle = trace_run(simple_app, 4)
        bundle.save(tmp_path / "t")
        back = TraceBundle.load(tmp_path / "t")
        for rank in range(4):
            orig = bundle.by_rank(rank)
            loaded = back.by_rank(rank)
            assert [(r.op, r.tick, r.offset) for r in loaded] == \
                [(r.op, r.tick, r.offset) for r in orig]

    def test_roundtrip_preserves_record_fields(self, tmp_path):
        bundle = trace_run(simple_app, 2)
        bundle.save(tmp_path / "t")
        back = TraceBundle.load(tmp_path / "t")
        # The file format stores times with 6 decimals; everything else
        # must round-trip exactly.
        def canon(r):
            return tuple(round(v, 6) if isinstance(v, float) else v
                         for v in dataclasses.astuple(r))
        assert [canon(r) for r in back.records] == \
            [canon(r) for r in bundle.records]
        assert back.total_bytes == bundle.total_bytes
        assert back.nfiles == bundle.nfiles

    def test_roundtrip_preserves_metadata(self, tmp_path):
        bundle = trace_run(simple_app, 3)
        bundle.save(tmp_path / "t")
        back = TraceBundle.load(tmp_path / "t")
        assert back.nprocs == bundle.nprocs
        assert back.metadata.to_dict() == bundle.metadata.to_dict()

    def test_loaded_bundle_builds_same_model(self, tmp_path):
        from repro.core.model import IOModel

        bundle = trace_run(simple_app, 4)
        bundle.save(tmp_path / "t")
        back = TraceBundle.load(tmp_path / "t")
        m1 = IOModel.from_trace(bundle)
        m2 = IOModel.from_trace(back)
        assert m1.nphases == m2.nphases
        assert [p.weight for p in m1.phases] == [p.weight for p in m2.phases]


class TestFinishOrdering:
    @staticmethod
    def _event(rank, time, tick, offset) -> IOEvent:
        return IOEvent(rank=rank, file_id=1, filename="data",
                       op="MPI_File_write_at", offset=offset,
                       abs_offset=offset, tick=tick, request_size=64,
                       time=time, duration=0.1, kind="write",
                       collective=False, unique_file=False)

    def test_sorted_by_rank_time_tick(self):
        tracer = Tracer()
        engine = Engine(2, platform=IdealPlatform())
        tracer.attach(engine)
        engine.run(simple_app)
        # Interleave extra events out of canonical order.
        tracer.events.append(self._event(0, 0.0, 0, offset=999))
        bundle = tracer.finish(engine)
        keys = [(r.rank, r.time, r.tick) for r in bundle.records]
        assert keys == sorted(keys)

    def test_stable_for_identical_keys(self):
        """Events with equal (rank, time, tick) keep insertion order."""
        tracer = Tracer()
        engine = Engine(1, platform=IdealPlatform())
        tracer.attach(engine)
        engine.run(lambda ctx: None)
        for offset in (10, 20, 30):
            tracer.events.append(self._event(0, 1.0, 5, offset=offset))
        bundle = tracer.finish(engine)
        assert [r.offset for r in bundle.records] == [10, 20, 30]
        # finish() is reproducible: a second call yields the same order.
        again = tracer.finish(engine)
        assert [r.offset for r in again.records] == [10, 20, 30]

"""The parallel ingest engine vs the classic line-wise parser.

Every layer of :mod:`repro.tracer.ingest` -- bulk tokenizer blocks,
byte-range sharding, the persistent parse cache -- claims *bit-identical*
output with ``_read_trace_columns_lines``: same columns, same op-table
interning order, same ``content_digest``, same strict errors
(``path:lineno`` exact) and same quarantine reports.  These tests pin
that contract, serial and parallel, on seed-shaped and adversarial
traces.

Parallel legs inject ``SerialExecutor`` so they exercise the shard
protocol (bounds, prefix-summed line numbers, entry replay) without
spawning processes; one smoke test runs a real ``PoolExecutor``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import store
from repro.core.executors.base import SerialExecutor
from repro.tracer.columns import TraceColumns, _read_trace_columns_lines
from repro.tracer.ingest import (
    ENV_JOBS,
    default_jobs,
    ingest_columns,
    ingest_jobs,
    ingest_rank_files,
    iter_ingest_chunks,
    parse_jobs,
    resolve_jobs,
)
from repro.tracer.quarantine import QuarantineReport
from repro.tracer.tracefile import HEADER

OPS = ["MPI_File_write_at", "MPI_File_read_at", "MPI_File_write_at_all",
       "MPI_File_read", "MPI_File_iwrite_at"]


def trace_text(nrows: int, *, header: bool = True, seed: int = 0) -> str:
    """A deterministic Fig. 2 trace body (no RNG: rows derive from i)."""
    rows = []
    for i in range(nrows):
        k = (i * 7 + seed) % 97
        rows.append(f"{i % 4} {k % 3} {OPS[k % len(OPS)]} {k * 64} "
                    f"{i + 1} {4096 + k} {i * 0.25:.6f} {k * 0.001:.6f} "
                    f"{k * 512}")
    body = "\n".join(rows) + ("\n" if rows else "")
    return (HEADER + "\n" + body) if header else body


def write_trace(tmp_path, text: str, name: str = "trace.0"):
    p = tmp_path / name
    p.write_text(text)
    return p


def assert_same(a: TraceColumns, b: TraceColumns):
    assert len(a) == len(b)
    assert a.op_table == b.op_table
    assert a.content_digest() == b.content_digest()


class TestSerialParity:
    """Engine output == classic parser output, file by file."""

    def test_clean_trace_matches_classic(self, tmp_path):
        p = write_trace(tmp_path, trace_text(500))
        assert_same(ingest_columns(p), _read_trace_columns_lines(p))

    def test_headerless_trace(self, tmp_path):
        p = write_trace(tmp_path, trace_text(50, header=False))
        assert_same(ingest_columns(p), _read_trace_columns_lines(p))

    def test_crlf_and_no_trailing_newline(self, tmp_path):
        text = trace_text(40).replace("\n", "\r\n").rstrip("\r\n")
        p = write_trace(tmp_path, text)
        assert_same(ingest_columns(p), _read_trace_columns_lines(p))

    def test_empty_file(self, tmp_path):
        p = write_trace(tmp_path, "")
        assert_same(ingest_columns(p), _read_trace_columns_lines(p))

    def test_blank_leading_line_keeps_linenos(self, tmp_path):
        p = write_trace(tmp_path, "\n" + trace_text(10, header=False))
        assert_same(ingest_columns(p), _read_trace_columns_lines(p))

    def test_legacy_8_field_rows(self, tmp_path):
        rows = [r.rsplit(" ", 1)[0]
                for r in trace_text(20, header=False).splitlines()]
        p = write_trace(tmp_path, HEADER + "\n" + "\n".join(rows) + "\n")
        et = {0: 8, 1: 4, 2: 16}
        assert_same(ingest_columns(p, etype_size=et),
                    _read_trace_columns_lines(p, etype_size=et))

    def test_strict_error_names_exact_line(self, tmp_path):
        lines = trace_text(30).splitlines()
        lines[11] = "this is garbage"
        p = write_trace(tmp_path, "\n".join(lines) + "\n")
        with pytest.raises(ValueError) as eng:
            ingest_columns(p)
        with pytest.raises(ValueError) as ref:
            _read_trace_columns_lines(p)
        assert str(eng.value) == str(ref.value)
        assert f"{p}:12:" in str(eng.value)

    def test_quarantine_report_identical(self, tmp_path):
        lines = trace_text(60).splitlines()
        lines[7] = "bad row"
        lines[33] = "1 2 MPI_File_read_at nope 3 4 0.1 0.1 0"
        p = write_trace(tmp_path, "\n".join(lines) + "\n")
        q_eng, q_ref = QuarantineReport(), QuarantineReport()
        assert_same(ingest_columns(p, quarantine=q_eng),
                    _read_trace_columns_lines(p, quarantine=q_ref))
        assert q_eng.entries == q_ref.entries


class TestShardedParity:
    """jobs > 1: byte-range shards gather to the identical result."""

    # ~18 MB: enough for 4 byte-range shards (MIN_SHARD_BYTES = 4 MiB)
    def big_trace(self, tmp_path, nrows=300_000, corrupt=()):
        lines = trace_text(nrows).splitlines()
        for lineno in corrupt:
            lines[lineno - 1] = f"corrupt row {lineno}"
        return write_trace(tmp_path, "\n".join(lines) + "\n")

    def test_parallel_matches_serial(self, tmp_path):
        p = self.big_trace(tmp_path)
        serial = ingest_columns(p, jobs=1)
        par = ingest_columns(p, jobs=4, executor=SerialExecutor())
        assert_same(par, serial)

    def test_quarantine_merge_deterministic(self, tmp_path):
        # corrupt rows spread across multiple shards: the parallel
        # report must replay in (path, lineno) order, byte-identical
        # to the serial one
        bad = (5, 80_001, 160_002, 240_003, 299_999)
        p = self.big_trace(tmp_path, corrupt=bad)
        q_ser, q_par = QuarantineReport(), QuarantineReport()
        serial = ingest_columns(p, jobs=1, quarantine=q_ser)
        par = ingest_columns(p, jobs=4, executor=SerialExecutor(),
                             quarantine=q_par)
        assert_same(par, serial)
        assert q_par.entries == q_ser.entries
        assert [e.lineno for e in q_par.entries] == list(bad)

    def test_strict_error_from_later_shard(self, tmp_path):
        p = self.big_trace(tmp_path, corrupt=(240_003,))
        with pytest.raises(ValueError) as eng:
            ingest_columns(p, jobs=4, executor=SerialExecutor())
        with pytest.raises(ValueError) as ref:
            _read_trace_columns_lines(p)
        assert str(eng.value) == str(ref.value)

    def test_small_file_never_shards(self, tmp_path):
        # below MIN_SHARD_BYTES the executor must not be consulted
        class Exploding:
            def run(self, *a, **kw):
                raise AssertionError("sharded a tiny file")

        p = write_trace(tmp_path, trace_text(100))
        assert_same(ingest_columns(p, jobs=8, executor=Exploding()),
                    _read_trace_columns_lines(p))

    def test_executor_failure_falls_back_to_serial(self, tmp_path):
        class Broken:
            def run(self, *a, **kw):
                raise RuntimeError("pool died")

        p = self.big_trace(tmp_path)
        assert_same(ingest_columns(p, jobs=4, executor=Broken()),
                    _read_trace_columns_lines(p))

    def test_real_pool_smoke(self, tmp_path):
        from repro.core.executors.pool import PoolExecutor

        p = self.big_trace(tmp_path)
        par = ingest_columns(p, jobs=2, executor=PoolExecutor(max_workers=2))
        assert_same(par, _read_trace_columns_lines(p))


class TestRankFiles:
    """Bundle-level fan-out: whole files across the pool."""

    def bundle(self, tmp_path, nranks=4):
        return [write_trace(tmp_path, trace_text(200, seed=r),
                            name=f"trace.{r}") for r in range(nranks)]

    def test_parallel_matches_serial(self, tmp_path):
        paths = self.bundle(tmp_path)
        serial = ingest_rank_files(paths, jobs=1)
        par = ingest_rank_files(paths, jobs=4, executor=SerialExecutor())
        assert_same(TraceColumns.concat(par), TraceColumns.concat(serial))

    def test_missing_file_notes_match(self, tmp_path):
        paths = self.bundle(tmp_path)
        paths[2].unlink()
        q_ser, q_par = QuarantineReport(), QuarantineReport()
        serial = ingest_rank_files(paths, jobs=1, quarantine=q_ser)
        par = ingest_rank_files(paths, jobs=4, executor=SerialExecutor(),
                                quarantine=q_par)
        assert q_par.entries == q_ser.entries
        assert len(par) == len(serial) == 3

    def test_missing_file_raises_oserror_strict(self, tmp_path):
        paths = self.bundle(tmp_path)
        paths[1].unlink()
        with pytest.raises(OSError):
            ingest_rank_files(paths, jobs=4, executor=SerialExecutor())


class TestStreamingChunks:
    def test_chunks_concat_to_classic(self, tmp_path):
        p = write_trace(tmp_path, trace_text(5_000))
        chunks = list(iter_ingest_chunks(p, chunk_rows=777))
        assert all(len(c) <= 777 for c in chunks)
        assert_same(TraceColumns.concat(chunks),
                    _read_trace_columns_lines(p))

    def test_chunks_respect_jobs_materialization(self, tmp_path):
        p = write_trace(tmp_path, trace_text(3_000))
        with ingest_jobs(1):
            chunks = list(iter_ingest_chunks(p, chunk_rows=512, jobs=1))
        assert_same(TraceColumns.concat(chunks),
                    _read_trace_columns_lines(p))


class TestParseCache:
    @pytest.fixture(autouse=True)
    def fresh_store(self, tmp_path):
        prev = store.active()
        store.attach(tmp_path / "cache")
        yield
        if prev is not None:
            store.attach(prev.root)
        else:
            store.detach()

    def test_warm_hit_is_identical(self, tmp_path):
        p = write_trace(tmp_path, trace_text(2_000))
        cold = ingest_columns(p)
        assert store.active().stats()["ingest"]["entries"] == 1
        warm = ingest_columns(p)
        assert_same(warm, cold)
        assert_same(warm, _read_trace_columns_lines(p))

    def test_content_change_invalidates(self, tmp_path):
        p = write_trace(tmp_path, trace_text(2_000))
        ingest_columns(p)
        p.write_text(trace_text(2_000, seed=5))
        again = ingest_columns(p)
        assert store.active().stats()["ingest"]["entries"] == 2
        assert_same(again, _read_trace_columns_lines(p))

    def test_etype_size_keys_separately(self, tmp_path):
        rows = [r.rsplit(" ", 1)[0]
                for r in trace_text(50, header=False).splitlines()]
        p = write_trace(tmp_path, HEADER + "\n" + "\n".join(rows) + "\n")
        a = ingest_columns(p, etype_size={0: 4, 1: 4, 2: 4})
        b = ingest_columns(p, etype_size={0: 8, 1: 8, 2: 8})
        assert store.active().stats()["ingest"]["entries"] == 2
        assert a.content_digest() != b.content_digest()

    def test_quarantine_bypasses_cache(self, tmp_path):
        lines = trace_text(100).splitlines()
        lines[10] = "junk"
        p = write_trace(tmp_path, "\n".join(lines) + "\n")
        q = QuarantineReport()
        ingest_columns(p, quarantine=q)
        assert store.active().stats().get("ingest", {}).get("entries", 0) == 0

    def test_cache_false_bypasses(self, tmp_path):
        p = write_trace(tmp_path, trace_text(100))
        ingest_columns(p, cache=False)
        assert store.active().stats().get("ingest", {}).get("entries", 0) == 0


class TestJobsResolution:
    def test_parse_jobs_accepts_ints(self):
        assert parse_jobs(3) == 3
        assert parse_jobs("7") == 7
        assert parse_jobs(" 2 ") == 2

    @pytest.mark.parametrize("bad", [0, -1, "x", "1.5", None, True, ""])
    def test_parse_jobs_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_jobs(bad)

    def test_env_var_resolves(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2  # explicit wins

    def test_env_var_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "zero")
        with pytest.raises(ValueError, match=ENV_JOBS):
            resolve_jobs(None)

    def test_context_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "5")
        with ingest_jobs(3):
            assert resolve_jobs(None) == 3
            with ingest_jobs(None):  # None leaves the outer value
                assert resolve_jobs(None) == 3
        assert resolve_jobs(None) == 5

    def test_default_jobs_capped(self):
        assert 1 <= default_jobs() <= 8

    def test_library_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(None) == 1


class TestServiceSpecJobs:
    def test_jobs_is_qos_not_identity(self):
        from repro.service.spec import normalize, spec_digest

        base = normalize({"kind": "characterize", "app": "synthetic",
                          "np": 4})
        jobbed = normalize({"kind": "characterize", "app": "synthetic",
                            "np": 4, "jobs": 4})
        assert jobbed["jobs"] == 4
        assert spec_digest(base) == spec_digest(jobbed)

    @pytest.mark.parametrize("bad", [0, -3, "many", 1.5])
    def test_bad_jobs_rejected_at_admission(self, bad):
        from repro.service.spec import BadRequest, normalize

        with pytest.raises(BadRequest):
            normalize({"kind": "characterize", "app": "synthetic",
                       "np": 4, "jobs": bad})


line_strategy = st.one_of(
    st.integers(0, 10_000).map(
        lambda k: f"{k % 8} {k % 3} {OPS[k % len(OPS)]} {k * 64} {k + 1} "
                  f"{4096 + k} {k * 0.25:.6f} {k * 0.001:.6f} {k * 512}"),
    st.just(""),
    st.sampled_from(["garbage", "1 2 3", "a b c d e f g h i",
                     "0 0 MPI_File_read_at -1 1 10 0.1 bad 0"]),
)


class TestHypothesisParity:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(line_strategy, max_size=200), st.booleans())
    def test_random_traces_quarantine_parity(self, tmp_path_factory,
                                             lines, header):
        tmp = tmp_path_factory.mktemp("hyp")
        text = ("\n".join(([HEADER] if header else []) + lines))
        if lines:
            text += "\n"
        p = write_trace(tmp, text)
        q_eng, q_ref = QuarantineReport(), QuarantineReport()
        eng = ingest_columns(p, quarantine=q_eng, cache=False)
        ref = _read_trace_columns_lines(p, quarantine=q_ref)
        assert_same(eng, ref)
        assert q_eng.entries == q_ref.entries

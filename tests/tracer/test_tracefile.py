"""Trace-file format: round trips, parsing, grouping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tracer.tracefile import (
    ABS_OFFSET_UNKNOWN,
    HEADER,
    TraceRecord,
    iter_by_rank,
    read_trace_file,
    write_trace_file,
)

RECORD = TraceRecord(rank=0, file_id=1, op="MPI_File_write_at_all",
                     offset=265302, tick=148, request_size=10612080,
                     time=22.198392, duration=0.131034,
                     abs_offset=265302 * 40)


class TestLineFormat:
    def test_to_line_fields(self):
        parts = RECORD.to_line().split()
        assert parts[0] == "0" and parts[1] == "1"
        assert parts[2] == "MPI_File_write_at_all"
        assert parts[3] == "265302" and parts[4] == "148"
        assert parts[5] == "10612080"
        assert parts[8] == str(265302 * 40)

    def test_roundtrip(self):
        back = TraceRecord.from_line(RECORD.to_line())
        assert (back.rank, back.file_id, back.op, back.offset, back.tick,
                back.request_size, back.abs_offset) == \
            (RECORD.rank, RECORD.file_id, RECORD.op, RECORD.offset,
             RECORD.tick, RECORD.request_size, RECORD.abs_offset)
        assert back.time == pytest.approx(RECORD.time, abs=1e-6)
        assert back.duration == pytest.approx(RECORD.duration, abs=1e-6)

    def test_legacy_8_column_line_without_etype_is_unknown(self):
        # the view offset is in etype units -- it must NOT be reused as
        # an absolute byte offset when no etype size is available
        line = "0 1 MPI_File_read_at 5 10 100 1.5 0.25"
        rec = TraceRecord.from_line(line)
        assert rec.abs_offset == ABS_OFFSET_UNKNOWN
        assert not rec.has_abs_offset

    def test_legacy_8_column_line_with_etype_scalar(self):
        line = "0 1 MPI_File_read_at 5 10 100 1.5 0.25"
        rec = TraceRecord.from_line(line, etype_size=40)
        assert rec.abs_offset == 5 * 40
        assert rec.has_abs_offset

    def test_legacy_8_column_line_with_etype_map(self):
        line = "0 1 MPI_File_read_at 5 10 100 1.5 0.25"
        rec = TraceRecord.from_line(line, etype_size={1: 8, 2: 40})
        assert rec.abs_offset == 5 * 8
        rec = TraceRecord.from_line(line, etype_size={2: 40})
        assert rec.abs_offset == ABS_OFFSET_UNKNOWN

    def test_9_column_line_ignores_etype(self):
        rec = TraceRecord.from_line(RECORD.to_line(), etype_size=7)
        assert rec.abs_offset == RECORD.abs_offset

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("1 2 3")

    def test_non_numeric_field_rejected(self):
        with pytest.raises(ValueError, match="malformed trace line"):
            TraceRecord.from_line("0 1 MPI_File_read_at x 10 100 1.5 0.25 0")

    def test_kind_derivation(self):
        assert RECORD.kind == "write"
        rec = TraceRecord.from_line("0 0 MPI_File_read 0 1 8 0.0 0.0 0")
        assert rec.kind == "read"


class TestFileIO:
    def test_write_and_read_back(self, tmp_path):
        records = [RECORD,
                   TraceRecord(1, 1, "MPI_File_read_at_all", 0, 149, 4096,
                               23.0, 0.01, 0)]
        path = tmp_path / "trace.0"
        write_trace_file(path, records)
        text = path.read_text()
        assert text.startswith(HEADER)
        back = read_trace_file(path)
        assert len(back) == 2
        assert back[0].op == RECORD.op
        assert back[0].offset == RECORD.offset
        assert back[0].time == pytest.approx(RECORD.time, abs=1e-6)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n\n" + RECORD.to_line() + "\n\n")
        assert len(read_trace_file(path)) == 1

    def test_header_skipped_only_on_exact_match(self, tmp_path):
        # a first *data* line that merely starts with "IdP" must parse,
        # not silently disappear as a pseudo-header
        path = tmp_path / "t"
        path.write_text("IdP-like 1 MPI_File_read_at 0 1 8 0.0 0.0 0\n")
        with pytest.raises(ValueError, match=rf"{path}:1: "):
            read_trace_file(path)

    def test_malformed_row_error_names_path_and_line(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n" + RECORD.to_line() + "\nbogus row\n")
        with pytest.raises(ValueError, match=rf"{path}:3: malformed"):
            read_trace_file(path)

    def test_read_trace_file_etype_resolves_legacy_rows(self, tmp_path):
        path = tmp_path / "t"
        path.write_text(HEADER + "\n0 1 MPI_File_read_at 5 10 100 1.5 0.25\n")
        (rec,) = read_trace_file(path, etype_size={1: 16})
        assert rec.abs_offset == 80

    @given(st.lists(st.tuples(
        st.integers(0, 7), st.integers(0, 3),
        st.sampled_from(["MPI_File_write_at", "MPI_File_read_at_all"]),
        st.integers(0, 10**9), st.integers(0, 10**6), st.integers(1, 10**8),
    ), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, rows):
        records = [TraceRecord(r, f, op, off, tick, rs, 1.25, 0.5, off * 2)
                   for r, f, op, off, tick, rs in rows]
        path = tmp_path_factory.mktemp("traces") / "t"
        write_trace_file(path, records)
        back = read_trace_file(path)
        assert [(b.rank, b.file_id, b.op, b.offset, b.tick, b.request_size,
                 b.abs_offset) for b in back] == \
            [(r.rank, r.file_id, r.op, r.offset, r.tick, r.request_size,
              r.abs_offset) for r in records]


class TestGrouping:
    def test_iter_by_rank_preserves_order(self):
        records = [
            TraceRecord(1, 0, "MPI_File_write", 0, 1, 8, 0.0, 0.0, 0),
            TraceRecord(0, 0, "MPI_File_write", 0, 1, 8, 0.0, 0.0, 0),
            TraceRecord(1, 0, "MPI_File_write", 8, 2, 8, 0.1, 0.0, 8),
        ]
        grouped = dict(iter_by_rank(records))
        assert list(grouped) == [0, 1]
        assert [r.offset for r in grouped[1]] == [0, 8]

"""Shared-memory trace publishing: round-trips, lifetime, sweep wiring."""

from __future__ import annotations

import pytest

from repro.apps.synthetic import SyntheticParams, synthetic_program
from repro.core.pipeline import characterize_bundles
from repro.core.model import models_equivalent
from repro.tracer import shm
from repro.tracer.columns import FLOAT_COLUMNS, INT_COLUMNS, numpy_enabled
from repro.tracer.hooks import trace_run

pytestmark = pytest.mark.skipif(not shm.shm_available(),
                                reason="no multiprocessing.shared_memory")

NP = 4


@pytest.fixture(scope="module")
def bundle():
    return trace_run(synthetic_program, NP, None, SyntheticParams())


def _columns_equal(a, b) -> bool:
    if len(a) != len(b) or list(a.op_table) != list(b.op_table):
        return False
    for name in INT_COLUMNS + FLOAT_COLUMNS:
        if list(getattr(a, name)) != list(getattr(b, name)):
            return False
    return True


class TestRoundTrip:
    def test_share_attach_round_trips(self, bundle):
        cols = bundle.columns
        handle = shm.share_columns(cols)
        try:
            back = shm.attach_columns(handle)
            assert _columns_equal(cols, back)
            assert back.content_digest() == cols.content_digest()
        finally:
            shm.release(handle)

    def test_python_backend_attach_copies(self, bundle):
        cols = bundle.columns
        handle = shm.share_columns(cols)
        try:
            back = shm.attach_columns(handle, backend="python")
            assert back.backend == "python"
            assert _columns_equal(cols, back)
        finally:
            shm.release(handle)
        # a copy survives release of the segment
        assert len(back) == len(cols)
        assert list(back.tick) == list(cols.tick)

    @pytest.mark.skipif(not numpy_enabled(), reason="needs numpy")
    def test_numpy_attach_is_zero_copy(self, bundle):
        import numpy as np

        handle = shm.share_columns(bundle.columns)
        try:
            back = shm.attach_columns(handle, backend="numpy")
            assert isinstance(back.tick, np.ndarray)
            # a view over the shared buffer, not an owning copy
            assert not back.tick.flags.owndata
        finally:
            shm.release(handle)

    def test_release_unlinks_segment(self, bundle):
        handle = shm.share_columns(bundle.columns)
        shm.release(handle)
        with pytest.raises(FileNotFoundError):
            shm._shm_mod.SharedMemory(name=handle.shm_name)

    def test_release_all_sweeps_owned_segments(self, bundle):
        handles = [shm.share_columns(bundle.columns) for _ in range(3)]
        shm.release_all()
        assert not shm._owned
        for handle in handles:
            with pytest.raises(FileNotFoundError):
                shm._shm_mod.SharedMemory(name=handle.shm_name)


class TestSweepIntegration:
    def test_parallel_characterization_matches_serial(self, bundle):
        bundles = {"one": bundle, "two": bundle}
        serial = characterize_bundles(bundles, parallel=False)
        parallel = characterize_bundles(bundles, parallel=True,
                                        max_workers=2)
        for name in bundles:
            assert models_equivalent(serial[name], parallel[name])
        assert not shm._owned  # the sweep released its segments

    def test_serial_fallback_keeps_original_args(self, bundle):
        # unpicklable job functions degrade to serial with the original
        # (non-substituted) arguments -- and still release the segments
        from repro.core.sweep import sweep_map

        cols = bundle.columns
        results = sweep_map(lambda c: len(c), {"a": (cols,), "b": (cols,)},
                            parallel=True)
        assert results == {"a": len(cols), "b": len(cols)}
        assert not shm._owned

"""Package surface: exports import, __all__ is honest, version set."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.simmpi",
    "repro.iosim",
    "repro.tracer",
    "repro.core",
    "repro.apps",
    "repro.clusters",
    "repro.report",
    "repro.hdf5lite",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for symbol in exported:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_sorted_and_unique(name):
    mod = importlib.import_module(name)
    exported = list(getattr(mod, "__all__", []))
    assert len(exported) == len(set(exported)), f"{name}.__all__ has duplicates"


def test_version():
    import repro

    assert repro.__version__
    major = int(repro.__version__.split(".")[0])
    assert major >= 1


def test_cli_entry_point_importable():
    from repro.cli import main

    assert callable(main)


def test_public_docstrings_present():
    """Every public module and export carries a docstring."""
    for name in PACKAGES:
        mod = importlib.import_module(name)
        assert mod.__doc__, f"{name} lacks a module docstring"
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if symbol == "ClusterFactory":  # typing alias, no docstring slot
                continue
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"

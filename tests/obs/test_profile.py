"""End-to-end observability: instrumented pipeline -> artifacts."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.apps.synthetic import SyntheticParams, synthetic_program
from repro.clusters import ALL_CONFIGURATIONS
from repro.core.pipeline import characterize_app, estimate_on
from repro.obs.profile import (
    CHROME_NAME,
    JSONL_NAME,
    PROM_NAME,
    ProfileSession,
)

NP = 4


@pytest.fixture()
def session():
    """One observed characterize+estimate run on configuration-A."""
    with ProfileSession() as prof:
        model, bundle = characterize_app(
            synthetic_program, NP, SyntheticParams(), app_name="synthetic")
        estimate_on(model, ALL_CONFIGURATIONS["configuration-A"],
                    config_name="configuration-A")
    assert not obs.ACTIVE  # session always detaches its sinks
    return prof, model, bundle


class TestInstrumentation:
    def test_pipeline_and_engine_spans_nested(self, session):
        prof, _, _ = session
        by_name = {}
        for sp in prof.spans:
            by_name.setdefault(sp.name, []).append(sp)
        assert "pipeline.characterize" in by_name
        assert "pipeline.estimate" in by_name
        # Engine runs happen inside pipeline stages on the same thread.
        ids = {sp.span_id for spans in by_name.values() for sp in spans}
        for run in by_name["engine.run"]:
            assert run.parent_id in ids

    def test_io_events_become_virtual_spans(self, session):
        prof, _, bundle = session
        io_spans = [sp for sp in prof.spans if sp.cat == "io"]
        # characterize traced every record; estimate adds IOR runs on top.
        assert len(io_spans) >= len(bundle.records)
        assert {sp.tid for sp in io_spans} >= {f"rank {r}"
                                               for r in range(NP)}

    def test_registry_totals_match_trace(self, session):
        prof, _, bundle = session
        fam = prof.registry.get("io_bytes_total")
        total = sum(child.value for _, child in fam.samples())
        traced = sum(r.request_size for r in bundle.records)
        assert total >= traced  # estimate's IOR traffic comes on top
        ops = prof.registry.get("engine_runs_total")
        assert ops._solo().value >= 2  # characterize + estimate phases

    def test_resource_waits_recorded(self, session):
        prof, _, _ = session
        fam = prof.registry.get("resource_wait_seconds")
        assert sum(child.count for _, child in fam.samples()) > 0

    def test_characterize_bw_gauge_set(self, session):
        prof, model, _ = session
        fam = prof.registry.get("phase_bw_ch_mb_s")
        assert len(fam.samples()) == model.nphases


class TestArtifacts:
    def test_write_produces_three_valid_files(self, session, tmp_path):
        prof, _, _ = session
        paths = prof.write(tmp_path / "prof")
        assert paths["jsonl"].name == JSONL_NAME
        assert paths["chrome"].name == CHROME_NAME
        assert paths["prometheus"].name == PROM_NAME
        for line in paths["jsonl"].read_text().splitlines():
            json.loads(line)
        doc = json.loads(paths["chrome"].read_text())
        assert doc["traceEvents"]
        assert "# TYPE io_bytes_total counter" in \
            paths["prometheus"].read_text()

    def test_summary_tables(self, session):
        prof, _, _ = session
        text = prof.summary()
        assert "Wall-clock spans" in text
        assert "Traced I/O" in text
        assert "Busiest queue waits" in text
        assert "pipeline.characterize" in text

    def test_summary_cache_table_format(self, session):
        # estimate_on memoizes IOR runs, so the registry has activity;
        # the summary must render one line per cache with hits, misses,
        # hit-rate and the persistence tier.
        prof, _, _ = session
        from repro.core import cache as simcache

        text = prof.summary()
        assert "Result caches" in text
        [header] = [ln for ln in text.splitlines()
                    if ln.startswith("cache ")]
        for col in ("hits", "misses", "hit rate", "disk hits", "tier"):
            assert col in header
        st = simcache.stats()["ior"]
        looked = st["hits"] + st["misses"]
        rate = f"{100.0 * st['hits'] / looked:.1f}%"
        [row] = [ln for ln in text.splitlines() if ln.startswith("ior ")]
        assert rate in row
        assert "in-memory" in row  # no persistent store attached here

    def test_summary_cache_table_reports_persistent_tier(self, session,
                                                         tmp_path):
        from repro import store

        prof, _, _ = session
        store.attach(tmp_path)
        try:
            assert "persistent" in prof.summary()
        finally:
            store.detach()


class TestDisabledState:
    def test_disable_on_exception(self):
        with pytest.raises(RuntimeError):
            with ProfileSession():
                assert obs.ACTIVE
                raise RuntimeError("boom")
        assert not obs.ACTIVE

    def test_runs_identically_without_sinks(self):
        model_a, _ = characterize_app(
            synthetic_program, NP, SyntheticParams(), app_name="synthetic")
        with ProfileSession():
            model_b, _ = characterize_app(
                synthetic_program, NP, SyntheticParams(),
                app_name="synthetic")
        assert model_a.nphases == model_b.nphases
        assert [p.weight for p in model_a.phases] == \
            [p.weight for p in model_b.phases]

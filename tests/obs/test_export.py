"""Exporters: JSON-lines schema, Chrome trace_event, Prometheus text."""

from __future__ import annotations

import json

from repro.obs.export import (
    PID_VIRTUAL,
    PID_WALL,
    chrome_trace_events,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


def _sample_tracer() -> SpanTracer:
    tracer = SpanTracer(clock=lambda: 0.0)
    with tracer.span("pipeline.characterize", cat="pipeline", app="mb2"):
        pass
    tracer.record("MPI_File_write_at", "io", "rank 1", 3.0, 0.5, bytes=4096)
    tracer.record("MPI_File_write_at", "io", "rank 0", 1.0, 0.5, bytes=4096)
    tracer.record("MPI_File_read_at", "io", "rank 0", 2.0, 0.25)
    tracer.event("pipeline.evaluate", cat="pipeline", rows=5)
    return tracer


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("io_bytes_total", "Bytes moved", ("kind",)) \
        .labels(kind="write").inc(8192)
    reg.gauge("queue_depth", "Depth").set(2.5)
    h = reg.histogram("wait_seconds", "Waits", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 7.0):
        h.observe(v)
    return reg


class TestJsonl:
    def test_every_line_parses_and_is_typed(self, tmp_path):
        tracer = _sample_tracer()
        path = write_jsonl(tmp_path / "events.jsonl", tracer.finish(),
                           tracer.events, _sample_registry())
        objs = [json.loads(line) for line in path.read_text().splitlines()]
        assert all("type" in o for o in objs)
        kinds = {o["type"] for o in objs}
        assert kinds == {"span", "event", "metric"}
        # 4 spans + 1 event + 3 metric samples.
        assert len(objs) == 8

    def test_span_schema(self, tmp_path):
        tracer = _sample_tracer()
        path = write_jsonl(tmp_path / "e.jsonl", tracer.finish(),
                           tracer.events)
        spans = [json.loads(l) for l in path.read_text().splitlines()
                 if json.loads(l)["type"] == "span"]
        io = [s for s in spans if s["cat"] == "io"]
        assert {"id", "parent", "name", "tid", "clock", "start",
                "duration", "attrs"} <= set(io[0])
        assert io[0]["clock"] == "virtual"
        assert any(s["attrs"].get("bytes") == 4096 for s in io)

    def test_histogram_sample_has_buckets(self, tmp_path):
        path = write_jsonl(tmp_path / "e.jsonl", [], [], _sample_registry())
        metrics = [json.loads(l) for l in path.read_text().splitlines()]
        (hist,) = [m for m in metrics if m["kind"] == "histogram"]
        assert hist["count"] == 3
        assert hist["buckets"] == [[0.1, 1], [1.0, 2]]  # finite les only


class TestChromeTrace:
    def test_two_processes_and_metadata(self):
        tracer = _sample_tracer()
        evs = chrome_trace_events(tracer.finish(), tracer.events)
        pids = {e["pid"] for e in evs}
        assert pids == {PID_WALL, PID_VIRTUAL}
        meta = [e for e in evs if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "process_name"}
        assert names == {"wall clock", "virtual time"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert {"rank 0", "rank 1", "main"} <= thread_names

    def test_ts_monotonic_per_track_and_microseconds(self):
        tracer = _sample_tracer()
        evs = chrome_trace_events(tracer.finish(), tracer.events)
        last = {}
        for e in evs:
            if e["ph"] == "M":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, float("-inf"))
            last[key] = e["ts"]
        rank0 = [e for e in evs
                 if e["ph"] == "X" and e["tid"] == "rank 0"]
        assert [e["ts"] for e in rank0] == [1.0e6, 2.0e6]
        assert rank0[0]["dur"] == 0.5e6

    def test_written_file_is_valid_trace_json(self, tmp_path):
        tracer = _sample_tracer()
        path = write_chrome_trace(tmp_path / "t.json", tracer.finish(),
                                  tracer.events)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert all({"ph", "pid", "tid"} <= set(e)
                   for e in doc["traceEvents"])

    def test_non_json_attrs_stringified(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        tracer.record("op", "io", "rank 0", 0.0, 1.0, obj=object())
        (ev,) = [e for e in chrome_trace_events(tracer.finish(), [])
                 if e["ph"] == "X"]
        assert isinstance(ev["args"]["obj"], str)


class TestPrometheus:
    def test_help_type_and_values(self):
        text = render_prometheus(_sample_registry())
        assert "# HELP io_bytes_total Bytes moved" in text
        assert "# TYPE io_bytes_total counter" in text
        assert 'io_bytes_total{kind="write"} 8192' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2.5" in text

    def test_histogram_exposition(self):
        text = render_prometheus(_sample_registry())
        assert 'wait_seconds_bucket{le="0.1"} 1' in text
        assert 'wait_seconds_bucket{le="1"} 2' in text
        assert 'wait_seconds_bucket{le="+Inf"} 3' in text
        assert "wait_seconds_sum 7.55" in text
        assert "wait_seconds_count 3" in text

    def test_inf_bucket_equals_count(self):
        reg = _sample_registry()
        text = render_prometheus(reg)
        inf_line = [l for l in text.splitlines()
                    if l.startswith('wait_seconds_bucket{le="+Inf"}')]
        count_line = [l for l in text.splitlines()
                      if l.startswith("wait_seconds_count")]
        assert inf_line[0].split()[-1] == count_line[0].split()[-1]

    def test_families_rendered_sorted(self, tmp_path):
        path = write_prometheus(tmp_path / "m.prom", _sample_registry())
        names = [l.split()[2] for l in path.read_text().splitlines()
                 if l.startswith("# TYPE")]
        assert names == sorted(names)

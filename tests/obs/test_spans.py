"""Span tracer: nesting, two clocks, thread contexts, finish ordering."""

from __future__ import annotations

import threading

from repro import obs
from repro.obs.spans import NULL_SPAN, SpanTracer, VIRTUAL, WALL


class FakeClock:
    """Deterministic wall clock for span timing tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestWallSpans:
    def test_span_times_against_epoch(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        clock.advance(1.0)
        with tracer.span("work") as sp:
            clock.advance(2.5)
        assert sp.span.start == 1.0
        assert sp.span.duration == 2.5

    def test_nesting_sets_parent_ids(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.span.parent_id is None
        assert middle.span.parent_id == outer.span.span_id
        assert inner.span.parent_id == middle.span.span_id

    def test_siblings_share_parent(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.span.parent_id == outer.span.span_id
        assert b.span.parent_id == outer.span.span_id

    def test_annotate_and_set_virtual(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("run") as sp:
            sp.annotate(nprocs=16)
            sp.set_virtual(0.0, 42.0)
        assert sp.span.attrs["nprocs"] == 16
        assert sp.span.attrs["virtual_duration"] == 42.0

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer(clock=FakeClock())
        parents = {}

        def worker(name):
            with tracer.span(name, tid=name) as sp:
                parents[name] = sp.span.parent_id

        with tracer.span("main-outer"):
            threads = [threading.Thread(target=worker, args=(f"t{i}",))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Rank-thread spans must not adopt the scheduler thread's span
        # as parent: each thread has its own ancestor stack.
        assert all(pid is None for pid in parents.values())

    def test_exception_unwinds_stack(self):
        tracer = SpanTracer(clock=FakeClock())
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.current() is None


class TestVirtualSpans:
    def test_record_is_virtual_and_complete(self):
        tracer = SpanTracer(clock=FakeClock())
        sp = tracer.record("MPI_File_write_at", "io", "rank 3", 12.5, 0.8,
                           bytes=1024)
        assert sp.clock == VIRTUAL
        assert sp.start == 12.5 and sp.duration == 0.8
        assert sp.attrs["bytes"] == 1024

    def test_record_does_not_touch_wall_stack(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("outer"):
            tracer.record("op", "io", "rank 0", 0.0, 1.0)
            assert tracer.current().name == "outer"


class TestFinish:
    def test_sorted_by_clock_tid_start(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.record("b", "io", "rank 1", 5.0, 1.0)
        tracer.record("a", "io", "rank 0", 9.0, 1.0)
        tracer.record("c", "io", "rank 0", 2.0, 1.0)
        with tracer.span("wall-span"):
            pass
        ordered = tracer.finish()
        keys = [(s.clock, s.tid, s.start) for s in ordered]
        assert keys == sorted(keys)
        assert [s.name for s in ordered if s.clock == VIRTUAL] == \
            ["c", "a", "b"]

    def test_stable_for_identical_keys(self):
        tracer = SpanTracer(clock=FakeClock())
        first = tracer.record("first", "io", "rank 0", 1.0, 0.5)
        second = tracer.record("second", "io", "rank 0", 1.0, 0.5)
        ordered = tracer.finish()
        assert [s.span_id for s in ordered] == \
            [first.span_id, second.span_id]
        # Repeated calls return the identical sequence.
        assert [s.span_id for s in tracer.finish()] == \
            [s.span_id for s in ordered]

    def test_clear(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.record("op", "io", "rank 0", 0.0, 1.0)
        tracer.event("mark")
        tracer.clear()
        assert tracer.finish() == [] and tracer.events == []


class TestEvents:
    def test_wall_event_defaults_to_now(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        clock.advance(3.0)
        tracer.event("mark", cat="pipeline", rows=5)
        (ev,) = tracer.events
        assert ev.ts == 3.0 and ev.clock == WALL
        assert ev.attrs["rows"] == 5

    def test_virtual_event_takes_explicit_ts(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.event("phase-start", clock=VIRTUAL, ts=17.0)
        assert tracer.events[0].ts == 17.0


class TestModuleSwitch:
    def test_disabled_span_is_null_singleton(self):
        assert not obs.ACTIVE
        assert obs.span("anything") is NULL_SPAN
        # Full Span surface, all no-ops.
        with obs.span("x") as sp:
            sp.annotate(a=1)
            sp.set_virtual(0.0, 1.0)

    def test_disabled_helpers_are_noops(self):
        obs.event("x")
        obs.record_span("x", "io", "rank 0", 0.0, 1.0)
        obs.inc("nope_total")
        obs.set_gauge("nope", 1.0)
        obs.observe("nope_hist", 1.0)
        assert obs.tracer() is None and obs.registry() is None

    def test_enable_disable_roundtrip(self):
        tracer, registry = obs.enable()
        try:
            assert obs.ACTIVE and obs.enabled()
            assert obs.tracer() is tracer
            assert obs.registry() is registry
            with obs.span("covered"):
                pass
            assert tracer.finish()[0].name == "covered"
            # Standard families are preregistered.
            assert registry.get("io_bytes_total") is not None
        finally:
            obs.disable()
        assert not obs.ACTIVE and obs.tracer() is None

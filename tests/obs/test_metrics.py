"""Metrics registry: counters, gauges, histogram bucketing, families."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    BYTES_BUCKETS,
    KB,
    MB,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = MetricsRegistry().counter("ops_total")
        c.inc()
        c.inc(2.5)
        assert c._solo().value == 3.5

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("ops_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g._solo().value == 13.0


class TestHistogram:
    def test_bucketing_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("req_bytes", buckets=BYTES_BUCKETS)._solo()
        h.observe(4 * KB)      # == first bound -> first bucket
        h.observe(5 * KB)      # -> 16 KB bucket
        h.observe(2 * MB)      # -> 4 MB bucket
        h.observe(8 * 1024 * MB)  # beyond last bound -> +Inf only
        cum = dict(h.cumulative())
        assert cum[4 * KB] == 1
        assert cum[16 * KB] == 2
        assert cum[1 * MB] == 2
        assert cum[4 * MB] == 3
        assert cum[1024 * MB] == 3
        assert cum[math.inf] == 4
        assert h.count == 4
        assert h.sum == 4 * KB + 5 * KB + 2 * MB + 8 * 1024 * MB

    def test_cumulative_monotonic_ends_at_count(self):
        h = MetricsRegistry().histogram("t", buckets=(1.0, 2.0, 3.0))._solo()
        for v in (0.5, 1.5, 1.7, 2.5, 99.0):
            h.observe(v)
        cum = h.cumulative()
        counts = [c for _, c in cum]
        assert counts == sorted(counts)
        assert cum[-1] == (math.inf, 5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))._solo()


class TestFamilies:
    def test_labels_resolve_one_child_per_value_set(self):
        fam = MetricsRegistry().counter("io_total", labelnames=("kind",))
        fam.labels(kind="write").inc(3)
        fam.labels(kind="read").inc()
        fam.labels(kind="write").inc()
        samples = dict(fam.samples())
        assert samples[("write",)].value == 4
        assert samples[("read",)].value == 1

    def test_samples_sorted_by_label_values(self):
        fam = MetricsRegistry().counter("x", labelnames=("a",))
        for v in ("zeta", "alpha", "mid"):
            fam.labels(a=v).inc()
        assert [vals for vals, _ in fam.samples()] == \
            [("alpha",), ("mid",), ("zeta",)]

    def test_wrong_labelnames_rejected(self):
        fam = MetricsRegistry().counter("x", labelnames=("kind",))
        with pytest.raises(ValueError):
            fam.labels(device="sda")
        with pytest.raises(ValueError):
            fam.labels(kind="write", extra="nope")

    def test_labelled_family_refuses_solo_use(self):
        fam = MetricsRegistry().counter("x", labelnames=("kind",))
        with pytest.raises(ValueError):
            fam.inc()

    def test_label_values_stringified(self):
        fam = MetricsRegistry().gauge("bw", labelnames=("phase",))
        fam.labels(phase=3).set(99.0)
        assert dict(fam.samples())[("3",)].value == 99.0


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labelnames=("k",))
        b = reg.counter("x", labelnames=("k",))
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labelnames_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x", labelnames=("b",))

    def test_families_sorted_and_get(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        assert [f.name for f in reg.families()] == ["aa", "zz"]
        assert reg.get("aa").kind == "gauge"
        assert reg.get("missing") is None

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.clear()
        assert reg.families() == []

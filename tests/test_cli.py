"""CLI: subcommand wiring on small workloads."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestConfigs:
    def test_configs_lists_tables_vi_vii(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        for name in ("Configuration A", "Configuration B", "Configuration C",
                     "Finisterrae"):
            assert name in out
        assert "NFS Ver 3" in out and "Lustre" in out


class TestTraceAndModel:
    def test_trace_synthetic(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(["trace", "--app", "synthetic", "--np", "4",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "trace.0").exists()
        assert (out_dir / "model.json").exists()
        assert "traced synthetic" in capsys.readouterr().out

    def test_model_from_traces(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        main(["trace", "--app", "synthetic", "--np", "4",
              "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["model", "--traces", str(out_dir),
                     "--name", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "I/O model of synthetic" in out
        assert "InitOffset" in out

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--app", "nope", "--out", str(tmp_path)])

    def test_unknown_config_rejected(self, tmp_path):
        out_dir = tmp_path / "traces"
        main(["trace", "--app", "synthetic", "--np", "4",
              "--out", str(out_dir)])
        with pytest.raises(SystemExit):
            main(["estimate", "--model", str(out_dir / "model.json"),
                  "--config", "nope"])


class TestEstimateAndSelect:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("cli") / "traces"
        main(["trace", "--app", "ior", "--np", "4", "--out", str(out_dir)])
        return str(out_dir / "model.json")

    def test_estimate(self, model_path, capsys):
        assert main(["estimate", "--model", model_path,
                     "--config", "configuration-A"]) == 0
        out = capsys.readouterr().out
        assert "BW_CH" in out and "total Time_io(CH)" in out

    def test_select(self, model_path, capsys):
        assert main(["select", "--model", model_path,
                     "--configs", "configuration-A,configuration-B"]) == 0
        out = capsys.readouterr().out
        assert "<- selected" in out

    def test_replay(self, model_path, capsys):
        assert main(["replay", "--model", model_path,
                     "--config", "configuration-A"]) == 0
        out = capsys.readouterr().out
        assert "total replayed I/O time" in out

    def test_signatures(self, model_path, capsys):
        assert main(["signatures", "--model", model_path]) == 0
        out = capsys.readouterr().out
        assert "Byna-style" in out and "phase 1:" in out

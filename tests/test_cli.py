"""CLI: subcommand wiring on small workloads."""

from __future__ import annotations

import json

import pytest

from repro import __version__, obs
from repro.cli import _app_for, main


class TestConfigs:
    def test_configs_lists_tables_vi_vii(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        for name in ("Configuration A", "Configuration B", "Configuration C",
                     "Finisterrae"):
            assert name in out
        assert "NFS Ver 3" in out and "Lustre" in out


class TestTraceAndModel:
    def test_trace_synthetic(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(["trace", "--app", "synthetic", "--np", "4",
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "trace.0").exists()
        assert (out_dir / "model.json").exists()
        assert "traced synthetic" in capsys.readouterr().out

    def test_model_from_traces(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        main(["trace", "--app", "synthetic", "--np", "4",
              "--out", str(out_dir)])
        capsys.readouterr()
        assert main(["model", "--traces", str(out_dir),
                     "--name", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "I/O model of synthetic" in out
        assert "InitOffset" in out

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--app", "nope", "--out", str(tmp_path)])

    def test_unknown_config_rejected(self, tmp_path):
        out_dir = tmp_path / "traces"
        main(["trace", "--app", "synthetic", "--np", "4",
              "--out", str(out_dir)])
        with pytest.raises(SystemExit):
            main(["estimate", "--model", str(out_dir / "model.json"),
                  "--config", "nope"])


class TestEstimateAndSelect:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("cli") / "traces"
        main(["trace", "--app", "ior", "--np", "4", "--out", str(out_dir)])
        return str(out_dir / "model.json")

    def test_estimate(self, model_path, capsys):
        assert main(["estimate", "--model", model_path,
                     "--config", "configuration-A"]) == 0
        out = capsys.readouterr().out
        assert "BW_CH" in out and "total Time_io(CH)" in out

    def test_select(self, model_path, capsys):
        assert main(["select", "--model", model_path,
                     "--configs", "configuration-A,configuration-B"]) == 0
        out = capsys.readouterr().out
        assert "<- selected" in out

    def test_replay(self, model_path, capsys):
        assert main(["replay", "--model", model_path,
                     "--config", "configuration-A"]) == 0
        out = capsys.readouterr().out
        assert "total replayed I/O time" in out

    def test_signatures(self, model_path, capsys):
        assert main(["signatures", "--model", model_path]) == 0
        out = capsys.readouterr().out
        assert "Byna-style" in out and "phase 1:" in out


class TestAppResolution:
    def test_np_threaded_into_params(self):
        _, params = _app_for("ior", 8)
        assert params.np == 8

    def test_np_threaded_for_every_np_app(self):
        import dataclasses

        for app in ("madbench2", "btio-A", "synthetic", "ior", "roms"):
            _, params = _app_for(app, 16)
            for f in dataclasses.fields(params):
                if f.name == "np":
                    assert getattr(params, "np") == 16

    def test_square_np_required_for_madbench2(self):
        with pytest.raises(SystemExit, match="square"):
            _app_for("madbench2", 12)

    def test_square_np_required_for_btio(self):
        with pytest.raises(SystemExit, match="square"):
            _app_for("btio-C", 8)

    def test_nonpositive_np_rejected(self):
        with pytest.raises(SystemExit, match="positive"):
            _app_for("synthetic", 0)

    def test_trace_honours_np(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(["trace", "--app", "ior", "--np", "8",
                     "--out", str(out_dir)]) == 0
        assert "on 8 procs" in capsys.readouterr().out
        assert (out_dir / "trace.7").exists()
        assert not (out_dir / "trace.8").exists()


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-io {__version__}"


class TestMetricsFlag:
    def test_trace_with_metrics_prints_exposition(self, tmp_path, capsys):
        assert main(["trace", "--app", "synthetic", "--np", "4",
                     "--out", str(tmp_path / "t"), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Collected metrics (Prometheus text format):" in out
        assert "# TYPE io_bytes_total counter" in out
        assert "engine_runs_total 1" in out
        # The flag never leaves instrumentation switched on.
        assert not obs.ACTIVE

    def test_disabled_by_default(self, tmp_path, capsys):
        assert main(["trace", "--app", "synthetic", "--np", "4",
                     "--out", str(tmp_path / "t")]) == 0
        assert "Collected metrics" not in capsys.readouterr().out
        assert not obs.ACTIVE


class TestProfile:
    def test_profile_writes_three_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        assert main(["profile", "--app", "synthetic", "--np", "4",
                     "--config", "configuration-A",
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "System Usage %" in out
        assert "Wall-clock spans" in out
        assert "Traced I/O" in out
        for line in (out_dir / "events.jsonl").read_text().splitlines():
            json.loads(line)
        doc = json.loads((out_dir / "trace.chrome.json").read_text())
        assert doc["traceEvents"]
        prom = (out_dir / "metrics.prom").read_text()
        assert "# TYPE io_operations_total counter" in prom
        assert not obs.ACTIVE


class TestCache:
    def test_stats_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path / "cc")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_warm_then_stats_then_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cc")
        assert main(["cache", "warm", "--dir", cache_dir,
                     "--app", "synthetic", "--np", "4",
                     "--configs", "configuration-A"]) == 0
        out = capsys.readouterr().out
        assert "warmed" in out and "1 configurations" in out

        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "schema v" in out
        assert "trace" in out and "ior" in out and "total" in out

        assert main(["cache", "clear", "--dir", cache_dir,
                     "--cache", "trace"]) == 0
        assert "cache 'trace'" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", cache_dir]) == 0
        assert "all caches" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_env_var_is_the_default_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcc"))
        assert main(["cache", "stats"]) == 0
        assert "envcc" in capsys.readouterr().out

"""Store keys must be bit-identical across interpreters.

Python salts ``hash()`` per process (PYTHONHASHSEED), and dict/set
iteration order can differ with it -- the classic way a disk cache
quietly stops hitting.  These tests compute ``key_digest`` for a
representative key (cluster fingerprint, frozen dataclass params,
dict, frozenset, Fraction, a traced program function) in fresh
subprocesses with *different* hash seeds and require the exact hex
digest this process computes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import repro
from repro.apps.ior import IORParams
from repro.apps.madbench2 import madbench2_program
from repro.clusters import configuration_a
from repro.store import key_digest

SRC = Path(repro.__file__).resolve().parents[1]

_KEY_EXPR = """(
    "replay",
    configuration_a().fingerprint(),
    IORParams(),
    {"write": 1, "read": 2},
    frozenset({3, 1, 2}),
    Fraction(22, 7),
    madbench2_program,
)"""

_SCRIPT = f"""
from fractions import Fraction
from repro.apps.ior import IORParams
from repro.apps.madbench2 import madbench2_program
from repro.clusters import configuration_a
from repro.store import key_digest
print(key_digest("replay", {_KEY_EXPR}))
"""


def _digest_in_subprocess(hashseed: str) -> str:
    env = {**os.environ,
           "PYTHONPATH": str(SRC),
           "PYTHONHASHSEED": hashseed}
    env.pop("REPRO_CACHE_DIR", None)
    out = subprocess.run([sys.executable, "-c", _SCRIPT], env=env,
                         capture_output=True, text=True, check=True)
    return out.stdout.strip()


def test_key_digest_is_interpreter_independent():
    local = key_digest("replay", eval(_KEY_EXPR))  # noqa: S307 - own literal
    assert len(local) == 64
    for seed in ("0", "424242"):
        assert _digest_in_subprocess(seed) == local

"""Cross-process warm start: the store's end-to-end reason to exist.

Two fresh interpreters run the same ``full_study`` against one store
directory.  The first is cold (populates); the second must serve its
trace, characterization and IOR results from disk (``disk_hits > 0``)
and produce **bit-identical** study totals (compared by ``repr``, so
float equality is exact).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import repro

SRC = Path(repro.__file__).resolve().parents[1]

_SCRIPT = """
import json, sys
from repro import store
from repro.apps.madbench2 import MADbench2Params, madbench2_program
from repro.clusters import configuration_a, configuration_b
from repro.core import cache as simcache
from repro.core.pipeline import full_study

store.attach(sys.argv[1])
study = full_study(
    madbench2_program, 4, MADbench2Params(),
    cluster_factories={"A": configuration_a, "B": configuration_b},
    app_name="madbench2")
print(json.dumps({
    "best": study["selection"]["best"],
    "totals": {k: repr(v) for k, v in study["selection"]["totals"].items()},
    "disk_hits": sum(st["disk_hits"] for st in simcache.stats().values()),
}))
"""


def _run_study(store_dir: Path) -> dict:
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    env.pop("REPRO_CACHE_DIR", None)
    out = subprocess.run(
        [sys.executable, "-c", _SCRIPT, str(store_dir)],
        env=env, capture_output=True, text=True, check=True)
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_second_process_warm_starts_bit_identically(tmp_path):
    store_dir = tmp_path / "cache"
    cold = _run_study(store_dir)
    assert cold["disk_hits"] == 0  # nothing to hit yet
    assert (store_dir / "trace").is_dir()  # traces persisted

    warm = _run_study(store_dir)
    assert warm["disk_hits"] > 0
    assert warm["best"] == cold["best"]
    assert warm["totals"] == cold["totals"]  # repr-exact floats

"""Persistent result store: canonical keys, disk round-trips, cache tier."""

from __future__ import annotations

import dataclasses
import json
from fractions import Fraction

import pytest

from repro import store
from repro.core import cache as simcache
from repro.store import (
    SCHEMA_VERSION,
    ResultStore,
    UnencodableKey,
    canonical_bytes,
    key_digest,
)

from tests.conftest import make_nfs_cluster


@dataclasses.dataclass(frozen=True)
class Params:
    np: int = 4
    rs: int = 1024


def _module_fn():
    return 42


class TestCanonicalBytes:
    def test_type_tags_keep_lookalikes_apart(self):
        encodings = {canonical_bytes(v)
                     for v in (1, 1.0, "1", True, None, b"1")}
        assert len(encodings) == 6

    def test_dict_encoding_is_order_independent(self):
        assert canonical_bytes({"a": 1, "b": 2}) \
            == canonical_bytes({"b": 2, "a": 1})

    def test_set_encoding_is_order_independent(self):
        assert canonical_bytes(frozenset({3, 1, 2})) \
            == canonical_bytes(frozenset({2, 3, 1}))

    def test_structured_values_encode(self):
        key = (Params(), Fraction(22, 7), make_nfs_cluster().fingerprint())
        assert canonical_bytes(key) == canonical_bytes(key)

    def test_dataclass_values_distinguish(self):
        assert canonical_bytes(Params(np=4)) != canonical_bytes(Params(np=8))

    def test_function_encodes_by_code_digest(self):
        one = canonical_bytes(_module_fn)

        def _module_fn_shadow():  # same name pattern, different body
            return 43

        assert one == canonical_bytes(_module_fn)
        assert one != canonical_bytes(_module_fn_shadow)

    def test_unencodable_value_raises(self):
        with pytest.raises(UnencodableKey):
            canonical_bytes(object())


class TestKeyDigest:
    def test_cache_name_partitions_key_space(self):
        assert key_digest("ior", ("k",)) != key_digest("replay", ("k",))

    def test_schema_partitions_key_space(self):
        assert key_digest("ior", ("k",), schema=SCHEMA_VERSION) \
            != key_digest("ior", ("k",), schema=SCHEMA_VERSION + 1)


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        rs = ResultStore(tmp_path)
        key = (Params(), "write", Fraction(1, 3))
        assert rs.put("ior", key, {"bw": 123.456})
        assert rs.get("ior", key) == (True, {"bw": 123.456})
        assert rs.get("ior", ("other",)) == (False, None)

    def test_large_payload_goes_to_sidecar(self, tmp_path):
        rs = ResultStore(tmp_path)
        big = b"x" * (64 * 1024)
        assert rs.put("trace", ("big",), big)
        assert list(tmp_path.glob("trace/*/*.bin"))
        assert rs.get("trace", ("big",)) == (True, big)

    def test_schema_mismatch_evicts_on_read(self, tmp_path):
        ResultStore(tmp_path, schema=1).put("ior", ("k",), 1)
        reader = ResultStore(tmp_path, schema=2)
        assert reader.get("ior", ("k",)) == (False, None)
        # schema also partitions the digest, so v1's file is untouched --
        # but a v2-addressed entry written with a stale embedded schema
        # self-destructs:
        rs2 = ResultStore(tmp_path, schema=2)
        rs2.put("ior", ("k2",), 2)
        path = tmp_path / "ior" / rs2.digest("ior", ("k2",))[:2] \
            / (rs2.digest("ior", ("k2",)) + ".json")
        env = json.loads(path.read_text())
        env["schema"] = 1
        path.write_text(json.dumps(env))
        assert rs2.get("ior", ("k2",)) == (False, None)
        assert not path.exists()

    def test_torn_envelope_reads_as_miss(self, tmp_path):
        rs = ResultStore(tmp_path)
        rs.put("ior", ("k",), 1)
        [path] = tmp_path.glob("ior/*/*.json")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert rs.get("ior", ("k",)) == (False, None)

    def test_unencodable_key_opts_out(self, tmp_path):
        rs = ResultStore(tmp_path)
        assert rs.put("ior", (object(),), 1) is False
        assert rs.get("ior", (object(),)) == (False, None)
        assert rs.stats() == {}

    def test_stats_and_clear(self, tmp_path):
        rs = ResultStore(tmp_path)
        rs.put("ior", ("a",), 1)
        rs.put("ior", ("b",), 2)
        rs.put("replay", ("c",), 3)
        stats = rs.stats()
        assert stats["ior"]["entries"] == 2
        assert stats["replay"]["entries"] == 1
        assert all(st["bytes"] > 0 for st in stats.values())
        assert rs.clear("ior") == 2
        assert "ior" not in rs.stats()
        assert rs.clear() == 1
        assert rs.stats() == {}


class TestCacheDiskTier:
    def test_miss_falls_through_promotes_and_counts(self, tmp_path):
        store.attach(tmp_path)
        c = simcache.cache("ior")
        c.store(("k",), 99)
        simcache.clear_all()  # in-memory gone; disk survives
        assert c.lookup(("k",)) == 99
        assert c.disk_hits == 1
        assert c.lookup(("k",)) == 99  # now from memory
        assert c.disk_hits == 1
        assert simcache.stats()["ior"]["disk_hits"] == 1

    def test_write_through_lands_on_disk(self, tmp_path):
        store.attach(tmp_path)
        simcache.cache("replay").store(("k",), {"bw": 1.0})
        assert store.active().get("replay", ("k",)) == (True, {"bw": 1.0})

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        store.attach(tmp_path)
        try:
            simcache.disable()
            c = simcache.cache("ior")
            c.store(("k",), 1)
            assert c.lookup(("k",)) is simcache._MISS
        finally:
            simcache.enable()
        assert store.active().stats() == {}

    def test_detach_restores_memory_only(self, tmp_path):
        store.attach(tmp_path)
        simcache.cache("ior").store(("k",), 1)
        store.detach()
        simcache.clear_all()
        assert simcache.cache("ior").lookup(("k",)) is simcache._MISS

    def test_unhashable_friendly_keys_stay_in_memory(self, tmp_path):
        store.attach(tmp_path)
        c = simcache.cache("ior")
        c.store((object(),), 7)  # hashable, but not canonically encodable
        assert store.active().stats() == {}

    def test_env_var_attaches_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store.ENV_VAR, str(tmp_path))
        store._active, store._detached = None, False
        try:
            active = store.active()
            assert active is not None
            assert active.root == tmp_path
        finally:
            store.detach()

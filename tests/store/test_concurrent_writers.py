"""Multi-client safety of the disk store and the atomic-write helpers.

The study service runs a pool of worker threads over one attached
store, and cluster sweeps add whole processes; these tests hammer the
same digest / the same target path from many writers at once and
assert the two guarantees the store documents:

* a reader never sees a torn entry -- every successful ``get`` returns
  a value some writer actually put, complete;
* concurrent writers settle last-writer-wins: after the dust settles
  the entry is intact and readable.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading

import pytest

from repro.ioutil import atomic_path, atomic_write_text
from repro.store.disk import INLINE_LIMIT, ResultStore

DIGEST = "ab" + "0" * 62  # fixed shard/entry: maximum contention


def _value(writer: int, i: int, big: bool) -> dict:
    payload = "x" * (INLINE_LIMIT + 512 if big else 32)
    return {"writer": writer, "iteration": i, "payload": payload}


class TestConcurrentStoreWriters:
    @pytest.mark.parametrize("big", [False, True],
                             ids=["inline", "sidecar"])
    def test_threads_same_digest(self, tmp_path, big):
        """N threads x M writes of one digest; readers never see torn data."""
        rs = ResultStore(tmp_path)
        stop = threading.Event()
        errors: list[str] = []

        def write(writer: int) -> None:
            for i in range(25):
                blob = pickle.dumps(_value(writer, i, big))
                rs.put_encoded("stress", DIGEST, blob)

        def read() -> None:
            while not stop.is_set():
                hit, value = self._get_raw(rs)
                if hit and not (isinstance(value, dict)
                                and "writer" in value
                                and "payload" in value):
                    errors.append(f"torn value: {value!r}")

        writers = [threading.Thread(target=write, args=(w,))
                   for w in range(8)]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        hit, value = self._get_raw(rs)
        assert hit, "entry unreadable after the stampede"
        assert value == _value(value["writer"], value["iteration"], big)

    @staticmethod
    def _get_raw(rs: ResultStore):
        """Read the contended entry directly by its digest."""
        import base64
        import json

        path = rs._entry_path("stress", DIGEST)
        try:
            envelope = json.loads(path.read_text())
            if "payload" in envelope:
                blob = base64.b64decode(envelope["payload"])
            else:
                blob = (path.parent / envelope["payload_file"]).read_bytes()
            return True, pickle.loads(blob)
        except FileNotFoundError:
            return False, None

    def test_processes_same_digest(self, tmp_path):
        """Writer processes racing on one digest leave a complete entry."""
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_process_writer, args=(str(tmp_path), w))
                 for w in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        hit, value = self._get_raw(ResultStore(tmp_path))
        assert hit
        assert value["payload"] == "x" * (INLINE_LIMIT + 512)


def _process_writer(root: str, writer: int) -> None:
    rs = ResultStore(root)
    for i in range(15):
        rs.put_encoded("stress", DIGEST,
                       pickle.dumps(_value(writer, i, True)))


class TestAtomicPathCollisions:
    def test_threads_same_target_distinct_temps(self, tmp_path):
        """Two threads inside one process must never share a temp file.

        The pre-fix naming was pid-only, so this exact scenario -- two
        service workers landing the same artifact -- interleaved bytes
        in one temp file.
        """
        target = tmp_path / "artifact.npz"
        barrier = threading.Barrier(8)
        errors: list[str] = []

        def write(writer: int) -> None:
            body = bytes([writer]) * 4096
            barrier.wait()
            for _ in range(20):
                try:
                    with atomic_path(target) as tmp:
                        tmp.write_bytes(body)
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        data = target.read_bytes()
        seen_bodies = set(data)
        assert len(data) == 4096
        assert len(seen_bodies) == 1, "temp files interleaved across writers"
        assert not list(tmp_path.glob("*.tmp*")), "orphaned temp files"

    def test_atomic_write_text_threads(self, tmp_path):
        target = tmp_path / "entry.json"
        contents = [f'{{"writer": {w}}}' * 64 for w in range(6)]

        def write(w: int) -> None:
            for _ in range(30):
                atomic_write_text(target, contents[w])

        threads = [threading.Thread(target=write, args=(w,))
                   for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.read_text() in contents

"""Estimators: eqs. 1-7 identities and the selection step."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimate import (
    PhaseEstimate,
    absolute_error,
    estimate_model,
    measure_phases,
    peak_bandwidth,
    relative_error,
    select_configuration,
    system_usage,
)
from repro.core.model import IOModel
from repro.tracer import trace_run

from tests.conftest import make_nfs_cluster, make_pvfs_cluster

MB = 1024 * 1024


def app(ctx):
    fh = ctx.file_open("data")
    fh.write_at_all(ctx.rank * 32 * MB, 32 * MB)
    fh.read_at_all(ctx.rank * 32 * MB, 32 * MB)
    fh.close()


@pytest.fixture(scope="module")
def model() -> IOModel:
    return IOModel.from_trace(trace_run(app, 4), app_name="toy")


class TestEquations:
    def test_eq2_time_is_weight_over_bw(self):
        est = PhaseEstimate(phase_id=1, weight=100 * MB, op_label="W",
                            bw_ch_mb_s=50.0)
        assert est.time_ch == pytest.approx(2.0)

    def test_eq5_system_usage(self):
        assert system_usage(93.0, 400.0) == pytest.approx(23.25)
        with pytest.raises(ValueError):
            system_usage(1.0, 0.0)

    def test_eq6_eq7_errors(self):
        assert absolute_error(68.0, 66.0) == pytest.approx(2.0)
        assert relative_error(68.0, 66.0) == pytest.approx(100 * 2 / 66)
        assert relative_error(50.0, 50.0) == 0.0
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    @given(bw_ch=st.floats(1.0, 1e4), bw_md=st.floats(1.0, 1e4))
    @settings(max_examples=60, deadline=None)
    def test_error_properties(self, bw_ch, bw_md):
        err = relative_error(bw_ch, bw_md)
        assert err >= 0.0
        assert relative_error(bw_md, bw_md) == 0.0
        # Symmetric absolute error.
        assert absolute_error(bw_ch, bw_md) == absolute_error(bw_md, bw_ch)


class TestEstimateModel:
    def test_report_covers_all_phases(self, model):
        report = estimate_model(model.phases, make_nfs_cluster, "nfs")
        assert [p.phase_id for p in report.phases] == \
            [ph.phase_id for ph in model.phases]
        assert all(p.bw_ch_mb_s > 0 for p in report.phases)
        assert report.total_time_ch == pytest.approx(
            sum(p.time_ch for p in report.phases))

    def test_identical_phases_share_measurement(self, model):
        report = estimate_model(model.phases * 1, make_nfs_cluster, "nfs")
        # phase() accessor
        assert report.phase(model.phases[0].phase_id).weight == \
            model.phases[0].weight
        with pytest.raises(KeyError):
            report.phase(999)


class TestMeasure:
    def test_measure_from_target_trace(self):
        cluster = make_nfs_cluster()
        m = IOModel.from_trace(trace_run(app, 4, cluster), app_name="toy")
        report = measure_phases(m.phases, config_name="nfs")
        assert all(p.time_md > 0 for p in report.phases)
        assert all(p.bw_md_mb_s > 0 for p in report.phases)
        assert report.total_time_md == pytest.approx(
            sum(p.time_md for p in report.phases))


class TestPeakBandwidth:
    def test_analytic_matches_cluster_peak(self):
        analytic = peak_bandwidth(make_nfs_cluster, "write", analytic=True)
        assert analytic == pytest.approx(make_nfs_cluster().peak_bw("write"))

    def test_iozone_measures_below_analytic(self):
        measured = peak_bandwidth(make_nfs_cluster, "write")
        analytic = peak_bandwidth(make_nfs_cluster, "write", analytic=True)
        assert 0 < measured <= analytic * 1.05

    def test_parallel_fs_sums_ions(self):
        one_ion = peak_bandwidth(lambda: make_pvfs_cluster(n_ions=1), "write")
        three = peak_bandwidth(lambda: make_pvfs_cluster(n_ions=3), "write")
        assert three == pytest.approx(3 * one_ion, rel=0.05)


class TestSelection:
    def test_faster_configuration_wins(self, model):
        choice = select_configuration(model.phases, {
            "nfs": make_nfs_cluster,
            "pvfs": lambda: make_pvfs_cluster(n_ions=3),
        })
        assert choice.best in ("nfs", "pvfs")
        ranking = choice.ranking()
        assert ranking[0][1] <= ranking[1][1]
        assert choice.best == ranking[0][0]

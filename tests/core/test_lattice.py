"""Lattice-analytic selection vs. per-config replay: same rankings.

The vectorized kernels of :mod:`repro.core.lattice` evaluate eqs. (1)-(4)
analytically over the whole configuration lattice at once.  They are an
*approximation of the simulator*, so the contract is weaker than the
columnar one -- not bit-identical times, but the same ordering and the
same winner on the seed configurations (near-ties may swap deeper
positions; see docs/performance.md).  The numpy and pure-Python kernel
drivers, however, must agree bit-for-bit with each other.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.clusters import ALL_CONFIGURATIONS
from repro.core.estimate import select_configuration
from repro.core.lattice import (
    ConfigSpace,
    LatticeParams,
    LatticeUnsupportedError,
    evaluate_lattice,
    extract_row,
)
from repro.core.offsetfn import OffsetFunction
from repro.core.phases import Phase, PhaseOp

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

MB = 1024 * 1024


def mkphase(pid, np_, rs, block, kind="write", unique=False,
            collective=False):
    fn = OffsetFunction(slope=Fraction(0), intercept=Fraction(0))
    op = kind + ("_all" if collective else "")
    ops = (PhaseOp(op=op, kind=kind, request_size=rs, disp=0,
                   offset_fn=fn, abs_offset_fn=fn),)
    return Phase(phase_id=pid, file_group=f"f{pid}", rep=block // rs,
                 ops=ops, ranks=tuple(range(np_)), tick=0.0,
                 first_time=0.0, duration=1.0, unique_file=unique,
                 file_ids=tuple(range(np_)) if unique else (0,))


# One phase list per qualitatively distinct kernel path: large shared
# requests, sub-stripe writes (RAID5 read-modify-write), unique files
# (per-rank files + locator spread), single-rank latency-bound, and a
# collective (two-phase I/O) mix.
CASES = {
    "mixed": [mkphase(0, 4, MB, 48 * MB, "write"),
              mkphase(1, 4, MB, 48 * MB, "read"),
              mkphase(2, 4, 256 * 1024, 16 * MB, "write", collective=True)],
    "small-write": [mkphase(0, 2, 64 * 1024, 4 * MB, "write")],
    "unique": [mkphase(0, 4, 512 * 1024, 48 * MB, "write", unique=True),
               mkphase(1, 4, 512 * 1024, 48 * MB, "read", unique=True)],
    "np1": [mkphase(0, 1, MB, 48 * MB, "write"),
            mkphase(1, 1, MB, 48 * MB, "read")],
}


@pytest.fixture(scope="module")
def seed_params():
    return LatticeParams.from_factories(dict(ALL_CONFIGURATIONS))


@pytest.mark.parametrize("case", sorted(CASES))
def test_seed_ranking_matches_replay(case, seed_params):
    """The property the whole module exists for: on every seed cluster
    configuration the analytic ordering equals the replay ordering."""
    phases = CASES[case]
    replay = select_configuration(phases, dict(ALL_CONFIGURATIONS))
    lattice = evaluate_lattice(phases, seed_params).choice
    assert [n for n, _ in lattice.ranking()] == \
        [n for n, _ in replay.ranking()]
    assert lattice.best == replay.best


def test_select_configuration_lattice_flag(seed_params):
    phases = CASES["mixed"]
    via_flag = select_configuration(phases, dict(ALL_CONFIGURATIONS),
                                    lattice=True)
    via_params = select_configuration(phases, dict(ALL_CONFIGURATIONS),
                                      lattice=seed_params)
    direct = evaluate_lattice(phases, seed_params).choice
    assert via_flag.total_times == direct.total_times
    assert via_params.total_times == direct.total_times
    assert via_flag.best == direct.best


def test_table_xii_best_pick():
    """Table XII: BT-IO on configuration C vs. Finisterrae -- the
    lattice must pick the same winner as the replay reference."""
    from repro.apps import BTIOParams, btio_program
    from repro.core.model import IOModel
    from repro.tracer.hooks import trace_run

    bundle = trace_run(btio_program, 4, None,
                       BTIOParams(cls="A", comm_events_per_step=2))
    model = IOModel.from_trace(bundle, "bt")
    facs = {"configuration-C": ALL_CONFIGURATIONS["configuration-C"],
            "finisterrae": ALL_CONFIGURATIONS["finisterrae"]}
    replay = select_configuration(model.phases, facs)
    lattice = select_configuration(model.phases, facs, lattice=True)
    assert lattice.best == replay.best


def test_reports_structure(seed_params):
    sel = evaluate_lattice(CASES["mixed"], seed_params)
    rep = sel.report("configuration-A")
    assert rep.config_name == "configuration-A"
    assert len(rep.phases) == len(CASES["mixed"])
    assert rep.phase(0).bw_ch_mb_s > 0
    assert rep.total_time_ch == \
        pytest.approx(sel.choice.total_times["configuration-A"])
    assert set(sel.reports()) == set(ALL_CONFIGURATIONS)


@needs_numpy
def test_backend_bit_identity_seed():
    """numpy and pure-Python kernel drivers agree bit-for-bit."""
    phases = [ph for case in sorted(CASES) for ph in CASES[case]]
    pn = LatticeParams.from_factories(dict(ALL_CONFIGURATIONS),
                                      backend="numpy")
    pp = LatticeParams.from_factories(dict(ALL_CONFIGURATIONS),
                                      backend="python")
    sn = evaluate_lattice(phases, pn).choice
    sp = evaluate_lattice(phases, pp).choice
    assert sn.total_times == sp.total_times
    assert sn.best == sp.best


@needs_numpy
def test_backend_bit_identity_space():
    space = ConfigSpace(raid_levels=("jbod", "raid1", "raid5"),
                        members=(3, 4), stripe_kb=(64, 256),
                        net_mb_s=(800, 1500), ions=(1, 3))
    phases = CASES["small-write"] + CASES["np1"]
    qn = space.params(backend="numpy")
    qp = space.params(backend="python")
    ln = evaluate_lattice(phases, qn).choice
    lp = evaluate_lattice(phases, qp).choice
    assert ln.total_times == lp.total_times
    for kind in ("write", "read"):
        assert [float(x) for x in qn.peak_bw(kind)] == \
            [float(x) for x in qp.peak_bw(kind)]


def test_peak_bw_matches_cluster(seed_params):
    """eqs. (3)/(4): the lattice peak equals the cluster's analytic
    peak for every seed configuration, both kinds."""
    for kind in ("write", "read"):
        peaks = seed_params.peak_bw(kind)
        for i, name in enumerate(seed_params.names):
            cluster = ALL_CONFIGURATIONS[name]()
            assert float(peaks[i]) == pytest.approx(cluster.peak_bw(kind),
                                                    rel=1e-12), (name, kind)


def test_config_space_shape():
    space = ConfigSpace()
    facs = space.factories()
    assert len(facs) == 4096
    params = space.params()
    assert len(params) == 4096
    assert list(facs) == params.names
    # spot-check one point round-trips through a real cluster build
    name = params.names[0]
    row = extract_row(facs[name]())
    for f, v in row.items():
        assert float(params.cols[f][0]) == v, f


def test_extract_row_rejects_degraded():
    cluster = ALL_CONFIGURATIONS["configuration-A"]()
    volume = cluster.globalfs.ions[0].fs.volume
    volume.fail_disk(0)
    with pytest.raises(LatticeUnsupportedError):
        extract_row(cluster)

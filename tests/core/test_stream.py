"""Streaming characterization: bit-identical to the batch paths.

``LAPFolder`` / ``IOModel.from_stream`` consume the trace chunk-wise
with O(open bursts) buffering instead of materializing full columns.
Like the columnar kernels they are optimizations, not approximations:
on any chunking of any trace they must produce the same digest, the
same ``LAPEntry`` list and the same model as ``extract_laps`` /
``IOModel.from_columns`` -- under both backends.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    BTIOParams,
    MADbench2Params,
    btio_program,
    madbench2_program,
)
from repro.core.lap import LAPFolder, extract_laps
from repro.core.model import IOModel
from repro.tracer.columns import (
    StreamDigest,
    TraceColumns,
    iter_trace_column_chunks,
    read_trace_columns,
)
from repro.tracer.hooks import TraceBundle, stream_bundle, trace_run
from repro.tracer.tracefile import TraceRecord

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

BACKENDS = pytest.mark.parametrize(
    "backend",
    [pytest.param("numpy", marks=pytest.mark.skipif(
        not HAVE_NUMPY, reason="numpy not installed")),
     "python"])

OPS = ["MPI_File_write_at_all", "MPI_File_read_at_all", "MPI_File_write_at"]


def chop(cols, sizes):
    """Slice a TraceColumns into chunks of the given sizes (cycled)."""
    out, lo, i = [], 0, 0
    while lo < len(cols):
        sz = sizes[i % len(sizes)]
        i += 1
        out.append(cols.take(range(lo, min(lo + sz, len(cols)))))
        lo += sz
    return out


def assert_stream_matches(records, sizes, backend):
    cols = TraceColumns.from_records(records, backend=backend)
    folder = LAPFolder()
    for chunk in chop(cols, sizes):
        folder.push(chunk)
    assert folder.finish() == extract_laps(records)
    assert folder.content_digest() == cols.content_digest()
    assert folder.nrows == len(records)


# -- randomized traces --------------------------------------------------------

row = st.tuples(
    st.integers(0, 3),             # rank
    st.integers(0, 2),             # file_id
    st.integers(0, len(OPS) - 1),  # op
    st.integers(0, 63),            # offset
    st.integers(1, 3),             # tick delta
    st.sampled_from([4096, 65536]),
)


@BACKENDS
@given(st.lists(row, max_size=60), st.integers(1, 17))
@settings(max_examples=60, deadline=None)
def test_random_traces_any_chunking(backend, rows, chunk):
    records, tick = [], {}
    for i, (rank, fid, op, off, dt, rs) in enumerate(rows):
        tick[rank] = tick.get(rank, 0) + dt
        records.append(TraceRecord(rank, fid, OPS[op], off * 8, tick[rank],
                                   rs, 0.01 * i, 0.001, off * 64))
    assert_stream_matches(records, [chunk], backend)


@BACKENDS
def test_interleaved_ranks_split_bursts(backend):
    """A (rank, file) stream interrupted by other ranks resumes its
    burst exactly like the batch grouping does."""
    records, tick = [], 0
    for rep in range(12):
        for rank in (0, 1, 0, 2):
            tick += 1
            records.append(TraceRecord(rank, 0, OPS[0], rep * 4096, tick,
                                       4096, 0.01 * tick, 1e-4, rep * 4096))
    assert_stream_matches(records, [3], backend)


@BACKENDS
def test_per_chunk_op_tables_remap(backend):
    """Chunks built independently intern different op tables; the
    folder must remap them onto one global table (digest included)."""
    recs_a = [TraceRecord(0, 0, OPS[1], i * 8, i + 1, 4096,
                          0.01 * i, 1e-4, i * 8) for i in range(5)]
    recs_b = [TraceRecord(0, 0, OPS[0], i * 8, i + 10, 4096,
                          0.01 * i, 1e-4, i * 8) for i in range(5)]
    parts = [TraceColumns.from_records(r, backend=backend)
             for r in (recs_a, recs_b)]
    folder = LAPFolder()
    for p in parts:
        folder.push(p)
    whole = TraceColumns.from_records(recs_a + recs_b, backend=backend)
    assert folder.op_table == whole.op_table
    assert folder.content_digest() == whole.content_digest()
    assert folder.finish() == extract_laps(recs_a + recs_b)


@BACKENDS
def test_empty_and_tiny_chunks(backend):
    records = [TraceRecord(0, 0, OPS[0], i * 8, i + 1, 4096,
                           0.01 * i, 1e-4, i * 8) for i in range(9)]
    cols = TraceColumns.from_records(records, backend=backend)
    empty = TraceColumns.from_records([], backend=backend)
    chunks = [empty] + chop(cols, [1]) + [empty]
    folder = LAPFolder()
    for ch in chunks:
        folder.push(ch)
    assert folder.finish() == extract_laps(records)
    assert folder.content_digest() == cols.content_digest()


def test_stream_digest_standalone():
    """StreamDigest over chunked column lists equals content_digest."""
    records = [TraceRecord(r, 0, OPS[r % 3], i * 8, i + 1, 4096,
                           0.01 * i, 1e-4, i * 8)
               for i, r in enumerate([0, 0, 1, 1, 0, 2])]
    cols = TraceColumns.from_records(records, backend="python")
    sd = StreamDigest()
    lists = cols.column_lists()
    for lo in (0, 2, 4):
        sd.update({k: v[lo:lo + 2] for k, v in lists.items()})
    assert sd.finalize(cols.op_table) == cols.content_digest()


# -- full models on the seed apps ---------------------------------------------

@pytest.fixture(scope="module")
def bt_bundle():
    return trace_run(btio_program, 4, None,
                     BTIOParams(cls="A", comm_events_per_step=2))


@pytest.fixture(scope="module")
def mb_bundle():
    return trace_run(madbench2_program, 4, None, MADbench2Params(kpix=4))


@BACKENDS
@pytest.mark.parametrize("app", ["bt", "madbench2"])
def test_model_bit_identical(app, backend, bt_bundle, mb_bundle, request):
    bundle = bt_bundle if app == "bt" else mb_bundle
    cols = bundle.columns
    if cols.backend != backend:
        cols = TraceColumns.from_records(bundle.records, backend=backend)
    m_stream = IOModel.from_stream(iter(chop(cols, [29])), bundle.metadata,
                                   bundle.nprocs, app_name=app)
    m_cols = IOModel.from_columns(cols, bundle.metadata, bundle.nprocs,
                                  app_name=app)
    assert m_stream.to_json() == m_cols.to_json()


def test_stream_bundle_text_and_binary(tmp_path, bt_bundle):
    """stream_bundle chunks a saved directory; the streamed model
    equals the loaded-bundle model for both on-disk layouts."""
    bt_bundle.save(tmp_path / "txt")
    bt_bundle.save(tmp_path / "bin", binary=True)
    for sub in ("txt", "bin"):
        nprocs, metadata, chunks = stream_bundle(tmp_path / sub,
                                                 chunk_rows=23)
        m_stream = IOModel.from_stream(chunks, metadata, nprocs,
                                       app_name="bt")
        loaded = TraceBundle.load(tmp_path / sub)
        m_batch = IOModel.from_trace(loaded, "bt")
        assert m_stream.to_json() == m_batch.to_json(), sub


def test_iter_chunks_matches_batch_reader(tmp_path, bt_bundle):
    bt_bundle.save(tmp_path / "txt")
    etypes = {f.file_id: f.etype_size
              for f in bt_bundle.metadata.files}
    path = tmp_path / "txt" / "trace.0"
    batch = read_trace_columns(path, etype_size=etypes)
    parts = list(iter_trace_column_chunks(path, etype_size=etypes,
                                          chunk_rows=17))
    assert all(len(p) <= 17 for p in parts)
    cat = TraceColumns.concat(parts)
    assert cat.content_digest() == batch.content_digest()


def test_stream_cache_interop(tmp_path, bt_bundle):
    """from_stream stores under the same key from_columns uses, so
    either path warm-starts the other."""
    from repro import store as _store
    from repro.core import cache as simcache

    cols = bt_bundle.columns
    _store.attach(tmp_path / "store")
    try:
        simcache.clear_all()
        m1 = IOModel.from_stream(iter(chop(cols, [29])), bt_bundle.metadata,
                                 bt_bundle.nprocs, app_name="bt")
        m2 = IOModel.from_columns(cols, bt_bundle.metadata,
                                  bt_bundle.nprocs, app_name="bt")
        assert m2 is m1  # cache hit, not a re-extraction
        simcache.clear_all()  # drop the in-memory tier; disk remains
        m3 = IOModel.from_columns(cols, bt_bundle.metadata,
                                  bt_bundle.nprocs, app_name="bt")
        assert m3.to_json() == m1.to_json()
    finally:
        _store.detach()
        simcache.clear_all()


def test_folder_rejects_push_after_finish():
    folder = LAPFolder()
    folder.push(TraceColumns.from_records([], backend="python"))
    folder.finish()
    assert folder.finish() == []  # idempotent
    with pytest.raises(RuntimeError):
        folder.push(TraceColumns.from_records([], backend="python"))
